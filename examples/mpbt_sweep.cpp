// mpbt_sweep — parallel parameter-sweep driver for the named scenarios.
//
//   mpbt_sweep <scenario> [--jobs=N] [--seed=S] [--runs=R] [--quick]
//              [--out=PATH] [--format=jsonl|csv]
//   mpbt_sweep --list
//
// Fans the scenario's parameter grid × --runs repetitions over a worker
// pool. Results stream to --out (or stdout) as they complete; progress
// and the summary go to stderr. Seeds derive from (--seed, point, rep),
// so for any --jobs value the SORTED output is byte-identical:
//
//   mpbt_sweep efficiency_vs_k --jobs=8 --out=sweep.jsonl && sort sweep.jsonl
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "util/cli.hpp"

namespace {

using namespace mpbt;

void list_scenarios(std::ostream& os) {
  os << "available scenarios:\n";
  for (const exp::Scenario* scenario : exp::ScenarioRegistry::instance().all()) {
    os << "  " << scenario->name << "\n      " << scenario->description << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("mpbt_sweep",
                      "Parallel parameter sweeps over the paper's experiment scenarios.\n"
                      "Usage: mpbt_sweep <scenario> [flags], or mpbt_sweep --list");
  cli.add_option("jobs", "worker threads (0 = all hardware threads)", "0");
  cli.add_option("seed", "base RNG seed; tasks derive from (seed, point, rep)", "42");
  cli.add_option("runs", "repetitions per grid point", "3");
  cli.add_flag("quick", "smaller workloads for smoke runs");
  cli.add_option("out", "output path (empty = stdout)", "");
  cli.add_option("format", "jsonl or csv (default: by --out extension, else jsonl)", "");
  cli.add_flag("list", "list the registered scenarios and exit");
  cli.add_flag("no-progress", "suppress the stderr progress/ETA reporter");

  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "mpbt_sweep: " << error.what() << "\n";
    return 2;
  }

  if (cli.has_flag("list")) {
    list_scenarios(std::cout);
    return 0;
  }
  if (cli.positional().size() != 1) {
    std::cerr << "mpbt_sweep: expected exactly one scenario name (try --list)\n";
    return 2;
  }
  const std::string name = cli.positional().front();
  const exp::Scenario* scenario = exp::ScenarioRegistry::instance().find(name);
  if (scenario == nullptr) {
    std::cerr << "mpbt_sweep: unknown scenario '" << name << "'\n";
    list_scenarios(std::cerr);
    return 2;
  }

  exp::SweepOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.runs = static_cast<int>(std::max(1LL, cli.get_int("runs")));
  options.jobs = static_cast<int>(cli.get_int("jobs"));
  options.quick = cli.has_flag("quick");
  options.out = cli.get("out");

  std::string format = cli.get("format");
  if (format.empty()) {
    format = options.out.ends_with(".csv") ? "csv" : "jsonl";
  }
  if (format != "jsonl" && format != "csv") {
    std::cerr << "mpbt_sweep: unknown --format '" << format << "' (jsonl or csv)\n";
    return 2;
  }

  try {
    std::unique_ptr<exp::Sink> sink;
    if (format == "csv") {
      sink = options.out.empty() ? std::make_unique<exp::CsvSink>(std::cout)
                                 : std::make_unique<exp::CsvSink>(options.out);
    } else {
      sink = options.out.empty() ? std::make_unique<exp::JsonlSink>(std::cout)
                                 : std::make_unique<exp::JsonlSink>(options.out);
    }

    const exp::SweepRunner runner(options);
    const std::size_t tasks =
        scenario->make_points(options).size() * static_cast<std::size_t>(options.runs);
    exp::ProgressReporter progress(tasks, cli.has_flag("no-progress") ? nullptr : &std::cerr,
                                   scenario->name);
    const exp::SweepSummary summary = runner.run(*scenario, sink.get(), &progress);
    progress.finish();

    std::cerr << "[" << scenario->name << "] " << summary.points << " points x " << options.runs
              << " runs = " << summary.tasks << " tasks on " << summary.jobs << " workers ("
              << summary.seconds << "s";
    if (summary.seconds > 0.0) {
      std::cerr << ", " << static_cast<double>(summary.tasks) / summary.seconds << " tasks/s";
    }
    std::cerr << ")";
    if (!options.out.empty()) {
      std::cerr << " -> " << options.out;
    }
    std::cerr << "\n";
  } catch (const std::exception& error) {
    std::cerr << "mpbt_sweep: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
