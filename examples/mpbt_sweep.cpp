// mpbt_sweep — parallel parameter-sweep driver for the named scenarios.
//
//   mpbt_sweep <scenario> [--jobs=N] [--seed=S] [--runs=R] [--quick]
//              [--out=PATH] [--format=jsonl|csv]
//              [--trace=PATH] [--metrics=PATH] [--summary=PATH]
//              [--log-level=LEVEL]
//   mpbt_sweep --list
//
// Fans the scenario's parameter grid × --runs repetitions over a worker
// pool. Results stream to --out (or stdout) as they complete; progress
// and the summary go to stderr. Seeds derive from (--seed, point, rep),
// so for any --jobs value the SORTED output is byte-identical:
//
//   mpbt_sweep efficiency_vs_k --jobs=8 --out=sweep.jsonl && sort sweep.jsonl
//
// --trace writes a Chrome trace-event JSON (load at ui.perfetto.dev):
// sim-time peer lanes per task plus wall-time worker lanes. --metrics
// writes the end-of-run registry snapshot as JSONL (or CSV when the path
// ends in .csv). Tracing never perturbs results: scenario records are
// byte-identical with and without it (see docs/OBSERVABILITY.md).
//
// --summary folds the run into an "mpbt-summary-v1" JSON document
// in-process — per-point mean profiles, model-vs-sim drift scores and
// (because --summary implies trace collection) the per-phase rollup of
// the instrumented clients — ready for mpbt_report --summary=PATH.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "eco/scenario.hpp"
#include "exp/metrics_export.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "report/drift.hpp"
#include "report/summary.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

using namespace mpbt;

void list_scenarios(std::ostream& os) {
  os << "available scenarios:\n";
  for (const exp::Scenario* scenario : exp::ScenarioRegistry::instance().all()) {
    os << "  " << scenario->name << "\n      " << scenario->description << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("mpbt_sweep",
                      "Parallel parameter sweeps over the paper's experiment scenarios.\n"
                      "Usage: mpbt_sweep <scenario> [flags], or mpbt_sweep --list");
  cli.add_option("jobs", "worker threads (0 = all hardware threads)", "0");
  cli.add_option("seed", "base RNG seed; tasks derive from (seed, point, rep)", "42");
  cli.add_option("runs", "repetitions per grid point", "3");
  cli.add_flag("quick", "smaller workloads for smoke runs");
  cli.add_option("out", "output path (empty = stdout)", "");
  cli.add_option("format", "jsonl or csv (default: by --out extension, else jsonl)", "");
  cli.add_flag("list", "list the registered scenarios and exit");
  cli.add_flag("no-progress", "suppress the stderr progress/ETA reporter");
  cli.add_option("trace", "write a Chrome trace-event JSON to this path", "");
  cli.add_option("metrics", "write the metrics snapshot to this path (jsonl, or csv by extension)",
                 "");
  cli.add_option("summary", "write an mpbt-summary-v1 JSON run summary to this path", "");
  cli.add_option("log-level", "debug|info|warn|error|off (default: warn, or $MPBT_LOG)", "");

  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "mpbt_sweep: " << error.what() << "\n";
    return 2;
  }

  // The eco layer sits above exp, so its scenarios register here, at the
  // entry point, rather than inside the registry's built-in list.
  eco::register_ecosystem_scenarios();

  if (cli.has_flag("list")) {
    list_scenarios(std::cout);
    return 0;
  }
  if (cli.positional().size() != 1) {
    std::cerr << "mpbt_sweep: expected exactly one scenario name (try --list)\n";
    return 2;
  }
  const std::string name = cli.positional().front();
  const exp::Scenario* scenario = exp::ScenarioRegistry::instance().find(name);
  if (scenario == nullptr) {
    std::cerr << "mpbt_sweep: unknown scenario '" << name << "'\n";
    list_scenarios(std::cerr);
    return 2;
  }

  if (const std::string level = cli.get("log-level"); !level.empty()) {
    try {
      util::set_log_level(util::parse_log_level(level));
    } catch (const std::exception& error) {
      std::cerr << "mpbt_sweep: " << error.what() << "\n";
      return 2;
    }
  }

  exp::SweepOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.runs = static_cast<int>(std::max(1LL, cli.get_int("runs")));
  options.jobs = static_cast<int>(cli.get_int("jobs"));
  options.quick = cli.has_flag("quick");
  options.out = cli.get("out");

  // Observability: --trace collects sim-time events + worker spans;
  // --metrics only needs the registry. All three stay null when unused,
  // so the hot path branches on nullptr and nothing else.
  const std::string trace_path = cli.get("trace");
  const std::string metrics_path = cli.get("metrics");
  const std::string summary_path = cli.get("summary");
  obs::Registry registry;
  obs::TraceCollector collector;
  obs::WallProfiler profiler;
  if (!trace_path.empty() || !metrics_path.empty() || !summary_path.empty()) {
    options.observability.registry = &registry;
  }
  // --summary needs the trace events too: the per-phase rollup is
  // rebuilt from the instrumented clients' samples. Collection never
  // perturbs the simulation, so turning it on is free of drift.
  if (!trace_path.empty() || !summary_path.empty()) {
    options.observability.traces = &collector;
  }
  if (!trace_path.empty()) {
    options.observability.profiler = &profiler;
  }

  std::string format = cli.get("format");
  if (format.empty()) {
    format = options.out.ends_with(".csv") ? "csv" : "jsonl";
  }
  if (format != "jsonl" && format != "csv") {
    std::cerr << "mpbt_sweep: unknown --format '" << format << "' (jsonl or csv)\n";
    return 2;
  }

  try {
    std::unique_ptr<exp::Sink> sink;
    if (format == "csv") {
      sink = options.out.empty() ? std::make_unique<exp::CsvSink>(std::cout)
                                 : std::make_unique<exp::CsvSink>(options.out);
    } else {
      sink = options.out.empty() ? std::make_unique<exp::JsonlSink>(std::cout)
                                 : std::make_unique<exp::JsonlSink>(options.out);
    }

    const exp::SweepRunner runner(options);
    const std::size_t tasks =
        scenario->make_points(options).size() * static_cast<std::size_t>(options.runs);
    exp::ProgressReporter progress(tasks, cli.has_flag("no-progress") ? nullptr : &std::cerr,
                                   scenario->name);
    const exp::SweepSummary summary = runner.run(*scenario, sink.get(), &progress);
    progress.finish();

    if (!trace_path.empty()) {
      obs::write_chrome_trace(trace_path, collector, &profiler);
      std::cerr << "[" << scenario->name << "] trace: " << collector.total_events()
                << " events -> " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::unique_ptr<exp::Sink> metrics_sink;
      if (metrics_path.ends_with(".csv")) {
        metrics_sink = std::make_unique<exp::CsvSink>(metrics_path);
      } else {
        metrics_sink = std::make_unique<exp::JsonlSink>(metrics_path);
      }
      exp::write_metrics_snapshot(summary.metrics, *metrics_sink);
      metrics_sink->flush();
      std::cerr << "[" << scenario->name << "] metrics: "
                << summary.metrics.counters.size() + summary.metrics.gauges.size() +
                       summary.metrics.histograms.size() + summary.metrics.stats.size()
                << " metrics -> " << metrics_path << "\n";
    }
    if (!summary_path.empty()) {
      std::vector<report::RunSummary> summaries = report::summarize_records(summary.records);
      if (summaries.size() != 1) {
        throw std::runtime_error("mpbt_sweep: expected one scenario in the run summary");
      }
      report::RunSummary& run = summaries.front();
      report::attach_traces(run, collector.sorted());
      report::attach_drift(run);
      report::summary_to_json(run).save_file(summary_path);
      std::cerr << "[" << scenario->name << "] summary: " << run.metrics.size()
                << " metrics -> " << summary_path << "\n";
    }

    std::cerr << "[" << scenario->name << "] " << summary.points << " points x " << options.runs
              << " runs = " << summary.tasks << " tasks on " << summary.jobs << " workers ("
              << summary.seconds << "s";
    if (summary.seconds > 0.0) {
      std::cerr << ", " << static_cast<double>(summary.tasks) / summary.seconds << " tasks/s";
    }
    std::cerr << ")";
    if (!options.out.empty()) {
      std::cerr << " -> " << options.out;
    }
    std::cerr << "\n";
  } catch (const std::exception& error) {
    std::cerr << "mpbt_sweep: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
