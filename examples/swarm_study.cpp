// swarm_study — explore how protocol parameters shape a BitTorrent swarm.
//
// A publisher planning a release can ask: with my expected arrival rate,
// how do the piece count, connection limit, and peer-set size affect
// download times, efficiency, and stability? This example runs a
// configurable swarm and prints a full report.
//
//   ./build/examples/swarm_study --pieces=200 --k=7 --s=40 --arrival=2
//       --rounds=300 --seeds=2
#include <iostream>

#include "bt/swarm.hpp"
#include "numeric/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  util::CliParser cli("swarm_study", "run a configurable BitTorrent swarm and report");
  cli.add_option("pieces", "number of pieces B", "200");
  cli.add_option("k", "maximum simultaneous connections", "7");
  cli.add_option("s", "peer set size", "40");
  cli.add_option("arrival", "Poisson arrival rate (peers/round)", "2.0");
  cli.add_option("rounds", "rounds to simulate", "300");
  cli.add_option("seeds", "number of always-on seeds", "2");
  cli.add_option("seed-capacity", "seed uploads per round", "4");
  cli.add_option("warm", "initial warm leechers", "100");
  cli.add_option("warm-fill", "fraction of pieces warm leechers hold", "0.35");
  cli.add_option("rng", "random seed", "42");
  cli.add_flag("shake", "enable peer-set shaking at 90%");
  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }

    bt::SwarmConfig config;
    config.num_pieces = static_cast<std::uint32_t>(cli.get_int("pieces"));
    config.max_connections = static_cast<std::uint32_t>(cli.get_int("k"));
    config.peer_set_size = static_cast<std::uint32_t>(cli.get_int("s"));
    config.arrival_rate = cli.get_double("arrival");
    config.initial_seeds = static_cast<std::uint32_t>(cli.get_int("seeds"));
    config.seed_capacity = static_cast<std::uint32_t>(cli.get_int("seed-capacity"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("rng"));
    config.shake.enabled = cli.has_flag("shake");
    const auto warm_count = static_cast<std::uint32_t>(cli.get_int("warm"));
    if (warm_count > 0) {
      bt::InitialGroup warm;
      warm.count = warm_count;
      warm.piece_probs.assign(config.num_pieces, cli.get_double("warm-fill"));
      config.initial_groups.push_back(std::move(warm));
    }
    const auto rounds = static_cast<bt::Round>(cli.get_int("rounds"));

    bt::Swarm swarm(std::move(config));
    swarm.run_rounds(rounds);

    const auto& m = swarm.metrics();
    const numeric::Summary downloads = numeric::summarize(m.download_times());

    std::cout << "=== swarm report after " << rounds << " rounds ===\n";
    util::Table report({"metric", "value"});
    report.set_precision(3);
    report.add_row({std::string("live peers"), static_cast<long long>(swarm.population())});
    report.add_row({std::string("seeds"), static_cast<long long>(swarm.num_seeds())});
    report.add_row(
        {std::string("completed downloads"), static_cast<long long>(m.completed_count())});
    report.add_row({std::string("mean download (rounds)"), downloads.mean});
    report.add_row({std::string("median download"), downloads.median});
    report.add_row({std::string("p95 download"), downloads.p95});
    report.add_row({std::string("entropy (now)"), swarm.entropy()});
    report.add_row({std::string("mean entropy"), m.mean_entropy(rounds / 4)});
    report.add_row({std::string("efficiency (n/k)"), m.mean_efficiency(rounds / 4)});
    report.add_row(
        {std::string("upload utilization"), m.mean_transfer_efficiency(rounds / 4)});
    report.add_row({std::string("measured p_r"), m.estimated_p_r()});
    report.add_row({std::string("measured p_n"), m.estimated_p_n()});
    report.add_row({std::string("measured p_init"), m.estimated_p_init()});
    report.add_row({std::string("starving peer-rounds"),
                    static_cast<long long>(m.failed_encounters())});
    report.add_row({std::string("dropped arrivals"),
                    static_cast<long long>(m.dropped_arrivals())});
    report.print_text(std::cout);

    std::cout << "\n=== potential-set ratio vs pieces downloaded ===\n";
    util::Table profile({"pieces", "potential/NS ratio", "potential size"});
    profile.set_precision(3);
    const std::uint32_t B = swarm.config().num_pieces;
    const std::uint32_t step = std::max<std::uint32_t>(1, B / 10);
    for (std::uint32_t b = 0; b <= B; b += step) {
      profile.add_row({static_cast<long long>(b), m.potential_ratio(b), m.potential_size(b)});
    }
    profile.print_text(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
