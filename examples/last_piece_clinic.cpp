// last_piece_clinic — diagnose and fix the last-piece problem.
//
// Runs the same scarce-tail swarm twice (with and without the peer-set
// shaking modification of Section 7.1) and reports per-block time-to-
// download for the final stretch of the file, the detected last-phase
// duration of an instrumented client, and the improvement summary.
//
//   ./build/examples/last_piece_clinic --s=6 --shake-at=0.9
#include <iostream>

#include "analysis/phase_detect.hpp"
#include "bt/swarm.hpp"
#include "stability/entropy.hpp"
#include "trace/archetypes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig clinic_config(bool shake, double shake_at, std::uint32_t s,
                              std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 200;
  config.max_connections = 7;
  config.peer_set_size = s;
  config.arrival_rate = 0.8;
  config.initial_seeds = 1;
  config.seed_capacity = 2;
  config.seed = seed;
  config.shake.enabled = shake;
  config.shake.completion_fraction = shake_at;
  const std::vector<double> ramp = stability::ramp_piece_probs(config.num_pieces, 0.75, 0.02);
  bt::InitialGroup warm;
  warm.count = 80;
  warm.piece_probs = ramp;
  config.initial_groups.push_back(std::move(warm));
  config.arrival_piece_probs = ramp;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("last_piece_clinic", "demonstrate the last-piece problem and the fix");
  cli.add_option("s", "peer set size (small sets starve at the end)", "6");
  cli.add_option("shake-at", "completion fraction triggering the shake", "0.9");
  cli.add_option("rounds", "rounds to simulate", "400");
  cli.add_option("rng", "random seed", "7");
  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
    const auto s = static_cast<std::uint32_t>(cli.get_int("s"));
    const double shake_at = cli.get_double("shake-at");
    const auto rounds = static_cast<bt::Round>(cli.get_int("rounds"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("rng"));

    bt::Swarm normal(clinic_config(false, shake_at, s, seed));
    normal.run_rounds(rounds);
    bt::Swarm shaken(clinic_config(true, shake_at, s, seed));
    shaken.run_rounds(rounds);

    std::cout << "=== last-piece clinic (s=" << s << ", shake at " << shake_at * 100
              << "%) ===\n\n";
    util::Table table({"block", "TTD normal", "TTD shake"});
    table.set_precision(2);
    double total_normal = 0.0;
    double total_shake = 0.0;
    for (std::uint32_t block = 190; block <= 200; ++block) {
      const double n = normal.metrics().ttd(block);
      const double sh = shaken.metrics().ttd(block);
      if (n >= 0.0) {
        total_normal += n;
      }
      if (sh >= 0.0) {
        total_shake += sh;
      }
      table.add_row({static_cast<long long>(block), n, sh});
    }
    table.print_text(std::cout);
    std::cout << "\ntotal last-stretch TTD: normal " << total_normal << ", shake "
              << total_shake;
    if (total_normal > 0.0) {
      std::cout << "  (" << 100.0 * (total_normal - total_shake) / total_normal
                << "% reduction)";
    }
    std::cout << "\ncompleted downloads: normal " << normal.metrics().completed_count()
              << ", shake " << shaken.metrics().completed_count() << "\n\n";

    // Show the problem from one client's perspective too.
    const trace::ClientTrace trace = trace::make_last_phase_trace(seed);
    analysis::PhaseDetectOptions options;
    options.last_phase_potential = 1;
    const analysis::PhaseSegmentation seg = analysis::detect_phases(trace, options);
    std::cout << "instrumented client (no shaking): "
              << "bootstrap " << seg.bootstrap_duration << " rounds, efficient "
              << seg.efficient_duration << " rounds, last phase " << seg.last_duration
              << " rounds (" << 100.0 * seg.last_fraction() << "% of the download)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
