// mpbt_ecosystem — multi-torrent ecosystem driver (flash crowds,
// takedown transients, cross-swarm seeding).
//
//   mpbt_ecosystem [--torrents=N] [--peers=N] [--arrival-rate=L]
//                  [--zipf-s=S] [--max-wants=W] [--rounds=R] [--jobs=N]
//                  [--flash-crowd=R:N[:T],...] [--takedown=R:F[:T],...]
//                  [--quick] [--check] [--no-reserve] [--seed=S]
//                  [--summary=PATH] [--out=PATH] [--log-level=LEVEL]
//
// Drives eco::Ecosystem: N torrents with Zipf(s) popularity, a shared
// session population (arrive, download, linger as seed, move to the
// next wanted torrent, depart), scripted flash-crowd bursts and
// takedown events. Torrents step in parallel over --jobs workers;
// all output (including the final fingerprint) is bit-identical for
// any --jobs value, which CI verifies with a byte-wise cmp.
//
// --flash-crowd=R:N[:T]  N sessions burst-arrive at round R (want
//                        torrent T; Zipf-drawn when T is omitted).
// --takedown=R:F[:T]     fraction F of torrent T's live peers (all
//                        torrents when T is omitted) removed at round R.
// --summary              writes an mpbt-summary-v1 document (scenario
//                        "ecosystem_transient") for mpbt_report --check.
// --out                  writes the per-round population series as CSV.
// --check                attaches the full invariant catalogue (per-
//                        swarm phase checks + cross-swarm bookkeeping).
//
// Unset --torrents/--peers/--arrival-rate/--rounds pick defaults sized
// by --quick (6 torrents / 150 sessions / 60 rounds) vs the full run
// (16 torrents / 400 sessions / 150 rounds).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "check/eco_invariants.hpp"
#include "eco/ecosystem.hpp"
#include "eco/scenario.hpp"
#include "report/summary.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace mpbt;

/// Parses "R:X[:T]" event lists (comma-separated). `scale` converts the
/// second field (double for takedown fractions, count for bursts).
std::vector<std::vector<double>> parse_events(const std::string& text,
                                              const char* what) {
  std::vector<std::vector<double>> events;
  if (text.empty()) {
    return events;
  }
  std::istringstream list(text);
  std::string item;
  while (std::getline(list, item, ',')) {
    std::vector<double> fields;
    std::istringstream event(item);
    std::string field;
    while (std::getline(event, field, ':')) {
      fields.push_back(std::stod(field));
    }
    if (fields.size() < 2 || fields.size() > 3) {
      throw std::invalid_argument(std::string(what) +
                                  ": expected ROUND:VALUE[:TORRENT], got '" + item +
                                  "'");
    }
    events.push_back(std::move(fields));
  }
  return events;
}

void write_series_csv(const std::string& path, const eco::Ecosystem& eco) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open --out path: " + path);
  }
  out << "round,population,seeds,active_sessions";
  for (std::size_t t = 0; t < eco.num_torrents(); ++t) {
    out << ",torrent_" << t;
  }
  out << "\n";
  const eco::EcosystemMetrics& m = eco.metrics();
  for (std::size_t r = 0; r < m.population.size(); ++r) {
    out << r << "," << m.population[r] << "," << m.seeds[r] << ","
        << m.active_sessions[r];
    for (std::size_t t = 0; t < eco.num_torrents(); ++t) {
      out << "," << m.torrent_population[t][r];
    }
    out << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "mpbt_ecosystem",
      "Multi-torrent ecosystem: Zipf popularity, session churn, cross-swarm\n"
      "seeding, flash crowds and takedown transients. Deterministic for any "
      "--jobs.");
  cli.add_option("torrents", "number of torrents (0 = default by --quick)", "0");
  cli.add_option("peers", "initial sessions injected at round 0 (0 = default)", "0");
  cli.add_option("arrival-rate", "expected new sessions per round (-1 = default)",
                 "-1");
  cli.add_option("zipf-s", "Zipf popularity exponent (0 = uniform)", "1.0");
  cli.add_option("max-wants", "want-list cap per session", "3");
  cli.add_option("rounds", "rounds to simulate (0 = default by --quick)", "0");
  cli.add_option("jobs", "worker threads for torrent stepping (0 = hardware)", "1");
  cli.add_option("flash-crowd", "R:N[:T] burst events, comma-separated", "");
  cli.add_option("takedown", "R:F[:T] takedown events, comma-separated", "");
  cli.add_option("linger", "seed linger rounds after completion", "20");
  cli.add_option("abort-rate", "per-round leecher abort probability", "0.01");
  cli.add_option("pieces", "pieces per torrent (B)", "40");
  cli.add_option("seed", "base RNG seed", "42");
  cli.add_flag("quick", "smaller defaults for smoke runs");
  cli.add_flag("check", "attach the invariant catalogue (per-swarm + cross-swarm)");
  cli.add_flag("no-reserve", "disable pre-sizing of tracker/peer-store registries");
  cli.add_option("summary", "write an mpbt-summary-v1 JSON summary to this path", "");
  cli.add_option("out", "write the per-round population series CSV to this path", "");
  cli.add_option("log-level", "debug|info|warn|error|off", "");

  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
    if (const std::string level = cli.get("log-level"); !level.empty()) {
      util::set_log_level(util::parse_log_level(level));
    }

    // Keep mpbt_sweep and this CLI in agreement about what the
    // "ecosystem_transient" scenario means.
    eco::register_ecosystem_scenarios();

    const bool quick = cli.has_flag("quick");
    eco::EcosystemConfig config;
    const long long torrents = cli.get_int("torrents");
    config.num_torrents =
        torrents > 0 ? static_cast<std::uint32_t>(torrents) : (quick ? 6U : 16U);
    const long long peers = cli.get_int("peers");
    config.initial_sessions =
        peers > 0 ? static_cast<std::uint32_t>(peers) : (quick ? 150U : 400U);
    const double arrival = cli.get_double("arrival-rate");
    config.arrival_rate = arrival >= 0.0 ? arrival : (quick ? 8.0 : 10.0);
    const long long rounds_opt = cli.get_int("rounds");
    const auto rounds =
        rounds_opt > 0 ? static_cast<bt::Round>(rounds_opt) : (quick ? 60U : 150U);
    config.zipf_s = cli.get_double("zipf-s");
    config.max_wants = static_cast<std::uint32_t>(cli.get_int("max-wants"));
    config.pre_reserve = !cli.has_flag("no-reserve");
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    config.swarm.num_pieces = static_cast<std::uint32_t>(cli.get_int("pieces"));
    config.swarm.max_connections = 4;
    config.swarm.peer_set_size = 20;
    config.swarm.initial_seeds = 2;
    config.swarm.seed_capacity = 6;
    config.swarm.seeds_serve_all = true;
    config.swarm.seed_linger_rounds =
        static_cast<std::uint32_t>(cli.get_int("linger"));
    config.swarm.abort_rate = cli.get_double("abort-rate");

    for (const std::vector<double>& e :
         parse_events(cli.get("flash-crowd"), "--flash-crowd")) {
      eco::FlashCrowd fc;
      fc.round = static_cast<bt::Round>(e[0]);
      fc.sessions = static_cast<std::uint32_t>(e[1]);
      fc.torrent = e.size() > 2 ? static_cast<std::int64_t>(e[2]) : -1;
      config.flash_crowds.push_back(fc);
    }
    std::vector<eco::Takedown> takedowns;
    for (const std::vector<double>& e :
         parse_events(cli.get("takedown"), "--takedown")) {
      eco::Takedown td;
      td.round = static_cast<bt::Round>(e[0]);
      td.fraction = e[1];
      td.torrent = e.size() > 2 ? static_cast<std::int64_t>(e[2]) : -1;
      takedowns.push_back(td);
    }
    config.takedowns = takedowns;

    const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));
    eco::Ecosystem eco(config, jobs);

    std::unique_ptr<check::EcosystemChecker> checker;
    if (cli.has_flag("check")) {
      checker = std::make_unique<check::EcosystemChecker>(eco);
      checker->check_round();
    }
    for (bt::Round r = 0; r < rounds; ++r) {
      eco.step();
      if (checker) {
        checker->check_round();
      }
    }

    // Everything below prints deterministic state only — no wall times —
    // so `cmp` across --jobs values is a valid invariance witness.
    std::cout << "== mpbt_ecosystem: " << eco.num_torrents() << " torrents, "
              << rounds << " rounds, zipf_s=" << config.zipf_s << " ==\n";
    util::Table table({"torrent", "population", "seeds", "completions", "zipf_p"});
    for (std::size_t t = 0; t < eco.num_torrents(); ++t) {
      const bt::Swarm& swarm = eco.swarm(t);
      table.add_row({static_cast<long long>(t),
                     static_cast<long long>(swarm.population()),
                     static_cast<long long>(swarm.num_seeds()),
                     static_cast<long long>(swarm.metrics().completed_count()),
                     eco.popularity().probability(t)});
    }
    table.print_text(std::cout);
    std::cout << "population=" << eco.population() << " seeds=" << eco.num_seeds()
              << " active_sessions=" << eco.active_session_count() << "\n"
              << "sessions: arrived=" << eco.sessions_arrived()
              << " completed=" << eco.sessions_completed()
              << " aborted=" << eco.sessions_aborted()
              << " removed=" << eco.sessions_removed()
              << " file_completions=" << eco.file_completions() << "\n";
    for (const eco::Takedown& td : takedowns) {
      const eco::TransientSummary transient = eco.transient(td);
      std::cout << "takedown @" << td.round << " fraction=" << td.fraction
                << ": pre=" << transient.pre << " trough=" << transient.trough
                << " final=" << transient.final_population
                << " recovery_rounds=" << transient.recovery_rounds
                << " recovered_frac=" << transient.recovered_frac << "\n";
    }
    if (checker) {
      std::cout << "invariant checks run: " << checker->checks_run() << "\n";
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "0x%016llx",
                  static_cast<unsigned long long>(eco.fingerprint()));
    std::cout << "fingerprint=" << fp << "\n";

    if (const std::string path = cli.get("out"); !path.empty()) {
      write_series_csv(path, eco);
      std::cerr << "mpbt_ecosystem: wrote series CSV to " << path << "\n";
    }

    if (const std::string path = cli.get("summary"); !path.empty()) {
      const std::vector<std::uint32_t>& population = eco.metrics().population;
      const double mean_population =
          population.empty()
              ? 0.0
              : std::accumulate(population.begin(), population.end(), 0.0) /
                    static_cast<double>(population.size());
      report::RunSummary summary;
      summary.scenario = "ecosystem_transient";
      summary.points = 1;
      summary.runs = 1;
      summary.records = 1;
      summary.set_metric("final_population",
                         population.empty() ? 0.0 : population.back());
      summary.set_metric("mean_population", mean_population);
      summary.set_metric("sessions_arrived",
                         static_cast<double>(eco.sessions_arrived()));
      summary.set_metric("sessions_completed",
                         static_cast<double>(eco.sessions_completed()));
      summary.set_metric("sessions_aborted",
                         static_cast<double>(eco.sessions_aborted()));
      summary.set_metric("sessions_removed",
                         static_cast<double>(eco.sessions_removed()));
      summary.set_metric("file_completions",
                         static_cast<double>(eco.file_completions()));
      if (!takedowns.empty()) {
        const eco::TransientSummary transient = eco.transient(takedowns.front());
        summary.set_metric("takedown_pre_population", transient.pre);
        summary.set_metric("takedown_trough_population", transient.trough);
        summary.set_metric("takedown_recovery_rounds", transient.recovery_rounds);
        summary.set_metric("takedown_recovered_frac", transient.recovered_frac);
      }
      report::summary_to_json(summary).save_file(path);
      std::cerr << "mpbt_ecosystem: wrote summary to " << path << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "mpbt_ecosystem: " << error.what() << "\n";
    return 2;
  }
  return 0;
}
