// Quickstart: simulate a BitTorrent swarm, compare it against the
// multiphased download model, and print the three-phase summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "analysis/calibrate.hpp"
#include "bt/swarm.hpp"
#include "model/download_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpbt;

  // --- 1. Simulate a swarm -------------------------------------------------
  bt::SwarmConfig config;
  config.num_pieces = 100;   // B
  config.max_connections = 5;  // k
  config.peer_set_size = 30;   // s
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  bt::InitialGroup warm;  // a warm swarm with varied piece holdings
  warm.count = 80;
  warm.piece_probs.assign(config.num_pieces, 0.3);
  config.initial_groups.push_back(warm);
  config.seed = 42;

  bt::Swarm swarm(config);
  swarm.run_rounds(300);

  std::cout << "=== swarm after 300 rounds ===\n";
  std::cout << "live peers:        " << swarm.population() << " (" << swarm.num_seeds()
            << " seeds)\n";
  std::cout << "completed:         " << swarm.metrics().completed_count() << "\n";
  std::cout << "entropy:           " << swarm.entropy() << "\n";
  std::cout << "mean efficiency:   " << swarm.metrics().mean_efficiency(50) << "\n";
  std::cout << "estimated p_r:     " << swarm.metrics().estimated_p_r() << "\n";
  std::cout << "estimated p_n:     " << swarm.metrics().estimated_p_n() << "\n";
  std::cout << "estimated p_init:  " << swarm.metrics().estimated_p_init() << "\n";

  // --- 2. Evaluate the analytical model at calibrated parameters -----------
  analysis::CalibrationOptions calibration;
  calibration.gamma = 0.1;
  const model::ModelParams params = analysis::calibrate_model(swarm, calibration);

  const model::EvolutionResult evo = model::compute_evolution(params);
  std::cout << "\n=== multiphased model ===\n";
  std::cout << "expected completion:     " << evo.expected_completion << " rounds\n";
  std::cout << "bootstrap phase:         " << evo.bootstrap_rounds << " rounds\n";
  std::cout << "efficient download:      " << evo.efficient_rounds << " rounds\n";
  std::cout << "last download phase:     " << evo.last_rounds << " rounds\n";
  std::cout << "absorbed mass:           " << evo.absorbed_mass << "\n";

  // --- 3. Timeline comparison ----------------------------------------------
  util::Table table({"pieces", "model rounds", "sim rounds"});
  table.set_precision(1);
  for (std::uint32_t b = 10; b <= config.num_pieces; b += 10) {
    table.add_row({static_cast<long long>(b), evo.expected_timeline[b],
                   swarm.metrics().timeline(b)});
  }
  std::cout << "\n=== download timeline (rounds to reach b pieces) ===\n";
  table.print_text(std::cout);
  return 0;
}
