// baseline_showdown — every content-distribution system in this repository
// on one matched workload.
//
// Runs the BitTorrent swarm, the coupon-replication baseline, and the
// network-coded swarm at the same (B, arrival rate) scale, and evaluates
// the Qiu–Srikant fluid model's steady-state prediction alongside. A
// compact tour of why the paper models BitTorrent specifically:
// the coupon system wastes encounters, coding needs no piece selection at
// all, and the fluid model sees none of the protocol structure.
//
//   ./build/examples/baseline_showdown --pieces=40 --arrival=2
#include <iostream>

#include "bt/swarm.hpp"
#include "coding/coded_swarm.hpp"
#include "coupon/coupon.hpp"
#include "fluid/qiu_srikant.hpp"
#include "numeric/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  util::CliParser cli("baseline_showdown", "compare all systems on one workload");
  cli.add_option("pieces", "number of pieces B", "40");
  cli.add_option("arrival", "arrivals per round", "2.0");
  cli.add_option("rounds", "rounds / time horizon", "250");
  cli.add_option("k", "connections (BT and coded)", "4");
  cli.add_option("s", "peer set size (BT and coded)", "20");
  cli.add_option("rng", "random seed", "99");
  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
    const auto B = static_cast<std::uint32_t>(cli.get_int("pieces"));
    const double arrival = cli.get_double("arrival");
    const auto rounds = static_cast<std::uint32_t>(cli.get_int("rounds"));
    const auto k = static_cast<std::uint32_t>(cli.get_int("k"));
    const auto s = static_cast<std::uint32_t>(cli.get_int("s"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("rng"));

    util::Table table({"system", "completed", "mean download", "p95 download",
                       "wasted/starved signal"});
    table.set_precision(2);

    // --- BitTorrent (the paper's subject) ----------------------------------
    {
      bt::SwarmConfig config;
      config.num_pieces = B;
      config.max_connections = k;
      config.peer_set_size = s;
      config.arrival_rate = arrival;
      config.initial_seeds = 1;
      config.seed_capacity = 4;
      config.seeds_serve_all = true;
      config.seed = seed;
      bt::Swarm swarm(std::move(config));
      swarm.run_rounds(rounds);
      const numeric::Summary d = numeric::summarize(swarm.metrics().download_times());
      table.add_row({std::string("bittorrent"), static_cast<long long>(d.count), d.mean,
                     d.p95,
                     std::string("starving peer-rounds: ") +
                         std::to_string(swarm.metrics().failed_encounters())});
    }

    // --- Coupon replication (global random encounters) ---------------------
    {
      coupon::CouponConfig config;
      config.num_coupons = B;
      config.arrival_rate = arrival;
      config.initial_peers = 60;
      config.horizon = static_cast<double>(rounds);
      config.seed = seed;
      coupon::CouponSimulator sim(std::move(config));
      const coupon::CouponResult result = sim.run();
      table.add_row({std::string("coupon"), static_cast<long long>(result.completed),
                     result.completion_time.mean, result.completion_time.p95,
                     std::string("failed encounters: ") +
                         std::to_string(static_cast<int>(100.0 * result.failed_fraction())) +
                         "%"});
    }

    // --- Network coding (ref. [5]) ------------------------------------------
    {
      coding::CodedSwarmConfig config;
      config.num_pieces = B;
      config.max_connections = k;
      config.peer_set_size = s;
      config.arrival_rate = arrival;
      config.initial_seeds = 1;
      config.seed_capacity = 4;
      config.seed = seed;
      coding::CodedSwarm swarm(std::move(config));
      swarm.run_rounds(rounds);
      const numeric::Summary d = numeric::summarize(swarm.completion_times());
      table.add_row({std::string("network coding"), static_cast<long long>(d.count),
                     d.mean, d.p95,
                     std::string("wasted transmissions: ") +
                         std::to_string(static_cast<int>(100.0 * swarm.wasted_fraction())) +
                         "%"});
    }
    table.print_text(std::cout);

    // --- Fluid model prediction ---------------------------------------------
    fluid::FluidParams params;
    params.lambda = arrival;
    params.c = static_cast<double>(k) / static_cast<double>(B);
    params.mu = params.c;
    params.eta = 0.9;
    params.gamma = 1.0;  // completed peers leave immediately
    const fluid::FluidState eq = fluid::steady_state(params);
    std::cout << "\nfluid model (ref. [9]) steady-state prediction: x* = " << eq.x
              << " leechers, T = " << fluid::steady_state_download_time(params)
              << " rounds — aggregate only; none of the per-system structure above\n"
              << "is expressible in its state, which is the paper's argument for\n"
              << "protocol-level modeling.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
