// mpbt_fuzz — randomized swarm scenario fuzzer with invariant checking.
//
//   mpbt_fuzz [--cases=N] [--seed=S] [--jobs=J] [--quick] [--stride=K]
//             [--deep] [--inject-fault=NAME] [--no-shrink]
//             [--failures-dir=DIR] [--out=PATH] [--no-progress]
//   mpbt_fuzz --replay=case.json
//   mpbt_fuzz --list-invariants | --list-faults
//
// Fuzz mode drives --cases random swarm configurations (derived from
// --seed via SplitMix64, so case i is identical for any --jobs) with the
// full invariant catalogue attached. Every failure is shrunk to a
// minimal reproducer (unless --no-shrink) and recorded as a replayable
// JSON spec under --failures-dir. stdout ends with a single summary
// line containing the campaign fingerprint; the line is bit-identical
// across --jobs values, which CI uses as the determinism witness.
//
// Replay mode re-runs a recorded case (bare spec, or a failure record —
// the shrunk spec wins when present). If the spec expects a violation,
// exit 0 means the SAME invariant reproduced; for clean specs, exit 0
// means the run stayed invariant-clean.
//
// Exit codes: 0 = clean / expected outcome, 1 = violation (or expected
// violation missing), 2 = usage or I/O error.
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>

#include "bt/fault.hpp"
#include "check/case_spec.hpp"
#include "check/fuzzer.hpp"
#include "check/invariants.hpp"
#include "check/shrinker.hpp"
#include "report/json.hpp"
#include "util/cli.hpp"

namespace {

using namespace mpbt;

int replay(const std::string& path) {
  const check::CaseSpec spec = check::load_case_spec(path);
  const check::CaseResult result = check::run_case(spec);
  if (spec.expect_violation.empty()) {
    if (result.ok) {
      std::cout << "replay clean: " << result.rounds_run << " rounds, "
                << result.checks_run << " checks, fingerprint=0x" << std::hex
                << result.fingerprint << std::dec << "\n";
      return 0;
    }
    std::cout << "replay VIOLATION: " << result.message << "\n";
    return 1;
  }
  if (!result.ok && result.invariant == spec.expect_violation) {
    std::cout << "replay reproduced '" << result.invariant << "' at round "
              << result.violation_round << ": " << result.message << "\n";
    return 0;
  }
  if (result.ok) {
    std::cout << "replay FAILED to reproduce expected violation '"
              << spec.expect_violation << "' (run was clean)\n";
  } else {
    std::cout << "replay violated '" << result.invariant << "' instead of expected '"
              << spec.expect_violation << "': " << result.message << "\n";
  }
  return 1;
}

report::Json failure_record(const check::CaseResult& result,
                            const check::ShrinkResult* shrunk) {
  report::Json record = report::Json::object();
  record.set("schema", report::Json("mpbt-fuzz-failure-v1"));
  record.set("invariant", report::Json(result.invariant));
  record.set("message", report::Json(result.message));
  record.set("violation_round",
             report::Json(static_cast<double>(result.violation_round)));
  record.set("case", check::to_json(result.spec));
  if (shrunk != nullptr) {
    record.set("shrunk", check::to_json(shrunk->shrunk));
    record.set("shrunk_message", report::Json(shrunk->result.message));
    record.set("shrink_attempts",
               report::Json(static_cast<double>(shrunk->attempts)));
  }
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "mpbt_fuzz",
      "Randomized swarm fuzzing with structural invariants attached.\n"
      "Usage: mpbt_fuzz [flags], mpbt_fuzz --replay=case.json");
  cli.add_option("cases", "number of fuzz cases to run", "100");
  cli.add_option("seed", "campaign base seed; case i derives from (seed, i)", "42");
  cli.add_option("jobs", "worker threads (0 = all hardware threads)", "0");
  cli.add_flag("quick", "smaller config ranges, sized for CI smoke runs");
  cli.add_option("stride", "check invariants only every K-th round", "1");
  cli.add_flag("deep", "run O(N*B) recount checks at every phase boundary");
  cli.add_option("inject-fault", "arm this bt::fault in every case", "none");
  cli.add_flag("no-shrink", "record failures without shrinking them");
  cli.add_option("failures-dir", "write replayable failure records here", "");
  cli.add_option("out", "write the campaign summary JSON to this path", "");
  cli.add_flag("no-progress", "suppress the stderr progress reporter");
  cli.add_option("replay", "re-run a recorded case spec and exit", "");
  cli.add_flag("list-invariants", "print the invariant catalogue and exit");
  cli.add_flag("list-faults", "print the injectable fault names and exit");

  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "mpbt_fuzz: " << error.what() << "\n";
    return 2;
  }

  try {
    if (cli.has_flag("list-invariants")) {
      for (const std::string_view name : check::InvariantSuite::invariant_names()) {
        std::cout << name << "\n";
      }
      return 0;
    }
    if (cli.has_flag("list-faults")) {
      for (const bt::fault::Fault fault : bt::fault::all_faults()) {
        std::cout << bt::fault::fault_name(fault) << "\n";
      }
      return 0;
    }
    if (const std::string path = cli.get("replay"); !path.empty()) {
      return replay(path);
    }

    check::FuzzOptions options;
    options.base_seed = std::stoull(cli.get("seed"));
    options.num_cases = static_cast<std::uint64_t>(cli.get_int("cases"));
    options.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
    options.quick = cli.has_flag("quick");
    options.stride = std::stoull(cli.get("stride"));
    options.deep = cli.has_flag("deep");
    options.fault = cli.get("inject-fault");
    if (!cli.has_flag("no-progress")) {
      options.progress = [](std::size_t completed, std::size_t total) {
        if (completed % 25 == 0 || completed == total) {
          std::cerr << "mpbt_fuzz: " << completed << "/" << total << " cases\r";
          if (completed == total) {
            std::cerr << "\n";
          }
        }
      };
    }

    const check::FuzzSummary summary = check::run_fuzz(options);

    const std::string failures_dir = cli.get("failures-dir");
    if (!failures_dir.empty() && summary.failures > 0) {
      std::filesystem::create_directories(failures_dir);
    }

    report::Json failures = report::Json::array();
    for (const check::CaseResult& result : summary.results) {
      if (result.ok) {
        continue;
      }
      std::cout << "case " << result.spec.index << " VIOLATION: " << result.message
                << "\n";
      check::ShrinkResult shrunk;
      bool have_shrunk = false;
      if (!cli.has_flag("no-shrink")) {
        shrunk = check::shrink_case(result.spec);
        have_shrunk = true;
        std::cout << "  shrunk to rounds=" << shrunk.shrunk.rounds
                  << " leechers=" << shrunk.shrunk.initial_leechers
                  << " pieces=" << shrunk.shrunk.num_pieces << " ("
                  << shrunk.attempts << " probes)\n";
      }
      const report::Json record =
          failure_record(result, have_shrunk ? &shrunk : nullptr);
      if (!failures_dir.empty()) {
        const std::string path = failures_dir + "/case_" +
                                 std::to_string(result.spec.index) + ".json";
        record.save_file(path);
        std::cout << "  recorded " << path << "\n";
      }
      failures.push_back(record);
    }

    if (!cli.get("out").empty()) {
      report::Json doc = report::Json::object();
      doc.set("schema", report::Json("mpbt-fuzz-campaign-v1"));
      doc.set("base_seed", report::Json(std::to_string(options.base_seed)));
      doc.set("cases", report::Json(static_cast<double>(options.num_cases)));
      doc.set("failures", report::Json(static_cast<double>(summary.failures)));
      char fp[32];
      std::snprintf(fp, sizeof fp, "%016llx",
                    static_cast<unsigned long long>(summary.campaign_fingerprint));
      doc.set("fingerprint", report::Json(std::string(fp)));
      doc.set("failed_cases", failures);
      doc.save_file(cli.get("out"));
    }

    std::cout << "cases=" << summary.results.size()
              << " failures=" << summary.failures << " fingerprint=0x" << std::hex
              << summary.campaign_fingerprint << std::dec << "\n";
    return summary.failures == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "mpbt_fuzz: " << error.what() << "\n";
    return 2;
  }
}
