// mpbt_report — validation report generator and baseline regression gate.
//
// Report mode (default): consumes artifacts other tools produced and
// renders a deterministic Markdown (and optionally HTML) report —
// figure-reproduction tables, per-phase analytics, model-vs-sim drift,
// baseline gate verdicts and the performance trajectory.
//
//   mpbt_report --records=sweep.jsonl[,more.jsonl] [--summary=run.json,...]
//               [--trace=trace.json] [--metrics=metrics.jsonl]
//               [--bench=BENCH_0003.json] [--out=report.md] [--html=report.html]
//               [--baselines=DIR --check | --write-baselines]
//               [--abs-tol=0.05] [--rel-tol=0.25]
//               [--inject-drift=metric=FACTOR[,metric=FACTOR...]]
//
// --check gates every summarized scenario against baselines/<scenario>.json
// and exits 1 when any metric drifts outside tolerance (or a gated
// baseline file is missing) — the CI regression gate. --write-baselines
// refreshes the committed files from the current run instead.
// --inject-drift multiplies a metric after summarizing; CI uses it to
// prove the gate actually fails on a synthetic regression.
//
// Bench-append mode: re-encodes a google-benchmark JSON result and/or a
// wall-time table into one labeled entry of an "mpbt-bench-v1" file:
//
//   mpbt_report --append-bench --bench=BENCH_0003.json --bench-label=PR3
//               [--google-benchmark=gb.json] [--wall-times=times.txt]
//               [--build-type=Release] [--bench-source=note]
//
// Everything rendered is a pure function of the inputs: re-running the
// same sweep with any --jobs value produces a byte-identical report.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "report/baseline.hpp"
#include "report/bench.hpp"
#include "report/drift.hpp"
#include "report/inputs.hpp"
#include "report/render.hpp"
#include "report/summary.hpp"
#include "util/cli.hpp"

namespace {

using namespace mpbt;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream stream(csv);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

std::string read_text_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Accepts a summary file in any of the shapes mpbt tools write: a
/// single "mpbt-summary-v1" object, an array of them, or a wrapper
/// object with a "summaries" array.
std::vector<report::RunSummary> summaries_from_file(const std::string& path) {
  const report::Json json = report::Json::load_file(path);
  std::vector<report::RunSummary> out;
  if (json.is_array()) {
    for (const report::Json& entry : json.as_array()) {
      out.push_back(report::summary_from_json(entry));
    }
    return out;
  }
  if (const report::Json* list = json.find("summaries"); list != nullptr) {
    for (const report::Json& entry : list->as_array()) {
      out.push_back(report::summary_from_json(entry));
    }
    return out;
  }
  out.push_back(report::summary_from_json(json));
  return out;
}

/// The sweep labels task traces "<scenario> point=N rep=M"; group the
/// tasks back onto their scenario's summary. Unlabeled tasks (a trace
/// that lost its metadata) fall back to the only summary when there is
/// exactly one.
void attach_trace_tasks(std::vector<report::RunSummary>& summaries,
                        const std::vector<obs::TaskTrace>& tasks) {
  for (report::RunSummary& summary : summaries) {
    std::vector<obs::TaskTrace> matched;
    for (const obs::TaskTrace& task : tasks) {
      const bool labeled_for_this =
          task.label == summary.scenario ||
          task.label.starts_with(summary.scenario + " ");
      if (labeled_for_this || (task.label.empty() && summaries.size() == 1)) {
        matched.push_back(task);
      }
    }
    if (!matched.empty()) {
      report::attach_traces(summary, matched);
    }
  }
}

/// Parses "metric=factor[,metric=factor...]" and scales those metrics in
/// every summary that carries them. Returns how many were perturbed.
std::size_t inject_drift(std::vector<report::RunSummary>& summaries,
                         const std::string& spec) {
  std::size_t injected = 0;
  for (const std::string& pair : split_list(spec)) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("--inject-drift: expected metric=FACTOR, got '" +
                                  pair + "'");
    }
    const std::string name = pair.substr(0, eq);
    const double factor = std::stod(pair.substr(eq + 1));
    for (report::RunSummary& summary : summaries) {
      const double value = summary.metric_or(name, std::numeric_limits<double>::quiet_NaN());
      if (value == value) {  // present
        summary.set_metric(name, value * factor);
        ++injected;
      }
    }
  }
  return injected;
}

int append_bench(const util::CliParser& cli) {
  const std::string path = cli.get("bench");
  if (path.empty()) {
    std::cerr << "mpbt_report: --append-bench needs --bench=PATH\n";
    return 2;
  }
  const std::string label = cli.get("bench-label");
  if (label.empty()) {
    std::cerr << "mpbt_report: --append-bench needs --bench-label=LABEL\n";
    return 2;
  }

  report::BenchTrajectory trajectory;
  if (std::filesystem::exists(path)) {
    trajectory = report::bench_from_json(report::Json::load_file(path));
  }

  report::BenchEntry entry;
  entry.label = label;
  entry.build_type = cli.get("build-type");
  entry.source = cli.get("bench-source");
  for (const std::string& gb : split_list(cli.get("google-benchmark"))) {
    std::vector<report::BenchMark> parsed =
        report::parse_google_benchmark(report::Json::load_file(gb));
    std::move(parsed.begin(), parsed.end(), std::back_inserter(entry.benchmarks));
  }
  if (const std::string wt = cli.get("wall-times"); !wt.empty()) {
    entry.wall_times = report::parse_wall_times(read_text_file(wt));
  }
  if (entry.benchmarks.empty() && entry.wall_times.empty()) {
    std::cerr << "mpbt_report: --append-bench found nothing to append "
                 "(give --google-benchmark and/or --wall-times)\n";
    return 2;
  }
  trajectory.entries.push_back(std::move(entry));
  report::bench_to_json(trajectory).save_file(path);
  std::cerr << "mpbt_report: appended bench entry '" << label << "' ("
            << trajectory.entries.back().benchmarks.size() << " benchmarks, "
            << trajectory.entries.back().wall_times.size() << " wall times) -> "
            << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "mpbt_report",
      "Validation report generator and baseline regression gate.\n"
      "Report mode: mpbt_report --records=sweep.jsonl [--trace=...] [--out=report.md]\n"
      "Gate:        mpbt_report --records=... --baselines=DIR --check\n"
      "Bench:       mpbt_report --append-bench --bench=FILE --bench-label=LABEL");
  cli.add_option("records", "sweep result JSONL path(s), comma-separated", "");
  cli.add_option("summary", "mpbt-summary-v1 JSON path(s), comma-separated", "");
  cli.add_option("trace", "Chrome trace JSON to rebuild phase analytics from", "");
  cli.add_option("metrics", "metrics-snapshot JSONL/CSV-as-JSONL export to tabulate", "");
  cli.add_option("bench", "mpbt-bench-v1 trajectory file (read, or --append-bench target)",
                 "");
  cli.add_option("out", "Markdown output path (empty = stdout)", "");
  cli.add_option("html", "also render HTML to this path", "");
  cli.add_option("title", "report title", "MPBT validation report");
  cli.add_option("baselines", "baseline directory (one <scenario>.json per scenario)", "");
  cli.add_flag("check", "gate summaries against --baselines; exit 1 on drift");
  cli.add_flag("write-baselines", "refresh --baselines from this run instead of gating");
  cli.add_option("abs-tol", "absolute tolerance written by --write-baselines", "0.05");
  cli.add_option("rel-tol", "relative tolerance written by --write-baselines", "0.25");
  cli.add_option("inject-drift",
                 "metric=FACTOR[,...]: scale metrics after summarizing "
                 "(synthetic-regression self-test)",
                 "");
  cli.add_option("us-per-round", "sim-time scale the trace was written with", "1000");
  cli.add_flag("append-bench", "append a bench entry to --bench and exit");
  cli.add_option("bench-label", "entry label for --append-bench (e.g. PR3)", "");
  cli.add_option("build-type", "build type recorded by --append-bench", "Release");
  cli.add_option("bench-source", "provenance note recorded by --append-bench", "");
  cli.add_option("google-benchmark",
                 "google-benchmark --benchmark_format=json output file(s) to "
                 "append, comma-separated",
                 "");
  cli.add_option("wall-times", "wall-time table (\"binary seconds\" lines) to append", "");

  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "mpbt_report: " << error.what() << "\n";
    return 2;
  }

  try {
    if (cli.has_flag("append-bench")) {
      return append_bench(cli);
    }
    if (cli.has_flag("check") && cli.has_flag("write-baselines")) {
      std::cerr << "mpbt_report: --check and --write-baselines are exclusive\n";
      return 2;
    }

    // --- assemble summaries -------------------------------------------------
    std::vector<exp::Record> records;
    for (const std::string& path : split_list(cli.get("records"))) {
      std::vector<exp::Record> loaded = report::load_records_jsonl(path);
      std::move(loaded.begin(), loaded.end(), std::back_inserter(records));
    }
    std::vector<report::RunSummary> summaries = report::summarize_records(records);
    for (const std::string& path : split_list(cli.get("summary"))) {
      std::vector<report::RunSummary> loaded = summaries_from_file(path);
      std::move(loaded.begin(), loaded.end(), std::back_inserter(summaries));
    }
    std::sort(summaries.begin(), summaries.end(),
              [](const report::RunSummary& a, const report::RunSummary& b) {
                return a.scenario < b.scenario;
              });
    if (summaries.empty() && cli.get("metrics").empty() && cli.get("bench").empty()) {
      std::cerr << "mpbt_report: no inputs (give --records, --summary, --metrics or "
                   "--bench; see --help)\n";
      return 2;
    }

    if (const std::string trace_path = cli.get("trace"); !trace_path.empty()) {
      const std::vector<obs::TaskTrace> tasks = report::traces_from_chrome_json(
          report::Json::load_file(trace_path), cli.get_double("us-per-round"));
      attach_trace_tasks(summaries, tasks);
    }

    report::Report rendered;
    rendered.title = cli.get("title");
    for (report::RunSummary& summary : summaries) {
      std::vector<report::DriftRow> rows = report::attach_drift(summary);
      std::move(rows.begin(), rows.end(), std::back_inserter(rendered.drift));
    }

    if (const std::string spec = cli.get("inject-drift"); !spec.empty()) {
      const std::size_t injected = inject_drift(summaries, spec);
      std::cerr << "mpbt_report: injected synthetic drift into " << injected
                << " metric(s)\n";
    }

    // --- baseline gate ------------------------------------------------------
    const std::string baseline_dir = cli.get("baselines");
    std::vector<std::string> missing_baselines;
    if (!baseline_dir.empty() && cli.has_flag("write-baselines")) {
      report::Tolerance tolerance;
      tolerance.abs_tol = cli.get_double("abs-tol");
      tolerance.rel_tol = cli.get_double("rel-tol");
      std::filesystem::create_directories(baseline_dir);
      for (const report::RunSummary& summary : summaries) {
        const std::string path = report::baseline_path(baseline_dir, summary.scenario);
        report::baseline_to_json(report::baseline_from_summary(summary, tolerance))
            .save_file(path);
        std::cerr << "mpbt_report: wrote baseline " << path << "\n";
      }
    } else if (!baseline_dir.empty()) {
      for (const report::RunSummary& summary : summaries) {
        const std::string path = report::baseline_path(baseline_dir, summary.scenario);
        if (!std::filesystem::exists(path)) {
          missing_baselines.push_back(summary.scenario);
          continue;
        }
        const report::Baseline baseline =
            report::baseline_from_json(report::Json::load_file(path));
        rendered.gates.push_back(report::check_against_baseline(baseline, summary));
      }
    }

    // --- auxiliary tables ---------------------------------------------------
    if (const std::string metrics_path = cli.get("metrics"); !metrics_path.empty()) {
      rendered.registry_metrics =
          report::metric_rows_from_records(report::load_records_jsonl(metrics_path));
    }
    if (const std::string bench_path = cli.get("bench");
        !bench_path.empty() && std::filesystem::exists(bench_path)) {
      rendered.bench = report::bench_from_json(report::Json::load_file(bench_path));
      rendered.has_bench = true;
    }

    rendered.summaries = std::move(summaries);

    // --- render -------------------------------------------------------------
    const std::string markdown = report::render_markdown(rendered);
    if (const std::string out = cli.get("out"); !out.empty()) {
      std::ofstream file(out, std::ios::binary);
      if (!file) {
        throw std::runtime_error("cannot open " + out);
      }
      file << markdown;
      std::cerr << "mpbt_report: wrote " << out << "\n";
    } else {
      std::cout << markdown;
    }
    if (const std::string html = cli.get("html"); !html.empty()) {
      std::ofstream file(html, std::ios::binary);
      if (!file) {
        throw std::runtime_error("cannot open " + html);
      }
      file << report::render_html(rendered);
      std::cerr << "mpbt_report: wrote " << html << "\n";
    }

    // --- verdict ------------------------------------------------------------
    bool failed = false;
    for (const report::GateReport& gate : rendered.gates) {
      std::cerr << "mpbt_report: gate " << gate.scenario << ": "
                << (gate.passed() ? "PASS" : "FAIL") << " ("
                << gate.count(report::GateStatus::kOk) << " ok, "
                << gate.count(report::GateStatus::kWarn) << " warn, "
                << gate.count(report::GateStatus::kFail) << " fail, "
                << gate.count(report::GateStatus::kMissing) << " missing, "
                << gate.count(report::GateStatus::kNew) << " new)\n";
      failed = failed || !gate.passed();
    }
    for (const std::string& scenario : missing_baselines) {
      std::cerr << "mpbt_report: gate " << scenario << ": FAIL (no baseline file under "
                << baseline_dir << "; run --write-baselines)\n";
      failed = true;
    }
    if (cli.has_flag("check") && failed) {
      return 1;
    }
  } catch (const std::exception& error) {
    std::cerr << "mpbt_report: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
