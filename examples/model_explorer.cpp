// model_explorer — evaluate the multiphased download model analytically.
//
// No simulation: everything here comes from the Markov model of Section 3.
// Prints the trading-power curve checkpoints (Eq. 1), exact expected
// timelines and phase durations from the collapsed distribution stepping,
// a Monte Carlo cross-check, and a sensitivity sweep over alpha / gamma
// (the bootstrap and last-phase refresh rates).
//
//   ./build/examples/model_explorer --B=200 --k=7 --s=40 --pr=0.95
#include <iostream>

#include "model/download_model.hpp"
#include "model/trading_power.hpp"
#include "numeric/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  util::CliParser cli("model_explorer", "explore the multiphased download model");
  cli.add_option("B", "number of pieces", "200");
  cli.add_option("k", "maximum connections", "7");
  cli.add_option("s", "neighbor set size", "40");
  cli.add_option("pinit", "initial connection success probability", "0.8");
  cli.add_option("pr", "re-encounter probability", "0.95");
  cli.add_option("pn", "new-connection probability", "0.9");
  cli.add_option("alpha", "bootstrap refresh probability", "0.2");
  cli.add_option("gamma", "last-phase refresh probability", "0.1");
  cli.add_option("mc", "Monte Carlo cross-check samples", "2000");
  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
    model::ModelParams params;
    params.B = static_cast<int>(cli.get_int("B"));
    params.k = static_cast<int>(cli.get_int("k"));
    params.s = static_cast<int>(cli.get_int("s"));
    params.p_init = cli.get_double("pinit");
    params.p_r = cli.get_double("pr");
    params.p_n = cli.get_double("pn");
    params.alpha = cli.get_double("alpha");
    params.gamma = cli.get_double("gamma");

    model::ModelParams validated = params;
    validated.validate_and_normalize();
    const std::vector<double> power = model::trading_power_curve(validated);
    std::cout << "=== trading power p(b+n), Eq. (1) ===\n";
    std::cout << "p(1) = " << power[1] << "   p(B/2) = "
              << power[static_cast<std::size_t>(params.B / 2)] << "   p(B-1) = "
              << power[static_cast<std::size_t>(params.B - 1)] << "\n\n";

    const model::EvolutionResult evo = model::compute_evolution(params);
    std::cout << "=== exact evolution (collapsed distribution stepping) ===\n";
    std::cout << "expected completion:   " << evo.expected_completion << " rounds\n";
    std::cout << "bootstrap phase:       " << evo.bootstrap_rounds << " rounds\n";
    std::cout << "efficient download:    " << evo.efficient_rounds << " rounds\n";
    std::cout << "last download phase:   " << evo.last_rounds << " rounds\n";
    std::cout << "absorbed mass:         " << evo.absorbed_mass << "\n\n";

    std::cout << "=== timeline: rounds to reach b pieces ===\n";
    util::Table timeline({"pieces", "exact", "monte carlo"});
    timeline.set_precision(1);
    const model::TransitionKernel kernel(params);
    numeric::Rng rng(12345);
    const auto samples = static_cast<std::size_t>(cli.get_int("mc"));
    const std::vector<double> mc = model::monte_carlo_timeline(kernel, rng, samples);
    const int step = std::max(1, params.B / 10);
    for (int b = step; b <= params.B; b += step) {
      timeline.add_row({static_cast<long long>(b),
                        evo.expected_timeline[static_cast<std::size_t>(b)],
                        mc[static_cast<std::size_t>(b)]});
    }
    timeline.print_text(std::cout);

    std::cout << "\n=== sensitivity: expected completion vs alpha and gamma ===\n";
    util::Table sensitivity({"alpha", "gamma", "completion", "bootstrap", "last phase"});
    sensitivity.set_precision(1);
    for (double alpha : {0.05, 0.2, 0.8}) {
      for (double gamma : {0.05, 0.2, 0.8}) {
        model::ModelParams variant = params;
        variant.alpha = alpha;
        variant.gamma = gamma;
        const model::EvolutionResult v = model::compute_evolution(variant);
        sensitivity.add_row({alpha, gamma, v.expected_completion, v.bootstrap_rounds,
                             v.last_rounds});
      }
    }
    sensitivity.print_text(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
