// stability_explorer — map the stability region of a BitTorrent swarm.
//
// Section 6's headline: stability depends on the number of pieces B and
// the arrival rate. This example sweeps both from a skew-seeded start and
// prints a stability map (diverged / stable, tail entropy, peak
// population), reproducing the paper's B = 3 vs B = 10 contrast as two
// cells of a larger picture.
//
//   ./build/examples/stability_explorer --rounds=250 --initial=300
#include <iostream>

#include "stability/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  util::CliParser cli("stability_explorer", "sweep B and arrival rate for stability");
  cli.add_option("rounds", "rounds per cell", "250");
  cli.add_option("initial", "skew-seeded initial peers", "300");
  cli.add_option("rng", "random seed", "5");
  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
    const auto rounds = static_cast<std::uint32_t>(cli.get_int("rounds"));
    const auto initial = static_cast<std::uint32_t>(cli.get_int("initial"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("rng"));

    std::cout << "=== stability map (skewed start, " << initial << " peers, " << rounds
              << " rounds) ===\n";
    util::Table map({"B", "arrival rate", "verdict", "tail entropy", "peak peers",
                     "final peers", "completed"});
    map.set_precision(3);
    for (std::uint32_t B : {2u, 3u, 5u, 10u, 20u}) {
      for (double arrival : {1.0, 4.0, 8.0}) {
        stability::StabilityConfig config;
        config.num_pieces = B;
        config.arrival_rate = arrival;
        config.rounds = rounds;
        config.initial_peers = initial;
        config.seed = seed;
        const stability::StabilityResult r = stability::run_stability_experiment(config);
        map.add_row({static_cast<long long>(B), arrival,
                     std::string(r.diverged ? "DIVERGED" : "stable"), r.mean_entropy_tail,
                     static_cast<long long>(r.peak_population),
                     static_cast<long long>(r.final_population),
                     static_cast<long long>(r.completed)});
      }
    }
    map.print_text(std::cout);
    std::cout << "\nReading the map: small B cannot re-replicate rare pieces before\n"
                 "their holders depart — the backlog of stuck peers grows with the\n"
                 "arrival rate. Larger B keeps peers trading long enough to push the\n"
                 "entropy back toward 1 (Section 6).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
