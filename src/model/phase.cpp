#include "model/phase.hpp"

#include "util/assert.hpp"

namespace mpbt::model {

std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::Bootstrap:
      return "bootstrap";
    case Phase::EfficientDownload:
      return "efficient-download";
    case Phase::LastDownload:
      return "last-download";
    case Phase::Done:
      return "done";
  }
  return "?";
}

Phase classify_phase(int n, int b, int i, int B) {
  util::throw_if_invalid(B < 1, "classify_phase: B must be >= 1");
  util::throw_if_invalid(n < 0 || b < 0 || i < 0, "classify_phase: negative state component");
  if (b >= B) {
    return Phase::Done;
  }
  // Bootstrap: no piece yet, or holding exactly the first piece with no
  // tradable neighbor (the (0,1,0) waiting state of Section 3.2).
  if (b == 0 || (b + n <= 1 && i == 0)) {
    return Phase::Bootstrap;
  }
  // Last download: pieces in hand but the potential set has collapsed.
  if (i == 0 && n == 0) {
    return Phase::LastDownload;
  }
  return Phase::EfficientDownload;
}

}  // namespace mpbt::model
