#include "model/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "model/kernel.hpp"
#include "util/assert.hpp"

namespace mpbt::model {

void EnsembleParams::validate() const {
  ModelParams copy = peer;
  copy.validate_and_normalize();
  util::throw_if_invalid(arrival_rate < 0.0, "EnsembleParams: arrival_rate must be >= 0");
  util::throw_if_invalid(initial_population < 0.0,
                         "EnsembleParams: initial_population must be >= 0");
  util::throw_if_invalid(rounds == 0, "EnsembleParams: rounds must be >= 1");
  util::throw_if_invalid(
      !initial_phi.empty() && initial_phi.size() != static_cast<std::size_t>(peer.B) + 1,
      "EnsembleParams: initial_phi must have B + 1 entries");
}

namespace {

struct CollapsedIndex {
  int k;
  int B;
  std::size_t size() const {
    return static_cast<std::size_t>(k + 1) * static_cast<std::size_t>(B + 1) * 2;
  }
  std::size_t idx(int n, int b, int z) const {
    return (static_cast<std::size_t>(n) * static_cast<std::size_t>(B + 1) +
            static_cast<std::size_t>(b)) *
               2 +
           static_cast<std::size_t>(z);
  }
};

}  // namespace

EnsembleResult run_ensemble(const EnsembleParams& params) {
  params.validate();
  ModelParams peer = params.peer;
  peer.validate_and_normalize();
  const CollapsedIndex cs{peer.k, peer.B};

  // Expected peer counts per collapsed state (not normalized).
  std::vector<double> mass(cs.size(), 0.0);
  if (params.initial_population > 0.0) {
    if (params.initial_phi.empty()) {
      mass[cs.idx(0, 0, 0)] = params.initial_population;
    } else {
      double total = 0.0;
      for (double w : params.initial_phi) {
        util::throw_if_invalid(w < 0.0, "EnsembleParams: initial_phi must be >= 0");
        total += w;
      }
      util::throw_if_invalid(total <= 0.0, "EnsembleParams: initial_phi must have mass");
      for (int b = 0; b <= peer.B; ++b) {
        const double share =
            params.initial_phi[static_cast<std::size_t>(b)] / total * params.initial_population;
        if (share <= 0.0) {
          continue;
        }
        // Piece-holding initial peers start unconnected but tradable.
        mass[cs.idx(0, b, b > 0 ? 1 : 0)] += share;
      }
    }
  }

  EnsembleResult result;
  std::unique_ptr<TransitionKernel> kernel;

  for (std::size_t round = 0; round < params.rounds; ++round) {
    // Current population and piece-count distribution.
    double population = 0.0;
    std::vector<double> phi(static_cast<std::size_t>(peer.B) + 1, 0.0);
    double piece_mass = 0.0;
    for (int n = 0; n <= peer.k; ++n) {
      for (int b = 0; b <= peer.B; ++b) {
        const double m = mass[cs.idx(n, b, 0)] + mass[cs.idx(n, b, 1)];
        population += m;
        phi[static_cast<std::size_t>(b)] += m;
        piece_mass += m * static_cast<double>(b);
      }
    }
    result.population.add(static_cast<double>(round), population);
    result.mean_pieces.add(static_cast<double>(round),
                           population > 0.0 ? piece_mass / population : 0.0);

    // Rebuild the kernel against the current phi (the transient coupling).
    if (kernel == nullptr || params.couple_phi) {
      ModelParams stepped = peer;
      if (params.couple_phi && population > 1e-9) {
        // phi over piece counts 1..B-1 (trading partners); peers at 0 have
        // nothing to offer and completed peers have left.
        std::vector<double> traded(phi);
        traded[0] = 0.0;
        traded[static_cast<std::size_t>(peer.B)] = 0.0;
        double traded_total = 0.0;
        for (double w : traded) {
          traded_total += w;
        }
        if (traded_total > 1e-12) {
          stepped.phi = traded;
        }
      }
      kernel = std::make_unique<TransitionKernel>(stepped);
    }

    // One transition of every peer.
    std::vector<double> next(cs.size(), 0.0);
    double completed = 0.0;
    for (int n = 0; n <= peer.k; ++n) {
      for (int b = 0; b <= peer.B; ++b) {
        for (int z = 0; z <= 1; ++z) {
          const double m = mass[cs.idx(n, b, z)];
          if (m <= 0.0) {
            continue;
          }
          const std::vector<double> g = kernel->potential_pmf(n, b, z);
          for (const auto& [b2, fp] : kernel->next_b_pmf(n, b)) {
            const double branch = m * fp;
            if (branch <= 0.0) {
              continue;
            }
            if (b2 >= peer.B) {
              completed += branch;
              continue;
            }
            for (int i2 = 0; i2 <= peer.s; ++i2) {
              const double gp = g[static_cast<std::size_t>(i2)];
              if (gp < 1e-14) {
                continue;
              }
              const std::vector<double> h = kernel->connection_pmf(n, b, i2);
              const int z2 = i2 > 0 ? 1 : 0;
              for (int n2 = 0; n2 <= peer.k; ++n2) {
                const double hp = h[static_cast<std::size_t>(n2)];
                if (hp > 0.0) {
                  next[cs.idx(n2, b2, z2)] += branch * gp * hp;
                }
              }
            }
          }
        }
      }
    }
    // Arrivals join with nothing.
    next[cs.idx(0, 0, 0)] += params.arrival_rate;
    result.completion_rate.add(static_cast<double>(round), completed);
    result.total_completed += completed;
    mass.swap(next);
  }

  // Final phi and the growth verdict.
  result.final_phi.assign(static_cast<std::size_t>(peer.B) + 1, 0.0);
  double final_population = 0.0;
  for (int n = 0; n <= peer.k; ++n) {
    for (int b = 0; b <= peer.B; ++b) {
      const double m = mass[cs.idx(n, b, 0)] + mass[cs.idx(n, b, 1)];
      result.final_phi[static_cast<std::size_t>(b)] += m;
      final_population += m;
    }
  }
  if (final_population > 0.0) {
    for (double& w : result.final_phi) {
      w /= final_population;
    }
  }

  const std::size_t tenth = std::max<std::size_t>(1, params.rounds / 10);
  auto window_mean = [&](std::size_t from, std::size_t to) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& s : result.population.samples()) {
      if (s.time >= static_cast<double>(from) && s.time < static_cast<double>(to)) {
        sum += s.value;
        ++count;
      }
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  };
  const double last = window_mean(params.rounds - tenth, params.rounds);
  const double previous = window_mean(params.rounds - 2 * tenth, params.rounds - tenth);
  result.population_growing = previous > 0.0 && last > previous * 1.02;
  return result;
}

}  // namespace mpbt::model
