#include "model/download_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mpbt::model {

namespace {

/// Collapsed distribution cell index: (n, b, z) with z = 1{i > 0}.
struct Collapsed {
  int k;
  int B;

  std::size_t size() const {
    return static_cast<std::size_t>(k + 1) * static_cast<std::size_t>(B + 1) * 2;
  }
  std::size_t idx(int n, int b, int z) const {
    return (static_cast<std::size_t>(n) * static_cast<std::size_t>(B + 1) +
            static_cast<std::size_t>(b)) *
               2 +
           static_cast<std::size_t>(z);
  }
};

double pmf_mean(const std::vector<double>& pmf) {
  double m = 0.0;
  for (std::size_t v = 0; v < pmf.size(); ++v) {
    m += static_cast<double>(v) * pmf[v];
  }
  return m;
}

}  // namespace

EvolutionResult compute_evolution(const ModelParams& params, std::size_t max_steps,
                                  double epsilon) {
  const TransitionKernel kernel(params);
  const ModelParams& p = kernel.params();
  const Collapsed cs{p.k, p.B};

  std::vector<double> dist(cs.size(), 0.0);
  dist[cs.idx(0, 0, 0)] = 1.0;  // start in (0, 0, 0)
  double absorbed = 0.0;

  EvolutionResult result;
  const auto bp1 = static_cast<std::size_t>(p.B) + 1;
  result.expected_timeline.assign(bp1, 0.0);
  std::vector<double> potential_sum(bp1, 0.0);
  std::vector<double> potential_weight(bp1, 0.0);
  std::vector<double> connection_sum(bp1, 0.0);
  std::vector<double> connection_weight(bp1, 0.0);

  // Pre-extract g pmfs that do not depend on b:
  // starving rows handled inline; X1/X2 come from the kernel.
  std::vector<double> mass_by_b(bp1, 0.0);

  std::size_t step = 0;
  for (; step < max_steps; ++step) {
    // Timeline accumulation: E[T_x] += P(b_t < x) for every x in [1, B].
    std::fill(mass_by_b.begin(), mass_by_b.end(), 0.0);
    for (int n = 0; n <= p.k; ++n) {
      for (int b = 0; b <= p.B; ++b) {
        mass_by_b[static_cast<std::size_t>(b)] +=
            dist[cs.idx(n, b, 0)] + dist[cs.idx(n, b, 1)];
      }
    }
    mass_by_b[static_cast<std::size_t>(p.B)] += absorbed;
    double below = 0.0;
    for (int x = 1; x <= p.B; ++x) {
      below += mass_by_b[static_cast<std::size_t>(x) - 1];
      result.expected_timeline[static_cast<std::size_t>(x)] += below;
    }

    // Phase occupancy.
    for (int n = 0; n <= p.k; ++n) {
      for (int b = 0; b <= p.B; ++b) {
        for (int z = 0; z <= 1; ++z) {
          const double m = dist[cs.idx(n, b, z)];
          if (m == 0.0) {
            continue;
          }
          switch (classify_phase(n, b, z, p.B)) {
            case Phase::Bootstrap:
              result.bootstrap_rounds += m;
              break;
            case Phase::EfficientDownload:
              result.efficient_rounds += m;
              break;
            case Phase::LastDownload:
              result.last_rounds += m;
              break;
            case Phase::Done:
              break;
          }
        }
      }
    }

    if (absorbed >= 1.0 - epsilon) {
      break;
    }

    // One exact transition step.
    std::vector<double> next(cs.size(), 0.0);
    for (int n = 0; n <= p.k; ++n) {
      for (int b = 0; b <= p.B; ++b) {
        for (int z = 0; z <= 1; ++z) {
          const double m = dist[cs.idx(n, b, z)];
          if (m == 0.0) {
            continue;
          }
          // g: the pmf over i' depends on (n, b) and the indicator z only.
          // A representative pre-transition i (0 or 1) selects the row.
          // Computed once; f's branches (the seeding extension can add an
          // extra piece) share it.
          const std::vector<double> g = kernel.potential_pmf(n, b, z);
          for (const auto& [b2, fp] : kernel.next_b_pmf(n, b)) {
            const double branch_mass = m * fp;
            if (branch_mass == 0.0) {
              continue;
            }
            if (b2 >= p.B) {
              absorbed += branch_mass;
              continue;
            }
            for (int i2 = 0; i2 <= p.s; ++i2) {
              const double gp = g[static_cast<std::size_t>(i2)];
              if (gp < 1e-15) {
                continue;
              }
              const double arriving = branch_mass * gp;
              potential_sum[static_cast<std::size_t>(b2)] +=
                  arriving * static_cast<double>(i2);
              potential_weight[static_cast<std::size_t>(b2)] += arriving;
              const std::vector<double> h = kernel.connection_pmf(n, b, i2);
              const int z2 = i2 > 0 ? 1 : 0;
              for (int n2 = 0; n2 <= p.k; ++n2) {
                const double hp = h[static_cast<std::size_t>(n2)];
                if (hp == 0.0) {
                  continue;
                }
                next[cs.idx(n2, b2, z2)] += arriving * hp;
              }
              connection_sum[static_cast<std::size_t>(b2)] += arriving * pmf_mean(h);
              connection_weight[static_cast<std::size_t>(b2)] += arriving;
            }
          }
        }
      }
    }
    dist.swap(next);
  }

  result.steps_taken = step;
  result.absorbed_mass = absorbed;
  result.expected_completion = result.expected_timeline[static_cast<std::size_t>(p.B)];

  result.expected_potential.assign(bp1, -1.0);
  result.expected_connections.assign(bp1, -1.0);
  for (std::size_t b = 0; b < bp1; ++b) {
    if (potential_weight[b] > 0.0) {
      result.expected_potential[b] = potential_sum[b] / potential_weight[b];
    }
    if (connection_weight[b] > 0.0) {
      result.expected_connections[b] = connection_sum[b] / connection_weight[b];
    }
  }
  return result;
}

SampledDownload sample_download(const TransitionKernel& kernel, numeric::Rng& rng,
                                std::size_t max_steps) {
  const ModelParams& p = kernel.params();
  SampledDownload out;
  int n = 0;
  int b = 0;
  int i = 0;
  out.points.push_back({n, b, i, classify_phase(n, b, i, p.B)});

  for (std::size_t step = 0; step < max_steps; ++step) {
    switch (out.points.back().phase) {
      case Phase::Bootstrap:
        ++out.bootstrap_steps;
        break;
      case Phase::EfficientDownload:
        ++out.efficient_steps;
        break;
      case Phase::LastDownload:
        ++out.last_steps;
        break;
      case Phase::Done:
        out.completed = true;
        return out;
    }

    int b2 = kernel.next_b(n, b);
    if (b2 < p.B && b > 0 && p.seed_boost > 0.0 && rng.bernoulli(p.seed_boost)) {
      b2 = std::min(b2 + 1, p.B);  // a seed's tit-for-tat-free upload
    }
    if (b2 >= p.B) {
      n = 0;
      b = p.B;
      i = 0;
      out.points.push_back({n, b, i, Phase::Done});
      out.completed = true;
      return out;
    }

    // g: sample i'.
    int i2;
    const int m = b + n;
    if (m == 0) {
      i2 = rng.binomial(p.s, p.p_init);
    } else if (i > 0) {
      i2 = rng.binomial(p.s, kernel.trading_power()[static_cast<std::size_t>(
                                  std::min(m, p.B))]);
    } else {
      const double refresh = (m == 1) ? p.alpha : p.gamma;
      i2 = rng.bernoulli(refresh) ? 1 : 0;
    }

    // h: sample n'.
    int n2;
    if (m == 0) {
      n2 = 0;
    } else {
      const int max_new = std::max(std::min(i2, p.k) - n, 0);
      n2 = rng.binomial(n, p.p_r) + rng.binomial(max_new, p.p_n);
    }

    n = n2;
    b = b2;
    i = i2;
    out.points.push_back({n, b, i, classify_phase(n, b, i, p.B)});
  }
  return out;
}

std::vector<double> monte_carlo_timeline(const TransitionKernel& kernel, numeric::Rng& rng,
                                         std::size_t samples, std::size_t max_steps) {
  util::throw_if_invalid(samples == 0, "monte_carlo_timeline requires samples >= 1");
  const int B = kernel.params().B;
  const auto bp1 = static_cast<std::size_t>(B) + 1;
  std::vector<double> sum(bp1, 0.0);
  std::vector<std::size_t> count(bp1, 0);
  for (std::size_t run = 0; run < samples; ++run) {
    const SampledDownload d = sample_download(kernel, rng, max_steps);
    // First step at which b >= x.
    std::size_t t = 0;
    int reached = 0;
    for (const TrajectoryPoint& pt : d.points) {
      while (reached < pt.b) {
        ++reached;
        sum[static_cast<std::size_t>(reached)] += static_cast<double>(t);
        ++count[static_cast<std::size_t>(reached)];
      }
      ++t;
    }
  }
  std::vector<double> out(bp1, -1.0);
  out[0] = 0.0;
  for (std::size_t x = 1; x < bp1; ++x) {
    if (count[x] > 0) {
      out[x] = sum[x] / static_cast<double>(count[x]);
    }
  }
  return out;
}

}  // namespace mpbt::model
