// The factorized transition kernel of the download-evolution chain
// (Section 3.1): Pr{(n,b,i) -> (n',b',i')} = f(b'|n,b) g(i'|n,b,i) h(n'|n,b,i').
//
// f is deterministic (next_b); g and h are exposed as explicit pmfs built
// from cached binomial tables. For small parameter sets the full
// (k+1)(B+1)(s+1)-state chain can be materialized as a markov::SparseChain
// for exact absorbing-chain analysis; large instances use the collapsed
// distribution stepping in download_model.hpp instead.
//
// Convention for the absorption rows: the paper writes the "b = B" rows of
// g and h against the updated piece count (a peer exits immediately after
// downloading all B pieces), so whenever f yields b' = B the process moves
// to the absorbing state (0, B, 0) with probability 1.
#pragma once

#include <cstddef>
#include <tuple>
#include <vector>

#include "markov/sparse_chain.hpp"
#include "model/params.hpp"

namespace mpbt::model {

class TransitionKernel {
 public:
  /// Validates and normalizes `params` (phi filled in when empty).
  explicit TransitionKernel(ModelParams params);

  const ModelParams& params() const { return params_; }

  /// f: the next piece count under the strict model (seed_boost = 0).
  /// b = 0 yields 1 (the bootstrap piece); b >= 1 yields min(b + n, B).
  int next_b(int n, int b) const;

  /// f as a pmf, honoring the seeding extension: with probability
  /// seed_boost an extra piece arrives over a tit-for-tat-free seed
  /// connection (Section 7.2). Entries are (b', probability); one entry
  /// when seed_boost = 0 or the boost cannot change b'.
  std::vector<std::pair<int, double>> next_b_pmf(int n, int b) const;

  /// g: pmf over the next potential-set size i' in [0, s], given the
  /// pre-transition state (n, b, i). Eq. (2).
  std::vector<double> potential_pmf(int n, int b, int i) const;

  /// h: pmf over the next connection count n' in [0, k], given the old
  /// (n, b) and the *new* potential-set size i'. Eq. (3).
  std::vector<double> connection_pmf(int n, int b, int i_new) const;

  /// Trading-power curve p(m) used by g (Eq. 1).
  const std::vector<double>& trading_power() const { return p_curve_; }

  // --- dense state indexing over (n, b, i) --------------------------------
  std::size_t num_states() const;
  std::size_t index_of(int n, int b, int i) const;
  std::tuple<int, int, int> state_of(std::size_t index) const;
  std::size_t start_state() const { return index_of(0, 0, 0); }
  std::size_t absorbing_state() const { return index_of(0, params_.B, 0); }

  /// Materializes the full chain. Guarded against huge instances
  /// (throws std::invalid_argument beyond ~500k states); intended for
  /// tests and small exact studies.
  markov::SparseChain build_chain() const;

 private:
  ModelParams params_;
  std::vector<double> p_curve_;
  /// x2_pmf_[m] = Binomial(s, p(m)) pmf; defined for m in [0, B].
  std::vector<std::vector<double>> x2_pmf_;
  /// Binomial(s, p_init) pmf.
  std::vector<double> x1_pmf_;
  /// y_pmf_[n][max_new] = pmf of Bin(n, p_r) + Bin(max_new, p_n).
  std::vector<std::vector<std::vector<double>>> y_pmf_;
};

}  // namespace mpbt::model
