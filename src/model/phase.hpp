// The three download phases (Section 3.2).
#pragma once

#include <string_view>

namespace mpbt::model {

enum class Phase {
  /// Acquiring the first piece / waiting for a tradable neighbor.
  Bootstrap,
  /// Potential set non-empty; trading at full protocol efficiency.
  EfficientDownload,
  /// Potential set collapsed to zero late in the download; progress gated
  /// on new pieces flowing into the neighbor set (rate gamma).
  LastDownload,
  /// All B pieces downloaded; the chain is absorbed.
  Done,
};

std::string_view phase_name(Phase phase);

/// Classifies a model state (n active connections, b pieces, i potential
/// set size) against the file size B.
Phase classify_phase(int n, int b, int i, int B);

}  // namespace mpbt::model
