// Transient ensemble model — the paper's future-work item implemented.
//
// Section 6 closes: "An exact analysis of the stability of the BitTorrent
// protocol ... requires transient methods to deal with the nonstationary
// state-dependent behavior of the parameters." This module provides that
// transient machinery at the population level: it evolves the expected
// COUNT of peers in each collapsed state (n, b, 1{i>0}) of the download
// chain, feeding the empirical piece-count distribution ϕ_t back into the
// trading-power function p(b+n) every round (the nonstationary coupling),
// with Poisson arrivals adding mass at (0, 0, 0) and absorptions removing
// completed peers.
//
// Scope note (also in DESIGN.md): ϕ tracks how MANY pieces peers hold,
// not WHICH — so the piece-identity skew that drives the B = 3 divergence
// of Figures 3/4(b,c) is invisible here. The transient_ensemble bench
// demonstrates exactly that gap: the ensemble predicts a stable
// population where the identity-aware simulator diverges, which is the
// quantitative form of the paper's "left for future work" caveat.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.hpp"
#include "numeric/timeseries.hpp"

namespace mpbt::model {

struct EnsembleParams {
  /// Per-peer chain parameters (alpha/gamma/p_* as in ModelParams).
  ModelParams peer;
  /// Expected arrivals per round (each joins in state (0, 0, 0)).
  double arrival_rate = 2.0;
  /// Initial population size...
  double initial_population = 0.0;
  /// ...distributed over piece counts by this (size B+1; empty = all at 0
  /// pieces). Initial peers start with no connections and i > 0 when they
  /// hold tradable pieces.
  std::vector<double> initial_phi;
  /// Rounds to evolve.
  std::size_t rounds = 300;
  /// Recompute p(b+n) from the current ensemble ϕ_t each round (the
  /// transient coupling). false freezes ϕ at the ModelParams value.
  bool couple_phi = true;

  void validate() const;
};

struct EnsembleResult {
  numeric::TimeSeries population;        ///< N_t (leechers in the system)
  numeric::TimeSeries completion_rate;   ///< completions during round t
  numeric::TimeSeries mean_pieces;       ///< average piece count
  std::vector<double> final_phi;         ///< ϕ at the horizon (size B+1)
  double total_completed = 0.0;
  /// True when the population is still growing at the horizon (mean of the
  /// last tenth exceeds the mean of the preceding tenth by > 2%).
  bool population_growing = false;
};

/// Evolves the ensemble and returns the population trajectory.
EnsembleResult run_ensemble(const EnsembleParams& params);

}  // namespace mpbt::model
