// Exact evolution of the download model and Monte Carlo trajectory
// sampling (Section 3, used for Figures 1a/1b).
//
// The full chain over (n, b, i) is too large to materialize at realistic
// parameters (B = 200, s = 40..50), but g depends on i only through the
// indicator {i = 0}, so the distribution can be stepped exactly over the
// collapsed state (n, b, 1{i > 0}) — (k+1)(B+1)·2 cells — while still
// accounting E[i'] and the full n' mixture at every step. This gives exact
// expected timelines and potential-set profiles in milliseconds.
#pragma once

#include <cstddef>
#include <vector>

#include "model/kernel.hpp"
#include "model/phase.hpp"
#include "numeric/rng.hpp"

namespace mpbt::model {

struct EvolutionResult {
  /// expected_timeline[x] = E[first step at which the peer holds >= x
  /// pieces]; index 0 is 0. Exact when absorbed_mass ~ 1, otherwise a
  /// lower bound.
  std::vector<double> expected_timeline;

  /// expected_potential[b] = average potential-set size observed on
  /// arrival at piece-count b (per step-visit, matching how the simulator
  /// samples Fig. 1a); -1 when b was never visited.
  std::vector<double> expected_potential;

  /// expected_connections[b] = average post-transition connection count
  /// observed at piece-count b; -1 when never visited.
  std::vector<double> expected_connections;

  /// Expected rounds spent in each phase.
  double bootstrap_rounds = 0.0;
  double efficient_rounds = 0.0;
  double last_rounds = 0.0;

  /// E[rounds to download all B pieces] (= expected_timeline[B]).
  double expected_completion = 0.0;

  /// Probability mass absorbed within `steps_taken` steps.
  double absorbed_mass = 0.0;
  std::size_t steps_taken = 0;
};

/// Steps the exact collapsed distribution until `1 - epsilon` of the mass
/// is absorbed or `max_steps` is reached.
EvolutionResult compute_evolution(const ModelParams& params, std::size_t max_steps = 100000,
                                  double epsilon = 1e-9);

/// One sampled trajectory of the full (n, b, i) chain.
struct TrajectoryPoint {
  int n = 0;
  int b = 0;
  int i = 0;
  Phase phase = Phase::Bootstrap;
};

struct SampledDownload {
  std::vector<TrajectoryPoint> points;  // points[t] = state after t steps
  bool completed = false;
  /// Steps spent in each phase.
  std::size_t bootstrap_steps = 0;
  std::size_t efficient_steps = 0;
  std::size_t last_steps = 0;
};

/// Samples one peer download through the f/g/h kernel.
SampledDownload sample_download(const TransitionKernel& kernel, numeric::Rng& rng,
                                std::size_t max_steps = 100000);

/// Convenience: averaged timeline over `samples` Monte Carlo downloads;
/// out[x] = mean first step holding >= x pieces (only over completed
/// samples). Entries never reached are -1.
std::vector<double> monte_carlo_timeline(const TransitionKernel& kernel, numeric::Rng& rng,
                                         std::size_t samples, std::size_t max_steps = 100000);

}  // namespace mpbt::model
