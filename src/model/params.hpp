// Parameters of the multiphased download-evolution model (Section 3).
//
// Notation follows the paper:
//   B       — number of pieces in the file
//   k       — maximum simultaneous connections
//   s       — neighbor-set size
//   p_init  — success probability of an initial connection attempt
//   p_r     — re-encounter probability (an established connection survives)
//   p_n     — probability a new connection establishes
//   alpha   — P(new tradable peer enters the NS) while stuck at b+n = 1
//   gamma   — the same while stuck with b+n > 1 (last download phase)
//   phi     — piece-count distribution over peers (phi[j] = fraction of
//             peers holding j pieces), the ϕ of Eq. (1)
#pragma once

#include <vector>

namespace mpbt::model {

struct ModelParams {
  int B = 200;
  int k = 7;
  int s = 40;
  double p_init = 0.8;
  double p_r = 0.7;
  double p_n = 0.9;
  double alpha = 0.1;
  double gamma = 0.05;

  /// Seeding extension (Section 7.2): probability per round of receiving
  /// one piece over an extra connection that does NOT require tit-for-tat
  /// (a seed's upload). 0 (default) recovers the paper's strict model.
  double seed_boost = 0.0;

  /// phi[j] for j in [0, B]; empty means "use the default": uniform over
  /// the leecher counts 1..B-1, which Section 6 argues is the stable
  /// operating point of the trading phase.
  std::vector<double> phi;

  /// Throws std::invalid_argument on out-of-range parameters; normalizes
  /// phi (filling in the default when empty).
  void validate_and_normalize();

  /// alpha = lambda * w * s / N (Section 3.2): lambda = peer arrival rate,
  /// w = probability a newly arriving peer has a piece to exchange,
  /// N = swarm size. Clamped to [0, 1].
  static double alpha_from(double lambda, double w, int s, double N);
};

}  // namespace mpbt::model
