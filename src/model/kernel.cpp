#include "model/kernel.hpp"

#include <algorithm>

#include "model/trading_power.hpp"
#include "numeric/logbinom.hpp"
#include "util/assert.hpp"

namespace mpbt::model {

TransitionKernel::TransitionKernel(ModelParams params) : params_(std::move(params)) {
  params_.validate_and_normalize();
  p_curve_ = trading_power_curve(params_);

  x1_pmf_ = numeric::binomial_pmf_vector(params_.s, params_.p_init);
  x2_pmf_.resize(static_cast<std::size_t>(params_.B) + 1);
  for (int m = 0; m <= params_.B; ++m) {
    x2_pmf_[static_cast<std::size_t>(m)] =
        numeric::binomial_pmf_vector(params_.s, p_curve_[static_cast<std::size_t>(m)]);
  }
  y_pmf_.resize(static_cast<std::size_t>(params_.k) + 1);
  for (int n = 0; n <= params_.k; ++n) {
    auto& per_n = y_pmf_[static_cast<std::size_t>(n)];
    per_n.resize(static_cast<std::size_t>(params_.k) + 1);
    for (int max_new = 0; max_new <= params_.k; ++max_new) {
      per_n[static_cast<std::size_t>(max_new)] =
          numeric::binomial_sum_pmf(n, params_.p_r, max_new, params_.p_n);
    }
  }
}

int TransitionKernel::next_b(int n, int b) const {
  util::throw_if_out_of_range(n < 0 || n > params_.k, "next_b: n out of range");
  util::throw_if_out_of_range(b < 0 || b > params_.B, "next_b: b out of range");
  if (b == 0) {
    return 1;
  }
  return std::min(b + n, params_.B);
}

std::vector<std::pair<int, double>> TransitionKernel::next_b_pmf(int n, int b) const {
  const int base = next_b(n, b);
  if (params_.seed_boost <= 0.0 || b == 0 || base >= params_.B) {
    return {{base, 1.0}};
  }
  const int boosted = std::min(base + 1, params_.B);
  if (params_.seed_boost >= 1.0) {
    return {{boosted, 1.0}};
  }
  return {{base, 1.0 - params_.seed_boost}, {boosted, params_.seed_boost}};
}

std::vector<double> TransitionKernel::potential_pmf(int n, int b, int i) const {
  util::throw_if_out_of_range(n < 0 || n > params_.k, "potential_pmf: n out of range");
  util::throw_if_out_of_range(b < 0 || b > params_.B, "potential_pmf: b out of range");
  util::throw_if_out_of_range(i < 0 || i > params_.s, "potential_pmf: i out of range");
  const std::size_t size = static_cast<std::size_t>(params_.s) + 1;
  const int m = b + n;

  if (b >= params_.B) {  // absorbed: i' = 0
    std::vector<double> pmf(size, 0.0);
    pmf[0] = 1.0;
    return pmf;
  }
  if (m == 0) {
    // Joining: one connection attempt to each of the s neighbors, success
    // probability p_init each (X1 of Section 3.1).
    return x1_pmf_;
  }
  if (i > 0) {
    // Trading: X2 ~ Bin(s, p(b+n)).
    const int capped = std::min(m, params_.B);
    return x2_pmf_[static_cast<std::size_t>(capped)];
  }
  // Starved (i = 0): wait for a tradable peer to flow into the NS.
  std::vector<double> pmf(size, 0.0);
  const double refresh = (m == 1) ? params_.alpha : params_.gamma;
  pmf[0] = 1.0 - refresh;
  pmf[1] = refresh;
  return pmf;
}

std::vector<double> TransitionKernel::connection_pmf(int n, int b, int i_new) const {
  util::throw_if_out_of_range(n < 0 || n > params_.k, "connection_pmf: n out of range");
  util::throw_if_out_of_range(b < 0 || b > params_.B, "connection_pmf: b out of range");
  util::throw_if_out_of_range(i_new < 0 || i_new > params_.s,
                              "connection_pmf: i_new out of range");
  const std::size_t size = static_cast<std::size_t>(params_.k) + 1;
  std::vector<double> pmf(size, 0.0);
  if (b + n == 0 || b >= params_.B) {
    pmf[0] = 1.0;
    return pmf;
  }
  const int max_new = std::max(std::min(i_new, params_.k) - n, 0);
  const std::vector<double>& y =
      y_pmf_[static_cast<std::size_t>(n)][static_cast<std::size_t>(max_new)];
  // y has length n + max_new + 1 <= k + 1.
  MPBT_ASSERT(y.size() <= size);
  std::copy(y.begin(), y.end(), pmf.begin());
  return pmf;
}

std::size_t TransitionKernel::num_states() const {
  return static_cast<std::size_t>(params_.k + 1) * static_cast<std::size_t>(params_.B + 1) *
         static_cast<std::size_t>(params_.s + 1);
}

std::size_t TransitionKernel::index_of(int n, int b, int i) const {
  util::throw_if_out_of_range(n < 0 || n > params_.k || b < 0 || b > params_.B || i < 0 ||
                                  i > params_.s,
                              "index_of: state out of range");
  const auto sp1 = static_cast<std::size_t>(params_.s + 1);
  const auto bp1 = static_cast<std::size_t>(params_.B + 1);
  return (static_cast<std::size_t>(n) * bp1 + static_cast<std::size_t>(b)) * sp1 +
         static_cast<std::size_t>(i);
}

std::tuple<int, int, int> TransitionKernel::state_of(std::size_t index) const {
  util::throw_if_out_of_range(index >= num_states(), "state_of: index out of range");
  const auto sp1 = static_cast<std::size_t>(params_.s + 1);
  const auto bp1 = static_cast<std::size_t>(params_.B + 1);
  const int i = static_cast<int>(index % sp1);
  const int b = static_cast<int>((index / sp1) % bp1);
  const int n = static_cast<int>(index / (sp1 * bp1));
  return {n, b, i};
}

markov::SparseChain TransitionKernel::build_chain() const {
  util::throw_if_invalid(num_states() > 500000,
                         "build_chain: state space too large to materialize; use "
                         "compute_evolution instead");
  markov::SparseChain chain(num_states());
  const std::size_t absorb = absorbing_state();
  for (std::size_t idx = 0; idx < num_states(); ++idx) {
    const auto [n, b, i] = state_of(idx);
    if (b >= params_.B) {
      // Every b = B state funnels into the canonical absorbing state.
      chain.add_transition(idx, absorb, 1.0);
      continue;
    }
    const std::vector<double> g = potential_pmf(n, b, i);
    for (const auto& [b2, fp] : next_b_pmf(n, b)) {
      if (b2 >= params_.B) {
        chain.add_transition(idx, absorb, fp);
        continue;
      }
      for (int i2 = 0; i2 <= params_.s; ++i2) {
        const double gp = g[static_cast<std::size_t>(i2)];
        if (gp == 0.0) {
          continue;
        }
        const std::vector<double> h = connection_pmf(n, b, i2);
        for (int n2 = 0; n2 <= params_.k; ++n2) {
          const double hp = h[static_cast<std::size_t>(n2)];
          if (hp == 0.0) {
            continue;
          }
          chain.add_transition(idx, index_of(n2, b2, i2), fp * gp * hp);
        }
      }
    }
  }
  chain.finalize(1e-7);
  return chain;
}

}  // namespace mpbt::model
