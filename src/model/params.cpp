#include "model/params.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::model {

void ModelParams::validate_and_normalize() {
  util::throw_if_invalid(B < 1, "ModelParams: B must be >= 1");
  util::throw_if_invalid(k < 1, "ModelParams: k must be >= 1");
  util::throw_if_invalid(s < 1, "ModelParams: s must be >= 1");
  auto check_prob = [](double p, const char* name) {
    util::throw_if_invalid(p < 0.0 || p > 1.0 || !std::isfinite(p),
                           std::string("ModelParams: ") + name + " must be in [0, 1]");
  };
  check_prob(p_init, "p_init");
  check_prob(p_r, "p_r");
  check_prob(p_n, "p_n");
  check_prob(alpha, "alpha");
  check_prob(gamma, "gamma");
  check_prob(seed_boost, "seed_boost");

  if (phi.empty()) {
    phi.assign(static_cast<std::size_t>(B) + 1, 0.0);
    if (B == 1) {
      // Degenerate single-piece file: every piece-holding peer is complete;
      // treat "holding 1 piece" as the only leecher class.
      phi[1] = 1.0;
    } else {
      for (int j = 1; j <= B - 1; ++j) {
        phi[static_cast<std::size_t>(j)] = 1.0 / static_cast<double>(B - 1);
      }
    }
    return;
  }
  util::throw_if_invalid(phi.size() != static_cast<std::size_t>(B) + 1,
                         "ModelParams: phi must have B + 1 entries");
  double total = 0.0;
  for (double w : phi) {
    util::throw_if_invalid(w < 0.0 || !std::isfinite(w),
                           "ModelParams: phi entries must be finite and >= 0");
    total += w;
  }
  util::throw_if_invalid(total <= 0.0, "ModelParams: phi must have positive mass");
  for (double& w : phi) {
    w /= total;
  }
}

double ModelParams::alpha_from(double lambda, double w, int s, double N) {
  util::throw_if_invalid(lambda < 0.0, "alpha_from: lambda must be >= 0");
  util::throw_if_invalid(w < 0.0 || w > 1.0, "alpha_from: w must be in [0, 1]");
  util::throw_if_invalid(s < 1, "alpha_from: s must be >= 1");
  util::throw_if_invalid(N <= 0.0, "alpha_from: N must be > 0");
  return std::clamp(lambda * w * static_cast<double>(s) / N, 0.0, 1.0);
}

}  // namespace mpbt::model
