#include "model/trading_power.hpp"

#include <algorithm>

#include "numeric/logbinom.hpp"
#include "util/assert.hpp"

namespace mpbt::model {

double trading_power(const ModelParams& params, int m) {
  util::throw_if_invalid(params.phi.size() != static_cast<std::size_t>(params.B) + 1,
                         "trading_power: params must be validated (phi normalized)");
  util::throw_if_out_of_range(m < 0 || m > params.B, "trading_power: m out of range");
  const int B = params.B;
  if (m == 0 || m == B) {
    return 0.0;
  }
  double p = 0.0;
  // Peers Q with j > m pieces: Q has something for P unless all of P's m
  // pieces are among Q's j (then nothing *P* can offer back — the paper
  // counts the pair tradable when P has something to exchange).
  for (int j = m + 1; j <= B; ++j) {
    const double w = params.phi[static_cast<std::size_t>(j)];
    if (w == 0.0) {
      continue;
    }
    p += w * (1.0 - numeric::choose_ratio(j, m, B));
  }
  // Peers Q with j <= m pieces: tradable unless all of Q's j pieces are
  // already stored at P.
  for (int j = 1; j <= m; ++j) {
    const double w = params.phi[static_cast<std::size_t>(j)];
    if (w == 0.0) {
      continue;
    }
    p += w * (1.0 - numeric::choose_ratio(m, j, B));
  }
  return std::clamp(p, 0.0, 1.0);
}

std::vector<double> trading_power_curve(const ModelParams& params) {
  std::vector<double> out(static_cast<std::size_t>(params.B) + 1, 0.0);
  for (int m = 0; m <= params.B; ++m) {
    out[static_cast<std::size_t>(m)] = trading_power(params, m);
  }
  return out;
}

}  // namespace mpbt::model
