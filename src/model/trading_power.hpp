// Equation (1): the instantaneous trading power of a peer.
//
// p(m) is the probability that a randomly selected peer has a piece to
// exchange with a peer holding m = b + n pieces, under the piece-count
// distribution ϕ. The paper notes p rises from ~0.5 at m = 1, peaks near
// m = B/2, and returns to ~0.5 at m = B - 1 (for uniform ϕ).
#pragma once

#include <vector>

#include "model/params.hpp"

namespace mpbt::model {

/// p(m) for one m in [0, B]. m = 0 and m = B return 0 (nothing to trade /
/// nothing left to want). `params` must be validated (phi normalized).
double trading_power(const ModelParams& params, int m);

/// The whole curve: out[m] = p(m) for m in [0, B].
std::vector<double> trading_power_curve(const ModelParams& params);

}  // namespace mpbt::model
