#include "trace/archetypes.hpp"

#include <cmath>
#include <stdexcept>

#include "bt/swarm.hpp"
#include "numeric/rng.hpp"

namespace mpbt::trace {

ClientTrace run_instrumented_client(bt::SwarmConfig config, bt::Round warmup_rounds,
                                    bt::Round max_rounds, std::string label) {
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(warmup_rounds);
  swarm.instrument_next_arrival();

  // Step until the instrumented client exists and finishes (or the cap).
  bt::PeerId client = bt::kNoPeer;
  for (bt::Round r = warmup_rounds; r < max_rounds; ++r) {
    swarm.step();
    const auto& records = swarm.metrics().client_records();
    if (client == bt::kNoPeer && !records.empty()) {
      client = records.begin()->first;
    }
    if (client != bt::kNoPeer) {
      const auto it = records.find(client);
      if (it != records.end() && it->second.completed) {
        break;
      }
    }
  }
  if (client == bt::kNoPeer) {
    throw std::runtime_error("run_instrumented_client: no client arrived within the run");
  }
  const bt::ClientRecord& record = swarm.metrics().client_records().at(client);
  return from_client_record(record, swarm.config().num_pieces, swarm.config().piece_bytes,
                            std::move(label));
}

ClientTrace make_smooth_trace(std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 200;
  config.max_connections = 7;
  config.peer_set_size = 50;
  config.arrival_rate = 4.0;
  config.initial_seeds = 2;
  config.seed_capacity = 6;
  config.optimistic_unchoke_prob = 0.8;
  // A healthy running swarm with varied piece holdings.
  bt::InitialGroup warm;
  warm.count = 150;
  warm.piece_probs.assign(config.num_pieces, 0.35);
  config.initial_groups.push_back(std::move(warm));
  config.seed = seed;
  return run_instrumented_client(std::move(config), /*warmup_rounds=*/20,
                                 /*max_rounds=*/600, "smooth");
}

ClientTrace make_last_phase_trace(std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 200;
  config.max_connections = 7;
  config.peer_set_size = 20;
  config.arrival_rate = 1.0;
  config.initial_seeds = 0;
  config.optimistic_unchoke_prob = 1.0;
  // A population of near-clones holding the first half of the file: the
  // client races through that half, then sits with an empty potential set
  // waiting for the scarce second-half pieces to reach its neighbor set —
  // the last-piece problem of Section 7.1 (Fig. 2c/d).
  bt::InitialGroup clones;
  clones.count = 80;
  clones.piece_probs.assign(config.num_pieces, 0.0);
  for (std::uint32_t j = 0; j < config.num_pieces / 2; ++j) {
    clones.piece_probs[j] = 0.98;
  }
  config.initial_groups.push_back(std::move(clones));
  // Scarce exogenous variety: each arrival carries a few pieces of the
  // missing half (the paper's `w` / gamma mechanism).
  config.arrival_piece_probs.assign(config.num_pieces, 0.0);
  for (std::uint32_t j = config.num_pieces / 2; j < config.num_pieces; ++j) {
    config.arrival_piece_probs[j] = 0.05;
  }
  config.seed = seed;
  return run_instrumented_client(std::move(config), /*warmup_rounds=*/3,
                                 /*max_rounds=*/800, "last-phase");
}

ClientTrace make_bootstrap_trace(std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 200;
  config.max_connections = 7;
  config.peer_set_size = 6;
  config.arrival_rate = 0.2;
  config.initial_seeds = 1;
  config.seed_capacity = 2;
  config.optimistic_unchoke_prob = 1.0;
  // Exact clones: every initial peer holds exactly the first half of the
  // file, so nobody can trade with anybody. The client's first piece
  // (optimistically unchoked by a clone) is held by its entire
  // neighborhood: it waits in the (0, 1, 0) bootstrap state until a peer
  // with different content enters its neighbor set (Fig. 2e/f).
  bt::InitialGroup clones;
  clones.count = 60;
  clones.piece_probs.assign(config.num_pieces, 0.0);
  for (std::uint32_t j = 0; j < config.num_pieces / 2; ++j) {
    clones.piece_probs[j] = 1.0;
  }
  config.initial_groups.push_back(std::move(clones));
  // The thin arrival stream carries a couple of random pieces per peer
  // (the paper's `w`), eventually unfreezing the swarm.
  config.arrival_piece_probs.assign(config.num_pieces, 0.04);
  config.seed = seed;
  return run_instrumented_client(std::move(config), /*warmup_rounds=*/2,
                                 /*max_rounds=*/600, "bootstrap");
}

std::vector<ClientTrace> make_all_archetypes(std::uint64_t seed) {
  std::vector<ClientTrace> traces;
  traces.push_back(make_smooth_trace(seed * 1000 + 101));
  traces.push_back(make_last_phase_trace(seed * 1000 + 202));
  traces.push_back(make_bootstrap_trace(seed * 1000 + 308));
  return traces;
}

SwarmStatsSeries make_stable_stats(std::uint64_t seed, std::size_t hours,
                                   double mean_population) {
  numeric::Rng rng(seed);
  SwarmStatsSeries series;
  series.label = "stable";
  series.hourly_peers.reserve(hours);
  double level = mean_population;
  for (std::size_t h = 0; h < hours; ++h) {
    // Mean-reverting wander around the mean (±5% noise).
    level += (mean_population - level) * 0.2 + rng.uniform(-0.05, 0.05) * mean_population;
    series.hourly_peers.push_back(
        static_cast<std::uint32_t>(std::max(1.0, std::round(level))));
  }
  return series;
}

SwarmStatsSeries make_flash_crowd_stats(std::uint64_t seed, std::size_t hours) {
  numeric::Rng rng(seed);
  SwarmStatsSeries series;
  series.label = "flash-crowd";
  series.hourly_peers.reserve(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    // Small base, then an explosive ramp partway through the window.
    const double t = static_cast<double>(h) / static_cast<double>(hours);
    double level = 120.0;
    if (t > 0.4) {
      level *= std::exp((t - 0.4) * 9.0);
    }
    level *= 1.0 + rng.uniform(-0.05, 0.05);
    series.hourly_peers.push_back(
        static_cast<std::uint32_t>(std::max(1.0, std::round(level))));
  }
  return series;
}

SwarmStatsSeries make_dying_stats(std::uint64_t seed, std::size_t hours) {
  numeric::Rng rng(seed);
  SwarmStatsSeries series;
  series.label = "dying";
  series.hourly_peers.reserve(hours);
  double level = 900.0;
  for (std::size_t h = 0; h < hours; ++h) {
    level *= 0.94 * (1.0 + rng.uniform(-0.03, 0.03));
    series.hourly_peers.push_back(
        static_cast<std::uint32_t>(std::max(1.0, std::round(level))));
  }
  return series;
}

}  // namespace mpbt::trace
