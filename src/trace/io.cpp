#include "trace/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mpbt::trace {

namespace {
[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("malformed mpbt trace: " + what);
}
}  // namespace

void write_trace(std::ostream& os, const ClientTrace& trace) {
  os << "mpbt-trace v1\n";
  os << "label " << trace.label << '\n';
  os << "pieces " << trace.num_pieces << " piece_bytes " << trace.piece_bytes << " completed "
     << (trace.completed ? 1 : 0) << '\n';
  os << "points " << trace.points.size() << '\n';
  for (const TracePoint& p : trace.points) {
    os << p.time << ' ' << p.cumulative_bytes << ' ' << p.potential_set_size << ' '
       << p.pieces_held << '\n';
  }
}

ClientTrace read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "mpbt-trace v1") {
    malformed("missing or unsupported header");
  }
  ClientTrace trace;
  if (!std::getline(is, line) || line.rfind("label ", 0) != 0) {
    malformed("missing label line");
  }
  trace.label = line.substr(6);

  if (!std::getline(is, line)) {
    malformed("missing metadata line");
  }
  {
    std::istringstream meta(line);
    std::string kw1;
    std::string kw2;
    std::string kw3;
    int completed = 0;
    meta >> kw1 >> trace.num_pieces >> kw2 >> trace.piece_bytes >> kw3 >> completed;
    if (!meta || kw1 != "pieces" || kw2 != "piece_bytes" || kw3 != "completed") {
      malformed("bad metadata line");
    }
    trace.completed = completed != 0;
  }

  if (!std::getline(is, line) || line.rfind("points ", 0) != 0) {
    malformed("missing points line");
  }
  std::size_t count = 0;
  {
    std::istringstream counts(line.substr(7));
    counts >> count;
    if (!counts) {
      malformed("bad point count");
    }
  }
  trace.points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(is, line)) {
      malformed("truncated point list");
    }
    std::istringstream point(line);
    TracePoint p;
    point >> p.time >> p.cumulative_bytes >> p.potential_set_size >> p.pieces_held;
    if (!point) {
      malformed("bad point at index " + std::to_string(i));
    }
    trace.points.push_back(p);
  }
  return trace;
}

void save_trace(const std::string& path, const ClientTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open trace file for writing: " + path);
  }
  write_trace(out, trace);
  if (!out) {
    throw std::runtime_error("error writing trace file: " + path);
  }
}

ClientTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  return read_trace(in);
}

void write_trace_csv(std::ostream& os, const ClientTrace& trace) {
  os << "time,cumulative_bytes,potential_set_size,pieces_held\n";
  for (const TracePoint& p : trace.points) {
    os << p.time << ',' << p.cumulative_bytes << ',' << p.potential_set_size << ','
       << p.pieces_held << '\n';
  }
}

void save_trace_csv(const std::string& path, const ClientTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open trace CSV file for writing: " + path);
  }
  write_trace_csv(out, trace);
  if (!out) {
    throw std::runtime_error("error writing trace CSV file: " + path);
  }
}

}  // namespace mpbt::trace
