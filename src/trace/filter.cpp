#include "trace/filter.hpp"

#include <algorithm>

namespace mpbt::trace {

std::string_view swarm_class_name(SwarmClass c) {
  switch (c) {
    case SwarmClass::Stable:
      return "stable";
    case SwarmClass::FlashCrowd:
      return "flash-crowd";
    case SwarmClass::Dying:
      return "dying";
  }
  return "?";
}

SwarmClass classify_swarm(const SwarmStatsSeries& series, const FilterThresholds& thresholds) {
  const auto& h = series.hourly_peers;
  if (h.size() < thresholds.min_hours) {
    return SwarmClass::Dying;
  }

  // Flash crowd: growth beyond the factor within any window.
  for (std::size_t i = 0; i + thresholds.window < h.size(); ++i) {
    const std::uint32_t start = std::max<std::uint32_t>(h[i], 1);
    const std::uint32_t end = h[i + thresholds.window];
    if (static_cast<double>(end) >=
        thresholds.flash_growth_factor * static_cast<double>(start)) {
      return SwarmClass::FlashCrowd;
    }
  }

  // Dying: final population far below peak, with a downward second half.
  const std::uint32_t peak = *std::max_element(h.begin(), h.end());
  const std::uint32_t final_pop = h.back();
  if (static_cast<double>(final_pop) < thresholds.dying_fraction * static_cast<double>(peak)) {
    const std::size_t mid = h.size() / 2;
    double first_half = 0.0;
    double second_half = 0.0;
    for (std::size_t i = 0; i < mid; ++i) {
      first_half += h[i];
    }
    for (std::size_t i = mid; i < h.size(); ++i) {
      second_half += h[i];
    }
    first_half /= static_cast<double>(mid);
    second_half /= static_cast<double>(h.size() - mid);
    if (second_half < first_half) {
      return SwarmClass::Dying;
    }
  }
  return SwarmClass::Stable;
}

bool is_measurable(const SwarmStatsSeries& series, const FilterThresholds& thresholds) {
  return classify_swarm(series, thresholds) == SwarmClass::Stable;
}

}  // namespace mpbt::trace
