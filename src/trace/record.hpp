// Trace records — the data a measurement-instrumented BitTorrent client
// produces (Section 4.2 of the paper).
//
// The paper instruments a BitTornado client inside real swarms; we cannot
// obtain that proprietary data, so the same record structure is fed by the
// simulator's instrumented-client mode and by a synthetic generator (see
// archetypes.hpp). DESIGN.md documents the substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bt/metrics.hpp"

namespace mpbt::trace {

struct TracePoint {
  double time = 0.0;
  std::uint64_t cumulative_bytes = 0;
  std::uint32_t potential_set_size = 0;
  std::uint32_t pieces_held = 0;
};

struct ClientTrace {
  std::string label;
  std::uint32_t num_pieces = 0;
  std::uint64_t piece_bytes = 0;
  bool completed = false;
  std::vector<TracePoint> points;

  /// Total bytes downloaded at the end of the trace.
  std::uint64_t final_bytes() const {
    return points.empty() ? 0 : points.back().cumulative_bytes;
  }
};

/// Converts the swarm's instrumented-client record into a ClientTrace.
ClientTrace from_client_record(const bt::ClientRecord& record, std::uint32_t num_pieces,
                               std::uint64_t piece_bytes, std::string label);

/// Hourly tracker population statistics for one swarm, as the paper's
/// swarm-selection step consumes them.
struct SwarmStatsSeries {
  std::string label;
  std::vector<std::uint32_t> hourly_peers;
};

}  // namespace mpbt::trace
