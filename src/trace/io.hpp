// Text serialization of client traces (versioned, line-oriented).
//
// Format:
//   mpbt-trace v1
//   label <string>
//   pieces <B> piece_bytes <bytes> completed <0|1>
//   points <count>
//   <time> <cumulative_bytes> <potential> <pieces_held>   (x count)
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace mpbt::trace {

void write_trace(std::ostream& os, const ClientTrace& trace);

/// Parses a trace; throws std::runtime_error on malformed input.
ClientTrace read_trace(std::istream& is);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const ClientTrace& trace);
ClientTrace load_trace(const std::string& path);

/// Writes the trace as CSV (header: time,cumulative_bytes,potential,
/// pieces), e.g. for gnuplot / pandas.
void write_trace_csv(std::ostream& os, const ClientTrace& trace);
void save_trace_csv(const std::string& path, const ClientTrace& trace);

}  // namespace mpbt::trace
