// Synthetic "real-world" traces (substitute for the paper's BitTornado
// measurement study, Section 4.2).
//
// Three swarm regimes reproduce the three download archetypes of Figure 2:
//  * smooth      — large peer set, healthy arrivals: the potential set
//                  grows fast and stays high; the download is linear
//                  start to finish (Fig. 2a/b).
//  * last-phase  — small peer set and thin arrivals: the potential set
//                  collapses near the end, stretching the final pieces
//                  (Fig. 2c/d).
//  * bootstrap   — the client joins a swarm of near-identical peers: its
//                  first piece is tradable with nobody, so the potential
//                  set (and download rate) stay 0 until fresh content
//                  flows in (Fig. 2e/f).
//
// Also provides synthetic hourly tracker statistics (stable / flash-crowd
// / dying) for the swarm-selection filter of Section 4.2.
#pragma once

#include <cstdint>
#include <vector>

#include "bt/config.hpp"
#include "trace/record.hpp"

namespace mpbt::trace {

/// Runs `config`, warms the swarm up, then instruments the next arriving
/// client and follows it until completion (or `max_rounds`). Returns its
/// trace. Throws std::runtime_error if no client arrives within the run.
ClientTrace run_instrumented_client(bt::SwarmConfig config, bt::Round warmup_rounds,
                                    bt::Round max_rounds, std::string label);

ClientTrace make_smooth_trace(std::uint64_t seed = 101);
ClientTrace make_last_phase_trace(std::uint64_t seed = 202);
ClientTrace make_bootstrap_trace(std::uint64_t seed = 308);

/// All three, in the order of Figure 2.
std::vector<ClientTrace> make_all_archetypes(std::uint64_t seed = 1);

/// Synthetic hourly tracker statistics for swarm selection.
SwarmStatsSeries make_stable_stats(std::uint64_t seed, std::size_t hours = 72,
                                   double mean_population = 800.0);
SwarmStatsSeries make_flash_crowd_stats(std::uint64_t seed, std::size_t hours = 72);
SwarmStatsSeries make_dying_stats(std::uint64_t seed, std::size_t hours = 72);

}  // namespace mpbt::trace
