// Swarm selection on tracker statistics (Section 4.2).
//
// The paper filters candidate swarms by inspecting hourly peer counts:
// flash crowds (rapidly increasing population) and dying swarms are
// excluded; only stable swarms are measured. This implements that
// classification.
#pragma once

#include <string_view>

#include "trace/record.hpp"

namespace mpbt::trace {

enum class SwarmClass { Stable, FlashCrowd, Dying };

std::string_view swarm_class_name(SwarmClass c);

struct FilterThresholds {
  /// A swarm is a flash crowd when population grows by more than this
  /// factor within `window` hours.
  double flash_growth_factor = 2.0;
  std::size_t window = 6;
  /// A swarm is dying when the final population falls below this fraction
  /// of its peak and the second half trends downward.
  double dying_fraction = 0.35;
  /// Series shorter than this cannot be classified reliably and are
  /// reported as Dying (too little history to trust).
  std::size_t min_hours = 8;
};

/// Classifies a swarm's hourly population series.
SwarmClass classify_swarm(const SwarmStatsSeries& series, const FilterThresholds& thresholds = {});

/// True when the swarm passes the paper's selection criterion (Stable).
bool is_measurable(const SwarmStatsSeries& series, const FilterThresholds& thresholds = {});

}  // namespace mpbt::trace
