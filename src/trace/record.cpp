#include "trace/record.hpp"

namespace mpbt::trace {

ClientTrace from_client_record(const bt::ClientRecord& record, std::uint32_t num_pieces,
                               std::uint64_t piece_bytes, std::string label) {
  ClientTrace trace;
  trace.label = std::move(label);
  trace.num_pieces = num_pieces;
  trace.piece_bytes = piece_bytes;
  trace.completed = record.completed;
  trace.points.reserve(record.samples.size());
  for (const bt::ClientSample& s : record.samples) {
    trace.points.push_back({static_cast<double>(s.round), s.cumulative_bytes,
                            s.potential_set_size, s.pieces_held});
  }
  return trace;
}

}  // namespace mpbt::trace
