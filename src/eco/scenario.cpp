#include "eco/scenario.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

#include "eco/ecosystem.hpp"
#include "exp/scenario.hpp"

namespace mpbt::eco {
namespace {

// Altman-style transient sweep: a steady ecosystem absorbs a flash crowd,
// then loses `takedown_fraction` of every torrent's peers at the event
// round, and we measure the drop and the recovery trajectory driven by
// continuing Zipf arrivals. fraction == 0 is the no-event control.
exp::Scenario make_ecosystem_transient() {
  exp::Scenario scenario;
  scenario.name = "ecosystem_transient";
  scenario.description =
      "Multi-torrent ecosystem: flash crowd, takedown transient, and recovery "
      "across takedown fractions";
  scenario.make_points = [](const exp::SweepOptions& options) {
    const std::vector<double> fractions =
        options.quick ? std::vector<double>{0.6} : std::vector<double>{0.0, 0.5, 0.8};
    std::vector<exp::ParamPoint> points;
    for (const double fraction : fractions) {
      exp::ParamPoint point;
      point.set("takedown_fraction", fraction);
      points.push_back(std::move(point));
    }
    return points;
  };
  scenario.run = [](const exp::ParamPoint& point, std::uint64_t seed,
                    const exp::SweepOptions& options) {
    // The flash crowd fires early and its transient decays before the
    // takedown, so pre-event population is near steady state and the
    // post-event recovery (back to >= 90% of pre) is measurable.
    const bt::Round rounds = options.quick ? 100 : 160;
    EcosystemConfig config;
    config.num_torrents = options.quick ? 6 : 12;
    config.zipf_s = 1.0;
    config.arrival_rate = options.quick ? 6.0 : 10.0;
    config.initial_sessions = options.quick ? 80 : 200;
    config.max_wants = 3;
    config.swarm.num_pieces = options.quick ? 40 : 60;
    config.swarm.max_connections = 4;
    config.swarm.peer_set_size = 20;
    config.swarm.initial_seeds = 2;
    config.swarm.seed_capacity = 6;
    config.swarm.seeds_serve_all = true;
    config.swarm.seed_linger_rounds = 20;
    config.swarm.abort_rate = 0.01;
    config.flash_crowds.push_back({options.quick ? 12U : 25U, options.quick ? 40U : 120U, 0});
    const double fraction = point.get_double("takedown_fraction");
    Takedown takedown;
    takedown.round = options.quick ? 60U : 80U;
    takedown.fraction = fraction;
    takedown.torrent = -1;
    if (fraction > 0.0) {
      config.takedowns.push_back(takedown);
    }
    config.seed = seed;

    Ecosystem eco(std::move(config), /*jobs=*/1);
    eco.run_rounds(rounds);

    const std::vector<std::uint32_t>& population = eco.metrics().population;
    const double mean_population =
        population.empty()
            ? 0.0
            : std::accumulate(population.begin(), population.end(), 0.0) /
                  static_cast<double>(population.size());

    exp::Record record;
    record.set("final_population", static_cast<double>(population.back()));
    record.set("mean_population", mean_population);
    record.set("sessions_arrived", static_cast<double>(eco.sessions_arrived()));
    record.set("sessions_completed", static_cast<double>(eco.sessions_completed()));
    record.set("sessions_aborted", static_cast<double>(eco.sessions_aborted()));
    record.set("sessions_removed", static_cast<double>(eco.sessions_removed()));
    record.set("file_completions", static_cast<double>(eco.file_completions()));
    if (fraction > 0.0) {
      const TransientSummary transient = eco.transient(takedown);
      record.set("takedown_pre_population", transient.pre);
      record.set("takedown_trough_population", transient.trough);
      record.set("takedown_recovery_rounds", transient.recovery_rounds);
      record.set("takedown_recovered_frac", transient.recovered_frac);
    }
    return record;
  };
  return scenario;
}

}  // namespace

void register_ecosystem_scenarios() {
  exp::ScenarioRegistry::instance().add_if_absent(make_ecosystem_transient());
}

}  // namespace mpbt::eco
