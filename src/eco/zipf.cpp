#include "eco/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::eco {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  util::throw_if_invalid(n == 0, "ZipfSampler requires at least one category");
  util::throw_if_invalid(!(s >= 0.0), "ZipfSampler requires s >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    total += 1.0 / std::pow(static_cast<double>(t + 1), s);
    cdf_[t] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against accumulated FP error at the tail
}

std::uint32_t ZipfSampler::sample(numeric::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return static_cast<std::uint32_t>(std::min(idx, cdf_.size() - 1));
}

double ZipfSampler::probability(std::size_t t) const {
  util::throw_if_invalid(t >= cdf_.size(), "ZipfSampler::probability: index out of range");
  return t == 0 ? cdf_[0] : cdf_[t] - cdf_[t - 1];
}

}  // namespace mpbt::eco
