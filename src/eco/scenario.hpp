// Registry hookup for the eco layer.
//
// src/exp sits below src/eco in the layer stack, so the exp registry
// cannot register ecosystem scenarios itself — the cycle is broken by
// having every CLI that wants them call register_ecosystem_scenarios()
// explicitly (mpbt_sweep and mpbt_ecosystem both do).
#pragma once

namespace mpbt::eco {

/// Registers the eco-layer scenarios ("ecosystem_transient") with the
/// process-wide exp::ScenarioRegistry. Idempotent: safe to call from
/// multiple entry points.
void register_ecosystem_scenarios();

}  // namespace mpbt::eco
