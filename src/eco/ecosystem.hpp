// Multi-torrent ecosystem: N independent swarms, one shared peer population.
//
// The paper models a single torrent's swarm; a deployed tracker serves a
// *database* of files, each with its own swarm, and users seed completed
// files while downloading others. eco::Ecosystem composes N bt::Swarm
// instances (each over its own bt::Tracker) under a session model:
//
//   - Sessions arrive per round (Poisson, plus scripted flash-crowd
//     bursts) and draw a want-list of distinct torrents from a Zipf
//     popularity law — the first want is what they came for, extras
//     model users queueing several files.
//   - A session downloads one torrent at a time. On completion the peer
//     lingers as a seed in the finished swarm (SwarmConfig::
//     seed_linger_rounds) while the session re-announces into its next
//     wanted torrent the following round — that is cross-swarm seeding.
//   - Scripted takedowns remove a fraction of a torrent's live peers at
//     a given round (Altman–Nain–Shwartz transient), and the recovery
//     trajectory is measurable from the per-torrent population series.
//
// Determinism contract: all cross-swarm coordination (takedowns,
// arrivals, joins, harvest) is serial and draws from dedicated
// derive_seed streams — substream 0 seeds the swarms, substream 1 is
// keyed per round for arrivals, substream 2 per torrent x round for
// takedowns. Swarm stepping is the only parallel phase and each swarm
// owns its RNG, so results are bit-identical for any --jobs value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bt/swarm.hpp"
#include "bt/types.hpp"
#include "eco/zipf.hpp"
#include "exp/seed_stream.hpp"
#include "exp/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace mpbt::eco {

/// Scripted mass-departure event: at the start of `round`, remove
/// `fraction` of the live peers (seeds and leechers alike) of the
/// targeted torrent — or of every torrent when `torrent < 0`.
struct Takedown {
  bt::Round round = 0;
  double fraction = 0.5;
  std::int64_t torrent = -1;
};

/// Scripted arrival burst: `sessions` extra sessions arrive at `round`.
/// When `torrent >= 0` their first want is pinned to that torrent
/// (everyone rushing the same new release); otherwise it is Zipf-drawn.
struct FlashCrowd {
  bt::Round round = 0;
  std::uint32_t sessions = 0;
  std::int64_t torrent = -1;
};

struct EcosystemConfig {
  std::uint32_t num_torrents = 8;
  /// Zipf exponent for torrent popularity (0 = uniform).
  double zipf_s = 1.0;
  /// Expected new sessions per round (Poisson).
  double arrival_rate = 4.0;
  /// Sessions injected at round 0 before the first step.
  std::uint32_t initial_sessions = 0;
  /// Round after which organic arrivals stop (0 = never). Flash crowds
  /// fire regardless — they are scripted events, not organic traffic.
  bt::Round arrival_cutoff_round = 0;
  /// Want-list cap. The first want is always drawn; each extra want is
  /// appended while a bernoulli(extra_want_prob) keeps succeeding.
  std::uint32_t max_wants = 3;
  double extra_want_prob = 0.35;

  std::vector<FlashCrowd> flash_crowds;
  std::vector<Takedown> takedowns;

  /// Pre-size tracker/peer-store registries before flash-crowd bursts
  /// so arrival spikes don't pay reallocation churn mid-loop.
  bool pre_reserve = true;

  /// Per-torrent swarm template. The ecosystem owns all arrivals and
  /// departures, so arrival_rate / initial_groups / max_population are
  /// overridden to neutral values; everything else (piece count, choke
  /// algorithm, seed_linger_rounds, abort_rate, ...) applies as-is.
  bt::SwarmConfig swarm;

  std::uint64_t seed = 42;

  void validate() const;
};

enum class SessionState : std::uint8_t {
  kActive,     ///< downloading (or waiting one round to join the next want)
  kCompleted,  ///< finished every wanted torrent
  kAborted,    ///< active peer departed without the full file
  kRemoved,    ///< active peer removed by a takedown
};

std::string_view session_state_name(SessionState state);

/// One user's visit to the ecosystem. `wants` is a distinct, ordered
/// list of torrent indices; `next_want` indexes the torrent currently
/// being downloaded (or joined next). `seeding` tracks peers the
/// session still operates as lingering seeds in finished swarms.
struct Session {
  std::uint32_t id = 0;
  bt::Round arrived = 0;
  std::vector<std::uint32_t> wants;
  std::uint32_t next_want = 0;
  std::vector<std::uint32_t> completed;
  SessionState state = SessionState::kActive;
  /// Valid while state == kActive and !join_pending.
  std::uint32_t active_torrent = 0;
  bt::PeerId active_peer = bt::kNoPeer;
  /// Set when the session finished a torrent this round and joins its
  /// next want at the start of the following round (re-announce delay).
  bool join_pending = false;
  std::vector<std::pair<std::uint32_t, bt::PeerId>> seeding;
};

/// Per-round ecosystem series (one entry per completed round).
struct EcosystemMetrics {
  std::vector<std::uint32_t> population;       ///< live peers, all torrents
  std::vector<std::uint32_t> seeds;            ///< live seeds, all torrents
  std::vector<std::uint32_t> active_sessions;  ///< sessions in kActive
  /// torrent_population[t][r] = torrent t's live peers after round r.
  std::vector<std::vector<std::uint32_t>> torrent_population;
};

/// Altman-style transient shape around one takedown event, computed
/// from the summed population series of the affected torrents.
struct TransientSummary {
  double pre = 0.0;              ///< population the round before the event
  double trough = 0.0;           ///< minimum population at/after the event
  double final_population = 0.0; ///< population at the last recorded round
  /// Rounds from the event until population first regains 90% of pre
  /// (-1 if it never does within the run).
  double recovery_rounds = -1.0;
  /// final_population / pre (0 when pre == 0).
  double recovered_frac = 0.0;
};

class Ecosystem {
 public:
  /// Builds the N swarms (serially, so construction order is fixed) and
  /// injects `initial_sessions`. `jobs` bounds the worker threads used
  /// to step swarms; 0 picks the hardware default. Results do not
  /// depend on `jobs`.
  explicit Ecosystem(EcosystemConfig config, std::size_t jobs = 1);
  ~Ecosystem();

  Ecosystem(const Ecosystem&) = delete;
  Ecosystem& operator=(const Ecosystem&) = delete;

  /// Advances every torrent by one round: scripted takedowns, session
  /// joins + arrivals, parallel swarm stepping, then serial harvest of
  /// completions/aborts and the metrics/fingerprint fold.
  void step();
  void run_rounds(bt::Round rounds);

  bt::Round round() const { return round_; }
  const EcosystemConfig& config() const { return config_; }

  std::size_t num_torrents() const { return swarms_.size(); }
  const bt::Swarm& swarm(std::size_t t) const { return *swarms_[t]; }
  /// Mutable access so callers can attach per-swarm observers
  /// (check::InvariantSuite) before stepping.
  bt::Swarm& swarm(std::size_t t) { return *swarms_[t]; }

  const std::vector<Session>& sessions() const { return sessions_; }
  /// Peers this torrent should have live right now, per the ecosystem's
  /// own bookkeeping. Invariant: equals the swarm/tracker population.
  std::size_t ledger(std::size_t t) const { return ledger_[t]; }

  std::uint64_t sessions_arrived() const { return sessions_arrived_; }
  std::uint64_t sessions_completed() const { return sessions_completed_; }
  std::uint64_t sessions_aborted() const { return sessions_aborted_; }
  std::uint64_t sessions_removed() const { return sessions_removed_; }
  /// Individual torrent downloads finished (>= sessions_completed).
  std::uint64_t file_completions() const { return file_completions_; }
  std::uint64_t takedown_removed() const { return takedown_removed_; }
  std::size_t active_session_count() const;

  std::size_t population() const;
  std::size_t num_seeds() const;

  const EcosystemMetrics& metrics() const { return metrics_; }

  /// FNV-1a fold of every recorded round's per-torrent (population,
  /// seeds, completed) tuples plus the global session counters. This is
  /// the jobs-invariance witness.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Transient shape around `takedown` (must reference config rounds
  /// already simulated; affected torrents resolved the same way step()
  /// resolves them).
  TransientSummary transient(const Takedown& takedown) const;

  /// Optional live counters/gauges (eco.* namespace). Observation only:
  /// draws no randomness and never alters the trajectory.
  void set_metrics_registry(obs::Registry* registry) { registry_ = registry; }

  const ZipfSampler& popularity() const { return zipf_; }

 private:
  struct ArrivalSpec {
    std::vector<std::uint32_t> wants;
  };

  void apply_takedowns();
  void process_joins_and_arrivals();
  void harvest_sessions();
  void record_round();

  std::vector<std::uint32_t> draw_wants(numeric::Rng& rng, std::int64_t first);
  void start_session(std::vector<std::uint32_t> wants);
  void join_session(Session& session);
  void map_peer(std::uint32_t torrent, bt::PeerId id, std::uint32_t session);
  std::uint32_t session_of(std::uint32_t torrent, bt::PeerId id) const;

  EcosystemConfig config_;
  ZipfSampler zipf_;
  std::vector<std::unique_ptr<bt::Swarm>> swarms_;
  std::vector<Session> sessions_;
  /// peer_session_[t][peer_id] -> session id (kNoSession when the peer
  /// is not session-owned: initial seeds).
  std::vector<std::vector<std::uint32_t>> peer_session_;
  std::vector<std::size_t> ledger_;

  exp::SeedStream arrival_seeds_;
  std::uint64_t takedown_seed_base_ = 0;

  std::unique_ptr<exp::ThreadPool> pool_;

  bt::Round round_ = 0;
  std::uint64_t sessions_arrived_ = 0;
  std::uint64_t sessions_completed_ = 0;
  std::uint64_t sessions_aborted_ = 0;
  std::uint64_t sessions_removed_ = 0;
  std::uint64_t file_completions_ = 0;
  std::uint64_t takedown_removed_ = 0;

  EcosystemMetrics metrics_;
  std::uint64_t fingerprint_ = 14695981039346656037ULL;

  obs::Registry* registry_ = nullptr;

  static constexpr std::uint32_t kNoSession = 0xffffffffU;
};

}  // namespace mpbt::eco
