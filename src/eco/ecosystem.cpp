#include "eco/ecosystem.hpp"

#include <algorithm>
#include <utility>

#include "bt/fault.hpp"
#include "util/assert.hpp"

namespace mpbt::eco {
namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

void EcosystemConfig::validate() const {
  util::throw_if_invalid(num_torrents == 0, "EcosystemConfig: num_torrents must be >= 1");
  util::throw_if_invalid(!(zipf_s >= 0.0), "EcosystemConfig: zipf_s must be >= 0");
  util::throw_if_invalid(!(arrival_rate >= 0.0),
                         "EcosystemConfig: arrival_rate must be >= 0");
  util::throw_if_invalid(max_wants == 0, "EcosystemConfig: max_wants must be >= 1");
  util::throw_if_invalid(extra_want_prob < 0.0 || extra_want_prob > 1.0,
                         "EcosystemConfig: extra_want_prob must be in [0, 1]");
  for (const Takedown& td : takedowns) {
    util::throw_if_invalid(td.round == 0,
                           "EcosystemConfig: takedown round must be >= 1 (round 0 has "
                           "no pre-event population to measure against)");
    util::throw_if_invalid(td.fraction < 0.0 || td.fraction > 1.0,
                           "EcosystemConfig: takedown fraction must be in [0, 1]");
    util::throw_if_invalid(td.torrent >= static_cast<std::int64_t>(num_torrents),
                           "EcosystemConfig: takedown torrent out of range");
  }
  for (const FlashCrowd& fc : flash_crowds) {
    util::throw_if_invalid(fc.torrent >= static_cast<std::int64_t>(num_torrents),
                           "EcosystemConfig: flash crowd torrent out of range");
  }
}

std::string_view session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kActive:
      return "active";
    case SessionState::kCompleted:
      return "completed";
    case SessionState::kAborted:
      return "aborted";
    case SessionState::kRemoved:
      return "removed";
  }
  return "unknown";
}

Ecosystem::Ecosystem(EcosystemConfig config, std::size_t jobs)
    : config_(std::move(config)),
      zipf_(config_.num_torrents, config_.zipf_s),
      arrival_seeds_(exp::SeedStream(config_.seed).substream(1)) {
  config_.validate();
  const exp::SeedStream root(config_.seed);
  const exp::SeedStream swarm_seeds = root.substream(0);
  takedown_seed_base_ = root.at(2);

  // The ecosystem owns every arrival and departure: the per-swarm
  // template is neutralized so no peer enters or leaves a swarm without
  // flowing through the session model (the ledger invariant depends on
  // this).
  bt::SwarmConfig base = config_.swarm;
  base.arrival_rate = 0.0;
  base.arrival_cutoff_round = 0;
  base.initial_groups.clear();
  base.arrival_piece_probs.clear();
  base.max_population = 0;

  swarms_.reserve(config_.num_torrents);
  for (std::uint32_t t = 0; t < config_.num_torrents; ++t) {
    bt::SwarmConfig sc = base;
    sc.seed = swarm_seeds.at(t);
    swarms_.push_back(std::make_unique<bt::Swarm>(std::move(sc)));
    ledger_.push_back(swarms_.back()->population());
    peer_session_.emplace_back(swarms_.back()->store().size(), kNoSession);
  }
  metrics_.torrent_population.resize(config_.num_torrents);

  const std::size_t workers = jobs == 0 ? exp::ThreadPool::default_jobs() : jobs;
  if (workers > 1 && config_.num_torrents > 1) {
    pool_ = std::make_unique<exp::ThreadPool>(workers);
  }

  if (config_.initial_sessions > 0) {
    numeric::Rng init_rng(root.at(3));
    std::vector<ArrivalSpec> specs;
    specs.reserve(config_.initial_sessions);
    for (std::uint32_t i = 0; i < config_.initial_sessions; ++i) {
      specs.push_back({draw_wants(init_rng, -1)});
    }
    if (config_.pre_reserve) {
      std::vector<std::size_t> joins(config_.num_torrents, 0);
      for (const ArrivalSpec& spec : specs) {
        ++joins[spec.wants.front()];
      }
      for (std::uint32_t t = 0; t < config_.num_torrents; ++t) {
        if (joins[t] > 0) {
          swarms_[t]->reserve_peers(joins[t]);
        }
      }
    }
    for (ArrivalSpec& spec : specs) {
      start_session(std::move(spec.wants));
    }
  }
}

Ecosystem::~Ecosystem() = default;

void Ecosystem::step() {
  apply_takedowns();
  process_joins_and_arrivals();
  if (pool_) {
    exp::parallel_for_each(*pool_, swarms_.size(),
                           [this](std::size_t t) { swarms_[t]->step(); });
  } else {
    for (const auto& swarm : swarms_) {
      swarm->step();
    }
  }
  harvest_sessions();
  record_round();
  ++round_;
}

void Ecosystem::run_rounds(bt::Round rounds) {
  for (bt::Round r = 0; r < rounds; ++r) {
    step();
  }
}

void Ecosystem::apply_takedowns() {
  const bool skip_ledger = bt::fault::enabled(bt::fault::Fault::kEcoSkipTakedownLedger);
  for (const Takedown& td : config_.takedowns) {
    if (td.round != round_) {
      continue;
    }
    const std::uint32_t lo = td.torrent < 0 ? 0 : static_cast<std::uint32_t>(td.torrent);
    const std::uint32_t hi =
        td.torrent < 0 ? config_.num_torrents : static_cast<std::uint32_t>(td.torrent) + 1;
    for (std::uint32_t t = lo; t < hi; ++t) {
      bt::Swarm& swarm = *swarms_[t];
      const std::vector<bt::PeerId>& live = swarm.live_peers();
      const auto remove =
          static_cast<std::size_t>(td.fraction * static_cast<double>(live.size()));
      if (remove == 0) {
        continue;
      }
      numeric::Rng rng(exp::derive_seed(takedown_seed_base_, t, round_));
      const std::vector<std::size_t> picks =
          rng.sample_without_replacement(live.size(), remove);
      std::vector<bt::PeerId> ids;
      ids.reserve(picks.size());
      for (const std::size_t idx : picks) {
        ids.push_back(live[idx]);
      }
      std::sort(ids.begin(), ids.end());
      swarm.remove_peers(ids);
      takedown_removed_ += ids.size();
      if (!skip_ledger) {
        ledger_[t] -= ids.size();
      }
      for (const bt::PeerId id : ids) {
        const std::uint32_t sid = session_of(t, id);
        if (sid == kNoSession) {
          continue;  // initial seed, not session-owned
        }
        Session& s = sessions_[sid];
        if (s.state == SessionState::kActive && !s.join_pending &&
            s.active_torrent == t && s.active_peer == id) {
          s.state = SessionState::kRemoved;
          s.active_peer = bt::kNoPeer;
          ++sessions_removed_;
        } else {
          // A lingering seed of a session that moved on (or finished).
          const auto entry = std::make_pair(t, id);
          const auto it = std::find(s.seeding.begin(), s.seeding.end(), entry);
          if (it != s.seeding.end()) {
            s.seeding.erase(it);
          }
        }
      }
    }
  }
}

void Ecosystem::process_joins_and_arrivals() {
  // Sessions that finished a torrent last round re-announce into their
  // next want now, before new arrivals, in session-id order.
  std::vector<std::uint32_t> pending;
  for (const Session& s : sessions_) {
    if (s.state == SessionState::kActive && s.join_pending) {
      pending.push_back(s.id);
    }
  }

  // All of this round's want-list randomness comes from one per-round
  // derived stream, drawn serially: organic Poisson arrivals first, then
  // scripted flash crowds in config order.
  numeric::Rng rng(arrival_seeds_.at(round_));
  std::vector<ArrivalSpec> specs;
  const bool organic =
      config_.arrival_cutoff_round == 0 || round_ < config_.arrival_cutoff_round;
  if (organic && config_.arrival_rate > 0.0) {
    const int n = rng.poisson(config_.arrival_rate);
    for (int i = 0; i < n; ++i) {
      specs.push_back({draw_wants(rng, -1)});
    }
  }
  for (const FlashCrowd& fc : config_.flash_crowds) {
    if (fc.round != round_) {
      continue;
    }
    for (std::uint32_t i = 0; i < fc.sessions; ++i) {
      specs.push_back({draw_wants(rng, fc.torrent)});
    }
  }

  if (config_.pre_reserve) {
    std::vector<std::size_t> joins(config_.num_torrents, 0);
    for (const std::uint32_t sid : pending) {
      const Session& s = sessions_[sid];
      ++joins[s.wants[s.next_want]];
    }
    for (const ArrivalSpec& spec : specs) {
      ++joins[spec.wants.front()];
    }
    for (std::uint32_t t = 0; t < config_.num_torrents; ++t) {
      if (joins[t] > 0) {
        swarms_[t]->reserve_peers(joins[t]);
      }
    }
  }

  for (const std::uint32_t sid : pending) {
    join_session(sessions_[sid]);
  }
  for (ArrivalSpec& spec : specs) {
    start_session(std::move(spec.wants));
  }
}

void Ecosystem::harvest_sessions() {
  const bool leak = bt::fault::enabled(bt::fault::Fault::kEcoLeakDepartedSession);
  const bool skip_record =
      bt::fault::enabled(bt::fault::Fault::kEcoSkipCompletionRecord);

  const auto finish_torrent = [&](Session& s, std::uint32_t t, bt::PeerId id,
                                  bool still_live) {
    ++file_completions_;
    if (!skip_record) {
      s.completed.push_back(t);
    }
    if (still_live) {
      s.seeding.emplace_back(t, id);  // cross-swarm seeding: lingers here
    }
    s.active_peer = bt::kNoPeer;
    ++s.next_want;
    if (s.next_want < s.wants.size()) {
      s.join_pending = true;  // re-announces into the next want next round
    } else {
      s.state = SessionState::kCompleted;
      ++sessions_completed_;
    }
  };

  for (Session& s : sessions_) {
    // Lingering seeds whose linger window expired departed inside the
    // swarm step; observe that here and release them from the ledger.
    for (auto it = s.seeding.begin(); it != s.seeding.end();) {
      if (!swarms_[it->first]->is_live(it->second)) {
        --ledger_[it->first];
        it = s.seeding.erase(it);
      } else {
        ++it;
      }
    }
    if (s.state != SessionState::kActive || s.join_pending ||
        s.active_peer == bt::kNoPeer) {
      continue;
    }
    const std::uint32_t t = s.active_torrent;
    const bt::PeerId id = s.active_peer;
    bt::Swarm& swarm = *swarms_[t];
    const bt::Peer& p = swarm.peer(id);
    if (swarm.is_live(id)) {
      if (p.is_seed) {
        // Completed this round and lingers as a seed (stays on the ledger
        // until the linger window expires or a takedown removes it).
        finish_torrent(s, t, id, /*still_live=*/true);
      }
    } else {
      --ledger_[t];
      if (p.pieces.all()) {
        // Completed and departed in the same round (no linger configured).
        finish_torrent(s, t, id, /*still_live=*/false);
      } else {
        s.active_peer = bt::kNoPeer;
        if (!leak) {
          s.state = SessionState::kAborted;
          ++sessions_aborted_;
        }
      }
    }
  }
}

void Ecosystem::record_round() {
  std::uint32_t pop = 0;
  std::uint32_t seeds = 0;
  for (std::uint32_t t = 0; t < config_.num_torrents; ++t) {
    const bt::Swarm& swarm = *swarms_[t];
    const auto tp = static_cast<std::uint32_t>(swarm.population());
    const auto ts = static_cast<std::uint32_t>(swarm.num_seeds());
    metrics_.torrent_population[t].push_back(tp);
    pop += tp;
    seeds += ts;
    fingerprint_ = fnv1a(fingerprint_, tp);
    fingerprint_ = fnv1a(fingerprint_, ts);
    fingerprint_ = fnv1a(fingerprint_, swarm.metrics().completed_count());
  }
  const auto active = static_cast<std::uint32_t>(active_session_count());
  metrics_.population.push_back(pop);
  metrics_.seeds.push_back(seeds);
  metrics_.active_sessions.push_back(active);
  fingerprint_ = fnv1a(fingerprint_, active);
  fingerprint_ = fnv1a(fingerprint_, sessions_arrived_);
  fingerprint_ = fnv1a(fingerprint_, file_completions_);

  if (registry_ != nullptr) {
    registry_->counter("eco.rounds").add(1);
    registry_->gauge("eco.population").set(pop);
    registry_->gauge("eco.seeds").set(seeds);
    registry_->gauge("eco.active_sessions").set(active);
    registry_->gauge("eco.sessions_arrived").set(static_cast<double>(sessions_arrived_));
    registry_->gauge("eco.file_completions").set(static_cast<double>(file_completions_));
    registry_->gauge("eco.takedown_removed").set(static_cast<double>(takedown_removed_));
  }
}

std::size_t Ecosystem::active_session_count() const {
  std::size_t n = 0;
  for (const Session& s : sessions_) {
    if (s.state == SessionState::kActive) {
      ++n;
    }
  }
  return n;
}

std::size_t Ecosystem::population() const {
  std::size_t n = 0;
  for (const auto& swarm : swarms_) {
    n += swarm->population();
  }
  return n;
}

std::size_t Ecosystem::num_seeds() const {
  std::size_t n = 0;
  for (const auto& swarm : swarms_) {
    n += swarm->num_seeds();
  }
  return n;
}

TransientSummary Ecosystem::transient(const Takedown& takedown) const {
  const std::size_t rounds = metrics_.population.size();
  util::throw_if_invalid(takedown.round == 0 || takedown.round >= rounds,
                         "Ecosystem::transient: takedown round not inside the "
                         "recorded series");
  const std::uint32_t lo =
      takedown.torrent < 0 ? 0 : static_cast<std::uint32_t>(takedown.torrent);
  const std::uint32_t hi = takedown.torrent < 0
                               ? config_.num_torrents
                               : static_cast<std::uint32_t>(takedown.torrent) + 1;
  const auto sum_at = [&](std::size_t r) {
    double sum = 0.0;
    for (std::uint32_t t = lo; t < hi; ++t) {
      sum += metrics_.torrent_population[t][r];
    }
    return sum;
  };

  TransientSummary out;
  out.pre = sum_at(takedown.round - 1);
  out.trough = out.pre;
  for (std::size_t r = takedown.round; r < rounds; ++r) {
    out.trough = std::min(out.trough, sum_at(r));
  }
  out.final_population = sum_at(rounds - 1);
  for (std::size_t r = takedown.round; r < rounds; ++r) {
    if (sum_at(r) >= 0.9 * out.pre) {
      out.recovery_rounds = static_cast<double>(r - takedown.round);
      break;
    }
  }
  out.recovered_frac = out.pre > 0.0 ? out.final_population / out.pre : 0.0;
  return out;
}

std::vector<std::uint32_t> Ecosystem::draw_wants(numeric::Rng& rng, std::int64_t first) {
  const std::uint32_t cap = std::min(config_.max_wants, config_.num_torrents);
  std::vector<std::uint32_t> wants;
  wants.reserve(cap);
  wants.push_back(first >= 0 ? static_cast<std::uint32_t>(first) : zipf_.sample(rng));
  while (wants.size() < cap && rng.bernoulli(config_.extra_want_prob)) {
    const std::uint32_t candidate = zipf_.sample(rng);
    if (std::find(wants.begin(), wants.end(), candidate) == wants.end()) {
      wants.push_back(candidate);
    }
  }
  return wants;
}

void Ecosystem::start_session(std::vector<std::uint32_t> wants) {
  Session s;
  s.id = static_cast<std::uint32_t>(sessions_.size());
  s.arrived = round_;
  s.wants = std::move(wants);
  sessions_.push_back(std::move(s));
  ++sessions_arrived_;
  join_session(sessions_.back());
}

void Ecosystem::join_session(Session& session) {
  const std::uint32_t t = session.wants[session.next_want];
  const bt::PeerId id = swarms_[t]->add_peer();
  session.active_torrent = t;
  session.active_peer = id;
  session.join_pending = false;
  map_peer(t, id, session.id);
  ++ledger_[t];
}

void Ecosystem::map_peer(std::uint32_t torrent, bt::PeerId id, std::uint32_t session) {
  std::vector<std::uint32_t>& map = peer_session_[torrent];
  if (id >= map.size()) {
    map.resize(static_cast<std::size_t>(id) + 1, kNoSession);
  }
  map[id] = session;
}

std::uint32_t Ecosystem::session_of(std::uint32_t torrent, bt::PeerId id) const {
  const std::vector<std::uint32_t>& map = peer_session_[torrent];
  return id < map.size() ? map[id] : kNoSession;
}

}  // namespace mpbt::eco
