// Zipf-distributed torrent popularity.
//
// File popularity in deployed BitTorrent ecosystems is heavy-tailed:
// measurement studies consistently fit a Zipf(-like) law where the t-th
// most popular file attracts traffic proportional to 1/(t+1)^s. The
// sampler precomputes the normalized CDF once and answers each draw
// with a single uniform01() plus a binary search, so sampling cost is
// O(log N) and — crucially for the determinism contract — consumes
// exactly one RNG draw per sample regardless of the outcome.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/rng.hpp"

namespace mpbt::eco {

class ZipfSampler {
 public:
  /// `n` categories with weight(t) = 1/(t+1)^s. `s == 0` degenerates to
  /// the uniform distribution; larger `s` concentrates mass on low
  /// indices. Throws on n == 0 or s < 0.
  ZipfSampler(std::size_t n, double s);

  /// Draws a category in [0, size()). Exactly one uniform01() draw.
  std::uint32_t sample(numeric::Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

  /// Normalized probability of category `t` (for tests / reporting).
  double probability(std::size_t t) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[t] = P(category <= t); back() == 1
  double s_ = 0.0;
};

}  // namespace mpbt::eco
