#include "fluid/qiu_srikant.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::fluid {

void FluidParams::validate() const {
  util::throw_if_invalid(lambda < 0.0, "FluidParams: lambda must be >= 0");
  util::throw_if_invalid(mu <= 0.0, "FluidParams: mu must be > 0");
  util::throw_if_invalid(c <= 0.0, "FluidParams: c must be > 0");
  util::throw_if_invalid(theta < 0.0, "FluidParams: theta must be >= 0");
  util::throw_if_invalid(gamma <= 0.0, "FluidParams: gamma must be > 0");
  util::throw_if_invalid(eta < 0.0 || eta > 1.0, "FluidParams: eta must be in [0, 1]");
}

double completion_rate(const FluidParams& params, const FluidState& state) {
  const double download_limited = params.c * state.x;
  const double upload_limited = params.mu * (params.eta * state.x + state.y);
  return std::min(download_limited, upload_limited);
}

namespace {
struct Derivative {
  double dx;
  double dy;
};

Derivative derivative(const FluidParams& params, const FluidState& state) {
  const double rate = completion_rate(params, state);
  return {params.lambda - params.theta * state.x - rate, rate - params.gamma * state.y};
}
}  // namespace

FluidState rk4_step(const FluidParams& params, const FluidState& state, double dt) {
  util::throw_if_invalid(dt <= 0.0, "rk4_step requires dt > 0");
  const Derivative k1 = derivative(params, state);
  const FluidState s2{state.x + 0.5 * dt * k1.dx, state.y + 0.5 * dt * k1.dy};
  const Derivative k2 = derivative(params, s2);
  const FluidState s3{state.x + 0.5 * dt * k2.dx, state.y + 0.5 * dt * k2.dy};
  const Derivative k3 = derivative(params, s3);
  const FluidState s4{state.x + dt * k3.dx, state.y + dt * k3.dy};
  const Derivative k4 = derivative(params, s4);
  FluidState next;
  next.x = state.x + dt / 6.0 * (k1.dx + 2.0 * k2.dx + 2.0 * k3.dx + k4.dx);
  next.y = state.y + dt / 6.0 * (k1.dy + 2.0 * k2.dy + 2.0 * k3.dy + k4.dy);
  next.x = std::max(next.x, 0.0);
  next.y = std::max(next.y, 0.0);
  return next;
}

FluidTrajectory integrate(const FluidParams& params, FluidState initial, double horizon,
                          double dt, std::size_t sample_every) {
  params.validate();
  util::throw_if_invalid(horizon <= 0.0, "integrate requires horizon > 0");
  util::throw_if_invalid(dt <= 0.0, "integrate requires dt > 0");
  util::throw_if_invalid(sample_every == 0, "integrate requires sample_every >= 1");

  FluidTrajectory trajectory;
  FluidState state = initial;
  trajectory.leechers.add(0.0, state.x);
  trajectory.seeds.add(0.0, state.y);
  const auto steps = static_cast<std::size_t>(std::ceil(horizon / dt));
  for (std::size_t step = 1; step <= steps; ++step) {
    state = rk4_step(params, state, dt);
    if (step % sample_every == 0 || step == steps) {
      const double t = static_cast<double>(step) * dt;
      trajectory.leechers.add(t, state.x);
      trajectory.seeds.add(t, state.y);
    }
  }
  trajectory.final_state = state;
  return trajectory;
}

FluidState steady_state(const FluidParams& params) {
  params.validate();
  // Candidate 1: download-constrained (c x is the bottleneck).
  // lambda - theta x - c x = 0.
  FluidState download_constrained;
  download_constrained.x = params.lambda / (params.c + params.theta);
  download_constrained.y =
      params.c * download_constrained.x / params.gamma;  // completions feed seeds
  const double dl_rate = params.c * download_constrained.x;
  const double dl_upload =
      params.mu * (params.eta * download_constrained.x + download_constrained.y);
  if (dl_rate <= dl_upload + 1e-12) {
    return download_constrained;
  }
  // Candidate 2: upload-constrained. mu(eta x + y) = lambda - theta x with
  // y = (lambda - theta x) / gamma:
  //   mu eta x = (lambda - theta x)(1 - mu / gamma)
  const double factor = 1.0 - params.mu / params.gamma;
  const double denom = params.mu * params.eta + params.theta * factor;
  FluidState upload_constrained;
  if (denom > 0.0 && factor > 0.0) {
    upload_constrained.x = params.lambda * factor / denom;
  } else {
    // Seeds outlive the demand (gamma <= mu): capacity is effectively
    // unbounded, so the system is download-constrained after all.
    return download_constrained;
  }
  upload_constrained.y =
      (params.lambda - params.theta * upload_constrained.x) / params.gamma;
  return upload_constrained;
}

double steady_state_download_time(const FluidParams& params) {
  const FluidState eq = steady_state(params);
  if (params.lambda <= 0.0) {
    return 0.0;
  }
  // Little's law over the leecher population.
  return eq.x / params.lambda;
}

}  // namespace mpbt::fluid
