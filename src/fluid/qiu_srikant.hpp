// The Qiu–Srikant fluid model of BitTorrent-like networks (SIGCOMM 2004)
// — reference [9] of the paper.
//
// The paper's Section 2.2 contrasts its protocol-level Markov model with
// fluid models, which "hide protocol dynamics and instead rely on specific
// input parameters". This module implements the classic fluid ODE both as
// a baseline and to let benches show what the multiphased model adds
// (phases, potential-set dynamics) that aggregate fluid state cannot.
//
// State: x(t) = leechers, y(t) = seeds. Dynamics:
//   dx/dt = lambda - theta x - min{ c x, mu (eta x + y) }
//   dy/dt = min{ c x, mu (eta x + y) } - gamma y
// with lambda the arrival rate, theta the abort rate, c the download
// capacity, mu the upload capacity, eta the sharing effectiveness, and
// gamma the seed departure rate (all per file unit).
#pragma once

#include <vector>

#include "numeric/timeseries.hpp"

namespace mpbt::fluid {

struct FluidParams {
  double lambda = 2.0;  ///< peer arrival rate
  double mu = 1.0;      ///< upload capacity (files per unit time)
  double c = 2.0;       ///< download capacity (files per unit time)
  double theta = 0.0;   ///< leecher abort rate
  double gamma = 0.5;   ///< seed departure rate
  double eta = 0.9;     ///< sharing effectiveness in [0, 1]

  void validate() const;
};

struct FluidState {
  double x = 0.0;  ///< leechers
  double y = 0.0;  ///< seeds
};

/// Instantaneous download completion rate min{c x, mu (eta x + y)}.
double completion_rate(const FluidParams& params, const FluidState& state);

/// One RK4 step of size dt; negative populations are clamped to 0.
FluidState rk4_step(const FluidParams& params, const FluidState& state, double dt);

struct FluidTrajectory {
  numeric::TimeSeries leechers;
  numeric::TimeSeries seeds;
  FluidState final_state;
};

/// Integrates from `initial` over [0, horizon] with step dt, sampling
/// every `sample_every` steps. Requires horizon > 0, dt > 0.
FluidTrajectory integrate(const FluidParams& params, FluidState initial, double horizon,
                          double dt = 0.01, std::size_t sample_every = 10);

/// Closed-form steady state (Qiu–Srikant Section 3.1), valid when the
/// system is stable (gamma, mu, lambda positive). Returns the equilibrium
/// (x*, y*).
FluidState steady_state(const FluidParams& params);

/// Average download time in steady state via Little's law:
/// T = x* / (lambda (1 - theta-induced loss)). With theta = 0 this is
/// x* / lambda.
double steady_state_download_time(const FluidParams& params);

}  // namespace mpbt::fluid
