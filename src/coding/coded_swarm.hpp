// Network-coded swarm simulator — the ref. [5] comparison system
// (Gkantsidis & Rodriguez, "Network coding for large scale content
// distribution", INFOCOM 2005), which the paper discusses in Section 2.2.
//
// Peers exchange random linear combinations of pieces instead of pieces:
// knowledge is a GF(2) subspace (exact arithmetic, see gf2.hpp) and a
// download completes at full rank. The claim to reproduce: coding
// improves upload utilization and swarm entropy when connectivity is poor
// (small peer sets, few connections) — in piece terms, there is no
// last-piece problem because ANY peer with different knowledge can help,
// not just holders of the specific missing piece.
//
// The round structure mirrors bt::Swarm (arrivals → bootstrap → mutual-
// interest matching → reciprocal exchange → departures) so results are
// comparable; connections are re-matched every round (coding has no piece
// selection, so persistent-connection bookkeeping adds nothing).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "bt/id_set.hpp"
#include "bt/tracker.hpp"
#include "coding/gf2.hpp"
#include "numeric/stats.hpp"
#include "numeric/timeseries.hpp"

namespace mpbt::coding {

struct CodedSwarmConfig {
  /// B — file pieces (= the decoding rank target).
  std::uint32_t num_pieces = 50;
  /// k — exchanges per peer per round.
  std::uint32_t max_connections = 4;
  /// s — neighbor set size.
  std::uint32_t peer_set_size = 10;
  double arrival_rate = 1.0;
  std::uint32_t initial_seeds = 1;
  /// Coded blocks each seed uploads per round.
  std::uint32_t seed_capacity = 4;
  /// Probability a rank-0 peer gets bootstrapped by a neighbor per round.
  double optimistic_unchoke_prob = 1.0;
  /// true — uploaders craft combinations innovative for the receiver
  /// (large-field behavior, as in ref. [5]); false — blind random GF(2)
  /// combinations, which can waste transmissions.
  bool smart_encoding = true;
  std::uint32_t max_population = 0;  ///< 0 = unlimited
  std::uint64_t seed = 13;

  void validate() const;
};

class CodedSwarm {
 public:
  explicit CodedSwarm(CodedSwarmConfig config);

  void step();
  void run_rounds(std::uint32_t rounds);

  std::uint32_t round() const { return round_; }
  std::size_t population() const { return live_.size(); }
  std::size_t num_leechers() const;

  const CodedSwarmConfig& config() const { return config_; }

  // --- metrics -------------------------------------------------------------
  const std::vector<double>& completion_times() const { return completion_times_; }
  const numeric::TimeSeries& population_series() const { return population_series_; }
  /// Average rounds between reaching rank (ordinal-1) and rank ordinal;
  /// -1 when never observed. Ordinal is 1-based.
  double rank_ttd(std::uint32_t ordinal) const;
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t wasted_transmissions() const { return wasted_transmissions_; }
  double wasted_fraction() const {
    return transmissions_ == 0
               ? 0.0
               : static_cast<double>(wasted_transmissions_) / static_cast<double>(transmissions_);
  }
  std::size_t completed_count() const { return completion_times_.size(); }

 private:
  struct CodedPeer {
    explicit CodedPeer(std::size_t dims, std::uint32_t joined_round)
        : knowledge(dims), joined(joined_round) {}
    Gf2Basis knowledge;
    std::uint32_t joined;
    bool is_seed = false;
    bt::IdSet neighbors;
    std::vector<std::uint32_t> rank_rounds;  // round each rank was reached
  };

  bt::PeerId create_peer(bool as_seed);
  void assign_neighbors(bt::PeerId id);
  void deliver(CodedPeer& receiver, const CodedPeer& sender);
  void depart(bt::PeerId id);

  CodedSwarmConfig config_;
  numeric::Rng rng_;
  bt::Tracker tracker_;
  std::vector<std::unique_ptr<CodedPeer>> peers_;
  std::vector<bool> departed_;
  std::vector<bt::PeerId> live_;
  std::uint32_t round_ = 0;

  std::vector<double> completion_times_;
  numeric::TimeSeries population_series_;
  std::vector<double> ttd_sum_;
  std::vector<std::uint64_t> ttd_count_;
  std::uint64_t transmissions_ = 0;
  std::uint64_t wasted_transmissions_ = 0;
};

}  // namespace mpbt::coding
