#include "coding/gf2.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mpbt::coding {

std::size_t gf2_words(std::size_t dims) { return (dims + 63) / 64; }

Gf2Vector gf2_unit(std::size_t dims, std::size_t i) {
  util::throw_if_out_of_range(i >= dims, "gf2_unit: index out of range");
  Gf2Vector v(gf2_words(dims), 0);
  v[i / 64] = 1ULL << (i % 64);
  return v;
}

namespace {
bool is_zero(const Gf2Vector& v) {
  for (std::uint64_t w : v) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

void xor_into(Gf2Vector& target, const Gf2Vector& src) {
  for (std::size_t w = 0; w < target.size(); ++w) {
    target[w] ^= src[w];
  }
}
}  // namespace

Gf2Basis::Gf2Basis(std::size_t dims) : dims_(dims) {
  util::throw_if_invalid(dims == 0, "Gf2Basis requires dims >= 1");
}

int Gf2Basis::leading_bit(const Gf2Vector& v) {
  for (std::size_t w = v.size(); w-- > 0;) {
    if (v[w] != 0) {
      return static_cast<int>(w * 64 + (63 - static_cast<std::size_t>(
                                                 __builtin_clzll(v[w]))));
    }
  }
  return -1;
}

void Gf2Basis::reduce(Gf2Vector& v) const {
  for (const Gf2Vector& row : rows_) {
    const int lead = leading_bit(row);
    MPBT_ASSERT(lead >= 0);
    const std::size_t word = static_cast<std::size_t>(lead) / 64;
    const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(lead) % 64);
    if (v[word] & mask) {
      xor_into(v, row);
    }
  }
}

bool Gf2Basis::contains(const Gf2Vector& v) const {
  util::throw_if_invalid(v.size() != gf2_words(dims_), "Gf2Basis: vector size mismatch");
  Gf2Vector copy = v;
  reduce(copy);
  return is_zero(copy);
}

bool Gf2Basis::insert(Gf2Vector v) {
  util::throw_if_invalid(v.size() != gf2_words(dims_), "Gf2Basis: vector size mismatch");
  reduce(v);
  if (is_zero(v)) {
    return false;
  }
  // Keep rows ordered by decreasing leading bit and fully reduced against
  // the new row.
  const int lead = leading_bit(v);
  const std::size_t word = static_cast<std::size_t>(lead) / 64;
  const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(lead) % 64);
  for (Gf2Vector& row : rows_) {
    if (row[word] & mask) {
      xor_into(row, v);
    }
  }
  const auto position = std::lower_bound(
      rows_.begin(), rows_.end(), lead,
      [](const Gf2Vector& row, int l) { return leading_bit(row) > l; });
  rows_.insert(position, std::move(v));
  return true;
}

Gf2Vector Gf2Basis::random_combination(numeric::Rng& rng) const {
  Gf2Vector out(gf2_words(dims_), 0);
  if (rows_.empty()) {
    return out;
  }
  bool nonzero = false;
  while (!nonzero) {
    std::fill(out.begin(), out.end(), 0);
    for (const Gf2Vector& row : rows_) {
      if (rng.bernoulli(0.5)) {
        xor_into(out, row);
        nonzero = true;
      }
    }
    nonzero = nonzero && !is_zero(out);
  }
  return out;
}

bool Gf2Basis::can_help(const Gf2Basis& other) const {
  util::throw_if_invalid(dims_ != other.dims_, "Gf2Basis: dimension mismatch");
  if (rank() > other.rank()) {
    return true;  // pigeonhole: some row must be outside the smaller span
  }
  for (const Gf2Vector& row : rows_) {
    if (!other.contains(row)) {
      return true;
    }
  }
  return false;
}

Gf2Vector Gf2Basis::innovative_for(const Gf2Basis& other, numeric::Rng& rng) const {
  util::throw_if_invalid(!can_help(other), "Gf2Basis::innovative_for: nothing to teach");
  // Pick a random innovative basis row, then randomize it by XORing a
  // random combination of the remaining rows (stays innovative: adding
  // in-span or other vectors cannot cancel the out-of-span component
  // unless another innovative row is added — which keeps it innovative
  // unless the sum lands in other's span; re-check and retry).
  std::vector<std::size_t> innovative_rows;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (!other.contains(rows_[r])) {
      innovative_rows.push_back(r);
    }
  }
  MPBT_ASSERT(!innovative_rows.empty());
  for (int attempt = 0; attempt < 16; ++attempt) {
    Gf2Vector out = rows_[innovative_rows[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(innovative_rows.size()) - 1))]];
    for (const Gf2Vector& row : rows_) {
      if (rng.bernoulli(0.25)) {
        xor_into(out, row);
      }
    }
    if (!other.contains(out) && !is_zero(out)) {
      return out;
    }
  }
  // Fallback: the plain innovative row.
  return rows_[innovative_rows.front()];
}

}  // namespace mpbt::coding
