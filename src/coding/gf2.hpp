// GF(2) linear algebra for network-coded content distribution.
//
// A network-coded "piece" is a random linear combination of the file's B
// pieces; a peer's knowledge is the subspace spanned by the coded pieces
// it holds, and it can decode once its basis reaches rank B. Gf2Basis
// maintains a reduced basis incrementally: insertion is O(B^2 / 64) worst
// case, membership tests likewise. Exact arithmetic over GF(2) — no
// innovative-with-high-probability hand-waving; a transmission either is
// or is not in the receiver's span.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/rng.hpp"

namespace mpbt::coding {

/// A vector in GF(2)^B, packed 64 bits per word.
using Gf2Vector = std::vector<std::uint64_t>;

/// Number of 64-bit words needed for `dims` coordinates.
std::size_t gf2_words(std::size_t dims);

/// The i-th unit vector in GF(2)^dims.
Gf2Vector gf2_unit(std::size_t dims, std::size_t i);

class Gf2Basis {
 public:
  /// An empty subspace of GF(2)^dims. Requires dims >= 1.
  explicit Gf2Basis(std::size_t dims);

  std::size_t dims() const { return dims_; }
  std::size_t rank() const { return rows_.size(); }
  bool full() const { return rank() == dims_; }

  /// True if `v` lies in the span (the zero vector always does).
  bool contains(const Gf2Vector& v) const;

  /// Inserts `v`; returns true when it was innovative (rank grew).
  bool insert(Gf2Vector v);

  /// A uniformly random vector of the span (possibly zero for the empty
  /// basis; never zero otherwise — resampled).
  Gf2Vector random_combination(numeric::Rng& rng) const;

  /// True if this basis holds at least one vector outside `other`'s span —
  /// i.e., this peer could teach `other` something.
  bool can_help(const Gf2Basis& other) const;

  /// A deliberately innovative vector for `other` (a basis row outside its
  /// span, randomized by combining with in-span rows); requires
  /// can_help(other).
  Gf2Vector innovative_for(const Gf2Basis& other, numeric::Rng& rng) const;

 private:
  void reduce(Gf2Vector& v) const;
  static int leading_bit(const Gf2Vector& v);

  std::size_t dims_;
  /// Reduced rows ordered by decreasing leading bit.
  std::vector<Gf2Vector> rows_;
};

}  // namespace mpbt::coding
