#include "coding/coded_swarm.hpp"

#include <algorithm>
#include <span>

#include "util/assert.hpp"

namespace mpbt::coding {

void CodedSwarmConfig::validate() const {
  util::throw_if_invalid(num_pieces == 0, "CodedSwarmConfig: num_pieces must be >= 1");
  util::throw_if_invalid(max_connections == 0,
                         "CodedSwarmConfig: max_connections must be >= 1");
  util::throw_if_invalid(peer_set_size == 0, "CodedSwarmConfig: peer_set_size must be >= 1");
  util::throw_if_invalid(arrival_rate < 0.0, "CodedSwarmConfig: arrival_rate must be >= 0");
  util::throw_if_invalid(optimistic_unchoke_prob < 0.0 || optimistic_unchoke_prob > 1.0,
                         "CodedSwarmConfig: optimistic_unchoke_prob must be in [0, 1]");
}

CodedSwarm::CodedSwarm(CodedSwarmConfig config) : config_(config), rng_(config.seed) {
  config_.validate();
  ttd_sum_.assign(static_cast<std::size_t>(config_.num_pieces) + 1, 0.0);
  ttd_count_.assign(static_cast<std::size_t>(config_.num_pieces) + 1, 0);
  for (std::uint32_t i = 0; i < config_.initial_seeds; ++i) {
    create_peer(/*as_seed=*/true);
  }
  for (bt::PeerId id : live_) {
    assign_neighbors(id);
  }
}

bt::PeerId CodedSwarm::create_peer(bool as_seed) {
  const auto id = static_cast<bt::PeerId>(peers_.size());
  peers_.push_back(std::make_unique<CodedPeer>(config_.num_pieces, round_));
  departed_.push_back(false);
  CodedPeer& p = *peers_.back();
  p.is_seed = as_seed;
  if (as_seed) {
    for (std::size_t i = 0; i < config_.num_pieces; ++i) {
      p.knowledge.insert(gf2_unit(config_.num_pieces, i));
    }
    MPBT_ASSERT(p.knowledge.full());
  }
  live_.push_back(id);
  tracker_.add_peer(id);
  return id;
}

void CodedSwarm::assign_neighbors(bt::PeerId id) {
  CodedPeer& p = *peers_[id];
  if (p.neighbors.size() >= config_.peer_set_size) {
    return;
  }
  for (bt::PeerId other :
       tracker_.sample_peers(config_.peer_set_size - p.neighbors.size(), id, rng_)) {
    if (other == id || departed_[other]) {
      continue;
    }
    p.neighbors.insert(other);
    peers_[other]->neighbors.insert(id);
  }
}

void CodedSwarm::deliver(CodedPeer& receiver, const CodedPeer& sender) {
  ++transmissions_;
  Gf2Vector coded;
  if (config_.smart_encoding && sender.knowledge.can_help(receiver.knowledge)) {
    coded = sender.knowledge.innovative_for(receiver.knowledge, rng_);
  } else {
    coded = sender.knowledge.random_combination(rng_);
  }
  const std::size_t before = receiver.knowledge.rank();
  if (receiver.knowledge.insert(std::move(coded))) {
    const auto ordinal = static_cast<std::uint32_t>(before + 1);
    const std::uint32_t prev_round =
        receiver.rank_rounds.empty() ? receiver.joined : receiver.rank_rounds.back();
    receiver.rank_rounds.push_back(round_);
    ttd_sum_[ordinal] += static_cast<double>(round_ - prev_round + 1);
    ++ttd_count_[ordinal];
  } else {
    ++wasted_transmissions_;
  }
}

void CodedSwarm::depart(bt::PeerId id) {
  MPBT_ASSERT(!departed_[id]);
  departed_[id] = true;
  tracker_.remove_peer(id);
  CodedPeer& p = *peers_[id];
  for (bt::PeerId nb : p.neighbors.as_vector()) {
    if (nb < peers_.size() && peers_[nb] != nullptr) {
      peers_[nb]->neighbors.erase(id);
    }
  }
  p.neighbors.clear();
  live_.erase(std::remove(live_.begin(), live_.end(), id), live_.end());
}

std::size_t CodedSwarm::num_leechers() const {
  std::size_t n = 0;
  for (bt::PeerId id : live_) {
    if (!peers_[id]->is_seed) {
      ++n;
    }
  }
  return n;
}

double CodedSwarm::rank_ttd(std::uint32_t ordinal) const {
  util::throw_if_out_of_range(ordinal > config_.num_pieces, "rank_ttd: ordinal out of range");
  if (ordinal == 0 || ttd_count_[ordinal] == 0) {
    return -1.0;
  }
  return ttd_sum_[ordinal] / static_cast<double>(ttd_count_[ordinal]);
}

void CodedSwarm::step() {
  // Arrivals.
  const int arrivals = rng_.poisson(config_.arrival_rate);
  for (int i = 0; i < arrivals; ++i) {
    if (config_.max_population != 0 && live_.size() >= config_.max_population) {
      continue;
    }
    const bt::PeerId id = create_peer(/*as_seed=*/false);
    assign_neighbors(id);
  }

  // Bootstrap rank-0 peers (seeds first, optimistic otherwise).
  std::map<bt::PeerId, std::uint32_t> seed_budget;
  for (bt::PeerId id : live_) {
    if (peers_[id]->is_seed) {
      seed_budget[id] = config_.seed_capacity;
    }
  }
  std::vector<bt::PeerId> order = live_;
  rng_.shuffle(std::span<bt::PeerId>(order));
  for (bt::PeerId id : order) {
    if (departed_[id]) {
      continue;
    }
    CodedPeer& p = *peers_[id];
    if (p.is_seed || p.knowledge.rank() != 0) {
      continue;
    }
    bt::PeerId source = bt::kNoPeer;
    for (bt::PeerId nb : p.neighbors.as_vector()) {
      if (departed_[nb]) {
        continue;
      }
      if (peers_[nb]->is_seed) {
        auto budget = seed_budget.find(nb);
        if (budget != seed_budget.end() && budget->second > 0) {
          --budget->second;
          source = nb;
          break;
        }
      }
    }
    if (source == bt::kNoPeer && rng_.bernoulli(config_.optimistic_unchoke_prob)) {
      std::vector<bt::PeerId> holders;
      for (bt::PeerId nb : p.neighbors.as_vector()) {
        if (!departed_[nb] && peers_[nb]->knowledge.rank() > 0) {
          holders.push_back(nb);
        }
      }
      if (!holders.empty()) {
        source = holders[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(holders.size()) - 1))];
      }
    }
    if (source != bt::kNoPeer) {
      deliver(p, *peers_[source]);
    }
  }

  // Reciprocal exchange: greedy random matching within mutual-help pairs,
  // up to k exchanges per peer per round.
  std::vector<std::uint32_t> exchanges_used(peers_.size(), 0);
  rng_.shuffle(std::span<bt::PeerId>(order));
  for (bt::PeerId id : order) {
    if (departed_[id]) {
      continue;
    }
    CodedPeer& p = *peers_[id];
    if (p.is_seed || p.knowledge.rank() == 0) {
      continue;
    }
    std::vector<bt::PeerId> partners;
    for (bt::PeerId nb : p.neighbors.as_vector()) {
      if (departed_[nb] || peers_[nb]->is_seed ||
          exchanges_used[nb] >= config_.max_connections) {
        continue;
      }
      // Strict reciprocity: both must be able to teach the other.
      if (p.knowledge.can_help(peers_[nb]->knowledge) &&
          peers_[nb]->knowledge.can_help(p.knowledge)) {
        partners.push_back(nb);
      }
    }
    rng_.shuffle(std::span<bt::PeerId>(partners));
    for (bt::PeerId nb : partners) {
      if (exchanges_used[id] >= config_.max_connections) {
        break;
      }
      if (exchanges_used[nb] >= config_.max_connections || departed_[nb]) {
        continue;
      }
      CodedPeer& q = *peers_[nb];
      // Earlier exchanges this round may have made the pair stale.
      if (!p.knowledge.can_help(q.knowledge) || !q.knowledge.can_help(p.knowledge)) {
        continue;
      }
      deliver(p, q);
      deliver(q, p);
      ++exchanges_used[id];
      ++exchanges_used[nb];
    }
  }

  // Seed service to everyone (coding systems have no tit-for-tat gate on
  // the source; ref. [5] assumes a cooperative server).
  for (auto& [seed_id, budget] : seed_budget) {
    if (departed_[seed_id]) {
      continue;
    }
    CodedPeer& seed = *peers_[seed_id];
    std::vector<bt::PeerId> takers;
    for (bt::PeerId nb : seed.neighbors.as_vector()) {
      if (!departed_[nb] && !peers_[nb]->is_seed && !peers_[nb]->knowledge.full() &&
          peers_[nb]->knowledge.rank() > 0) {
        takers.push_back(nb);
      }
    }
    rng_.shuffle(std::span<bt::PeerId>(takers));
    for (bt::PeerId taker : takers) {
      if (budget == 0) {
        break;
      }
      deliver(*peers_[taker], seed);
      --budget;
    }
  }

  // Departures at full rank.
  const std::vector<bt::PeerId> snapshot = live_;
  for (bt::PeerId id : snapshot) {
    if (!departed_[id] && !peers_[id]->is_seed && peers_[id]->knowledge.full()) {
      completion_times_.push_back(static_cast<double>(round_ - peers_[id]->joined + 1));
      depart(id);
    }
  }

  population_series_.add(static_cast<double>(round_), static_cast<double>(num_leechers()));
  ++round_;
}

void CodedSwarm::run_rounds(std::uint32_t rounds) {
  for (std::uint32_t r = 0; r < rounds; ++r) {
    step();
  }
}

}  // namespace mpbt::coding
