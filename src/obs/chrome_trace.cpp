#include "obs/chrome_trace.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace mpbt::obs {

namespace {

// Worker lanes live in pid 1; sweep task t gets pid kTaskPidBase + t.
constexpr std::uint64_t kWorkerPid = 1;
constexpr std::uint64_t kTaskPidBase = 2;

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

/// Incremental writer for the {"traceEvents": [...]} envelope. Events
/// are buffered per call and flushed as complete JSON values, so the
/// output is valid whenever finish() runs.
class EventStream {
 public:
  explicit EventStream(std::ostream& os) : os_(os) { os_ << "{\"traceEvents\":[\n"; }

  /// `body` is the inside of one event object (without braces).
  void event(const std::string& body) {
    if (!first_) {
      os_ << ",\n";
    }
    first_ = false;
    os_ << '{' << body << '}';
  }

  void metadata(std::uint64_t pid, std::int64_t tid, std::string_view kind,
                std::string_view name) {
    std::string body;
    body += "\"ph\":\"M\",\"name\":\"";
    body += kind;
    body += "\",\"pid\":";
    body += std::to_string(pid);
    if (tid >= 0) {
      body += ",\"tid\":";
      body += std::to_string(tid);
    }
    body += ",\"args\":{\"name\":\"";
    append_escaped(body, name);
    body += "\"}";
    event(body);
  }

  void finish() { os_ << "\n],\"displayTimeUnit\":\"ms\"}\n"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string event_prefix(std::string_view name, std::uint64_t pid, std::uint64_t tid,
                         double ts) {
  std::string body;
  body += "\"name\":\"";
  // Names can come from user-controlled labels (profiler span names, sweep
  // labels), so they need the same escaping as metadata strings.
  append_escaped(body, name);
  body += "\",\"pid\":";
  body += std::to_string(pid);
  body += ",\"tid\":";
  body += std::to_string(tid);
  body += ",\"ts\":";
  append_double(body, ts);
  return body;
}

void write_sim_event(EventStream& stream, const TraceEvent& e, std::uint64_t pid,
                     const ChromeTraceOptions& options) {
  const double ts = static_cast<double>(e.round) * options.us_per_round;
  switch (e.type) {
    case EventType::kRoundSample: {
      std::string body = event_prefix("population", pid, 0, ts);
      body += ",\"ph\":\"C\",\"args\":{\"leechers\":";
      append_double(body, e.value);
      body += ",\"seeds\":";
      append_double(body, e.value2);
      body += "}";
      stream.event(body);
      return;
    }
    case EventType::kEntropySample: {
      std::string body = event_prefix("entropy", pid, 0, ts);
      body += ",\"ph\":\"C\",\"args\":{\"entropy\":";
      append_double(body, e.value);
      body += ",\"transfer_efficiency\":";
      append_double(body, e.value2);
      body += "}";
      stream.event(body);
      return;
    }
    case EventType::kConnectionAttempt:
      if (!options.include_attempts) {
        return;
      }
      break;
    default:
      break;
  }
  // Everything else renders as an instant event on the peer's lane
  // (tid = peer id + 1; tid 0 is reserved for the counter tracks).
  const std::uint64_t tid = e.peer == kNoTracePeer ? 0 : std::uint64_t{e.peer} + 1;
  std::string body = event_prefix(event_type_name(e.type), pid, tid, ts);
  body += ",\"ph\":\"i\",\"s\":\"t\",\"args\":{";
  bool first_arg = true;
  auto arg = [&](std::string_view key, double value) {
    if (!first_arg) {
      body += ',';
    }
    first_arg = false;
    body += '"';
    body += key;
    body += "\":";
    append_double(body, value);
  };
  switch (e.type) {
    case EventType::kPeerJoin:
      arg("as_seed", e.value);
      break;
    case EventType::kPeerComplete:
      arg("download_rounds", e.value);
      break;
    case EventType::kPieceAcquired:
      arg("piece", e.value);
      break;
    case EventType::kUnchoke:
    case EventType::kChoke:
      arg("other", e.other);
      break;
    case EventType::kConnectionAttempt:
      arg("other", e.other);
      arg("ok", e.value);
      break;
    case EventType::kConnectionDrop:
      arg("other", e.other);
      arg("reason", e.value);
      break;
    case EventType::kPhaseTransition:
      arg("from", e.value);
      arg("to", e.value2);
      break;
    case EventType::kClientSample:
      arg("potential", e.value);
      arg("pieces", e.other);
      arg("bytes", e.value2);
      break;
    case EventType::kInvariantViolation:
      arg("other", e.other);
      arg("invariant", e.value);
      arg("phase", e.value2);
      break;
    default:
      break;
  }
  body += '}';
  stream.event(body);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceCollector& traces,
                        const WallProfiler* profiler,
                        const ChromeTraceOptions& options) {
  EventStream stream(os);

  for (const TaskTrace& task : traces.sorted()) {
    const std::uint64_t pid = kTaskPidBase + task.task;
    stream.metadata(pid, -1, "process_name",
                    task.label.empty() ? "task " + std::to_string(task.task)
                                       : task.label);
    for (const TraceEvent& e : task.events) {
      write_sim_event(stream, e, pid, options);
    }
  }

  if (profiler != nullptr) {
    stream.metadata(kWorkerPid, -1, "process_name", "workers (wall time)");
    for (const TaskSpan& span : profiler->spans()) {
      std::string body = event_prefix(span.name.empty() ? "task" : span.name,
                                      kWorkerPid, span.worker,
                                      static_cast<double>(span.start_us));
      body += ",\"ph\":\"X\",\"dur\":";
      body += std::to_string(span.duration_us);
      body += ",\"args\":{\"queue_wait_us\":";
      body += std::to_string(span.queue_wait_us);
      body += "}";
      stream.event(body);
    }
  }

  stream.finish();
}

void write_chrome_trace(const std::string& path, const TraceCollector& traces,
                        const WallProfiler* profiler,
                        const ChromeTraceOptions& options) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  write_chrome_trace(file, traces, profiler, options);
}

}  // namespace mpbt::obs
