#include "obs/stream_stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::obs {

namespace detail {

P2Quantile::P2Quantile(double probability) : p_(probability) {
  util::throw_if_invalid(!(probability > 0.0 && probability < 1.0),
                         "P2Quantile: probability must be in (0, 1)");
  increments_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

double P2Quantile::parabolic(std::size_t i, double d) const {
  const double n_prev = positions_[i - 1];
  const double n_cur = positions_[i];
  const double n_next = positions_[i + 1];
  return heights_[i] +
         d / (n_next - n_prev) *
             ((n_cur - n_prev + d) * (heights_[i + 1] - heights_[i]) / (n_next - n_cur) +
              (n_next - n_cur - d) * (heights_[i] - heights_[i - 1]) / (n_cur - n_prev));
}

double P2Quantile::linear(std::size_t i, int d) const {
  const std::size_t j = static_cast<std::size_t>(static_cast<int>(i) + d);
  return heights_[i] + static_cast<double>(d) * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    heights_[count_ - 1] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * increments_[i];
      }
    }
    return;
  }

  // Locate the cell k such that heights_[k] <= x < heights_[k+1],
  // extending the extreme markers when x falls outside them.
  std::size_t k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) {
      ++k;
    }
  }

  for (std::size_t i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (std::size_t i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double diff = desired_[i] - positions_[i];
    if ((diff >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (diff <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const int d = diff >= 0.0 ? 1 : -1;
      const double candidate = parabolic(i, static_cast<double>(d));
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, d);
      }
      positions_[i] += static_cast<double>(d);
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact: sort the stored prefix and interpolate.
    std::array<double, 5> sorted = heights_;
    const auto n = static_cast<std::size_t>(count_);
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
    const double rank = p_ * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

}  // namespace detail

StreamStats::StreamStats(std::vector<double> quantiles) {
  std::sort(quantiles.begin(), quantiles.end());
  probes_.reserve(quantiles.size());
  for (double p : quantiles) {
    probes_.emplace_back(p);
  }
}

void StreamStats::observe(double v) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ += v;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  for (auto& probe : probes_) {
    probe.add(v);
  }
}

std::uint64_t StreamStats::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double StreamStats::mean() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return mean_;
}

double StreamStats::variance() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamStats::stddev() const { return std::sqrt(variance()); }

double StreamStats::quantile(double p) const {
  return snapshot().quantile(p);
}

std::vector<double> StreamStats::probabilities() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> out;
  out.reserve(probes_.size());
  for (const auto& probe : probes_) {
    out.push_back(probe.probability());
  }
  return out;
}

StreamStatsSnapshot StreamStats::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StreamStatsSnapshot snap;
  snap.count = count_;
  snap.mean = mean_;
  snap.stddev = count_ < 2 ? 0.0 : std::sqrt(m2_ / static_cast<double>(count_ - 1));
  snap.min = min_;
  snap.max = max_;
  snap.sum = sum_;
  snap.quantiles.reserve(probes_.size());
  for (const auto& probe : probes_) {
    snap.quantiles.emplace_back(probe.probability(), probe.value());
  }
  return snap;
}

double StreamStatsSnapshot::quantile(double p) const {
  if (quantiles.empty()) {
    return 0.0;
  }
  const auto* best = &quantiles.front();
  for (const auto& probe : quantiles) {
    if (std::abs(probe.first - p) < std::abs(best->first - p)) {
      best = &probe;
    }
  }
  return best->second;
}

void StreamStatsSnapshot::merge(const StreamStatsSnapshot& other) {
  util::throw_if_invalid(quantiles.size() != other.quantiles.size(),
                         "StreamStatsSnapshot::merge: quantile probes differ");
  for (std::size_t i = 0; i < quantiles.size(); ++i) {
    util::throw_if_invalid(quantiles[i].first != other.quantiles[i].first,
                           "StreamStatsSnapshot::merge: quantile probes differ");
  }
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count);
  const auto nb = static_cast<double>(other.count);
  const double n = na + nb;
  const double delta = other.mean - mean;
  const double m2a = stddev * stddev * std::max(0.0, na - 1.0);
  const double m2b = other.stddev * other.stddev * std::max(0.0, nb - 1.0);
  const double m2 = m2a + m2b + delta * delta * na * nb / n;
  mean += delta * nb / n;
  stddev = n < 2.0 ? 0.0 : std::sqrt(m2 / (n - 1.0));
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  for (std::size_t i = 0; i < quantiles.size(); ++i) {
    quantiles[i].second =
        (quantiles[i].second * na + other.quantiles[i].second * nb) / n;
  }
  count += other.count;
}

}  // namespace mpbt::obs
