#include "obs/profile.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace mpbt::obs {

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) {
    hist_->observe(elapsed_seconds());
  }
}

void WallProfiler::record(TaskSpan span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<TaskSpan> WallProfiler::spans() const {
  std::vector<TaskSpan> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(), [](const TaskSpan& a, const TaskSpan& b) {
    if (a.worker != b.worker) {
      return a.worker < b.worker;
    }
    return a.start_us < b.start_us;
  });
  return out;
}

std::vector<WorkerStats> WallProfiler::worker_stats() const {
  const double elapsed = elapsed_seconds();
  std::vector<WorkerStats> stats;
  for (const TaskSpan& span : spans()) {
    if (span.worker >= stats.size()) {
      stats.resize(span.worker + 1);
    }
    WorkerStats& w = stats[span.worker];
    ++w.tasks;
    w.busy_seconds += static_cast<double>(span.duration_us) / 1e6;
    w.queue_wait_seconds += static_cast<double>(span.queue_wait_us) / 1e6;
  }
  for (WorkerStats& w : stats) {
    w.idle_seconds = std::max(0.0, elapsed - w.busy_seconds);
  }
  return stats;
}

}  // namespace mpbt::obs
