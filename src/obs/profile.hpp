// Wall-clock profiling hooks.
//
// ScopedTimer measures a scope and feeds a wall-time Histogram on exit.
// WallProfiler collects per-worker task spans (start, duration, queue
// wait) from the exp::ThreadPool so the Chrome-trace exporter can draw
// one lane per worker and the sweep summary can report utilization.
// Wall times never feed back into simulations, so profiling cannot
// perturb results — only the reported timings differ run to run.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mpbt::obs {

class Histogram;

/// Measures its own lifetime and records seconds into `hist` on
/// destruction. A null histogram makes the timer a no-op (the elapsed
/// value is still queryable).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// One executed task on one worker, timestamped relative to the
/// profiler's epoch (microseconds).
struct TaskSpan {
  std::uint32_t worker = 0;
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::int64_t queue_wait_us = 0;  ///< enqueue -> dequeue latency
};

/// Aggregate utilization of one worker.
struct WorkerStats {
  std::uint64_t tasks = 0;
  double busy_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  /// Profiler lifetime minus busy time (computed by worker_stats()).
  double idle_seconds = 0.0;
};

/// Thread-safe span collector. The ThreadPool records one span per
/// executed task when a profiler is attached; record() takes a mutex,
/// which is negligible next to the seconds-long tasks it measures.
class WallProfiler {
 public:
  WallProfiler() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since the profiler was created.
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  double elapsed_seconds() const {
    return static_cast<double>(now_us()) / 1e6;
  }

  void record(TaskSpan span);

  /// Spans sorted by (worker, start time).
  std::vector<TaskSpan> spans() const;

  /// Per-worker aggregates, indexed by worker id (sized to the highest
  /// worker seen + 1). idle = elapsed-so-far - busy.
  std::vector<WorkerStats> worker_stats() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TaskSpan> spans_;
};

}  // namespace mpbt::obs
