// Chrome trace-event JSON exporter.
//
// Writes a single JSON object in the Trace Event Format accepted by
// Perfetto (ui.perfetto.dev) and chrome://tracing:
//   - sim-time events: one process per sweep task, one lane (tid) per
//     peer, with `ts` = round * us_per_round. Per-round swarm samples
//     (population / entropy) render as counter tracks.
//   - wall-time profiling: one process ("workers") with one lane per
//     pool worker, drawn from the WallProfiler's task spans.
//
// Sim-time lanes are fully deterministic for a fixed sweep seed (they
// depend only on each task's seed); worker lanes carry real wall-clock
// timestamps and differ run to run.
#pragma once

#include <iosfwd>
#include <string>

namespace mpbt::obs {

class TraceCollector;
class WallProfiler;

struct ChromeTraceOptions {
  /// Sim-time scale: microseconds of trace time per swarm round.
  double us_per_round = 1000.0;
  /// Skip per-attempt connection events (they dominate event counts in
  /// large swarms); choke/unchoke/drop events are always kept.
  bool include_attempts = true;
};

/// Writes the combined trace; `profiler` may be null (no worker lanes).
void write_chrome_trace(std::ostream& os, const TraceCollector& traces,
                        const WallProfiler* profiler,
                        const ChromeTraceOptions& options = {});

/// Same, to a file; throws std::runtime_error when the file cannot be
/// opened.
void write_chrome_trace(const std::string& path, const TraceCollector& traces,
                        const WallProfiler* profiler,
                        const ChromeTraceOptions& options = {});

}  // namespace mpbt::obs
