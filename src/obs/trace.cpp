#include "obs/trace.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace mpbt::obs {

std::string_view event_type_name(EventType type) {
  switch (type) {
    case EventType::kPeerJoin:
      return "peer_join";
    case EventType::kPeerLeave:
      return "peer_leave";
    case EventType::kPeerComplete:
      return "peer_complete";
    case EventType::kPieceAcquired:
      return "piece_acquired";
    case EventType::kUnchoke:
      return "unchoke";
    case EventType::kChoke:
      return "choke";
    case EventType::kConnectionAttempt:
      return "connection_attempt";
    case EventType::kConnectionDrop:
      return "connection_drop";
    case EventType::kPhaseTransition:
      return "phase_transition";
    case EventType::kPeerSetShake:
      return "peer_set_shake";
    case EventType::kRoundSample:
      return "round_sample";
    case EventType::kEntropySample:
      return "entropy_sample";
    case EventType::kClientSample:
      return "client_sample";
    case EventType::kInvariantViolation:
      return "invariant_violation";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void TraceRecorder::set_registry(Registry* registry) {
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.joins = &registry->counter("swarm.peers_joined");
  metrics_.leaves = &registry->counter("swarm.peers_departed");
  metrics_.completions = &registry->counter("swarm.completions");
  metrics_.pieces = &registry->counter("swarm.pieces_acquired");
  metrics_.unchokes = &registry->counter("swarm.unchokes");
  metrics_.chokes = &registry->counter("swarm.chokes");
  metrics_.attempts = &registry->counter("swarm.connection_attempts");
  metrics_.attempt_failures = &registry->counter("swarm.connection_attempt_failures");
  metrics_.drops = &registry->counter("swarm.connection_drops");
  metrics_.phase_transitions = &registry->counter("swarm.phase_transitions");
  metrics_.shakes = &registry->counter("swarm.peer_set_shakes");
  metrics_.rounds = &registry->counter("swarm.rounds");
  metrics_.client_samples = &registry->counter("swarm.client_samples");
  metrics_.invariant_violations = &registry->counter("check.invariant_violations");
  metrics_.population = &registry->gauge("swarm.population");
  metrics_.seeds = &registry->gauge("swarm.seeds");
  metrics_.entropy = &registry->gauge("swarm.entropy");
  metrics_.efficiency = &registry->gauge("swarm.transfer_efficiency");
  metrics_.download_rounds = &registry->histogram(
      "swarm.download_rounds", {10, 20, 40, 80, 160, 320, 640, 1280, 2560});
}

void TraceRecorder::emit(EventType type, std::uint64_t round, std::uint32_t peer,
                         std::uint32_t other, double value, double value2) {
  TraceEvent event;
  event.round = round;
  event.peer = peer;
  event.other = other;
  event.value = value;
  event.value2 = value2;
  event.type = type;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

void TraceRecorder::peer_join(std::uint64_t round, std::uint32_t peer, bool as_seed) {
  emit(EventType::kPeerJoin, round, peer, kNoTracePeer, as_seed ? 1.0 : 0.0);
  if (metrics_.joins != nullptr) {
    metrics_.joins->add();
  }
}

void TraceRecorder::peer_leave(std::uint64_t round, std::uint32_t peer) {
  emit(EventType::kPeerLeave, round, peer);
  if (metrics_.leaves != nullptr) {
    metrics_.leaves->add();
  }
}

void TraceRecorder::peer_complete(std::uint64_t round, std::uint32_t peer,
                                  double download_rounds) {
  emit(EventType::kPeerComplete, round, peer, kNoTracePeer, download_rounds);
  if (metrics_.completions != nullptr) {
    metrics_.completions->add();
    metrics_.download_rounds->observe(download_rounds);
  }
}

void TraceRecorder::piece_acquired(std::uint64_t round, std::uint32_t peer,
                                   std::uint32_t piece) {
  emit(EventType::kPieceAcquired, round, peer, kNoTracePeer,
       static_cast<double>(piece));
  if (metrics_.pieces != nullptr) {
    metrics_.pieces->add();
  }
}

void TraceRecorder::unchoke(std::uint64_t round, std::uint32_t a, std::uint32_t b) {
  emit(EventType::kUnchoke, round, a, b);
  if (metrics_.unchokes != nullptr) {
    metrics_.unchokes->add();
  }
}

void TraceRecorder::choke(std::uint64_t round, std::uint32_t a, std::uint32_t b) {
  emit(EventType::kChoke, round, a, b);
  if (metrics_.chokes != nullptr) {
    metrics_.chokes->add();
  }
}

void TraceRecorder::connection_attempt(std::uint64_t round, std::uint32_t a,
                                       std::uint32_t b, bool success) {
  emit(EventType::kConnectionAttempt, round, a, b, success ? 1.0 : 0.0);
  if (metrics_.attempts != nullptr) {
    metrics_.attempts->add();
    if (!success) {
      metrics_.attempt_failures->add();
    }
  }
}

void TraceRecorder::connection_drop(std::uint64_t round, std::uint32_t a,
                                    std::uint32_t b, DropReason reason) {
  emit(EventType::kConnectionDrop, round, a, b,
       static_cast<double>(static_cast<std::uint8_t>(reason)));
  if (metrics_.drops != nullptr) {
    metrics_.drops->add();
  }
}

void TraceRecorder::phase_transition(std::uint64_t round, std::uint32_t peer,
                                     int from_phase, int to_phase) {
  emit(EventType::kPhaseTransition, round, peer, kNoTracePeer,
       static_cast<double>(from_phase), static_cast<double>(to_phase));
  if (metrics_.phase_transitions != nullptr) {
    metrics_.phase_transitions->add();
  }
}

void TraceRecorder::peer_set_shake(std::uint64_t round, std::uint32_t peer) {
  emit(EventType::kPeerSetShake, round, peer);
  if (metrics_.shakes != nullptr) {
    metrics_.shakes->add();
  }
}

void TraceRecorder::round_sample(std::uint64_t round, std::size_t leechers,
                                 std::size_t seeds, double entropy,
                                 double transfer_efficiency) {
  emit(EventType::kRoundSample, round, kNoTracePeer, kNoTracePeer,
       static_cast<double>(leechers), static_cast<double>(seeds));
  emit(EventType::kEntropySample, round, kNoTracePeer, kNoTracePeer, entropy,
       transfer_efficiency);
  if (metrics_.rounds != nullptr) {
    metrics_.rounds->add();
    metrics_.population->set(static_cast<double>(leechers + seeds));
    metrics_.seeds->set(static_cast<double>(seeds));
    metrics_.entropy->set(entropy);
    metrics_.efficiency->set(transfer_efficiency);
  }
}

void TraceRecorder::client_sample(std::uint64_t round, std::uint32_t peer,
                                  std::uint32_t potential, std::uint32_t pieces_held,
                                  std::uint64_t cumulative_bytes) {
  emit(EventType::kClientSample, round, peer, pieces_held,
       static_cast<double>(potential), static_cast<double>(cumulative_bytes));
  if (metrics_.client_samples != nullptr) {
    metrics_.client_samples->add();
  }
}

void TraceRecorder::invariant_violation(std::uint64_t round, std::uint32_t peer,
                                        std::uint32_t other,
                                        std::size_t invariant_index,
                                        std::size_t phase_index) {
  emit(EventType::kInvariantViolation, round, peer, other,
       static_cast<double>(invariant_index), static_cast<double>(phase_index));
  if (metrics_.invariant_violations != nullptr) {
    metrics_.invariant_violations->add();
  }
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

void TraceCollector::add(TaskTrace trace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  traces_.push_back(std::move(trace));
}

std::vector<TaskTrace> TraceCollector::sorted() const {
  std::vector<TaskTrace> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = traces_;
  }
  std::sort(out.begin(), out.end(),
            [](const TaskTrace& a, const TaskTrace& b) { return a.task < b.task; });
  return out;
}

std::uint64_t TraceCollector::total_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const TaskTrace& trace : traces_) {
    total += trace.events.size();
  }
  return total;
}

std::uint64_t TraceCollector::total_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const TaskTrace& trace : traces_) {
    total += trace.dropped;
  }
  return total;
}

namespace {
thread_local TraceRecorder* t_trace = nullptr;
thread_local Registry* t_registry = nullptr;
}  // namespace

TraceRecorder* current_trace() { return t_trace; }
Registry* current_registry() { return t_registry; }

TaskScope::TaskScope(TraceRecorder* trace, Registry* registry)
    : prev_trace_(t_trace), prev_registry_(t_registry) {
  t_trace = trace;
  t_registry = registry;
}

TaskScope::~TaskScope() {
  t_trace = prev_trace_;
  t_registry = prev_registry_;
}

}  // namespace mpbt::obs
