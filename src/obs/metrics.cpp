#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::obs {

namespace detail {
std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}
}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  util::throw_if_invalid(!std::is_sorted(bounds_.begin(), bounds_.end()),
                         "Histogram: bucket bounds must be ascending");
  shards_ = std::make_unique<Shard[]>(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    shards_[s].counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shards_[s].counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t Histogram::bucket_for(double v) const {
  // First edge >= v, i.e. the first bucket whose inclusive upper edge
  // admits v; past-the-end means the overflow bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::observe(double v) {
  Shard& shard = shards_[detail::shard_index()];
  shard.counts[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS add: contention is per-shard so the loop rarely retries.
  double expected = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(expected, expected + v,
                                          std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> totals(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      totals[b] += shards_[s].counts[b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : bucket_counts()) {
    total += c;
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += shards_[s].sum.load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramSnapshot::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || bounds.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0 || static_cast<double>(before + in_bucket) < target) {
      before += in_bucket;
      continue;
    }
    if (b >= bounds.size()) {
      // Open-ended overflow bucket: clamp to the last finite edge.
      return bounds.back();
    }
    // Linear interpolation within [lower, bounds[b]]. Histograms here
    // record non-negative quantities, so the first bucket's implicit
    // lower edge is 0 unless the edge itself is negative.
    const double upper = bounds[b];
    const double lower = b == 0 ? std::min(0.0, upper) : bounds[b - 1];
    const double fraction =
        (target - static_cast<double>(before)) / static_cast<double>(in_bucket);
    return lower + std::clamp(fraction, 0.0, 1.0) * (upper - lower);
  }
  return bounds.back();
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

StreamStats& Registry::stats(std::string_view name, std::vector<double> quantiles) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(name), std::make_unique<StreamStats>(std::move(quantiles)))
             .first;
  } else {
    std::sort(quantiles.begin(), quantiles.end());
    util::throw_if_invalid(it->second->probabilities() != quantiles,
                           "Registry::stats: quantile probes differ from first use");
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  } else {
    util::throw_if_invalid(it->second->bounds() != bounds,
                           "Registry::histogram: bucket bounds differ from first use");
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = hist->bounds();
    h.buckets = hist->bucket_counts();
    h.count = 0;
    for (std::uint64_t c : h.buckets) {
      h.count += c;
    }
    h.sum = hist->sum();
    snap.histograms.push_back(std::move(h));
  }
  snap.stats.reserve(stats_.size());
  for (const auto& [name, stats] : stats_) {
    StreamStatsSnapshot s = stats->snapshot();
    s.name = name;
    snap.stats.push_back(std::move(s));
  }
  return snap;  // maps iterate sorted, so snapshots are name-ordered
}

namespace {
// Merge helper: both lists are name-sorted; entries only in `from` append.
template <typename T, typename Combine>
void merge_sorted(std::vector<T>& into, const std::vector<T>& from, Combine&& combine) {
  for (const T& item : from) {
    auto it = std::lower_bound(
        into.begin(), into.end(), item,
        [](const T& a, const T& b) { return a.name < b.name; });
    if (it != into.end() && it->name == item.name) {
      combine(*it, item);
    } else {
      into.insert(it, item);
    }
  }
}
}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_sorted(counters, other.counters,
               [](CounterSnapshot& a, const CounterSnapshot& b) { a.value += b.value; });
  merge_sorted(gauges, other.gauges,
               [](GaugeSnapshot& a, const GaugeSnapshot& b) { a.value = b.value; });
  merge_sorted(histograms, other.histograms,
               [](HistogramSnapshot& a, const HistogramSnapshot& b) {
                 util::throw_if_invalid(a.bounds != b.bounds,
                                        "MetricsSnapshot::merge: histogram bounds differ");
                 for (std::size_t i = 0; i < a.buckets.size(); ++i) {
                   a.buckets[i] += b.buckets[i];
                 }
                 a.count += b.count;
                 a.sum += b.sum;
               });
  merge_sorted(stats, other.stats,
               [](StreamStatsSnapshot& a, const StreamStatsSnapshot& b) { a.merge(b); });
}

}  // namespace mpbt::obs
