// Streaming statistics: Welford mean/variance plus P² online quantiles.
//
// StreamStats is the report layer's scalar accumulator: it ingests a
// stream of observations once and answers mean / variance / min / max /
// quantile questions without storing the sample. Quantiles come from the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers per tracked
// probability, adjusted with a piecewise-parabolic update, exact until
// five observations have arrived. Estimates are deterministic in the
// ingestion order, so feeding task-ordered sweep results keeps reports
// byte-identical for any worker count.
//
// Unlike Counter/Histogram, observe() takes an internal mutex — the
// marker update cannot be made lock-free. Use it for low-rate streams
// (per-task durations, per-trace rollups), not per-event hot paths; the
// fixed-bucket Histogram remains the hot-path instrument.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mpbt::obs {

/// Quantile probabilities tracked by default.
inline constexpr std::array<double, 4> kDefaultQuantiles{0.5, 0.9, 0.95, 0.99};

namespace detail {

/// P² estimator of a single quantile. Exact (stored + sorted) below five
/// observations, five-marker approximation afterwards.
class P2Quantile {
 public:
  explicit P2Quantile(double probability);

  void add(double x);
  /// Current estimate; 0 before any observation.
  double value() const;
  double probability() const { return p_; }

 private:
  double parabolic(std::size_t i, double d) const;
  double linear(std::size_t i, int d) const;

  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights q_i
  std::array<double, 5> positions_{};  // actual positions n_i (1-based)
  std::array<double, 5> desired_{};    // desired positions n'_i
  std::array<double, 5> increments_{};  // dn'_i
};

}  // namespace detail

/// Point-in-time copy of a StreamStats (also the form the metrics
/// snapshot carries; `name` is filled by Registry::snapshot).
struct StreamStatsSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  /// (probability, estimate) pairs, ascending by probability.
  std::vector<std::pair<double, double>> quantiles;

  /// Estimate for the tracked probability closest to `p`; 0 when empty.
  double quantile(double p) const;

  /// Combines `other` in: count/mean/variance merge exactly (Chan's
  /// parallel formula); matching quantile probes merge as count-weighted
  /// means of the two estimates (an approximation — P² markers cannot be
  /// merged exactly). Probe sets must match.
  void merge(const StreamStatsSnapshot& other);
};

/// Welford + P² accumulator. Thread-safe via an internal mutex.
class StreamStats {
 public:
  /// `quantiles` are the tracked probabilities (each in (0, 1)).
  explicit StreamStats(std::vector<double> quantiles = {kDefaultQuantiles.begin(),
                                                        kDefaultQuantiles.end()});

  void observe(double v);

  std::uint64_t count() const;
  double mean() const;
  /// Unbiased sample variance; 0 below two observations.
  double variance() const;
  double stddev() const;
  double quantile(double p) const;

  /// Tracked probabilities, ascending.
  std::vector<double> probabilities() const;

  /// Snapshot with an empty name.
  StreamStatsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<detail::P2Quantile> probes_;
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace mpbt::obs
