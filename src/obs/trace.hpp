// Structured sim-time event traces.
//
// TraceRecorder is a single-writer, ring-buffered log of typed swarm
// events (peer join/leave/complete, piece acquired, choke/unchoke,
// connection attempt/drop, phase transition, peer-set shake, per-round
// entropy samples). One recorder belongs to one simulation task; the
// sweep machinery gives every task its own recorder and merges them in a
// TraceCollector afterwards, so recording never needs a lock.
//
// The disabled path is a branch on a nullptr: instrumented code holds a
// `TraceRecorder*` that is null when tracing is off, and every emit site
// is `if (trace_) trace_->...`. Recording draws no randomness and never
// feeds back into the simulation, so traces cannot perturb results.
//
// When a Registry is attached (set_registry), every emitted event also
// bumps the matching `swarm.*` counter/gauge — the recorder fans out, so
// the trace, the per-round series and the registry can never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mpbt::obs {

class Registry;
class Counter;
class Gauge;
class Histogram;

/// Event taxonomy (see docs/OBSERVABILITY.md for field semantics).
enum class EventType : std::uint8_t {
  kPeerJoin,            ///< peer = id, value = 1 when joining as a seed
  kPeerLeave,           ///< peer = id
  kPeerComplete,        ///< peer = id, value = download time in rounds
  kPieceAcquired,       ///< peer = id, value = piece index
  kUnchoke,             ///< peer/other = the connected pair
  kChoke,               ///< peer/other = the disconnected pair
  kConnectionAttempt,   ///< peer/other = the pair, value = 1 on success
  kConnectionDrop,      ///< peer/other = the pair, value = DropReason
  kPhaseTransition,     ///< peer = id, value = old phase, value2 = new phase
  kPeerSetShake,        ///< peer = id
  kRoundSample,         ///< value = leechers, value2 = seeds
  kEntropySample,       ///< value = entropy, value2 = transfer efficiency
  kClientSample,        ///< instrumented client: peer = id, other = pieces held,
                        ///< value = potential-set size, value2 = cumulative bytes
  kInvariantViolation,  ///< structural invariant failed (src/check):
                        ///< peer/other = implicated pair, value = invariant
                        ///< index within the suite, value2 = phase index
};

std::string_view event_type_name(EventType type);

/// Why a kConnectionDrop happened (stored in TraceEvent::value).
enum class DropReason : std::uint8_t {
  kInterestLost = 0,   ///< pruned: partner left the potential set
  kNothingToTrade = 1, ///< strict tit-for-tat found no piece either way
  kChokeVictim = 2,    ///< rate-based choking evicted the slowest link
};

/// Sentinel for "no peer" in TraceEvent::peer/other.
inline constexpr std::uint32_t kNoTracePeer = 0xffffffffu;

struct TraceEvent {
  std::uint64_t round = 0;  ///< sim time (swarm round)
  std::uint32_t peer = kNoTracePeer;
  std::uint32_t other = kNoTracePeer;
  double value = 0.0;
  double value2 = 0.0;
  EventType type = EventType::kPeerJoin;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Single-writer ring buffer of TraceEvents. When full, the oldest event
/// is evicted (the buffer keeps the most recent `capacity` events) and
/// dropped() counts the evictions.
class TraceRecorder {
 public:
  /// Default capacity keeps ~2^17 events (~5 MB).
  explicit TraceRecorder(std::size_t capacity = std::size_t{1} << 17);

  /// Attaches a registry: every future emit also updates the matching
  /// `swarm.*` metric. Handles are resolved once here, so the per-event
  /// cost stays a few relaxed atomic adds.
  void set_registry(Registry* registry);

  void emit(EventType type, std::uint64_t round, std::uint32_t peer = kNoTracePeer,
            std::uint32_t other = kNoTracePeer, double value = 0.0, double value2 = 0.0);

  // Typed convenience emitters (the swarm's instrumentation points).
  void peer_join(std::uint64_t round, std::uint32_t peer, bool as_seed);
  void peer_leave(std::uint64_t round, std::uint32_t peer);
  void peer_complete(std::uint64_t round, std::uint32_t peer, double download_rounds);
  void piece_acquired(std::uint64_t round, std::uint32_t peer, std::uint32_t piece);
  void unchoke(std::uint64_t round, std::uint32_t a, std::uint32_t b);
  void choke(std::uint64_t round, std::uint32_t a, std::uint32_t b);
  void connection_attempt(std::uint64_t round, std::uint32_t a, std::uint32_t b,
                          bool success);
  void connection_drop(std::uint64_t round, std::uint32_t a, std::uint32_t b,
                       DropReason reason);
  void phase_transition(std::uint64_t round, std::uint32_t peer, int from_phase,
                        int to_phase);
  void peer_set_shake(std::uint64_t round, std::uint32_t peer);
  /// One per-round swarm sample; also sets the swarm.* gauges.
  void round_sample(std::uint64_t round, std::size_t leechers, std::size_t seeds,
                    double entropy, double transfer_efficiency);
  /// One per-round sample of an instrumented client's download state:
  /// potential-set size, pieces held and cumulative bytes downloaded.
  /// These events are what report::client_traces_from_events rebuilds
  /// per-client phase traces from.
  void client_sample(std::uint64_t round, std::uint32_t peer, std::uint32_t potential,
                     std::uint32_t pieces_held, std::uint64_t cumulative_bytes);
  /// A structural invariant failed (emitted by check::InvariantSuite just
  /// before it throws). `invariant_index` identifies the invariant within
  /// the suite; peers may be kNoTracePeer for swarm-global invariants.
  void invariant_violation(std::uint64_t round, std::uint32_t peer,
                           std::uint32_t other, std::size_t invariant_index,
                           std::size_t phase_index);

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted by wraparound.
  std::uint64_t dropped() const {
    return total_ <= capacity_ ? 0 : total_ - capacity_;
  }
  /// All events ever emitted (kept + dropped).
  std::uint64_t total_recorded() const { return total_; }

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;

  void clear();

 private:
  struct MetricHandles {
    Counter* joins = nullptr;
    Counter* leaves = nullptr;
    Counter* completions = nullptr;
    Counter* pieces = nullptr;
    Counter* unchokes = nullptr;
    Counter* chokes = nullptr;
    Counter* attempts = nullptr;
    Counter* attempt_failures = nullptr;
    Counter* drops = nullptr;
    Counter* phase_transitions = nullptr;
    Counter* shakes = nullptr;
    Counter* rounds = nullptr;
    Counter* client_samples = nullptr;
    Counter* invariant_violations = nullptr;
    Gauge* population = nullptr;
    Gauge* seeds = nullptr;
    Gauge* entropy = nullptr;
    Gauge* efficiency = nullptr;
    Histogram* download_rounds = nullptr;
  };

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  std::size_t head_ = 0;          // oldest element once wrapped
  std::uint64_t total_ = 0;
  MetricHandles metrics_;  // null handles when no registry attached
};

/// One task's finished trace, as collected by the sweep machinery.
struct TaskTrace {
  std::uint64_t task = 0;  ///< task index within the sweep
  std::string label;       ///< e.g. "efficiency_vs_k point=2 rep=0"
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// Thread-safe store for per-task traces. Workers add() as tasks finish;
/// sorted() orders by task index, so the collected trace is identical
/// for any worker count (sim-time events depend only on the task seed).
class TraceCollector {
 public:
  void add(TaskTrace trace);

  /// Traces sorted by task index.
  std::vector<TaskTrace> sorted() const;

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TaskTrace> traces_;
};

// --- thread-local task scope ------------------------------------------------
//
// The sweep runner cannot thread a recorder through every scenario and
// bench signature, so the current task's recorder/registry hang on
// thread-local slots: instrumented constructors (bt::Swarm) pick them up
// via current_trace()/current_registry() at construction time.

/// The recorder attached to this thread's active task scope, or null.
TraceRecorder* current_trace();
/// The registry attached to this thread's active task scope, or null.
Registry* current_registry();

/// RAII scope installing (trace, registry) as this thread's current
/// observability context; restores the previous context on destruction.
/// Scopes nest.
class TaskScope {
 public:
  TaskScope(TraceRecorder* trace, Registry* registry);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  TraceRecorder* prev_trace_;
  Registry* prev_registry_;
};

}  // namespace mpbt::obs
