// Global metrics registry: named counters, gauges and fixed-bucket
// histograms with lock-free per-thread accumulation.
//
// Hot-path contract: resolve a metric handle ONCE (Registry::counter /
// gauge / histogram take a mutex) and then update through the handle —
// Counter::add, Gauge::set and Histogram::observe are wait-free atomic
// operations on cache-line-padded per-thread shards, so worker threads
// never contend on a lock or share a cache line while accumulating.
// Reads (snapshot) sum the shards; they are monotonic but not a
// linearization point, which is fine for progress/telemetry data.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stream_stats.hpp"

namespace mpbt::obs {

/// Number of independent accumulation shards. Threads are assigned a
/// shard round-robin at first use; with <= kShards live workers every
/// thread owns a private cache line.
inline constexpr std::size_t kShards = 16;

namespace detail {
/// This thread's shard index (stable for the thread's lifetime).
std::size_t shard_index();

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic counter. add() is wait-free; value() sums the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;

 private:
  std::array<detail::CounterCell, kShards> cells_;
};

/// Last-written sample (population, entropy, queue depth, ...). When
/// several tasks write concurrently the latest writer wins — gauges are
/// "most recent observation", not aggregates.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges: a value v
/// lands in the first bucket with v <= bounds[i]; values above the last
/// edge land in the overflow bucket (index bounds.size()).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size bounds().size() + 1, last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;

 private:
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::size_t bucket_for(double v) const;

  std::vector<double> bounds_;
  std::unique_ptr<Shard[]> shards_;
};

// --- snapshots --------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;

  /// count-weighted mean; 0 when empty.
  double mean() const;
  /// Quantile in [0, 1] by linear interpolation within the containing
  /// bucket (lower edge = previous bound; 0 for the first bucket when its
  /// edge is positive). The open-ended overflow bucket is clamped to the
  /// last finite edge. 0 when empty.
  double quantile(double q) const;
};

/// Point-in-time copy of a registry, sorted by metric name (so two
/// snapshots of registries fed identical data compare equal).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<StreamStatsSnapshot> stats;

  /// Merges `other` in: counters and histogram buckets add (histogram
  /// bucket edges must match), gauges overwrite (latest wins), stream
  /// stats combine (quantile probes must match). Metrics present only in
  /// `other` are copied over.
  void merge(const MetricsSnapshot& other);

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() && stats.empty();
  }
};

/// Named-metric registry. Lookups take a mutex and return stable
/// references (metrics are never removed); updates through the returned
/// handles are lock-free. Safe to share across threads.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the named counter, creating it on first use.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Returns the named histogram; `bounds` (ascending upper edges) only
  /// apply on first creation and must match on later calls.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Returns the named StreamStats (Welford + P² quantiles) — the
  /// real-quantile companion a caller attaches alongside a histogram.
  /// `quantiles` only applies on first creation and must match later.
  /// NOTE: StreamStats::observe takes a mutex; keep it off per-event hot
  /// paths (see stream_stats.hpp).
  StreamStats& stats(std::string_view name,
                     std::vector<double> quantiles = {kDefaultQuantiles.begin(),
                                                      kDefaultQuantiles.end()});

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<StreamStats>, std::less<>> stats_;
};

}  // namespace mpbt::obs
