// Observability bundle threaded through the sweep machinery.
//
// A value struct of non-owning pointers: the caller (mpbt_sweep, a bench
// harness, a test) owns the Registry / TraceCollector / WallProfiler and
// decides which pillars are on. Null pointers disable a pillar; a
// default-constructed Observability is fully off and costs nothing.
#pragma once

#include <cstddef>

namespace mpbt::obs {

class Registry;
class TraceCollector;
class WallProfiler;

struct Observability {
  /// Metrics registry shared by all tasks (counters/histograms aggregate
  /// across tasks; gauges are last-writer-wins).
  Registry* registry = nullptr;
  /// Destination for per-task sim-time traces; null = tracing off.
  TraceCollector* traces = nullptr;
  /// Wall-time span collector for the worker pool; null = profiling off.
  WallProfiler* profiler = nullptr;
  /// Ring capacity of each per-task TraceRecorder.
  std::size_t trace_capacity = std::size_t{1} << 17;

  bool enabled() const {
    return registry != nullptr || traces != nullptr || profiler != nullptr;
  }
};

}  // namespace mpbt::obs
