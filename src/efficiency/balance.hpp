// The efficiency model of Section 5.
//
// A mean-field migration chain over connection-count classes x_0..x_k:
// downward moves are connection failures (Eq. 4, binomial with the
// re-encounter probability p_r), upward moves are pairwise connection
// establishments between peers with open slots (Eqs. 5–6, with the paper's
// finite-N corrections). Iterating the balance equations — downward sweep,
// then upward updates in increasing class order — converges to the
// equilibrium distribution; the paper notes that this update order makes
// the resulting efficiency an *upper bound*.
//
// Efficiency: η = (1/k) · Σ_i i · x_i.
#pragma once

#include <cstddef>
#include <vector>

namespace mpbt::efficiency {

struct EfficiencyParams {
  /// k — maximum simultaneous connections.
  int k = 7;
  /// p_r — probability an established connection survives a round.
  double p_r = 0.7;
  /// N — number of peers (enters the finite-N corrections of Eqs. 5–6).
  double N = 1000.0;

  void validate() const;
};

struct EfficiencyResult {
  /// Equilibrium class fractions x_0..x_k (sums to 1).
  std::vector<double> x;
  /// η = (1/k) Σ i x_i.
  double eta = 0.0;
  std::size_t iterations = 0;
  /// Max |Δx_i| at the final iteration.
  double residual = 0.0;
  bool converged = false;
};

class EfficiencySolver {
 public:
  explicit EfficiencySolver(EfficiencyParams params);

  const EfficiencyParams& params() const { return params_; }

  /// w^i_l — probability that exactly l of i active connections fail
  /// (binomial with failure probability 1 - p_r).
  double failure_weight(int i, int l) const;

  /// One downward sweep (Eq. 4) applied to `x` in place.
  void apply_downward(std::vector<double>& x) const;

  /// One upward sweep (Eqs. 5–6): classes updated in increasing order.
  void apply_upward(std::vector<double>& x) const;

  /// Iterates downward+upward sweeps from the uniform distribution until
  /// the distribution stabilizes.
  EfficiencyResult solve(std::size_t max_iterations = 100000, double tolerance = 1e-12) const;

  /// Efficiency of a given class distribution.
  double efficiency(const std::vector<double>& x) const;

 private:
  EfficiencyParams params_;
  /// w_[i][l] cached failure weights.
  std::vector<std::vector<double>> w_;
};

}  // namespace mpbt::efficiency
