#include "efficiency/balance.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/logbinom.hpp"
#include "util/assert.hpp"

namespace mpbt::efficiency {

void EfficiencyParams::validate() const {
  util::throw_if_invalid(k < 1, "EfficiencyParams: k must be >= 1");
  util::throw_if_invalid(p_r < 0.0 || p_r > 1.0, "EfficiencyParams: p_r must be in [0, 1]");
  util::throw_if_invalid(N < 2.0, "EfficiencyParams: N must be >= 2");
}

EfficiencySolver::EfficiencySolver(EfficiencyParams params) : params_(params) {
  params_.validate();
  w_.resize(static_cast<std::size_t>(params_.k) + 1);
  for (int i = 0; i <= params_.k; ++i) {
    auto& row = w_[static_cast<std::size_t>(i)];
    row.resize(static_cast<std::size_t>(i) + 1);
    for (int l = 0; l <= i; ++l) {
      // w^i_l = C(i, l) (1 - p_r)^l p_r^(i - l)  — Section 5.
      row[static_cast<std::size_t>(l)] = numeric::binomial_pmf(i, l, 1.0 - params_.p_r);
    }
  }
}

double EfficiencySolver::failure_weight(int i, int l) const {
  util::throw_if_out_of_range(i < 0 || i > params_.k, "failure_weight: i out of range");
  util::throw_if_out_of_range(l < 0 || l > i, "failure_weight: l out of range");
  return w_[static_cast<std::size_t>(i)][static_cast<std::size_t>(l)];
}

void EfficiencySolver::apply_downward(std::vector<double>& x) const {
  util::throw_if_invalid(x.size() != static_cast<std::size_t>(params_.k) + 1,
                         "apply_downward: x must have k + 1 entries");
  // Eq. (4), evaluated simultaneously from the pre-sweep state:
  // x_i' = x_i - x_i * sum_{l=1..i} w^i_l + sum_{l=i+1..k} w^l_{l-i} x_l.
  const std::vector<double> old = x;
  for (int i = 0; i <= params_.k; ++i) {
    double out_mass = 0.0;
    for (int l = 1; l <= i; ++l) {
      out_mass += failure_weight(i, l);
    }
    double in_mass = 0.0;
    for (int l = i + 1; l <= params_.k; ++l) {
      in_mass += failure_weight(l, l - i) * old[static_cast<std::size_t>(l)];
    }
    x[static_cast<std::size_t>(i)] =
        old[static_cast<std::size_t>(i)] * (1.0 - out_mass) + in_mass;
  }
}

namespace {
/// Moves at most `amount` of mass, clamped to what `from` holds; returns
/// the amount actually moved.
double move_mass(std::vector<double>& x, int from, int to, double amount) {
  const double moved = std::min(amount, x[static_cast<std::size_t>(from)]);
  if (moved <= 0.0) {
    return 0.0;
  }
  x[static_cast<std::size_t>(from)] -= moved;
  x[static_cast<std::size_t>(to)] += moved;
  return moved;
}
}  // namespace

void EfficiencySolver::apply_upward(std::vector<double>& x) const {
  util::throw_if_invalid(x.size() != static_cast<std::size_t>(params_.k) + 1,
                         "apply_upward: x must have k + 1 entries");
  // Aggregated per-round form of Eqs. (5)-(6): every peer in class i < k
  // attempts ONE connection per round. The partner is chosen uniformly
  // among the other N - 1 peers (the paper's finite-N correction: a peer
  // cannot pick itself); an attempt succeeds when the partner has an open
  // slot (class < k), moving BOTH endpoints up one class.
  //
  // All flows are computed from the pre-sweep distribution (so no peer
  // moves more than one class per round — the paper's event-level
  // sequential iteration, applied once per peer per round). A class's
  // total outflow (connector + chosen-as-partner) is capped at its mass,
  // scaling both flows proportionally when the expectation exceeds it.
  const int k = params_.k;
  const double N = params_.N;
  const std::vector<double> pre = x;

  // Attempting mass and partner-acceptance probability from pre-sweep.
  double attempting_total = 0.0;
  for (int l = 0; l < k; ++l) {
    attempting_total += pre[static_cast<std::size_t>(l)];
  }
  // Finite-N open-slot probability: a connector cannot pick itself, which
  // removes one open-slot peer from its own pool.
  const double open_mass = attempting_total;
  const double success =
      std::clamp((open_mass * N - 1.0) / (N - 1.0), 0.0, 1.0);

  std::vector<double> outflow(static_cast<std::size_t>(k) + 1, 0.0);
  for (int l = 0; l < k; ++l) {
    const double mass = pre[static_cast<std::size_t>(l)];
    if (mass <= 0.0) {
      continue;
    }
    const double connector_out = mass * success;
    // Chosen-as-partner flow: attempts distribute uniformly over peers;
    // only open-slot peers accept, so class l (< k) absorbs a share
    // proportional to its mass.
    const double partner_out = attempting_total * mass;
    outflow[static_cast<std::size_t>(l)] = std::min(connector_out + partner_out, mass);
  }
  for (int l = 0; l < k; ++l) {
    move_mass(x, l, l + 1, outflow[static_cast<std::size_t>(l)]);
  }
}

double EfficiencySolver::efficiency(const std::vector<double>& x) const {
  util::throw_if_invalid(x.size() != static_cast<std::size_t>(params_.k) + 1,
                         "efficiency: x must have k + 1 entries");
  double eta = 0.0;
  for (int i = 1; i <= params_.k; ++i) {
    eta += static_cast<double>(i) * x[static_cast<std::size_t>(i)];
  }
  return eta / static_cast<double>(params_.k);
}

EfficiencyResult EfficiencySolver::solve(std::size_t max_iterations, double tolerance) const {
  EfficiencyResult result;
  result.x.assign(static_cast<std::size_t>(params_.k) + 1,
                  1.0 / static_cast<double>(params_.k + 1));
  std::vector<double> prev;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    prev = result.x;
    apply_downward(result.x);
    apply_upward(result.x);
    // Guard against drift: the sweeps conserve mass analytically, but
    // renormalize to keep rounding from accumulating over many iterations.
    double total = 0.0;
    for (double v : result.x) {
      total += v;
    }
    MPBT_ASSERT(total > 0.0);
    for (double& v : result.x) {
      v /= total;
    }
    double max_change = 0.0;
    for (std::size_t c = 0; c < result.x.size(); ++c) {
      max_change = std::max(max_change, std::abs(result.x[c] - prev[c]));
    }
    result.iterations = iter + 1;
    result.residual = max_change;
    if (max_change <= tolerance) {
      result.converged = true;
      break;
    }
  }
  result.eta = efficiency(result.x);
  return result;
}

}  // namespace mpbt::efficiency
