#include "check/eco_invariants.hpp"

#include <algorithm>
#include <sstream>

namespace mpbt::check {

EcosystemInvariants::EcosystemInvariants(std::string context)
    : context_(std::move(context)) {}

void EcosystemInvariants::check(const eco::Ecosystem& eco) {
  check_session_conservation(eco);
  check_want_seed_coherence(eco);
  check_ledger_coherence(eco);
}

void EcosystemInvariants::fail(const eco::Ecosystem& eco, std::string_view invariant,
                               std::string message) const {
  std::ostringstream out;
  out << invariant << ": " << message << " [round=" << eco.round()
      << " seed=" << eco.config().seed << "]";
  if (!context_.empty()) {
    out << " " << context_;
  }
  throw InvariantViolation(std::string(invariant), out.str(), eco.round(),
                           "eco-round-end");
}

void EcosystemInvariants::check_session_conservation(const eco::Ecosystem& eco) {
  ++checks_run_;
  std::uint64_t active = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t removed = 0;
  for (const eco::Session& s : eco.sessions()) {
    switch (s.state) {
      case eco::SessionState::kActive:
        ++active;
        break;
      case eco::SessionState::kCompleted:
        ++completed;
        break;
      case eco::SessionState::kAborted:
        ++aborted;
        break;
      case eco::SessionState::kRemoved:
        ++removed;
        break;
    }
    if (s.state == eco::SessionState::kActive && !s.join_pending) {
      if (s.active_peer == bt::kNoPeer) {
        std::ostringstream msg;
        msg << "active session " << s.id
            << " has neither a live peer nor a pending join (leaked departure?)";
        fail(eco, "eco-session-conservation", msg.str());
      }
      if (!eco.swarm(s.active_torrent).is_live(s.active_peer)) {
        std::ostringstream msg;
        msg << "active session " << s.id << " points at departed peer "
            << s.active_peer << " in torrent " << s.active_torrent;
        fail(eco, "eco-session-conservation", msg.str());
      }
    }
  }
  const std::uint64_t total = active + completed + aborted + removed;
  if (total != eco.sessions_arrived() || eco.sessions().size() != total) {
    std::ostringstream msg;
    msg << "session states do not conserve arrivals: active=" << active
        << " completed=" << completed << " aborted=" << aborted
        << " removed=" << removed << " vs arrived=" << eco.sessions_arrived();
    fail(eco, "eco-session-conservation", msg.str());
  }
  if (completed != eco.sessions_completed() || aborted != eco.sessions_aborted() ||
      removed != eco.sessions_removed()) {
    std::ostringstream msg;
    msg << "session-state counters drifted from the session list: completed="
        << completed << "/" << eco.sessions_completed() << " aborted=" << aborted
        << "/" << eco.sessions_aborted() << " removed=" << removed << "/"
        << eco.sessions_removed();
    fail(eco, "eco-session-conservation", msg.str());
  }
}

void EcosystemInvariants::check_want_seed_coherence(const eco::Ecosystem& eco) {
  ++checks_run_;
  for (const eco::Session& s : eco.sessions()) {
    if (s.next_want > s.wants.size()) {
      std::ostringstream msg;
      msg << "session " << s.id << " next_want " << s.next_want << " beyond want list ("
          << s.wants.size() << ")";
      fail(eco, "eco-want-seed-coherence", msg.str());
    }
    for (const std::uint32_t t : s.completed) {
      if (std::find(s.wants.begin(), s.wants.end(), t) == s.wants.end()) {
        std::ostringstream msg;
        msg << "session " << s.id << " completed torrent " << t
            << " that it never wanted";
        fail(eco, "eco-want-seed-coherence", msg.str());
      }
    }
    for (const auto& [t, id] : s.seeding) {
      const bt::Swarm& swarm = eco.swarm(t);
      if (!swarm.is_live(id)) {
        std::ostringstream msg;
        msg << "session " << s.id << " seeding entry (torrent " << t << ", peer " << id
            << ") is not live";
        fail(eco, "eco-want-seed-coherence", msg.str());
      }
      if (!swarm.peer(id).is_seed) {
        std::ostringstream msg;
        msg << "session " << s.id << " seeding entry (torrent " << t << ", peer " << id
            << ") is not a seed";
        fail(eco, "eco-want-seed-coherence", msg.str());
      }
      if (std::find(s.completed.begin(), s.completed.end(), t) == s.completed.end()) {
        std::ostringstream msg;
        msg << "session " << s.id << " seeds torrent " << t
            << " without a completion record";
        fail(eco, "eco-want-seed-coherence", msg.str());
      }
    }
  }
}

void EcosystemInvariants::check_ledger_coherence(const eco::Ecosystem& eco) {
  ++checks_run_;
  for (std::size_t t = 0; t < eco.num_torrents(); ++t) {
    const bt::Swarm& swarm = eco.swarm(t);
    const std::size_t swarm_pop = swarm.population();
    const std::size_t tracker_pop = swarm.tracker().population();
    if (swarm_pop != tracker_pop) {
      std::ostringstream msg;
      msg << "torrent " << t << " swarm population " << swarm_pop
          << " != tracker registry " << tracker_pop;
      fail(eco, "eco-ledger-coherence", msg.str());
    }
    if (eco.ledger(t) != swarm_pop) {
      std::ostringstream msg;
      msg << "torrent " << t << " ecosystem ledger " << eco.ledger(t)
          << " != swarm population " << swarm_pop;
      fail(eco, "eco-ledger-coherence", msg.str());
    }
  }
}

const std::vector<std::string_view>& EcosystemInvariants::invariant_names() {
  static const std::vector<std::string_view> kNames = {
      "eco-session-conservation",
      "eco-want-seed-coherence",
      "eco-ledger-coherence",
  };
  return kNames;
}

EcosystemChecker::EcosystemChecker(eco::Ecosystem& eco, InvariantOptions options)
    : eco_(eco), cross_(options.context) {
  suites_.reserve(eco_.num_torrents());
  for (std::size_t t = 0; t < eco_.num_torrents(); ++t) {
    InvariantOptions per_swarm = options;
    if (!options.context.empty()) {
      per_swarm.context = options.context + " torrent=" + std::to_string(t);
    }
    suites_.push_back(std::make_unique<InvariantSuite>(std::move(per_swarm)));
    eco_.swarm(t).set_phase_observer(suites_.back().get());
  }
}

EcosystemChecker::~EcosystemChecker() {
  for (std::size_t t = 0; t < suites_.size(); ++t) {
    if (eco_.swarm(t).phase_observer() == suites_[t].get()) {
      eco_.swarm(t).set_phase_observer(nullptr);
    }
  }
}

void EcosystemChecker::check_round() { cross_.check(eco_); }

std::uint64_t EcosystemChecker::checks_run() const {
  std::uint64_t total = cross_.checks_run();
  for (const auto& suite : suites_) {
    total += suite->checks_run();
  }
  return total;
}

}  // namespace mpbt::check
