// Replayable fuzz case specifications.
//
// A CaseSpec is the complete, self-contained description of one fuzz
// case: every SwarmConfig field the fuzzer randomizes, the number of
// rounds to run, the derived RNG seed, and (for regression cases) the
// armed fault plus the invariant the case is expected to violate. Specs
// serialize to the "mpbt-fuzz-case-v1" JSON dialect (docs/FUZZING.md
// documents the schema), so any case — freshly generated, shrunk, or
// pasted from a CI log — replays bit-identically via
// `mpbt_fuzz --replay=case.json`.
//
// Generation is deterministic: random_case(base, index) draws the
// config point from an Rng seeded with exp::derive_seed(base, index),
// and the run seed is exp::derive_seed(base, index, 1) — so case i of a
// fuzz campaign is the same config and the same run for any --jobs.
#pragma once

#include <cstdint>
#include <string>

#include "bt/config.hpp"
#include "eco/ecosystem.hpp"
#include "report/json.hpp"

namespace mpbt::check {

struct CaseSpec {
  /// Identity within the fuzz campaign that generated the case.
  std::uint64_t base_seed = 42;
  std::uint64_t index = 0;
  /// The SwarmConfig seed actually used (derive_seed(base, index, 1) for
  /// generated cases; preserved verbatim through shrinking and replay).
  std::uint64_t seed = 42;

  /// Rounds to run with invariants attached.
  std::uint32_t rounds = 20;

  // Randomized SwarmConfig point (paper notation: B, k, s).
  std::uint32_t num_pieces = 20;
  std::uint32_t max_connections = 4;
  std::uint32_t peer_set_size = 10;
  std::uint32_t initial_seeds = 1;
  std::uint32_t seed_capacity = 4;
  std::uint32_t initial_leechers = 10;
  /// Uniform per-piece holding probability of the initial leecher group
  /// (0 = everyone starts empty).
  double warm_prob = 0.0;
  double arrival_rate = 1.0;
  double abort_rate = 0.0;
  double optimistic_unchoke_prob = 0.5;
  double connect_success_prob = 0.9;
  bool seeds_serve_all = false;
  bool handshake_delay = true;
  bool shake_enabled = false;
  double shake_fraction = 0.9;
  std::uint32_t seed_linger_rounds = 0;
  std::uint32_t blocks_per_piece = 1;
  std::uint32_t reannounce_interval = 0;
  std::uint32_t arrival_cutoff_round = 0;
  std::uint32_t max_population = 0;
  bt::PieceSelection piece_selection = bt::PieceSelection::RandomFirstThenRarest;
  bt::AvailabilityScope availability_scope = bt::AvailabilityScope::Global;
  bt::TrackerPolicy tracker_policy = bt::TrackerPolicy::UniformRandom;
  bt::ChokeAlgorithm choke_algorithm = bt::ChokeAlgorithm::RandomMatching;

  // Optional multi-torrent ecosystem section. eco_torrents == 0 (the
  // default, and what every pre-ecosystem case file deserializes to)
  // fuzzes a plain swarm; >= 1 wraps the swarm point above into an
  // eco::Ecosystem template and runs the cross-swarm invariants too.
  std::uint32_t eco_torrents = 0;
  double eco_zipf_s = 1.0;
  /// Expected new sessions per round (the swarm-level arrival_rate is
  /// neutralized inside an ecosystem — sessions are the arrivals).
  double eco_arrival_rate = 1.0;
  std::uint32_t eco_initial_sessions = 4;
  std::uint32_t eco_max_wants = 2;
  /// Flash-crowd burst (0 sessions or round 0 = no burst).
  std::uint32_t eco_flash_round = 0;
  std::uint32_t eco_flash_sessions = 0;
  /// Takedown event (round 0 or fraction 0 = no event).
  std::uint32_t eco_takedown_round = 0;
  double eco_takedown_fraction = 0.0;

  /// Fault armed for the run (bt::fault name; "none" for clean fuzzing).
  std::string fault = "none";
  /// Invariant this case is expected to violate ("" = expected clean).
  /// Recorded by the fuzzer when a failure is captured, so replaying a
  /// regression case can verify the SAME violation still reproduces.
  std::string expect_violation;

  friend bool operator==(const CaseSpec&, const CaseSpec&) = default;
};

/// Deterministically generates case `index` of the campaign rooted at
/// `base_seed`. Quick mode draws from smaller ranges (fewer peers,
/// pieces and rounds) so hundreds of cases finish within a CI smoke
/// budget; the spec records the concrete values, so replay does not
/// depend on the quick flag.
CaseSpec random_case(std::uint64_t base_seed, std::uint64_t index, bool quick);

/// Materializes the spec as a validated SwarmConfig.
bt::SwarmConfig to_config(const CaseSpec& spec);

/// Materializes the ecosystem section (requires eco_torrents >= 1): the
/// swarm point becomes the per-torrent template, the eco_* fields drive
/// sessions, bursts and the takedown script.
eco::EcosystemConfig to_ecosystem_config(const CaseSpec& spec);

/// JSON round-trip ("mpbt-fuzz-case-v1").
report::Json to_json(const CaseSpec& spec);
CaseSpec case_from_json(const report::Json& json);

/// Loads a spec from a file holding either a bare case object or a
/// fuzzer failure record (which nests the case under "shrunk"/"case";
/// "shrunk" wins when both are present). Throws std::runtime_error on
/// malformed input.
CaseSpec load_case_spec(const std::string& path);

// Enum <-> stable string names (used by the JSON dialect and the CLI).
std::string_view piece_selection_name(bt::PieceSelection v);
std::string_view availability_scope_name(bt::AvailabilityScope v);
std::string_view tracker_policy_name(bt::TrackerPolicy v);
std::string_view choke_algorithm_name(bt::ChokeAlgorithm v);
bt::PieceSelection piece_selection_from_name(std::string_view name);
bt::AvailabilityScope availability_scope_from_name(std::string_view name);
bt::TrackerPolicy tracker_policy_from_name(std::string_view name);
bt::ChokeAlgorithm choke_algorithm_from_name(std::string_view name);

}  // namespace mpbt::check
