// Cross-swarm ecosystem invariants.
//
// The per-swarm InvariantSuite guards each torrent's internal structure;
// these checks guard the coordination layer above it — the bookkeeping
// eco::Ecosystem keeps about its sessions and swarms:
//
//   eco-session-conservation   Every session ever arrived is in exactly
//                              one terminal-or-active state, and every
//                              active session is either waiting to join
//                              its next want or owns a live peer.
//   eco-want-seed-coherence    A session's seeding entries point at live
//                              seeds in torrents the session completed,
//                              and completed torrents are wanted ones.
//   eco-ledger-coherence       The ecosystem's per-torrent population
//                              ledger agrees with the swarm live list
//                              AND the tracker registry.
//
// Each invariant catches a specific bt::fault:
// eco-leak-departed-session -> conservation, eco-skip-completion-record
// -> want/seed coherence, eco-skip-takedown-ledger -> ledger coherence.
//
// EcosystemChecker bundles these round-granular checks with one
// bt::PhaseObserver InvariantSuite attached per swarm, so one object
// arms the whole catalogue — phase-boundary structure inside every
// torrent plus cross-swarm bookkeeping between rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/invariants.hpp"
#include "eco/ecosystem.hpp"

namespace mpbt::check {

/// Round-granular cross-swarm checks. Stateless between calls: safe to
/// invoke after any step() (or on a freshly built ecosystem).
class EcosystemInvariants {
 public:
  /// `context` is appended verbatim to every violation message (the
  /// fuzzer records the case identity here).
  explicit EcosystemInvariants(std::string context = "");

  /// Runs the full cross-swarm catalogue; throws InvariantViolation.
  void check(const eco::Ecosystem& eco);

  std::uint64_t checks_run() const { return checks_run_; }

  /// Names of the cross-swarm invariants, in evaluation order.
  static const std::vector<std::string_view>& invariant_names();

 private:
  void check_session_conservation(const eco::Ecosystem& eco);
  void check_want_seed_coherence(const eco::Ecosystem& eco);
  void check_ledger_coherence(const eco::Ecosystem& eco);

  [[noreturn]] void fail(const eco::Ecosystem& eco, std::string_view invariant,
                         std::string message) const;

  std::string context_;
  std::uint64_t checks_run_ = 0;
};

/// One-stop checker for an ecosystem run: attaches an InvariantSuite to
/// every swarm (phase-boundary checks during step()) and runs the
/// cross-swarm catalogue via check_round(). Detaches the observers on
/// destruction.
class EcosystemChecker {
 public:
  explicit EcosystemChecker(eco::Ecosystem& eco, InvariantOptions options = {});
  ~EcosystemChecker();

  EcosystemChecker(const EcosystemChecker&) = delete;
  EcosystemChecker& operator=(const EcosystemChecker&) = delete;

  /// Cross-swarm checks for the current round; call after each step().
  void check_round();

  /// Per-swarm phase checks + cross-swarm checks, total.
  std::uint64_t checks_run() const;

 private:
  eco::Ecosystem& eco_;
  EcosystemInvariants cross_;
  std::vector<std::unique_ptr<InvariantSuite>> suites_;
};

}  // namespace mpbt::check
