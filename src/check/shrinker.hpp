// Greedy fuzz-case shrinking.
//
// Given a failing CaseSpec, shrink_case() searches for a smaller spec
// that still violates the SAME invariant: it first clamps the round
// count to just past the violation, then bisects each size-like field
// toward its floor and tries zero/default simplifications of the rates,
// toggles and policies, re-running the candidate after every mutation
// and keeping it only when the original invariant reproduces. The loop
// repeats until a full pass accepts nothing (a fixpoint) or the probe
// budget runs out. The result is a minimal-ish deterministic reproducer
// suitable for committing as a regression case.
#pragma once

#include <cstddef>

#include "check/fuzzer.hpp"

namespace mpbt::check {

struct ShrinkOptions {
  /// Probe budget: total run_case() executions (candidate evaluations).
  std::size_t max_attempts = 250;
  /// InvariantSuite knobs used for every probe; match the values used
  /// when the original failure was found, or a violation that needs
  /// stride/deep to surface may stop reproducing mid-shrink.
  std::uint64_t stride = 1;
  bool deep = false;
};

struct ShrinkResult {
  /// Smallest spec found that reproduces the original invariant; its
  /// expect_violation field records that invariant.
  CaseSpec shrunk;
  /// Result of running `shrunk` (message, violation round, fingerprint).
  CaseResult result;
  std::size_t attempts = 0;
  std::size_t accepted = 0;
};

/// Shrinks `spec`, which must currently violate an invariant. Throws
/// std::invalid_argument if the spec runs clean.
ShrinkResult shrink_case(const CaseSpec& spec, const ShrinkOptions& options = {});

}  // namespace mpbt::check
