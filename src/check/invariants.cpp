#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "bt/peer.hpp"
#include "bt/peer_store.hpp"
#include "bt/tracker.hpp"
#include "obs/trace.hpp"

namespace mpbt::check {

namespace {

// Phase-window boundaries, resolved against the swarm's static schedule
// once at load time (the schedule is a compile-time table, so these are
// stable for the process lifetime).
std::size_t phase_index_of(std::string_view name) {
  for (std::size_t i = 0; i < bt::Swarm::num_phases(); ++i) {
    if (bt::Swarm::phase_name(i) == name) {
      return i;
    }
  }
  throw std::logic_error("InvariantSuite: unknown phase in round schedule: " +
                         std::string(name));
}

struct PhaseWindows {
  std::size_t rebuild_potential = phase_index_of("rebuild_potential");
  std::size_t seed_service = phase_index_of("seed_service");
  std::size_t completions = phase_index_of("completions");
  std::size_t record_metrics = phase_index_of("record_metrics");
};

const PhaseWindows& windows() {
  static const PhaseWindows w;
  return w;
}

/// Mirror of the phase classification used by phase_observe.cpp and
/// model::classify_phase: 0 = bootstrap, 1 = efficient, 2 = last,
/// 3 = done, from (n = connections, b = pieces, i = potential).
std::uint8_t classify(std::uint32_t n, std::uint32_t b, std::uint32_t i,
                      std::uint32_t num_pieces) {
  if (b >= num_pieces) {
    return 3;
  }
  if (b == 0 || (b + n <= 1 && i == 0)) {
    return 0;
  }
  if (i == 0 && n == 0) {
    return 2;
  }
  return 1;
}

}  // namespace

InvariantSuite::InvariantSuite(InvariantOptions options)
    : options_(std::move(options)) {
  if (options_.stride == 0) {
    options_.stride = 1;
  }
  (void)windows();  // resolve (and validate) the schedule eagerly
}

const std::vector<std::string_view>& InvariantSuite::invariant_names() {
  static const std::vector<std::string_view> kNames = {
      "live-list",
      "neighbor-symmetry",
      "connection-symmetry",
      "connection-cap",
      "seed-coherence",
      "inflight-conservation",
      "entropy-bounds",
      "upload-budget",
      "potential-bounds",
      "completion-liveness",
      "piece-counts",
      "acquisition-ledger",
      "piece-monotonicity",
      "phase-sanity",
      "metrics-coherence",
      "tracker-coherence",
  };
  return kNames;
}

void InvariantSuite::fail(const bt::Swarm& swarm, std::string_view invariant,
                          std::string_view what, bt::PeerId peer,
                          bt::PeerId partner) const {
  std::string msg;
  msg.reserve(160);
  msg.append("invariant '").append(invariant).append("' violated: ").append(what);
  msg.append(" [round=").append(std::to_string(swarm.round()));
  msg.append(" phase=").append(current_phase_);
  if (peer != bt::kNoPeer) {
    msg.append(" peer=").append(std::to_string(peer));
  }
  if (partner != bt::kNoPeer) {
    msg.append(" partner=").append(std::to_string(partner));
  }
  msg.append(" seed=").append(std::to_string(swarm.config().seed));
  if (!options_.context.empty()) {
    msg.append(" ").append(options_.context);
  }
  msg.push_back(']');

  if (swarm.trace_recorder() != nullptr) {
    const auto& names = invariant_names();
    const auto it = std::find(names.begin(), names.end(), invariant);
    const auto index = static_cast<std::size_t>(it - names.begin());
    swarm.trace_recorder()->invariant_violation(swarm.round(), peer, partner, index,
                                                current_phase_index_);
  }
  throw InvariantViolation(std::string(invariant), std::move(msg), swarm.round(),
                           current_phase_);
}

void InvariantSuite::on_phase_end(const bt::Swarm& swarm, std::string_view phase,
                                  std::size_t phase_index) {
  if (swarm.round() % options_.stride != 0) {
    return;
  }
  current_phase_.assign(phase);
  current_phase_index_ = phase_index;
  const PhaseWindows& w = windows();

  check_live_list(swarm);
  check_neighbor_symmetry(swarm);
  check_connection_symmetry(swarm);
  check_connection_cap(swarm);
  check_seed_coherence(swarm);
  check_inflight_conservation(swarm);
  check_entropy_bounds(swarm);
  check_upload_budget(swarm);
  // Potential sets are rebuilt each round and legitimately go stale once
  // departures (completions) and shaking start mutating membership.
  if (phase_index >= w.rebuild_potential && phase_index <= w.seed_service) {
    check_potential_bounds(swarm);
  }
  // Completed leechers either departed or converted to seeds once the
  // completions phase has run; earlier in the round a finished download
  // may still be live (e.g. a B=1 bootstrap).
  if (phase_index >= w.completions) {
    check_completion_liveness(swarm);
  }
  if (options_.deep) {
    check_piece_counts(swarm);
    check_acquisition_ledger(swarm);
  }
}

void InvariantSuite::on_round_end(const bt::Swarm& swarm, bt::Round round) {
  if (round % options_.stride != 0) {
    return;
  }
  current_phase_ = "round-end";
  current_phase_index_ = bt::Swarm::num_phases();
  if (!options_.deep) {
    check_piece_counts(swarm);
    check_acquisition_ledger(swarm);
  }
  check_piece_monotonicity(swarm);
  check_phase_sanity(swarm);
  check_metrics_coherence(swarm);
  check_tracker_coherence(swarm);
}

void InvariantSuite::check_all(const bt::Swarm& swarm) {
  current_phase_ = "manual";
  current_phase_index_ = bt::Swarm::num_phases();
  check_live_list(swarm);
  check_neighbor_symmetry(swarm);
  check_connection_symmetry(swarm);
  check_connection_cap(swarm);
  check_seed_coherence(swarm);
  check_inflight_conservation(swarm);
  check_entropy_bounds(swarm);
  check_upload_budget(swarm);
  check_completion_liveness(swarm);
  check_piece_counts(swarm);
  check_acquisition_ledger(swarm);
  check_tracker_coherence(swarm);
}

void InvariantSuite::reset() {
  prev_piece_count_.clear();
  prev_bootstrap_rounds_ = 0;
  prev_efficient_rounds_ = 0;
  prev_last_phase_rounds_ = 0;
  seen_round_ = false;
  current_phase_ = "attach";
  current_phase_index_ = 0;
}

// --- per-phase structural checks -------------------------------------------

void InvariantSuite::check_live_list(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  const std::vector<bt::PeerId>& live = store.live();
  for (std::size_t pos = 0; pos < live.size(); ++pos) {
    const bt::PeerId id = live[pos];
    if (!store.exists(id)) {
      fail(swarm, "live-list", "live list references an unknown id", id);
    }
    if (!store.is_live(id)) {
      fail(swarm, "live-list", "live list contains a departed peer (unswept hole)",
           id);
    }
    if (store.live_position(id) != pos) {
      fail(swarm, "live-list",
           "live_position disagrees with the live list (duplicate or stale index)",
           id);
    }
    if (store.get(id).id != id) {
      fail(swarm, "live-list", "peer slot does not carry its own id", id);
    }
  }
}

void InvariantSuite::check_neighbor_symmetry(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    for (const bt::PeerId nb : p.neighbors.as_vector()) {
      if (nb == id) {
        fail(swarm, "neighbor-symmetry", "peer is its own neighbor", id);
      }
      if (!store.is_live(nb)) {
        fail(swarm, "neighbor-symmetry", "neighbor set contains a departed peer", id,
             nb);
      }
      if (!store.get(nb).neighbors.contains(id)) {
        fail(swarm, "neighbor-symmetry", "neighbor relation is not symmetric", id, nb);
      }
    }
  }
}

void InvariantSuite::check_connection_symmetry(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    for (const bt::PeerId c : p.connections.as_vector()) {
      if (!p.neighbors.contains(c)) {
        fail(swarm, "connection-symmetry", "connection to a non-neighbor", id, c);
      }
      if (!store.is_live(c)) {
        fail(swarm, "connection-symmetry", "connection to a departed peer", id, c);
      }
      if (!store.get(c).connections.contains(id)) {
        fail(swarm, "connection-symmetry", "connection is not symmetric", id, c);
      }
    }
  }
}

void InvariantSuite::check_connection_cap(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  const std::uint32_t k = swarm.config().max_connections;
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (p.is_leecher() && p.connections.size() > k) {
      fail(swarm, "connection-cap",
           "connection count " + std::to_string(p.connections.size()) +
               " exceeds k=" + std::to_string(k),
           id);
    }
  }
}

void InvariantSuite::check_seed_coherence(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (!p.is_seed) {
      continue;
    }
    if (!p.pieces.all()) {
      fail(swarm, "seed-coherence", "seed does not hold the complete file", id);
    }
    if (p.connections.size() != 0) {
      fail(swarm, "seed-coherence", "seed holds trading connections", id);
    }
    if (!p.inflight.empty()) {
      fail(swarm, "seed-coherence", "seed has in-flight downloads", id);
    }
  }
}

void InvariantSuite::check_inflight_conservation(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  const std::uint32_t m = swarm.config().blocks_per_piece;
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (m == 1 && !p.inflight.empty()) {
      fail(swarm, "inflight-conservation",
           "in-flight state exists under piece-granular transfer (m=1)", id);
    }
    for (const auto& [partner, flight] : p.inflight) {
      if (!p.connections.contains(partner)) {
        fail(swarm, "inflight-conservation", "in-flight piece on a dead connection",
             id, partner);
      }
      if (p.pieces.test(flight.piece)) {
        fail(swarm, "inflight-conservation",
             "in-flight piece " + std::to_string(flight.piece) + " is already held",
             id, partner);
      }
      if (flight.blocks_done >= m) {
        fail(swarm, "inflight-conservation",
             "in-flight piece has all blocks but never completed", id, partner);
      }
      for (const auto& [other_partner, other_flight] : p.inflight) {
        if (other_partner != partner && other_flight.piece == flight.piece) {
          fail(swarm, "inflight-conservation",
               "piece " + std::to_string(flight.piece) +
                   " is in flight from two partners",
               id, partner);
        }
      }
    }
  }
}

void InvariantSuite::check_entropy_bounds(const bt::Swarm& swarm) {
  ++checks_run_;
  const double e = swarm.entropy();
  if (!std::isfinite(e) || e < 0.0 || e > 1.0) {
    fail(swarm, "entropy-bounds", "entropy " + std::to_string(e) + " outside [0, 1]");
  }
}

void InvariantSuite::check_upload_budget(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (p.upload_left > p.upload_per_round) {
      fail(swarm, "upload-budget", "upload budget exceeds the per-round cap", id);
    }
  }
}

void InvariantSuite::check_potential_bounds(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (p.is_seed || p.pieces.none()) {
      if (!p.potential.empty()) {
        fail(swarm, "potential-bounds",
             p.is_seed ? "seed has a non-empty potential set"
                       : "piece-less peer has a non-empty potential set",
             id);
      }
      continue;
    }
    if (p.potential.size() > p.neighbors.size()) {
      fail(swarm, "potential-bounds",
           "potential set larger than the neighbor set (i > |NS|)", id);
    }
    bt::PeerId prev = bt::kNoPeer;
    for (const bt::PeerId member : p.potential) {
      if (prev != bt::kNoPeer && member <= prev) {
        fail(swarm, "potential-bounds", "potential set is not sorted-unique", id,
             member);
      }
      prev = member;
      if (member == id) {
        fail(swarm, "potential-bounds", "peer is in its own potential set", id);
      }
      if (!store.is_live(member)) {
        fail(swarm, "potential-bounds", "potential set contains a departed peer", id,
             member);
      }
      if (!p.neighbors.contains(member)) {
        fail(swarm, "potential-bounds", "potential set contains a non-neighbor", id,
             member);
      }
      if (store.get(member).is_seed) {
        fail(swarm, "potential-bounds",
             "potential set contains a seed (seeds trade outside tit-for-tat)", id,
             member);
      }
    }
  }
}

void InvariantSuite::check_completion_liveness(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (p.is_leecher() && p.pieces.all()) {
      fail(swarm, "completion-liveness",
           "completed leecher survived the completions phase", id);
    }
  }
}

// --- deep checks ------------------------------------------------------------

void InvariantSuite::check_piece_counts(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  const std::uint32_t num_pieces = swarm.config().num_pieces;
  std::vector<std::uint32_t> recount(num_pieces, 0);
  for (const bt::PeerId id : store.live()) {
    store.get(id).pieces.for_each_held(
        [&recount](bt::PieceIndex piece) { ++recount[piece]; });
  }
  const std::vector<std::uint32_t>& cached = swarm.piece_counts();
  for (bt::PieceIndex piece = 0; piece < num_pieces; ++piece) {
    if (recount[piece] != cached[piece]) {
      fail(swarm, "piece-counts",
           "replication degree of piece " + std::to_string(piece) + " is cached as " +
               std::to_string(cached[piece]) + " but recounts to " +
               std::to_string(recount[piece]));
    }
  }
}

void InvariantSuite::check_acquisition_ledger(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (p.is_seed) {
      continue;  // initial seeds hold the file with an empty ledger
    }
    if (p.acquired_rounds.size() != p.pieces.count()) {
      fail(swarm, "acquisition-ledger",
           "ledger records " + std::to_string(p.acquired_rounds.size()) +
               " acquisitions but the bitfield holds " +
               std::to_string(p.pieces.count()),
           id);
    }
    bt::Round prev = 0;
    for (const bt::Round r : p.acquired_rounds) {
      if (r < prev || r > swarm.round()) {
        fail(swarm, "acquisition-ledger",
             "acquisition rounds are not nondecreasing within the run", id);
      }
      prev = r;
    }
  }
}

// --- cross-round checks -----------------------------------------------------

void InvariantSuite::check_piece_monotonicity(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  if (prev_piece_count_.size() < store.size()) {
    prev_piece_count_.resize(store.size(), -1);
  }
  for (const bt::PeerId id : store.live()) {
    const auto count = static_cast<std::int64_t>(store.get(id).pieces.count());
    if (prev_piece_count_[id] >= 0 && count < prev_piece_count_[id]) {
      fail(swarm, "piece-monotonicity",
           "piece count fell from " + std::to_string(prev_piece_count_[id]) + " to " +
               std::to_string(count) + " (b' >= b violated)",
           id);
    }
    prev_piece_count_[id] = count;
  }
}

void InvariantSuite::check_phase_sanity(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  const std::uint32_t num_pieces = swarm.config().num_pieces;
  for (const bt::PeerId id : store.live()) {
    const bt::Peer& p = store.get(id);
    if (p.is_seed) {
      continue;
    }
    const auto code = classify(static_cast<std::uint32_t>(p.connections.size()),
                               static_cast<std::uint32_t>(p.pieces.count()),
                               static_cast<std::uint32_t>(p.potential.size()),
                               num_pieces);
    // The detector's ordering contract (bootstrap -> efficient -> last ->
    // done): "done" implies departure/seeding, so no live leecher may
    // classify as done at round end, and "last phase" requires at least
    // two pieces (a 0/1-piece idle peer is still bootstrapping).
    if (code == 3) {
      fail(swarm, "phase-sanity", "live leecher classifies as done at round end", id);
    }
    if (code == 2 && p.pieces.count() < 2) {
      fail(swarm, "phase-sanity",
           "peer in the last phase holds fewer than two pieces", id);
    }
  }
  const bt::SwarmMetrics& metrics = swarm.metrics();
  if (metrics.bootstrap_rounds() < prev_bootstrap_rounds_ ||
      metrics.efficient_rounds() < prev_efficient_rounds_ ||
      metrics.last_phase_rounds() < prev_last_phase_rounds_) {
    fail(swarm, "phase-sanity", "phase occupancy counters decreased");
  }
  prev_bootstrap_rounds_ = metrics.bootstrap_rounds();
  prev_efficient_rounds_ = metrics.efficient_rounds();
  prev_last_phase_rounds_ = metrics.last_phase_rounds();
}

void InvariantSuite::check_metrics_coherence(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::SwarmMetrics& metrics = swarm.metrics();
  const std::size_t expected = static_cast<std::size_t>(swarm.round()) + 1;
  if (metrics.population().size() != expected ||
      metrics.seeds().size() != expected || metrics.entropy().size() != expected) {
    fail(swarm, "metrics-coherence",
         "per-round series hold " + std::to_string(metrics.population().size()) +
             " samples after round " + std::to_string(swarm.round()) +
             " (expected " + std::to_string(expected) + ")");
  }
  const numeric::Sample& pop = metrics.population()[expected - 1];
  const numeric::Sample& seeds = metrics.seeds()[expected - 1];
  if (pop.time != static_cast<double>(swarm.round())) {
    fail(swarm, "metrics-coherence", "last sample is not stamped with this round");
  }
  const double live_leechers = static_cast<double>(swarm.num_leechers());
  const double live_seeds = static_cast<double>(swarm.num_seeds());
  if (pop.value != live_leechers || seeds.value != live_seeds) {
    fail(swarm, "metrics-coherence",
         "recorded population (" + std::to_string(pop.value) + " leechers, " +
             std::to_string(seeds.value) + " seeds) does not match the live swarm (" +
             std::to_string(live_leechers) + ", " + std::to_string(live_seeds) + ")");
  }
  const double recorded_entropy = metrics.entropy()[expected - 1].value;
  if (recorded_entropy != swarm.entropy()) {
    fail(swarm, "metrics-coherence",
         "recorded entropy does not match the swarm's current entropy");
  }
  seen_round_ = true;
}

void InvariantSuite::check_tracker_coherence(const bt::Swarm& swarm) {
  ++checks_run_;
  const bt::PeerStore& store = swarm.store();
  const bt::Tracker& tracker = swarm.tracker();
  if (tracker.population() != store.live().size()) {
    fail(swarm, "tracker-coherence",
         "tracker registry holds " + std::to_string(tracker.population()) +
             " peers but the swarm has " + std::to_string(store.live().size()));
  }
  for (const bt::PeerId id : store.live()) {
    if (!tracker.contains(id)) {
      fail(swarm, "tracker-coherence", "live peer is missing from the tracker", id);
    }
  }
}

}  // namespace mpbt::check
