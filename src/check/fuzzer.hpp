// Randomized scenario fuzzing with invariants enabled.
//
// run_case() executes one CaseSpec under a fresh Swarm with an
// InvariantSuite attached (and the spec's fault armed), converting any
// InvariantViolation into a structured CaseResult instead of letting it
// propagate. run_fuzz() fans a campaign of deterministically generated
// cases across an exp::ThreadPool; results are indexed by case, and the
// campaign fingerprint folds per-case fingerprints in index order, so
// the summary is bit-identical for any --jobs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bt/types.hpp"
#include "check/case_spec.hpp"
#include "check/invariants.hpp"

namespace mpbt::check {

/// Outcome of one fuzz case.
struct CaseResult {
  CaseSpec spec;
  /// True when the run completed every round invariant-clean.
  bool ok = true;
  /// Violated invariant name ("" when ok).
  std::string invariant;
  /// Full violation message (round, phase, peers, seed, context).
  std::string message;
  /// Round during which the violation was detected (0-based).
  bt::Round violation_round = 0;
  /// Rounds fully completed before the run ended.
  std::uint64_t rounds_run = 0;
  /// Invariant evaluations performed.
  std::uint64_t checks_run = 0;
  /// FNV-1a over the per-round (population, completed, entropy, bytes)
  /// tuples of the completed rounds — the jobs-invariance witness.
  std::uint64_t fingerprint = 0;
};

/// Runs one case to completion (or first violation). `stride`/`deep`
/// configure the attached InvariantSuite; the suite context records the
/// case identity so violation messages are self-reproducing.
CaseResult run_case(const CaseSpec& spec, std::uint64_t stride = 1,
                    bool deep = false);

struct FuzzOptions {
  std::uint64_t base_seed = 42;
  std::uint64_t num_cases = 100;
  /// Worker threads (clamped to >= 1). Never affects any result value.
  std::size_t jobs = 1;
  /// Smaller config ranges, sized for a CI smoke budget.
  bool quick = false;
  std::uint64_t stride = 1;
  bool deep = false;
  /// Fault armed in EVERY generated case ("none" for clean fuzzing).
  std::string fault = "none";
  /// Optional progress hook, invoked once per finished case with the
  /// number of cases completed so far. Called from worker threads
  /// (serialized by the fuzzer); must not touch any result value.
  std::function<void(std::size_t completed, std::size_t total)> progress;
};

struct FuzzSummary {
  /// One entry per case, indexed by case index regardless of jobs.
  std::vector<CaseResult> results;
  std::size_t failures = 0;
  /// FNV-1a fold of per-case fingerprints in index order (failed cases
  /// contribute their partial fingerprint, so the value is still total).
  std::uint64_t campaign_fingerprint = 0;
};

/// Runs the campaign. Throws only on infrastructure errors (bad fault
/// name, invalid generated config); invariant violations are captured
/// per case.
FuzzSummary run_fuzz(const FuzzOptions& options);

/// FNV-1a 64-bit fold helper shared by the fuzzer and tests.
std::uint64_t fnv1a64(std::uint64_t hash, std::uint64_t value);

}  // namespace mpbt::check
