#include "check/case_spec.hpp"

#include <stdexcept>

#include "bt/fault.hpp"
#include "exp/seed_stream.hpp"
#include "numeric/rng.hpp"

namespace mpbt::check {

namespace {

constexpr std::string_view kSchema = "mpbt-fuzz-case-v1";

/// 64-bit seeds are serialized as decimal strings: JSON numbers are
/// doubles, which silently lose the low bits of any seed above 2^53 —
/// and a seed that is off by one bit replays a different universe.
report::Json u64_json(std::uint64_t v) { return report::Json(std::to_string(v)); }

std::uint64_t u64_field(const report::Json& json, std::string_view key,
                        std::uint64_t fallback) {
  const report::Json* v = json.find(key);
  if (v == nullptr) {
    return fallback;
  }
  if (v->is_string()) {
    return std::stoull(v->as_string());
  }
  return static_cast<std::uint64_t>(v->as_number());
}

std::uint32_t u32_field(const report::Json& json, std::string_view key,
                        std::uint32_t fallback) {
  return static_cast<std::uint32_t>(
      json.number_or(key, static_cast<double>(fallback)));
}

bool bool_field(const report::Json& json, std::string_view key, bool fallback) {
  const report::Json* v = json.find(key);
  return v == nullptr ? fallback : v->as_bool();
}

}  // namespace

std::string_view piece_selection_name(bt::PieceSelection v) {
  switch (v) {
    case bt::PieceSelection::RarestFirst:
      return "rarest-first";
    case bt::PieceSelection::Random:
      return "random";
    case bt::PieceSelection::RandomFirstThenRarest:
      return "random-first-then-rarest";
  }
  return "?";
}

std::string_view availability_scope_name(bt::AvailabilityScope v) {
  switch (v) {
    case bt::AvailabilityScope::Global:
      return "global";
    case bt::AvailabilityScope::NeighborSet:
      return "neighbor-set";
  }
  return "?";
}

std::string_view tracker_policy_name(bt::TrackerPolicy v) {
  switch (v) {
    case bt::TrackerPolicy::UniformRandom:
      return "uniform-random";
    case bt::TrackerPolicy::BootstrapBias:
      return "bootstrap-bias";
    case bt::TrackerPolicy::StatusClustered:
      return "status-clustered";
  }
  return "?";
}

std::string_view choke_algorithm_name(bt::ChokeAlgorithm v) {
  switch (v) {
    case bt::ChokeAlgorithm::RandomMatching:
      return "random-matching";
    case bt::ChokeAlgorithm::RateBased:
      return "rate-based";
  }
  return "?";
}

namespace {

template <typename Enum>
Enum enum_from_name(std::string_view name, std::string_view (*to_name)(Enum),
                    std::initializer_list<Enum> values, const char* what) {
  for (const Enum v : values) {
    if (to_name(v) == name) {
      return v;
    }
  }
  throw std::invalid_argument(std::string("unknown ") + what + " name: " +
                              std::string(name));
}

}  // namespace

bt::PieceSelection piece_selection_from_name(std::string_view name) {
  return enum_from_name(name, piece_selection_name,
                        {bt::PieceSelection::RarestFirst, bt::PieceSelection::Random,
                         bt::PieceSelection::RandomFirstThenRarest},
                        "piece selection");
}

bt::AvailabilityScope availability_scope_from_name(std::string_view name) {
  return enum_from_name(
      name, availability_scope_name,
      {bt::AvailabilityScope::Global, bt::AvailabilityScope::NeighborSet},
      "availability scope");
}

bt::TrackerPolicy tracker_policy_from_name(std::string_view name) {
  return enum_from_name(name, tracker_policy_name,
                        {bt::TrackerPolicy::UniformRandom,
                         bt::TrackerPolicy::BootstrapBias,
                         bt::TrackerPolicy::StatusClustered},
                        "tracker policy");
}

bt::ChokeAlgorithm choke_algorithm_from_name(std::string_view name) {
  return enum_from_name(
      name, choke_algorithm_name,
      {bt::ChokeAlgorithm::RandomMatching, bt::ChokeAlgorithm::RateBased},
      "choke algorithm");
}

CaseSpec random_case(std::uint64_t base_seed, std::uint64_t index, bool quick) {
  // One generator for the config point, a separate derived seed for the
  // run itself: shrinking mutates the point without touching the seed.
  numeric::Rng rng(exp::derive_seed(base_seed, index));
  const auto u32 = [&rng](std::uint32_t lo, std::uint32_t hi) {
    return static_cast<std::uint32_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
  };

  CaseSpec c;
  c.base_seed = base_seed;
  c.index = index;
  c.seed = exp::derive_seed(base_seed, index, 1);

  c.rounds = u32(4, quick ? 24 : 120);
  c.num_pieces = u32(1, quick ? 24 : 120);
  c.max_connections = u32(1, 8);
  c.peer_set_size = u32(2, quick ? 16 : 50);
  c.initial_seeds = u32(0, 3);
  c.seed_capacity = u32(0, 8);
  c.initial_leechers = u32(0, quick ? 24 : 100);
  c.warm_prob = rng.bernoulli(0.5) ? rng.uniform(0.05, 0.9) : 0.0;
  c.arrival_rate = rng.uniform(0.0, quick ? 2.0 : 4.0);
  c.abort_rate = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.1) : 0.0;
  c.optimistic_unchoke_prob = rng.uniform01();
  c.connect_success_prob = rng.uniform(0.3, 1.0);
  c.seeds_serve_all = rng.bernoulli(0.5);
  c.handshake_delay = rng.bernoulli(0.5);
  c.shake_enabled = rng.bernoulli(0.3);
  c.shake_fraction = rng.uniform(0.3, 1.0);
  c.seed_linger_rounds = rng.bernoulli(0.5) ? u32(1, 6) : 0;
  c.blocks_per_piece = rng.bernoulli(0.3) ? u32(2, 8) : 1;
  c.reannounce_interval = rng.bernoulli(0.3) ? u32(1, 8) : 0;
  c.arrival_cutoff_round = rng.bernoulli(0.2) ? u32(1, c.rounds) : 0;
  c.max_population = rng.bernoulli(0.2) ? u32(4, 64) : 0;
  c.piece_selection = static_cast<bt::PieceSelection>(u32(0, 2));
  c.availability_scope = static_cast<bt::AvailabilityScope>(u32(0, 1));
  c.tracker_policy = static_cast<bt::TrackerPolicy>(u32(0, 2));
  c.choke_algorithm = static_cast<bt::ChokeAlgorithm>(u32(0, 1));
  // The ecosystem section is drawn after every swarm field so enabling
  // it never perturbs the plain-swarm point of earlier campaigns.
  if (rng.bernoulli(0.3)) {
    c.eco_torrents = u32(1, quick ? 4 : 8);
    c.eco_zipf_s = rng.uniform(0.0, 1.5);
    c.eco_arrival_rate = rng.uniform(0.0, quick ? 2.0 : 4.0);
    c.eco_initial_sessions = u32(0, quick ? 10 : 30);
    c.eco_max_wants = u32(1, 3);
    if (rng.bernoulli(0.3)) {
      c.eco_flash_round = u32(1, c.rounds);
      c.eco_flash_sessions = u32(5, quick ? 20 : 40);
    }
    if (rng.bernoulli(0.4)) {
      c.eco_takedown_round = u32(1, c.rounds);
      c.eco_takedown_fraction = rng.uniform(0.2, 0.9);
    }
  }
  return c;
}

bt::SwarmConfig to_config(const CaseSpec& spec) {
  bt::SwarmConfig config;
  config.num_pieces = spec.num_pieces;
  config.max_connections = spec.max_connections;
  config.peer_set_size = spec.peer_set_size;
  config.initial_seeds = spec.initial_seeds;
  config.seed_capacity = spec.seed_capacity;
  config.arrival_rate = spec.arrival_rate;
  config.abort_rate = spec.abort_rate;
  config.optimistic_unchoke_prob = spec.optimistic_unchoke_prob;
  config.connect_success_prob = spec.connect_success_prob;
  config.seeds_serve_all = spec.seeds_serve_all;
  config.handshake_delay = spec.handshake_delay;
  config.shake.enabled = spec.shake_enabled;
  config.shake.completion_fraction = spec.shake_fraction;
  config.seed_linger_rounds = spec.seed_linger_rounds;
  config.blocks_per_piece = spec.blocks_per_piece;
  config.reannounce_interval = spec.reannounce_interval;
  config.arrival_cutoff_round = spec.arrival_cutoff_round;
  config.max_population = spec.max_population;
  config.piece_selection = spec.piece_selection;
  config.availability_scope = spec.availability_scope;
  config.tracker_policy = spec.tracker_policy;
  config.choke_algorithm = spec.choke_algorithm;
  config.seed = spec.seed;
  if (spec.initial_leechers > 0) {
    bt::InitialGroup group;
    group.count = spec.initial_leechers;
    if (spec.warm_prob > 0.0) {
      group.piece_probs.assign(spec.num_pieces, spec.warm_prob);
    }
    config.initial_groups.push_back(std::move(group));
  }
  config.validate();
  return config;
}

eco::EcosystemConfig to_ecosystem_config(const CaseSpec& spec) {
  if (spec.eco_torrents == 0) {
    throw std::invalid_argument(
        "to_ecosystem_config: spec has no ecosystem section (eco_torrents == 0)");
  }
  eco::EcosystemConfig config;
  config.num_torrents = spec.eco_torrents;
  config.zipf_s = spec.eco_zipf_s;
  config.arrival_rate = spec.eco_arrival_rate;
  config.initial_sessions = spec.eco_initial_sessions;
  config.max_wants = spec.eco_max_wants;
  if (spec.eco_flash_round > 0 && spec.eco_flash_sessions > 0) {
    config.flash_crowds.push_back(
        {spec.eco_flash_round, spec.eco_flash_sessions, -1});
  }
  if (spec.eco_takedown_round > 0 && spec.eco_takedown_fraction > 0.0) {
    eco::Takedown takedown;
    takedown.round = spec.eco_takedown_round;
    takedown.fraction = spec.eco_takedown_fraction;
    takedown.torrent = -1;
    config.takedowns.push_back(takedown);
  }
  // The swarm point doubles as the per-torrent template; the Ecosystem
  // constructor neutralizes arrivals/initial groups itself.
  config.swarm = to_config(spec);
  config.seed = spec.seed;
  config.validate();
  return config;
}

report::Json to_json(const CaseSpec& spec) {
  report::Json json = report::Json::object();
  json.set("schema", report::Json(kSchema));
  json.set("base_seed", u64_json(spec.base_seed));
  json.set("index", u64_json(spec.index));
  json.set("seed", u64_json(spec.seed));
  json.set("rounds", report::Json(static_cast<double>(spec.rounds)));
  json.set("num_pieces", report::Json(static_cast<double>(spec.num_pieces)));
  json.set("max_connections", report::Json(static_cast<double>(spec.max_connections)));
  json.set("peer_set_size", report::Json(static_cast<double>(spec.peer_set_size)));
  json.set("initial_seeds", report::Json(static_cast<double>(spec.initial_seeds)));
  json.set("seed_capacity", report::Json(static_cast<double>(spec.seed_capacity)));
  json.set("initial_leechers",
           report::Json(static_cast<double>(spec.initial_leechers)));
  json.set("warm_prob", report::Json(spec.warm_prob));
  json.set("arrival_rate", report::Json(spec.arrival_rate));
  json.set("abort_rate", report::Json(spec.abort_rate));
  json.set("optimistic_unchoke_prob", report::Json(spec.optimistic_unchoke_prob));
  json.set("connect_success_prob", report::Json(spec.connect_success_prob));
  json.set("seeds_serve_all", report::Json(spec.seeds_serve_all));
  json.set("handshake_delay", report::Json(spec.handshake_delay));
  json.set("shake_enabled", report::Json(spec.shake_enabled));
  json.set("shake_fraction", report::Json(spec.shake_fraction));
  json.set("seed_linger_rounds",
           report::Json(static_cast<double>(spec.seed_linger_rounds)));
  json.set("blocks_per_piece",
           report::Json(static_cast<double>(spec.blocks_per_piece)));
  json.set("reannounce_interval",
           report::Json(static_cast<double>(spec.reannounce_interval)));
  json.set("arrival_cutoff_round",
           report::Json(static_cast<double>(spec.arrival_cutoff_round)));
  json.set("max_population", report::Json(static_cast<double>(spec.max_population)));
  json.set("piece_selection", report::Json(piece_selection_name(spec.piece_selection)));
  json.set("availability_scope",
           report::Json(availability_scope_name(spec.availability_scope)));
  json.set("tracker_policy", report::Json(tracker_policy_name(spec.tracker_policy)));
  json.set("choke_algorithm",
           report::Json(choke_algorithm_name(spec.choke_algorithm)));
  if (spec.eco_torrents > 0) {
    json.set("eco_torrents", report::Json(static_cast<double>(spec.eco_torrents)));
    json.set("eco_zipf_s", report::Json(spec.eco_zipf_s));
    json.set("eco_arrival_rate", report::Json(spec.eco_arrival_rate));
    json.set("eco_initial_sessions",
             report::Json(static_cast<double>(spec.eco_initial_sessions)));
    json.set("eco_max_wants", report::Json(static_cast<double>(spec.eco_max_wants)));
    json.set("eco_flash_round",
             report::Json(static_cast<double>(spec.eco_flash_round)));
    json.set("eco_flash_sessions",
             report::Json(static_cast<double>(spec.eco_flash_sessions)));
    json.set("eco_takedown_round",
             report::Json(static_cast<double>(spec.eco_takedown_round)));
    json.set("eco_takedown_fraction", report::Json(spec.eco_takedown_fraction));
  }
  json.set("fault", report::Json(spec.fault));
  if (!spec.expect_violation.empty()) {
    json.set("expect_violation", report::Json(spec.expect_violation));
  }
  return json;
}

CaseSpec case_from_json(const report::Json& json) {
  const std::string schema = json.string_or("schema", std::string(kSchema));
  if (schema != kSchema) {
    throw std::runtime_error("unsupported fuzz case schema: " + schema);
  }
  CaseSpec c;
  c.base_seed = u64_field(json, "base_seed", c.base_seed);
  c.index = u64_field(json, "index", c.index);
  c.seed = u64_field(json, "seed", c.seed);
  c.rounds = u32_field(json, "rounds", c.rounds);
  c.num_pieces = u32_field(json, "num_pieces", c.num_pieces);
  c.max_connections = u32_field(json, "max_connections", c.max_connections);
  c.peer_set_size = u32_field(json, "peer_set_size", c.peer_set_size);
  c.initial_seeds = u32_field(json, "initial_seeds", c.initial_seeds);
  c.seed_capacity = u32_field(json, "seed_capacity", c.seed_capacity);
  c.initial_leechers = u32_field(json, "initial_leechers", c.initial_leechers);
  c.warm_prob = json.number_or("warm_prob", c.warm_prob);
  c.arrival_rate = json.number_or("arrival_rate", c.arrival_rate);
  c.abort_rate = json.number_or("abort_rate", c.abort_rate);
  c.optimistic_unchoke_prob =
      json.number_or("optimistic_unchoke_prob", c.optimistic_unchoke_prob);
  c.connect_success_prob =
      json.number_or("connect_success_prob", c.connect_success_prob);
  c.seeds_serve_all = bool_field(json, "seeds_serve_all", c.seeds_serve_all);
  c.handshake_delay = bool_field(json, "handshake_delay", c.handshake_delay);
  c.shake_enabled = bool_field(json, "shake_enabled", c.shake_enabled);
  c.shake_fraction = json.number_or("shake_fraction", c.shake_fraction);
  c.seed_linger_rounds = u32_field(json, "seed_linger_rounds", c.seed_linger_rounds);
  c.blocks_per_piece = u32_field(json, "blocks_per_piece", c.blocks_per_piece);
  c.reannounce_interval =
      u32_field(json, "reannounce_interval", c.reannounce_interval);
  c.arrival_cutoff_round =
      u32_field(json, "arrival_cutoff_round", c.arrival_cutoff_round);
  c.max_population = u32_field(json, "max_population", c.max_population);
  c.piece_selection = piece_selection_from_name(json.string_or(
      "piece_selection", std::string(piece_selection_name(c.piece_selection))));
  c.availability_scope = availability_scope_from_name(json.string_or(
      "availability_scope",
      std::string(availability_scope_name(c.availability_scope))));
  c.tracker_policy = tracker_policy_from_name(json.string_or(
      "tracker_policy", std::string(tracker_policy_name(c.tracker_policy))));
  c.choke_algorithm = choke_algorithm_from_name(json.string_or(
      "choke_algorithm", std::string(choke_algorithm_name(c.choke_algorithm))));
  c.eco_torrents = u32_field(json, "eco_torrents", c.eco_torrents);
  c.eco_zipf_s = json.number_or("eco_zipf_s", c.eco_zipf_s);
  c.eco_arrival_rate = json.number_or("eco_arrival_rate", c.eco_arrival_rate);
  c.eco_initial_sessions =
      u32_field(json, "eco_initial_sessions", c.eco_initial_sessions);
  c.eco_max_wants = u32_field(json, "eco_max_wants", c.eco_max_wants);
  c.eco_flash_round = u32_field(json, "eco_flash_round", c.eco_flash_round);
  c.eco_flash_sessions = u32_field(json, "eco_flash_sessions", c.eco_flash_sessions);
  c.eco_takedown_round = u32_field(json, "eco_takedown_round", c.eco_takedown_round);
  c.eco_takedown_fraction =
      json.number_or("eco_takedown_fraction", c.eco_takedown_fraction);
  c.fault = json.string_or("fault", c.fault);
  bt::fault::fault_from_name(c.fault);  // validate early, not inside the run
  c.expect_violation = json.string_or("expect_violation", "");
  return c;
}

CaseSpec load_case_spec(const std::string& path) {
  const report::Json json = report::Json::load_file(path);
  if (const report::Json* shrunk = json.find("shrunk")) {
    return case_from_json(*shrunk);
  }
  if (const report::Json* nested = json.find("case")) {
    return case_from_json(*nested);
  }
  return case_from_json(json);
}

}  // namespace mpbt::check
