#include "check/fuzzer.hpp"

#include <bit>
#include <mutex>
#include <utility>

#include "bt/fault.hpp"
#include "bt/swarm.hpp"
#include "check/eco_invariants.hpp"
#include "eco/ecosystem.hpp"
#include "exp/thread_pool.hpp"

namespace mpbt::check {

std::uint64_t fnv1a64(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

/// Ecosystem variant of run_case: wraps the swarm point in an
/// eco::Ecosystem, attaches a per-swarm InvariantSuite plus the
/// cross-swarm catalogue, and fingerprints via the ecosystem's own
/// jobs-invariant fold. Cases already fan out across the campaign pool,
/// so each ecosystem steps its torrents serially (jobs = 1).
CaseResult run_eco_case(const CaseSpec& spec, std::uint64_t stride, bool deep) {
  CaseResult result;
  result.spec = spec;

  InvariantOptions options;
  options.stride = stride;
  options.deep = deep;
  options.context = "case base_seed=" + std::to_string(spec.base_seed) +
                    " index=" + std::to_string(spec.index) +
                    " fault=" + spec.fault;

  eco::Ecosystem eco(to_ecosystem_config(spec), /*jobs=*/1);
  EcosystemChecker checker(eco, options);

  const bt::fault::ScopedFault guard(bt::fault::fault_from_name(spec.fault));

  try {
    checker.check_round();  // initial state must already be coherent
    for (std::uint32_t r = 0; r < spec.rounds; ++r) {
      eco.step();
      checker.check_round();
      ++result.rounds_run;
    }
  } catch (const InvariantViolation& violation) {
    result.ok = false;
    result.invariant = violation.invariant();
    result.message = violation.what();
    result.violation_round = violation.round();
  }
  result.fingerprint = eco.fingerprint();
  result.checks_run = checker.checks_run();
  return result;
}

}  // namespace

CaseResult run_case(const CaseSpec& spec, std::uint64_t stride, bool deep) {
  if (spec.eco_torrents > 0) {
    return run_eco_case(spec, stride, deep);
  }

  CaseResult result;
  result.spec = spec;

  InvariantOptions options;
  options.stride = stride;
  options.deep = deep;
  options.context = "case base_seed=" + std::to_string(spec.base_seed) +
                    " index=" + std::to_string(spec.index) +
                    " fault=" + spec.fault;
  InvariantSuite suite(options);

  bt::Swarm swarm(to_config(spec));
  swarm.set_phase_observer(&suite);

  // Armed for the whole run, including construction-adjacent round 0
  // phases; restored on every exit path. thread_local, so parallel
  // cases never see each other's faults.
  const bt::fault::ScopedFault guard(bt::fault::fault_from_name(spec.fault));

  std::uint64_t hash = 14695981039346656037ULL;
  try {
    suite.check_all(swarm);  // initial state must already be coherent
    for (std::uint32_t r = 0; r < spec.rounds; ++r) {
      swarm.step();
      std::uint64_t bytes = 0;
      for (const bt::PeerId id : swarm.live_peers()) {
        bytes += swarm.peer(id).bytes_downloaded;
      }
      hash = fnv1a64(hash, swarm.population());
      hash = fnv1a64(hash, swarm.metrics().completed_count());
      hash = fnv1a64(hash, std::bit_cast<std::uint64_t>(swarm.entropy()));
      hash = fnv1a64(hash, bytes);
      ++result.rounds_run;
    }
  } catch (const InvariantViolation& violation) {
    result.ok = false;
    result.invariant = violation.invariant();
    result.message = violation.what();
    result.violation_round = violation.round();
  }
  result.fingerprint = hash;
  result.checks_run = suite.checks_run();
  return result;
}

FuzzSummary run_fuzz(const FuzzOptions& options) {
  // Validate once, up front, instead of once per worker task.
  bt::fault::fault_from_name(options.fault);

  FuzzSummary summary;
  summary.results.resize(options.num_cases);

  std::mutex progress_mutex;
  std::size_t completed = 0;

  exp::ThreadPool pool(options.jobs);
  exp::parallel_for_each(pool, options.num_cases, [&](std::size_t i) {
    CaseSpec spec = random_case(options.base_seed, i, options.quick);
    spec.fault = options.fault;
    summary.results[i] = run_case(spec, options.stride, options.deep);
    if (options.progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(++completed, options.num_cases);
    }
  });

  std::uint64_t hash = 14695981039346656037ULL;
  for (const CaseResult& result : summary.results) {
    hash = fnv1a64(hash, result.fingerprint);
    if (!result.ok) {
      ++summary.failures;
    }
  }
  summary.campaign_fingerprint = hash;
  return summary;
}

}  // namespace mpbt::check
