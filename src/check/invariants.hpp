// Structural swarm invariants, checked between phase steps.
//
// InvariantSuite is a bt::PhaseObserver: attach it to a Swarm with
// set_phase_observer() and every phase boundary of every step() is
// verified against the catalogue below (see docs/FUZZING.md for the
// full semantics of each invariant). PR 4 split the swarm into six
// phase modules; these checks guard the interfaces between them — a
// module that corrupts shared state (asymmetric links, stale
// replication counters, overfull connection sets) is caught at the
// phase boundary where the corruption first becomes visible, not
// hundreds of rounds later in a drifted golden fingerprint.
//
// A violation throws InvariantViolation whose message carries the
// invariant name, round, phase, implicated peer ids and the config
// seed, so a CI failure log alone is sufficient to reproduce locally.
// When the swarm has a TraceRecorder attached, the suite also emits a
// kInvariantViolation trace event (and bumps the
// check.invariant_violations counter) before throwing.
//
// Some invariants only hold in a window of the round schedule — e.g.
// potential sets reference live leecher neighbors only between
// rebuild_potential and seed_service (departures and shaking
// legitimately invalidate them afterwards) — so each catalogue entry
// declares the phases it applies to; phase names are resolved against
// Swarm::phase_name() once at construction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bt/swarm.hpp"
#include "bt/types.hpp"

namespace mpbt::check {

/// Thrown by InvariantSuite when a structural invariant fails.
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(std::string invariant, std::string message, bt::Round round,
                     std::string phase)
      : std::runtime_error(message),
        invariant_(std::move(invariant)),
        phase_(std::move(phase)),
        round_(round) {}

  /// Catalogue name of the failed invariant (e.g. "neighbor-symmetry").
  const std::string& invariant() const { return invariant_; }
  /// Phase boundary where the violation was detected.
  const std::string& phase() const { return phase_; }
  bt::Round round() const { return round_; }

 private:
  std::string invariant_;
  std::string phase_;
  bt::Round round_;
};

struct InvariantOptions {
  /// Check only rounds where round % stride == 0 (1 = every round).
  /// Cross-round invariants (monotonicity, metrics coherence) remain
  /// valid under any stride because the properties they check are
  /// transitive across skipped rounds.
  std::uint64_t stride = 1;
  /// Run the O(N * B) checks (replication recount, acquisition ledger)
  /// at every phase boundary instead of only at round end.
  bool deep = false;
  /// Extra reproduction context appended verbatim to every violation
  /// message (the fuzzer records the case identity here).
  std::string context;
};

/// The invariant catalogue, evaluated via the PhaseObserver hook.
/// One suite instance observes one swarm run; call reset() (or build a
/// fresh suite) before attaching it to another swarm, because the
/// cross-round invariants carry per-peer history.
class InvariantSuite : public bt::PhaseObserver {
 public:
  explicit InvariantSuite(InvariantOptions options = {});

  void on_phase_end(const bt::Swarm& swarm, std::string_view phase,
                    std::size_t phase_index) override;
  void on_round_end(const bt::Swarm& swarm, bt::Round round) override;

  /// Runs every applicable per-phase invariant plus the deep checks,
  /// ignoring stride. Useful for one-shot validation of a swarm that
  /// was stepped without the observer attached.
  void check_all(const bt::Swarm& swarm);

  /// Forgets all cross-round history (per-peer piece counts, phase
  /// codes, metric counters), making the suite attachable to a new run.
  void reset();

  /// Total invariant evaluations performed (for "the checks actually
  /// ran" assertions in tests).
  std::uint64_t checks_run() const { return checks_run_; }

  /// Names of every invariant in the catalogue, in evaluation order.
  static const std::vector<std::string_view>& invariant_names();

 private:
  // Per-phase structural checks (cheap, every observed boundary).
  void check_live_list(const bt::Swarm& swarm);
  void check_neighbor_symmetry(const bt::Swarm& swarm);
  void check_connection_symmetry(const bt::Swarm& swarm);
  void check_connection_cap(const bt::Swarm& swarm);
  void check_seed_coherence(const bt::Swarm& swarm);
  void check_inflight_conservation(const bt::Swarm& swarm);
  void check_entropy_bounds(const bt::Swarm& swarm);
  void check_upload_budget(const bt::Swarm& swarm);
  // Window-gated checks.
  void check_potential_bounds(const bt::Swarm& swarm);
  void check_completion_liveness(const bt::Swarm& swarm);
  // Deep checks (O(N * B); round end, or every boundary when deep).
  void check_piece_counts(const bt::Swarm& swarm);
  void check_acquisition_ledger(const bt::Swarm& swarm);
  // Cross-round checks (round end only).
  void check_piece_monotonicity(const bt::Swarm& swarm);
  void check_phase_sanity(const bt::Swarm& swarm);
  void check_metrics_coherence(const bt::Swarm& swarm);
  void check_tracker_coherence(const bt::Swarm& swarm);

  [[noreturn]] void fail(const bt::Swarm& swarm, std::string_view invariant,
                         std::string_view what, bt::PeerId peer = bt::kNoPeer,
                         bt::PeerId partner = bt::kNoPeer) const;

  InvariantOptions options_;
  std::string current_phase_ = "attach";
  std::size_t current_phase_index_ = 0;
  std::uint64_t checks_run_ = 0;

  // Cross-round history, indexed by dense peer id (-1 = not yet seen).
  std::vector<std::int64_t> prev_piece_count_;
  std::uint64_t prev_bootstrap_rounds_ = 0;
  std::uint64_t prev_efficient_rounds_ = 0;
  std::uint64_t prev_last_phase_rounds_ = 0;
  bool seen_round_ = false;
};

}  // namespace mpbt::check
