#include "check/shrinker.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace mpbt::check {

namespace {

/// Shared shrink state: the best (smallest known-failing) spec, the
/// invariant it must keep violating, and the probe budget.
class Shrinker {
 public:
  Shrinker(CaseSpec spec, CaseResult result, const ShrinkOptions& options)
      : options_(options),
        target_(result.invariant),
        best_(std::move(spec)),
        best_result_(std::move(result)) {
    clamp_rounds();
  }

  /// A spec with no ecosystem section (eco_torrents == 0) must carry
  /// the default eco knobs: to_json omits the section entirely, so any
  /// other values would not survive the record/replay round trip.
  static CaseSpec canonical(CaseSpec spec) {
    if (spec.eco_torrents == 0) {
      const CaseSpec defaults;
      spec.eco_zipf_s = defaults.eco_zipf_s;
      spec.eco_arrival_rate = defaults.eco_arrival_rate;
      spec.eco_initial_sessions = defaults.eco_initial_sessions;
      spec.eco_max_wants = defaults.eco_max_wants;
      spec.eco_flash_round = defaults.eco_flash_round;
      spec.eco_flash_sessions = defaults.eco_flash_sessions;
      spec.eco_takedown_round = defaults.eco_takedown_round;
      spec.eco_takedown_fraction = defaults.eco_takedown_fraction;
    }
    return spec;
  }

  /// Runs the candidate (spending one attempt) and adopts it when the
  /// target invariant reproduces. Returns true on acceptance.
  bool try_candidate(const CaseSpec& raw) {
    const CaseSpec candidate = canonical(raw);
    if (candidate == best_ || attempts_ >= options_.max_attempts) {
      return false;
    }
    ++attempts_;
    CaseResult result = run_case(candidate, options_.stride, options_.deep);
    if (result.ok || result.invariant != target_) {
      return false;
    }
    best_ = candidate;
    best_result_ = std::move(result);
    ++accepted_;
    clamp_rounds();
    return true;
  }

  /// Bisects `field` toward `floor`: finds the smallest value in
  /// [floor, current] that still reproduces, assuming (heuristically)
  /// that failing values form a suffix of the range. Non-monotone
  /// invariants merely shrink less — never to a passing spec, because
  /// only reproducing candidates are adopted.
  void bisect(std::uint32_t CaseSpec::* field, std::uint32_t floor) {
    std::uint32_t lo = floor;
    std::uint32_t hi = best_.*field;
    while (lo < hi && attempts_ < options_.max_attempts) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      CaseSpec candidate = best_;
      candidate.*field = mid;
      if (try_candidate(candidate)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }

  /// Tries a single whole-spec simplification (rate zeroed, toggle
  /// reset, policy defaulted).
  template <typename T>
  void simplify(T CaseSpec::* field, T plain) {
    if (best_.*field == plain) {
      return;
    }
    CaseSpec candidate = best_;
    candidate.*field = plain;
    try_candidate(candidate);
  }

  ShrinkResult finish() && {
    best_.expect_violation = target_;
    best_result_.spec = best_;
    ShrinkResult out;
    out.shrunk = std::move(best_);
    out.result = std::move(best_result_);
    out.attempts = attempts_;
    out.accepted = accepted_;
    return out;
  }

  std::size_t accepted() const { return accepted_; }
  bool exhausted() const { return attempts_ >= options_.max_attempts; }

 private:
  /// The violation fires during step `violation_round` no matter how
  /// many further rounds the spec asks for, so the round count can be
  /// clamped to violation_round + 1 without a confirming re-run.
  void clamp_rounds() {
    const auto needed = static_cast<std::uint32_t>(
        std::min<bt::Round>(best_result_.violation_round + 1, best_.rounds));
    best_.rounds = std::max<std::uint32_t>(needed, 1);
  }

  const ShrinkOptions& options_;
  std::string target_;
  CaseSpec best_;
  CaseResult best_result_;
  std::size_t attempts_ = 0;
  std::size_t accepted_ = 0;
};

}  // namespace

ShrinkResult shrink_case(const CaseSpec& spec, const ShrinkOptions& options) {
  CaseResult original = run_case(spec, options.stride, options.deep);
  if (original.ok) {
    throw std::invalid_argument(
        "shrink_case: spec does not violate any invariant");
  }

  Shrinker shrinker(spec, std::move(original), options);

  // Greedy fixpoint: passes alternate structure bisection with scalar
  // simplification; stop when a full pass accepts nothing.
  while (!shrinker.exhausted()) {
    const std::size_t accepted_before = shrinker.accepted();

    // Population and size knobs, most-impactful first: fewer peers and
    // rounds shrink every downstream structure the reproducer prints.
    shrinker.simplify(&CaseSpec::arrival_rate, 0.0);
    shrinker.bisect(&CaseSpec::initial_leechers, 0);
    shrinker.bisect(&CaseSpec::rounds, 1);
    shrinker.bisect(&CaseSpec::num_pieces, 1);
    shrinker.bisect(&CaseSpec::peer_set_size, 1);
    shrinker.bisect(&CaseSpec::max_connections, 1);
    shrinker.bisect(&CaseSpec::initial_seeds, 0);
    shrinker.bisect(&CaseSpec::seed_capacity, 0);
    shrinker.bisect(&CaseSpec::blocks_per_piece, 1);
    shrinker.bisect(&CaseSpec::seed_linger_rounds, 0);

    // Ecosystem knobs. Floors of 0/1 can disable the section entirely —
    // harmless, because a candidate that stops reproducing the target
    // invariant is never adopted (an eco-* violation needs torrents).
    shrinker.bisect(&CaseSpec::eco_torrents, 0);
    shrinker.bisect(&CaseSpec::eco_initial_sessions, 0);
    shrinker.bisect(&CaseSpec::eco_max_wants, 1);
    shrinker.bisect(&CaseSpec::eco_flash_sessions, 0);
    shrinker.simplify(&CaseSpec::eco_arrival_rate, 0.0);
    shrinker.simplify(&CaseSpec::eco_zipf_s, 0.0);
    shrinker.simplify(&CaseSpec::eco_flash_round, 0u);
    shrinker.simplify(&CaseSpec::eco_takedown_round, 0u);
    shrinker.simplify(&CaseSpec::eco_takedown_fraction, 0.0);

    // Feature knobs: prefer the plainest swarm that still fails.
    shrinker.simplify(&CaseSpec::abort_rate, 0.0);
    shrinker.simplify(&CaseSpec::warm_prob, 0.0);
    shrinker.simplify(&CaseSpec::reannounce_interval, 0u);
    shrinker.simplify(&CaseSpec::arrival_cutoff_round, 0u);
    shrinker.simplify(&CaseSpec::max_population, 0u);
    shrinker.simplify(&CaseSpec::shake_enabled, false);
    shrinker.simplify(&CaseSpec::seeds_serve_all, false);
    shrinker.simplify(&CaseSpec::handshake_delay, true);
    shrinker.simplify(&CaseSpec::connect_success_prob, 1.0);
    shrinker.simplify(&CaseSpec::optimistic_unchoke_prob, 1.0);
    shrinker.simplify(&CaseSpec::piece_selection, bt::PieceSelection::Random);
    shrinker.simplify(&CaseSpec::availability_scope, bt::AvailabilityScope::Global);
    shrinker.simplify(&CaseSpec::tracker_policy, bt::TrackerPolicy::UniformRandom);
    shrinker.simplify(&CaseSpec::choke_algorithm, bt::ChokeAlgorithm::RandomMatching);

    if (shrinker.accepted() == accepted_before) {
      break;
    }
  }
  return std::move(shrinker).finish();
}

}  // namespace mpbt::check
