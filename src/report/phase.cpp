#include "report/phase.hpp"

#include <algorithm>
#include <map>

#include "analysis/compare.hpp"

namespace mpbt::report {

std::vector<trace::ClientTrace> client_traces_from_events(
    const std::vector<obs::TraceEvent>& events) {
  // Collect samples and completion flags per peer (events are in emit
  // order, so samples are already time-sorted within a peer).
  std::map<std::uint32_t, trace::ClientTrace> by_peer;
  std::uint32_t completed_pieces = 0;  // B from a completed client, if any
  std::uint32_t max_pieces = 0;
  for (const obs::TraceEvent& event : events) {
    if (event.type == obs::EventType::kClientSample) {
      trace::ClientTrace& trace = by_peer[event.peer];
      trace::TracePoint point;
      point.time = static_cast<double>(event.round);
      point.cumulative_bytes = static_cast<std::uint64_t>(event.value2);
      point.potential_set_size = static_cast<std::uint32_t>(event.value);
      point.pieces_held = event.other;
      trace.points.push_back(point);
      max_pieces = std::max(max_pieces, event.other);
    } else if (event.type == obs::EventType::kPeerComplete) {
      auto it = by_peer.find(event.peer);
      if (it != by_peer.end() && !it->second.points.empty()) {
        it->second.completed = true;
        completed_pieces =
            std::max(completed_pieces, it->second.points.back().pieces_held);
      }
    }
  }

  const std::uint32_t num_pieces = completed_pieces > 0 ? completed_pieces : max_pieces;
  std::vector<trace::ClientTrace> traces;
  traces.reserve(by_peer.size());
  for (auto& [peer, trace] : by_peer) {
    if (trace.points.empty()) {
      continue;
    }
    trace.label = "client " + std::to_string(peer);
    trace.num_pieces = num_pieces;
    // Bytes per piece is not carried in the event stream; approximate it
    // from the densest sample so byte-based consumers stay in scale.
    for (const trace::TracePoint& point : trace.points) {
      if (point.pieces_held > 0) {
        trace.piece_bytes =
            std::max(trace.piece_bytes, point.cumulative_bytes / point.pieces_held);
      }
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

PhaseRollup rollup_phases(const std::vector<trace::ClientTrace>& traces,
                          const analysis::PhaseDetectOptions& options) {
  PhaseRollup rollup;
  std::uint64_t potential_samples = 0;
  double potential_sum = 0.0;
  for (const trace::ClientTrace& trace : traces) {
    if (trace.points.empty()) {
      continue;
    }
    ++rollup.clients;
    if (trace.completed) {
      ++rollup.completed;
    }
    const analysis::PhaseSegmentation seg = analysis::detect_phases(trace, options);
    rollup.mean_bootstrap_duration += seg.bootstrap_duration;
    rollup.mean_efficient_duration += seg.efficient_duration;
    rollup.mean_last_duration += seg.last_duration;
    rollup.mean_total_duration += seg.total_duration;
    rollup.mean_bootstrap_fraction += seg.bootstrap_fraction();
    rollup.mean_last_fraction += seg.last_fraction();
    if (seg.total_duration > 0.0) {
      rollup.mean_download_rate +=
          static_cast<double>(trace.final_bytes()) / seg.total_duration;
    }
    rollup.mean_rate_potential_corr += analysis::rate_potential_correlation(trace);
    for (const trace::TracePoint& point : trace.points) {
      potential_sum += point.potential_set_size;
      ++potential_samples;
    }
  }
  if (rollup.clients > 0) {
    const auto n = static_cast<double>(rollup.clients);
    rollup.mean_bootstrap_duration /= n;
    rollup.mean_efficient_duration /= n;
    rollup.mean_last_duration /= n;
    rollup.mean_total_duration /= n;
    rollup.mean_bootstrap_fraction /= n;
    rollup.mean_last_fraction /= n;
    rollup.mean_download_rate /= n;
    rollup.mean_rate_potential_corr /= n;
  }
  if (potential_samples > 0) {
    rollup.mean_potential = potential_sum / static_cast<double>(potential_samples);
  }
  return rollup;
}

SwarmSeriesStats swarm_series_stats(const std::vector<obs::TraceEvent>& events) {
  SwarmSeriesStats stats;
  for (const obs::TraceEvent& event : events) {
    if (event.type != obs::EventType::kEntropySample) {
      continue;
    }
    ++stats.samples;
    stats.mean_entropy += event.value;
    stats.mean_efficiency += event.value2;
    stats.final_entropy = event.value;
    stats.final_efficiency = event.value2;
  }
  if (stats.samples > 0) {
    stats.mean_entropy /= static_cast<double>(stats.samples);
    stats.mean_efficiency /= static_cast<double>(stats.samples);
  }
  return stats;
}

}  // namespace mpbt::report
