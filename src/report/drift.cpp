#include "report/drift.hpp"

#include <cmath>

#include "analysis/compare.hpp"

namespace mpbt::report {

namespace {

/// Maps a per-point profile onto the analysis profile convention, where
/// entries < 0 mean "missing": NaN (point never observed) becomes -1.
/// Legitimately negative values would be skipped too; the sim_/model_
/// pairs the scenarios emit are all non-negative quantities.
std::vector<double> sanitized(const std::vector<double>& profile) {
  std::vector<double> out;
  out.reserve(profile.size());
  for (double v : profile) {
    out.push_back(std::isfinite(v) ? v : -1.0);
  }
  return out;
}

}  // namespace

std::vector<DriftRow> compute_drift(const RunSummary& summary) {
  std::vector<DriftRow> rows;
  // Profiles come name-sorted from summarize_records (std::map order), so
  // iterating sim_* profiles yields metric-name-sorted rows.
  for (const RunSummary::Profile& profile : summary.profiles) {
    constexpr std::string_view kSimPrefix = "sim_";
    if (!profile.field.starts_with(kSimPrefix)) {
      continue;
    }
    const std::string metric = profile.field.substr(kSimPrefix.size());
    const RunSummary::Profile* model = summary.find_profile("model_" + metric);
    if (model == nullptr) {
      continue;
    }
    DriftRow row;
    row.scenario = summary.scenario;
    row.metric = metric;
    const std::vector<double> sim = sanitized(profile.per_point);
    const std::vector<double> mod = sanitized(model->per_point);
    row.rmse = analysis::profile_rmse(sim, mod);
    row.max_gap = analysis::profile_max_gap(sim, mod);
    for (std::size_t i = 0; i < sim.size() && i < mod.size(); ++i) {
      if (sim[i] >= 0.0 && mod[i] >= 0.0) {
        row.sim_mean += sim[i];
        row.model_mean += mod[i];
        ++row.points;
      }
    }
    if (row.points > 0) {
      row.sim_mean /= static_cast<double>(row.points);
      row.model_mean /= static_cast<double>(row.points);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<DriftRow> attach_drift(RunSummary& summary) {
  std::vector<DriftRow> rows = compute_drift(summary);
  for (const DriftRow& row : rows) {
    if (row.rmse >= 0.0) {
      summary.set_metric("drift." + row.metric + ".rmse", row.rmse);
      summary.set_metric("drift." + row.metric + ".max_gap", row.max_gap);
    }
  }
  return rows;
}

}  // namespace mpbt::report
