// Input loaders for the report generator.
//
// mpbt_report consumes artifacts other tools produced — sweep result
// JSONL, metrics-snapshot JSONL, chrome traces, bench snapshots — and
// this module parses each back into the in-memory form the report
// pipeline works on. JSONL records round-trip through exp::Record with
// integral numbers restored to integers (the sweep's point/rep indices
// must compare as integers after a round trip through JSON doubles).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sink.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"
#include "report/render.hpp"

namespace mpbt::report {

/// Parses JSON-Lines records (one object per non-empty line). Numbers
/// with no fractional part load as long long, others as double; strings
/// and booleans keep their type. Throws std::runtime_error on malformed
/// lines.
std::vector<exp::Record> records_from_jsonl(std::istream& is);
std::vector<exp::Record> load_records_jsonl(const std::string& path);

/// Interprets metric-export records (kind/name/value/count rows, as
/// written by exp::write_metrics_snapshot) as report table rows.
/// Records without a "kind" field are skipped.
std::vector<Report::MetricRow> metric_rows_from_records(
    const std::vector<exp::Record>& records);

/// Rebuilds per-task sim-time trace events from a chrome trace document
/// (the inverse of obs::write_chrome_trace for the event types the
/// report consumes: client samples, completions and entropy samples;
/// other phases of the visualization are ignored). `us_per_round` must
/// match the value the trace was written with.
std::vector<obs::TaskTrace> traces_from_chrome_json(const Json& json,
                                                    double us_per_round = 1000.0);

}  // namespace mpbt::report
