// Deterministic Markdown / HTML rendering of a validation report.
//
// The renderer is a pure function of the Report value: tables are
// emitted in sorted order, numbers are formatted with locale-free
// 6-significant-digit formatting, and nothing machine-dependent (wall
// times, dates, hostnames) enters the body unless the caller put it
// there — so two runs of the same sweep render byte-identical reports
// regardless of worker count, which CI checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "report/baseline.hpp"
#include "report/bench.hpp"
#include "report/drift.hpp"
#include "report/summary.hpp"

namespace mpbt::report {

struct Report {
  std::string title = "MPBT validation report";

  std::vector<RunSummary> summaries;  ///< scenario-name-sorted
  std::vector<DriftRow> drift;        ///< all scenarios' rows
  std::vector<GateReport> gates;      ///< one per gated scenario

  /// Registry metrics re-read from a metrics snapshot export. Rows whose
  /// name starts with "sweep." are skipped when rendering (wall time is
  /// not deterministic across machines or job counts).
  struct MetricRow {
    std::string kind;
    std::string name;
    double value = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<MetricRow> registry_metrics;

  BenchTrajectory bench;
  bool has_bench = false;

  /// True when every gate passed (vacuously true with no gates).
  bool gates_passed() const;
};

/// Locale-free number formatting used by both renderers: 6 significant
/// digits, general format (what std::to_chars produces).
std::string format_number(double v);

std::string render_markdown(const Report& report);
std::string render_html(const Report& report);

}  // namespace mpbt::report
