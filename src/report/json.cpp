#include "report/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mpbt::report {

namespace {

[[noreturn]] void type_error(const char* expected, Json::Type actual) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(std::string("Json: expected ") + expected + ", have " +
                           kNames[static_cast<int>(actual)]);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) {
    type_error("bool", type_);
  }
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) {
    type_error("number", type_);
  }
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    type_error("string", type_);
  }
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) {
    type_error("array", type_);
  }
  return array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) {
    type_error("object", type_);
  }
  return object_;
}

JsonArray& Json::as_array() {
  if (type_ != Type::kArray) {
    type_error("array", type_);
  }
  return array_;
}

JsonObject& Json::as_object() {
  if (type_ != Type::kObject) {
    type_error("object", type_);
  }
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw std::runtime_error("Json: missing member \"" + std::string(key) + "\"");
  }
  return *found;
}

void Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) {
    type_error("object", type_);
  }
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray) {
    type_error("array", type_);
  }
  array_.push_back(std::move(value));
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* found = find(key);
  return found != nullptr && found->is_number() ? found->as_number() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* found = find(key);
  return found != nullptr && found->is_string() ? found->as_string() : fallback;
}

// --- writer ----------------------------------------------------------------

void json_append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_format_number(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  // Integral values inside the exactly-representable range print as
  // integers: baseline files full of "3" instead of "3e+00" diff cleanly.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), static_cast<long long>(v));
    return std::string(buf, res.ptr);
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int level) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * level), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += json_format_number(number_);
      return;
    case Type::kString:
      out += '"';
      json_append_escaped(out, string_);
      out += '"';
      return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline(depth + 1);
        out += '"';
        json_append_escaped(out, object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline(depth);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) {
          fail("invalid literal");
        }
        return Json(true);
      case 'f':
        if (!consume_literal("false")) {
          fail("invalid literal");
        }
        return Json(false);
      case 'n':
        if (!consume_literal("null")) {
          fail("invalid literal");
        }
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(items));
      }
      fail("expected ',' or ']'");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("truncated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        fail("invalid number");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) {
        fail("invalid number");
      }
    }
    double value = 0.0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{} && res.ec != std::errc::result_out_of_range) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json Json::load_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("Json::load_file: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

void Json::save_file(const std::string& path, int indent) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("Json::save_file: cannot open " + path);
  }
  file << dump(indent) << '\n';
  if (!file) {
    throw std::runtime_error("Json::save_file: write failed for " + path);
  }
}

}  // namespace mpbt::report
