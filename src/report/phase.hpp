// Phase-aware rollups over recorded trace events.
//
// The swarm's instrumented clients emit kClientSample events (one per
// round: potential-set size, pieces held, cumulative bytes). This module
// rebuilds trace::ClientTrace objects from those events, runs
// analysis::detect_phases over each, and aggregates the per-phase
// durations, download rates and potential-set sizes — plus the
// swarm-level entropy / transfer-efficiency series — into the uniform
// rollup that report::RunSummary carries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/phase_detect.hpp"
#include "obs/trace.hpp"
#include "trace/record.hpp"

namespace mpbt::report {

/// Rebuilds one ClientTrace per instrumented client from the trace
/// events of one task. The file size B is taken from a completed
/// client's final piece count when one exists (on the completion round
/// the client holds exactly B pieces), otherwise from the largest piece
/// count observed — a lower bound that keeps completion fractions
/// conservative. Traces are ordered by peer id.
std::vector<trace::ClientTrace> client_traces_from_events(
    const std::vector<obs::TraceEvent>& events);

/// Aggregate phase statistics over a set of client traces.
struct PhaseRollup {
  std::size_t clients = 0;    ///< traces analyzed (non-empty)
  std::size_t completed = 0;  ///< traces that reached all B pieces

  // Mean per-phase durations in rounds (over traces where detection ran).
  double mean_bootstrap_duration = 0.0;
  double mean_efficient_duration = 0.0;
  double mean_last_duration = 0.0;
  double mean_total_duration = 0.0;

  // Mean phase fractions of the total download time.
  double mean_bootstrap_fraction = 0.0;
  double mean_last_fraction = 0.0;

  /// Mean download rate in bytes per round (final bytes over trace span).
  double mean_download_rate = 0.0;
  /// Mean potential-set size over every sample of every trace.
  double mean_potential = 0.0;
  /// Mean Pearson correlation of instantaneous rate vs potential size
  /// (analysis::rate_potential_correlation; traces with < 3 points
  /// contribute their documented 0).
  double mean_rate_potential_corr = 0.0;

  bool empty() const { return clients == 0; }
};

PhaseRollup rollup_phases(const std::vector<trace::ClientTrace>& traces,
                          const analysis::PhaseDetectOptions& options = {});

/// Swarm-level series statistics recovered from kEntropySample events.
struct SwarmSeriesStats {
  std::size_t samples = 0;
  double mean_entropy = 0.0;
  double mean_efficiency = 0.0;
  double final_entropy = 0.0;
  double final_efficiency = 0.0;
};

SwarmSeriesStats swarm_series_stats(const std::vector<obs::TraceEvent>& events);

}  // namespace mpbt::report
