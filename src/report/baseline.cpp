#include "report/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpbt::report {

double Tolerance::allowed(double baseline_value) const {
  return std::max(abs_tol, rel_tol * std::abs(baseline_value));
}

const BaselineEntry* Baseline::find(std::string_view name) const {
  for (const BaselineEntry& entry : entries) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

std::string_view gate_status_name(GateStatus status) {
  switch (status) {
    case GateStatus::kOk:
      return "ok";
    case GateStatus::kWarn:
      return "warn";
    case GateStatus::kFail:
      return "fail";
    case GateStatus::kMissing:
      return "missing";
    case GateStatus::kNew:
      return "new";
  }
  return "?";
}

std::size_t GateReport::count(GateStatus status) const {
  std::size_t n = 0;
  for (const GateResult& result : results) {
    if (result.status == status) {
      ++n;
    }
  }
  return n;
}

namespace {

/// Metrics that measure the machine, not the model, never enter a
/// baseline: wall-clock task timings change with hardware and load.
bool is_wall_time_metric(std::string_view name) {
  return name.starts_with("sweep.");
}

}  // namespace

Baseline baseline_from_summary(const RunSummary& summary, const Tolerance& tolerance) {
  Baseline baseline;
  baseline.scenario = summary.scenario;
  for (const auto& [name, value] : summary.metrics) {
    if (is_wall_time_metric(name) || !std::isfinite(value)) {
      continue;
    }
    BaselineEntry entry;
    entry.name = name;
    entry.value = value;
    entry.tolerance = tolerance;
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;  // summary.metrics is name-sorted already
}

GateReport check_against_baseline(const Baseline& baseline, const RunSummary& summary) {
  GateReport report;
  report.scenario = baseline.scenario;
  for (const BaselineEntry& entry : baseline.entries) {
    GateResult result;
    result.name = entry.name;
    result.baseline = entry.value;
    result.allowed = entry.tolerance.allowed(entry.value);
    const double current =
        summary.metric_or(entry.name, std::numeric_limits<double>::quiet_NaN());
    if (!std::isfinite(current)) {
      result.status = GateStatus::kMissing;
    } else {
      result.current = current;
      const double delta = std::abs(current - entry.value);
      result.status = delta > result.allowed          ? GateStatus::kFail
                      : delta > 0.5 * result.allowed ? GateStatus::kWarn
                                                      : GateStatus::kOk;
    }
    report.results.push_back(std::move(result));
  }
  for (const auto& [name, value] : summary.metrics) {
    if (is_wall_time_metric(name) || baseline.find(name) != nullptr) {
      continue;
    }
    GateResult result;
    result.name = name;
    result.current = value;
    result.status = GateStatus::kNew;
    report.results.push_back(std::move(result));
  }
  std::sort(report.results.begin(), report.results.end(),
            [](const GateResult& a, const GateResult& b) { return a.name < b.name; });
  return report;
}

Json baseline_to_json(const Baseline& baseline) {
  Json json = Json::object();
  json.set("schema", Json(kBaselineSchema));
  json.set("scenario", Json(baseline.scenario));
  Json metrics = Json::object();
  for (const BaselineEntry& entry : baseline.entries) {
    Json metric = Json::object();
    metric.set("value", Json(entry.value));
    metric.set("abs_tol", Json(entry.tolerance.abs_tol));
    metric.set("rel_tol", Json(entry.tolerance.rel_tol));
    metrics.set(entry.name, std::move(metric));
  }
  json.set("metrics", std::move(metrics));
  return json;
}

Baseline baseline_from_json(const Json& json) {
  if (json.string_or("schema", "") != kBaselineSchema) {
    throw std::runtime_error("baseline_from_json: not an " +
                             std::string(kBaselineSchema) + " document");
  }
  Baseline baseline;
  baseline.scenario = json.string_or("scenario", "unknown");
  for (const auto& [name, metric] : json.at("metrics").as_object()) {
    BaselineEntry entry;
    entry.name = name;
    entry.value = metric.number_or("value", 0.0);
    entry.tolerance.abs_tol = metric.number_or("abs_tol", Tolerance{}.abs_tol);
    entry.tolerance.rel_tol = metric.number_or("rel_tol", Tolerance{}.rel_tol);
    baseline.entries.push_back(std::move(entry));
  }
  std::sort(baseline.entries.begin(), baseline.entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) { return a.name < b.name; });
  return baseline;
}

std::string baseline_path(const std::string& dir, const std::string& scenario) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') {
    path += '/';
  }
  return path + scenario + ".json";
}

}  // namespace mpbt::report
