#include "report/render.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace mpbt::report {

bool Report::gates_passed() const {
  return std::all_of(gates.begin(), gates.end(),
                     [](const GateReport& gate) { return gate.passed(); });
}

std::string format_number(double v) {
  if (!std::isfinite(v)) {
    return "-";
  }
  char buf[32];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 6);
  return std::string(buf, res.ptr);
}

namespace {

// The two renderers share one linear document model so their content can
// never drift apart: build once, serialize twice.
struct DocTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

struct DocItem {
  enum class Kind { kHeading, kParagraph, kTable } kind = Kind::kParagraph;
  int level = 1;        // headings only
  std::string text;     // heading / paragraph
  DocTable table;       // tables only
};

class Doc {
 public:
  void heading(int level, std::string text) {
    items_.push_back({DocItem::Kind::kHeading, level, std::move(text), {}});
  }
  void paragraph(std::string text) {
    items_.push_back({DocItem::Kind::kParagraph, 1, std::move(text), {}});
  }
  void table(DocTable table) {
    if (!table.rows.empty()) {
      items_.push_back({DocItem::Kind::kTable, 1, {}, std::move(table)});
    }
  }
  const std::vector<DocItem>& items() const { return items_; }

 private:
  std::vector<DocItem> items_;
};

std::string markdown_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '|') {
      out += "\\|";
    } else if (c == '\n') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string to_markdown(const Doc& doc) {
  std::string out;
  for (const DocItem& item : doc.items()) {
    switch (item.kind) {
      case DocItem::Kind::kHeading:
        out.append(static_cast<std::size_t>(item.level), '#');
        out += ' ';
        out += item.text;
        out += "\n\n";
        break;
      case DocItem::Kind::kParagraph:
        out += item.text;
        out += "\n\n";
        break;
      case DocItem::Kind::kTable: {
        out += '|';
        for (const std::string& cell : item.table.header) {
          out += ' ';
          out += markdown_escape(cell);
          out += " |";
        }
        out += "\n|";
        for (std::size_t i = 0; i < item.table.header.size(); ++i) {
          out += " --- |";
        }
        out += '\n';
        for (const auto& row : item.table.rows) {
          out += '|';
          for (const std::string& cell : row) {
            out += ' ';
            out += markdown_escape(cell);
            out += " |";
          }
          out += '\n';
        }
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_html(const Doc& doc, const std::string& title) {
  std::string out;
  out += "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>";
  out += html_escape(title);
  out +=
      "</title>\n<style>\n"
      "body { font-family: sans-serif; margin: 2em; }\n"
      "table { border-collapse: collapse; margin: 1em 0; }\n"
      "th, td { border: 1px solid #999; padding: 0.3em 0.6em; text-align: left; }\n"
      "th { background: #eee; }\n"
      "</style>\n</head>\n<body>\n";
  for (const DocItem& item : doc.items()) {
    switch (item.kind) {
      case DocItem::Kind::kHeading: {
        std::string tag = "h";
        tag += std::to_string(item.level);
        out += "<";
        out += tag;
        out += ">";
        out += html_escape(item.text);
        out += "</";
        out += tag;
        out += ">\n";
        break;
      }
      case DocItem::Kind::kParagraph:
        out += "<p>" + html_escape(item.text) + "</p>\n";
        break;
      case DocItem::Kind::kTable: {
        out += "<table>\n<tr>";
        for (const std::string& cell : item.table.header) {
          out += "<th>" + html_escape(cell) + "</th>";
        }
        out += "</tr>\n";
        for (const auto& row : item.table.rows) {
          out += "<tr>";
          for (const std::string& cell : row) {
            out += "<td>" + html_escape(cell) + "</td>";
          }
          out += "</tr>\n";
        }
        out += "</table>\n";
        break;
      }
    }
  }
  out += "</body>\n</html>\n";
  return out;
}

void add_scenario_sections(Doc& doc, const Report& report, const RunSummary& summary) {
  doc.heading(2, "Scenario: " + summary.scenario);
  doc.paragraph(std::to_string(summary.points) + " points x " +
                std::to_string(summary.runs) + " runs (" +
                std::to_string(summary.records) + " records)");

  // Figure-reproduction table: per-point means with parameter columns
  // first, measurement columns after (both in stable order).
  if (!summary.profiles.empty() && summary.points > 0) {
    std::vector<const RunSummary::Profile*> columns;
    for (const std::string& param : summary.params) {
      if (const RunSummary::Profile* profile = summary.find_profile(param)) {
        columns.push_back(profile);
      }
    }
    for (const RunSummary::Profile& profile : summary.profiles) {
      if (!summary.is_param(profile.field)) {
        columns.push_back(&profile);
      }
    }
    DocTable table;
    table.header.push_back("point");
    for (const RunSummary::Profile* column : columns) {
      table.header.push_back(column->field);
    }
    for (std::size_t point = 0; point < summary.points; ++point) {
      std::vector<std::string> row;
      row.push_back(std::to_string(point));
      for (const RunSummary::Profile* column : columns) {
        row.push_back(point < column->per_point.size()
                          ? format_number(column->per_point[point])
                          : "-");
      }
      table.rows.push_back(std::move(row));
    }
    doc.heading(3, "Per-point means");
    doc.table(std::move(table));
  }

  if (summary.has_phases && !summary.phases.empty()) {
    const PhaseRollup& phases = summary.phases;
    DocTable table;
    table.header = {"phase statistic", "value"};
    auto row = [&](const char* name, double value) {
      table.rows.push_back({name, format_number(value)});
    };
    table.rows.push_back({"instrumented clients",
                          std::to_string(phases.clients) + " (" +
                              std::to_string(phases.completed) + " completed)"});
    row("mean bootstrap rounds", phases.mean_bootstrap_duration);
    row("mean efficient rounds", phases.mean_efficient_duration);
    row("mean last-download rounds", phases.mean_last_duration);
    row("mean total rounds", phases.mean_total_duration);
    row("mean bootstrap fraction", phases.mean_bootstrap_fraction);
    row("mean last fraction", phases.mean_last_fraction);
    row("mean download rate (bytes/round)", phases.mean_download_rate);
    row("mean potential-set size", phases.mean_potential);
    row("mean rate-potential correlation", phases.mean_rate_potential_corr);
    if (summary.series.samples > 0) {
      row("mean swarm entropy", summary.series.mean_entropy);
      row("mean transfer efficiency", summary.series.mean_efficiency);
    }
    doc.heading(3, "Phase analytics");
    doc.table(std::move(table));
  }

  // This scenario's drift rows.
  DocTable drift_table;
  drift_table.header = {"model metric", "points", "sim mean",
                        "model mean",  "RMSE",   "max gap"};
  for (const DriftRow& row : report.drift) {
    if (row.scenario != summary.scenario) {
      continue;
    }
    drift_table.rows.push_back({row.metric, std::to_string(row.points),
                                format_number(row.sim_mean),
                                format_number(row.model_mean),
                                row.rmse < 0 ? "-" : format_number(row.rmse),
                                row.max_gap < 0 ? "-" : format_number(row.max_gap)});
  }
  if (!drift_table.rows.empty()) {
    doc.heading(3, "Model-vs-sim drift");
    doc.table(std::move(drift_table));
  }

  for (const GateReport& gate : report.gates) {
    if (gate.scenario != summary.scenario) {
      continue;
    }
    doc.heading(3, "Baseline gate");
    doc.paragraph(std::string(gate.passed() ? "PASS" : "FAIL") + " — " +
                  std::to_string(gate.count(GateStatus::kOk)) + " ok, " +
                  std::to_string(gate.count(GateStatus::kWarn)) + " warn, " +
                  std::to_string(gate.count(GateStatus::kFail)) + " fail, " +
                  std::to_string(gate.count(GateStatus::kMissing)) + " missing, " +
                  std::to_string(gate.count(GateStatus::kNew)) + " new");
    DocTable table;
    table.header = {"metric", "baseline", "current", "allowed delta", "status"};
    for (const GateResult& result : gate.results) {
      table.rows.push_back(
          {result.name,
           result.status == GateStatus::kNew ? "-" : format_number(result.baseline),
           result.status == GateStatus::kMissing ? "-" : format_number(result.current),
           result.status == GateStatus::kNew ? "-" : format_number(result.allowed),
           std::string(gate_status_name(result.status))});
    }
    doc.table(std::move(table));
  }
}

Doc build_doc(const Report& report) {
  Doc doc;
  doc.heading(1, report.title);
  if (!report.gates.empty()) {
    doc.paragraph(std::string("Regression gate: ") +
                  (report.gates_passed() ? "PASS" : "FAIL"));
  }
  for (const RunSummary& summary : report.summaries) {
    add_scenario_sections(doc, report, summary);
  }

  DocTable metrics_table;
  metrics_table.header = {"kind", "name", "value", "count"};
  for (const Report::MetricRow& row : report.registry_metrics) {
    if (row.name.starts_with("sweep.")) {
      continue;  // wall time: not deterministic across machines/jobs
    }
    metrics_table.rows.push_back({row.kind, row.name, format_number(row.value),
                                  std::to_string(row.count)});
  }
  if (!metrics_table.rows.empty()) {
    doc.heading(2, "Registry metrics");
    doc.table(std::move(metrics_table));
  }

  if (report.has_bench && !report.bench.entries.empty()) {
    doc.heading(2, "Performance trajectory");
    // Benchmarks: one row per benchmark name, one column per entry.
    std::vector<std::string> names;
    for (const BenchEntry& entry : report.bench.entries) {
      for (const BenchMark& bench : entry.benchmarks) {
        if (std::find(names.begin(), names.end(), bench.name) == names.end()) {
          names.push_back(bench.name);
        }
      }
    }
    if (!names.empty()) {
      DocTable table;
      table.header.push_back("benchmark");
      for (const BenchEntry& entry : report.bench.entries) {
        table.header.push_back(entry.label.empty() ? "?" : entry.label);
      }
      for (const std::string& name : names) {
        std::vector<std::string> row;
        row.push_back(name);
        for (const BenchEntry& entry : report.bench.entries) {
          const auto it =
              std::find_if(entry.benchmarks.begin(), entry.benchmarks.end(),
                           [&](const BenchMark& b) { return b.name == name; });
          row.push_back(it == entry.benchmarks.end()
                            ? "-"
                            : format_number(it->real_time) + " " + it->time_unit);
        }
        table.rows.push_back(std::move(row));
      }
      doc.heading(3, "Microbenchmarks (real time)");
      doc.table(std::move(table));
    }
    // Wall times: one row per binary, one column per entry.
    std::vector<std::string> binaries;
    for (const BenchEntry& entry : report.bench.entries) {
      for (const WallTime& wall : entry.wall_times) {
        if (std::find(binaries.begin(), binaries.end(), wall.binary) ==
            binaries.end()) {
          binaries.push_back(wall.binary);
        }
      }
    }
    if (!binaries.empty()) {
      DocTable table;
      table.header.push_back("binary");
      for (const BenchEntry& entry : report.bench.entries) {
        table.header.push_back(entry.label.empty() ? "?" : entry.label);
      }
      for (const std::string& binary : binaries) {
        std::vector<std::string> row;
        row.push_back(binary);
        for (const BenchEntry& entry : report.bench.entries) {
          const auto it = std::find_if(entry.wall_times.begin(), entry.wall_times.end(),
                                       [&](const WallTime& w) { return w.binary == binary; });
          row.push_back(it == entry.wall_times.end() ? "-"
                                                     : format_number(it->seconds) + " s");
        }
        table.rows.push_back(std::move(row));
      }
      doc.heading(3, "Figure-script wall times");
      doc.table(std::move(table));
    }
  }
  return doc;
}

}  // namespace

std::string render_markdown(const Report& report) {
  return to_markdown(build_doc(report));
}

std::string render_html(const Report& report) {
  return to_html(build_doc(report), report.title);
}

}  // namespace mpbt::report
