#include "report/bench.hpp"

#include <sstream>
#include <stdexcept>

namespace mpbt::report {

Json bench_to_json(const BenchTrajectory& trajectory) {
  Json json = Json::object();
  json.set("schema", Json(kBenchSchema));
  Json entries = Json::array();
  for (const BenchEntry& entry : trajectory.entries) {
    Json e = Json::object();
    e.set("label", Json(entry.label));
    e.set("build_type", Json(entry.build_type));
    e.set("source", Json(entry.source));
    Json benchmarks = Json::array();
    for (const BenchMark& bench : entry.benchmarks) {
      Json b = Json::object();
      b.set("name", Json(bench.name));
      b.set("real_time", Json(bench.real_time));
      b.set("cpu_time", Json(bench.cpu_time));
      b.set("time_unit", Json(bench.time_unit));
      b.set("iterations", Json(bench.iterations));
      benchmarks.push_back(std::move(b));
    }
    e.set("benchmarks", std::move(benchmarks));
    Json wall_times = Json::array();
    for (const WallTime& wall : entry.wall_times) {
      Json w = Json::object();
      w.set("binary", Json(wall.binary));
      w.set("seconds", Json(wall.seconds));
      wall_times.push_back(std::move(w));
    }
    e.set("wall_times", std::move(wall_times));
    entries.push_back(std::move(e));
  }
  json.set("entries", std::move(entries));
  return json;
}

BenchTrajectory bench_from_json(const Json& json) {
  if (json.string_or("schema", "") != kBenchSchema) {
    throw std::runtime_error("bench_from_json: not an " + std::string(kBenchSchema) +
                             " document");
  }
  BenchTrajectory trajectory;
  if (const Json* entries = json.find("entries"); entries != nullptr) {
    for (const Json& e : entries->as_array()) {
      BenchEntry entry;
      entry.label = e.string_or("label", "");
      entry.build_type = e.string_or("build_type", "");
      entry.source = e.string_or("source", "");
      if (const Json* benchmarks = e.find("benchmarks"); benchmarks != nullptr) {
        for (const Json& b : benchmarks->as_array()) {
          BenchMark bench;
          bench.name = b.string_or("name", "");
          bench.real_time = b.number_or("real_time", 0.0);
          bench.cpu_time = b.number_or("cpu_time", 0.0);
          bench.time_unit = b.string_or("time_unit", "ns");
          bench.iterations = b.number_or("iterations", 0.0);
          entry.benchmarks.push_back(std::move(bench));
        }
      }
      if (const Json* wall_times = e.find("wall_times"); wall_times != nullptr) {
        for (const Json& w : wall_times->as_array()) {
          WallTime wall;
          wall.binary = w.string_or("binary", "");
          wall.seconds = w.number_or("seconds", 0.0);
          entry.wall_times.push_back(std::move(wall));
        }
      }
      trajectory.entries.push_back(std::move(entry));
    }
  }
  return trajectory;
}

std::vector<BenchMark> parse_google_benchmark(const Json& json) {
  std::vector<BenchMark> benchmarks;
  const Json* rows = json.find("benchmarks");
  if (rows == nullptr) {
    throw std::runtime_error(
        "parse_google_benchmark: no \"benchmarks\" array (not a "
        "--benchmark_format=json file?)");
  }
  for (const Json& row : rows->as_array()) {
    if (row.find("error_occurred") != nullptr &&
        row.at("error_occurred").is_bool() && row.at("error_occurred").as_bool()) {
      continue;
    }
    BenchMark bench;
    bench.name = row.string_or("name", "");
    bench.real_time = row.number_or("real_time", 0.0);
    bench.cpu_time = row.number_or("cpu_time", 0.0);
    bench.time_unit = row.string_or("time_unit", "ns");
    bench.iterations = row.number_or("iterations", 0.0);
    if (!bench.name.empty()) {
      benchmarks.push_back(std::move(bench));
    }
  }
  return benchmarks;
}

std::vector<WallTime> parse_wall_times(const std::string& text) {
  std::vector<WallTime> wall_times;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    WallTime wall;
    if (fields >> wall.binary >> wall.seconds) {
      wall_times.push_back(std::move(wall));
    }
  }
  return wall_times;
}

}  // namespace mpbt::report
