// Minimal self-contained JSON value, parser and writer.
//
// The report layer reads and writes several small JSON dialects —
// committed baselines, run summaries, BENCH_*.json trajectories,
// google-benchmark output and chrome traces — and the toolchain image
// carries no JSON library, so this is a deliberately small, strict
// implementation: objects preserve insertion order (so round-tripping a
// file and re-dumping it is deterministic), numbers are doubles written
// with round-trip precision, and the parser rejects anything RFC 8259
// rejects (trailing commas, bare NaN, unpaired surrogates).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mpbt::report {

class Json;

/// Ordered key/value list: JSON objects keep their textual key order so
/// writes are reproducible and diffs stay minimal.
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(long long v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Object member lookup; throws std::runtime_error when absent.
  const Json& at(std::string_view key) const;
  /// Sets (or overwrites) an object member; throws on non-objects.
  void set(std::string key, Json value);
  /// Appends to an array; throws on non-arrays.
  void push_back(Json value);

  /// Convenience: member as number/string with a default when absent.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

  /// Serializes. indent < 0 → compact one-line form; indent >= 0 →
  /// pretty-printed with that many spaces per level. Doubles use
  /// round-trip (shortest exact) formatting; integral values print
  /// without an exponent or trailing ".0". Non-finite numbers become
  /// null (JSON has no NaN/Inf).
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage); throws
  /// std::runtime_error with an offset on malformed input.
  static Json parse(std::string_view text);

  /// File helpers; throw std::runtime_error on I/O failure.
  static Json load_file(const std::string& path);
  void save_file(const std::string& path, int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Appends `s` with JSON string escaping (no surrounding quotes).
void json_append_escaped(std::string& out, std::string_view s);

/// Formats a double the way dump() does (round-trip, integral values
/// without a fractional part, non-finite as "null").
std::string json_format_number(double v);

}  // namespace mpbt::report
