// Committed baselines and the regression gate.
//
// A baseline is one JSON file per scenario (committed under baselines/)
// pinning every flattened summary metric together with per-metric
// absolute and relative tolerances. The gate re-summarizes a fresh run
// and classifies each metric:
//
//   allowed = max(abs_tol, rel_tol * |baseline value|)
//   |current - baseline| >  allowed        -> fail
//   |current - baseline| >  0.5 * allowed  -> warn
//   otherwise                              -> ok
//
// A metric present in the baseline but missing from the run fails too
// (schema drift is drift); metrics the run added that the baseline does
// not know are reported as "new" and do not fail — refresh the baseline
// with mpbt_report --write-baselines to adopt them.
//
// Default tolerances are deliberately generous (25% relative, 0.05
// absolute): CI rebuilds with different compilers/libms, and a single
// flipped RNG threshold draw shifts quick-sweep means by a few percent.
// The gate exists to catch real regressions — a model whose eta drifts
// 2x its tolerance, a phase detector that stops finding phases — not to
// pin FP noise.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "report/json.hpp"
#include "report/summary.hpp"

namespace mpbt::report {

inline constexpr std::string_view kBaselineSchema = "mpbt-baseline-v1";

struct Tolerance {
  double abs_tol = 0.05;
  double rel_tol = 0.25;

  double allowed(double baseline_value) const;
};

struct BaselineEntry {
  std::string name;
  double value = 0.0;
  Tolerance tolerance;
};

struct Baseline {
  std::string scenario;
  std::vector<BaselineEntry> entries;  ///< name-sorted

  const BaselineEntry* find(std::string_view name) const;
};

enum class GateStatus : std::uint8_t {
  kOk,
  kWarn,     ///< inside tolerance but past half of it
  kFail,     ///< outside tolerance
  kMissing,  ///< in the baseline, absent from the run (fails the gate)
  kNew,      ///< in the run, absent from the baseline (informational)
};

std::string_view gate_status_name(GateStatus status);

struct GateResult {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double allowed = 0.0;
  GateStatus status = GateStatus::kOk;
};

struct GateReport {
  std::string scenario;
  std::vector<GateResult> results;  ///< name-sorted

  std::size_t count(GateStatus status) const;
  bool passed() const {
    return count(GateStatus::kFail) == 0 && count(GateStatus::kMissing) == 0;
  }
};

/// Builds a baseline from a summary, applying `tolerance` to every
/// metric. Wall-time metrics (names starting "sweep.") are excluded:
/// they vary with the machine, not the model.
Baseline baseline_from_summary(const RunSummary& summary,
                               const Tolerance& tolerance = {});

/// Gates `summary` against `baseline` (see file comment for the rules).
GateReport check_against_baseline(const Baseline& baseline, const RunSummary& summary);

Json baseline_to_json(const Baseline& baseline);
Baseline baseline_from_json(const Json& json);

/// Path of a scenario's baseline inside a baseline directory.
std::string baseline_path(const std::string& dir, const std::string& scenario);

}  // namespace mpbt::report
