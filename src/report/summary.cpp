#include "report/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "exp/scenario.hpp"

namespace mpbt::report {

namespace {

/// Record keys the sweep runner adds that are bookkeeping, not results.
bool is_standard_field(std::string_view key) {
  return key == "scenario" || key == "point" || key == "rep" || key == "seed";
}

bool numeric_value(const exp::Value& value, double& out) {
  if (const auto* d = std::get_if<double>(&value)) {
    out = *d;
    return true;
  }
  if (const auto* i = std::get_if<long long>(&value)) {
    out = static_cast<double>(*i);
    return true;
  }
  if (const auto* b = std::get_if<bool>(&value)) {
    out = *b ? 1.0 : 0.0;
    return true;
  }
  return false;
}

std::vector<std::string> registry_params(const std::string& scenario) {
  const exp::Scenario* found = exp::ScenarioRegistry::instance().find(scenario);
  if (found == nullptr) {
    return {};
  }
  const std::vector<exp::ParamPoint> points = found->make_points(exp::SweepOptions{});
  if (points.empty()) {
    return {};
  }
  std::vector<std::string> names;
  names.reserve(points.front().params.size());
  for (const auto& [key, value] : points.front().params) {
    names.push_back(key);
  }
  return names;
}

struct FieldAccumulator {
  double sum = 0.0;
  std::size_t count = 0;
  std::map<std::size_t, std::pair<double, std::size_t>> per_point;  // sum, count
};

}  // namespace

double RunSummary::metric_or(std::string_view name, double fallback) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) {
      return value;
    }
  }
  return fallback;
}

const RunSummary::Profile* RunSummary::find_profile(std::string_view field) const {
  for (const Profile& profile : profiles) {
    if (profile.field == field) {
      return &profile;
    }
  }
  return nullptr;
}

void RunSummary::set_metric(std::string_view name, double value) {
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != metrics.end() && it->first == name) {
    it->second = value;
    return;
  }
  metrics.insert(it, {std::string(name), value});
}

bool RunSummary::is_param(std::string_view field) const {
  return std::find(params.begin(), params.end(), field) != params.end();
}

std::vector<RunSummary> summarize_records(const std::vector<exp::Record>& records) {
  // Group record indices by scenario name (map iteration gives the
  // scenario-name-sorted output order).
  std::map<std::string, std::vector<const exp::Record*>> groups;
  for (const exp::Record& record : records) {
    const exp::Value* name = record.find("scenario");
    const auto* as_string = name != nullptr ? std::get_if<std::string>(name) : nullptr;
    groups[as_string != nullptr ? *as_string : std::string("unknown")].push_back(&record);
  }

  std::vector<RunSummary> summaries;
  summaries.reserve(groups.size());
  for (auto& [scenario, group] : groups) {
    RunSummary summary;
    summary.scenario = scenario;
    summary.records = group.size();
    summary.params = registry_params(scenario);

    // Accumulation is order-independent only up to floating-point
    // association, so fix the order: sort the group by (point, rep).
    auto index_of = [](const exp::Record& record, std::string_view key) {
      const exp::Value* value = record.find(key);
      const auto* as_int = value != nullptr ? std::get_if<long long>(value) : nullptr;
      return as_int != nullptr ? *as_int : 0;
    };
    std::sort(group.begin(), group.end(),
              [&](const exp::Record* a, const exp::Record* b) {
                const auto pa = index_of(*a, "point");
                const auto pb = index_of(*b, "point");
                return pa != pb ? pa < pb : index_of(*a, "rep") < index_of(*b, "rep");
              });

    std::map<std::string, FieldAccumulator> fields;
    std::size_t max_point = 0;
    std::size_t max_rep = 0;
    for (const exp::Record* record : group) {
      const auto point = static_cast<std::size_t>(index_of(*record, "point"));
      const auto rep = static_cast<std::size_t>(index_of(*record, "rep"));
      max_point = std::max(max_point, point);
      max_rep = std::max(max_rep, rep);
      for (const auto& [key, value] : record->fields) {
        double v = 0.0;
        if (is_standard_field(key) || !numeric_value(value, v)) {
          continue;
        }
        FieldAccumulator& acc = fields[key];
        acc.sum += v;
        ++acc.count;
        auto& [point_sum, point_count] = acc.per_point[point];
        point_sum += v;
        ++point_count;
      }
    }
    summary.points = group.empty() ? 0 : max_point + 1;
    summary.runs = group.empty() ? 0 : max_rep + 1;

    for (const auto& [field, acc] : fields) {
      if (!summary.is_param(field) && acc.count > 0) {
        summary.set_metric(field, acc.sum / static_cast<double>(acc.count));
      }
      RunSummary::Profile profile;
      profile.field = field;
      profile.per_point.assign(summary.points,
                               std::numeric_limits<double>::quiet_NaN());
      for (const auto& [point, sums] : acc.per_point) {
        if (point < profile.per_point.size() && sums.second > 0) {
          profile.per_point[point] = sums.first / static_cast<double>(sums.second);
        }
      }
      summary.profiles.push_back(std::move(profile));
    }
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

void attach_traces(RunSummary& summary, const std::vector<obs::TaskTrace>& traces) {
  std::vector<trace::ClientTrace> clients;
  SwarmSeriesStats series;
  double entropy_sum = 0.0;
  double efficiency_sum = 0.0;
  for (const obs::TaskTrace& task : traces) {
    // Peer ids restart per task, so traces must be rebuilt task by task.
    std::vector<trace::ClientTrace> task_clients =
        client_traces_from_events(task.events);
    std::move(task_clients.begin(), task_clients.end(), std::back_inserter(clients));
    const SwarmSeriesStats task_series = swarm_series_stats(task.events);
    if (task_series.samples > 0) {
      entropy_sum += task_series.mean_entropy * static_cast<double>(task_series.samples);
      efficiency_sum +=
          task_series.mean_efficiency * static_cast<double>(task_series.samples);
      series.samples += task_series.samples;
      series.final_entropy = task_series.final_entropy;
      series.final_efficiency = task_series.final_efficiency;
    }
  }
  if (series.samples > 0) {
    series.mean_entropy = entropy_sum / static_cast<double>(series.samples);
    series.mean_efficiency = efficiency_sum / static_cast<double>(series.samples);
  }
  attach_phase_rollup(summary, rollup_phases(clients), series);
}

void attach_phase_rollup(RunSummary& summary, const PhaseRollup& rollup,
                         const SwarmSeriesStats& series) {
  summary.phases = rollup;
  summary.series = series;
  summary.has_phases = true;
  if (!rollup.empty()) {
    summary.set_metric("phase.clients", static_cast<double>(rollup.clients));
    summary.set_metric("phase.completed", static_cast<double>(rollup.completed));
    summary.set_metric("phase.bootstrap_rounds", rollup.mean_bootstrap_duration);
    summary.set_metric("phase.efficient_rounds", rollup.mean_efficient_duration);
    summary.set_metric("phase.last_rounds", rollup.mean_last_duration);
    summary.set_metric("phase.total_rounds", rollup.mean_total_duration);
    summary.set_metric("phase.bootstrap_fraction", rollup.mean_bootstrap_fraction);
    summary.set_metric("phase.last_fraction", rollup.mean_last_fraction);
    summary.set_metric("phase.download_rate", rollup.mean_download_rate);
    summary.set_metric("phase.mean_potential", rollup.mean_potential);
    summary.set_metric("phase.rate_potential_corr", rollup.mean_rate_potential_corr);
  }
  if (series.samples > 0) {
    summary.set_metric("trace.mean_entropy", series.mean_entropy);
    summary.set_metric("trace.mean_efficiency", series.mean_efficiency);
  }
}

Json summary_to_json(const RunSummary& summary) {
  Json json = Json::object();
  json.set("schema", Json(kSummarySchema));
  json.set("scenario", Json(summary.scenario));
  json.set("points", Json(static_cast<double>(summary.points)));
  json.set("runs", Json(static_cast<double>(summary.runs)));
  json.set("records", Json(static_cast<double>(summary.records)));
  Json params = Json::array();
  for (const std::string& param : summary.params) {
    params.push_back(Json(param));
  }
  json.set("params", std::move(params));
  Json metrics = Json::object();
  for (const auto& [name, value] : summary.metrics) {
    metrics.set(name, Json(value));
  }
  json.set("metrics", std::move(metrics));
  Json profiles = Json::object();
  for (const RunSummary::Profile& profile : summary.profiles) {
    Json values = Json::array();
    for (double v : profile.per_point) {
      values.push_back(std::isfinite(v) ? Json(v) : Json());
    }
    profiles.set(profile.field, std::move(values));
  }
  json.set("profiles", std::move(profiles));
  if (summary.has_phases) {
    Json phases = Json::object();
    phases.set("clients", Json(static_cast<double>(summary.phases.clients)));
    phases.set("completed", Json(static_cast<double>(summary.phases.completed)));
    phases.set("bootstrap_rounds", Json(summary.phases.mean_bootstrap_duration));
    phases.set("efficient_rounds", Json(summary.phases.mean_efficient_duration));
    phases.set("last_rounds", Json(summary.phases.mean_last_duration));
    phases.set("total_rounds", Json(summary.phases.mean_total_duration));
    phases.set("bootstrap_fraction", Json(summary.phases.mean_bootstrap_fraction));
    phases.set("last_fraction", Json(summary.phases.mean_last_fraction));
    phases.set("download_rate", Json(summary.phases.mean_download_rate));
    phases.set("mean_potential", Json(summary.phases.mean_potential));
    phases.set("rate_potential_corr", Json(summary.phases.mean_rate_potential_corr));
    json.set("phases", std::move(phases));
    Json series = Json::object();
    series.set("samples", Json(static_cast<double>(summary.series.samples)));
    series.set("mean_entropy", Json(summary.series.mean_entropy));
    series.set("mean_efficiency", Json(summary.series.mean_efficiency));
    series.set("final_entropy", Json(summary.series.final_entropy));
    series.set("final_efficiency", Json(summary.series.final_efficiency));
    json.set("series", std::move(series));
  }
  return json;
}

RunSummary summary_from_json(const Json& json) {
  if (json.string_or("schema", "") != kSummarySchema) {
    throw std::runtime_error("summary_from_json: not an " +
                             std::string(kSummarySchema) + " document");
  }
  RunSummary summary;
  summary.scenario = json.string_or("scenario", "unknown");
  summary.points = static_cast<std::size_t>(json.number_or("points", 0));
  summary.runs = static_cast<std::size_t>(json.number_or("runs", 0));
  summary.records = static_cast<std::size_t>(json.number_or("records", 0));
  if (const Json* params = json.find("params"); params != nullptr) {
    for (const Json& param : params->as_array()) {
      summary.params.push_back(param.as_string());
    }
  }
  if (const Json* metrics = json.find("metrics"); metrics != nullptr) {
    for (const auto& [name, value] : metrics->as_object()) {
      summary.set_metric(name, value.as_number());
    }
  }
  if (const Json* profiles = json.find("profiles"); profiles != nullptr) {
    for (const auto& [field, values] : profiles->as_object()) {
      RunSummary::Profile profile;
      profile.field = field;
      for (const Json& v : values.as_array()) {
        profile.per_point.push_back(
            v.is_number() ? v.as_number() : std::numeric_limits<double>::quiet_NaN());
      }
      summary.profiles.push_back(std::move(profile));
    }
  }
  if (const Json* phases = json.find("phases"); phases != nullptr) {
    summary.has_phases = true;
    summary.phases.clients = static_cast<std::size_t>(phases->number_or("clients", 0));
    summary.phases.completed =
        static_cast<std::size_t>(phases->number_or("completed", 0));
    summary.phases.mean_bootstrap_duration = phases->number_or("bootstrap_rounds", 0);
    summary.phases.mean_efficient_duration = phases->number_or("efficient_rounds", 0);
    summary.phases.mean_last_duration = phases->number_or("last_rounds", 0);
    summary.phases.mean_total_duration = phases->number_or("total_rounds", 0);
    summary.phases.mean_bootstrap_fraction = phases->number_or("bootstrap_fraction", 0);
    summary.phases.mean_last_fraction = phases->number_or("last_fraction", 0);
    summary.phases.mean_download_rate = phases->number_or("download_rate", 0);
    summary.phases.mean_potential = phases->number_or("mean_potential", 0);
    summary.phases.mean_rate_potential_corr =
        phases->number_or("rate_potential_corr", 0);
  }
  if (const Json* series = json.find("series"); series != nullptr) {
    summary.series.samples = static_cast<std::size_t>(series->number_or("samples", 0));
    summary.series.mean_entropy = series->number_or("mean_entropy", 0);
    summary.series.mean_efficiency = series->number_or("mean_efficiency", 0);
    summary.series.final_entropy = series->number_or("final_entropy", 0);
    summary.series.final_efficiency = series->number_or("final_efficiency", 0);
  }
  return summary;
}

}  // namespace mpbt::report
