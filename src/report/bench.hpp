// Performance-trajectory bookkeeping (BENCH_*.json).
//
// The repo commits one BENCH_<nnnn>.json snapshot per growth PR so the
// report can show how the hot paths move over time. A snapshot is an
// "mpbt-bench-v1" document holding a list of entries; each entry is one
// labeled measurement session (google-benchmark results re-encoded with
// only the stable fields, plus the wall-time table run_all_figures.sh
// produces). mpbt_report --append-bench adds a session to an existing
// file, so the trajectory accumulates instead of being overwritten.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "report/json.hpp"

namespace mpbt::report {

inline constexpr std::string_view kBenchSchema = "mpbt-bench-v1";

struct BenchMark {
  std::string name;
  double real_time = 0.0;
  double cpu_time = 0.0;
  std::string time_unit = "ns";
  double iterations = 0.0;
};

struct WallTime {
  std::string binary;
  double seconds = 0.0;
};

struct BenchEntry {
  std::string label;       ///< e.g. "PR3" or a date
  std::string build_type;  ///< e.g. "Release"
  std::string source;      ///< how the numbers were produced
  std::vector<BenchMark> benchmarks;
  std::vector<WallTime> wall_times;
};

struct BenchTrajectory {
  std::vector<BenchEntry> entries;  ///< chronological (append order)
};

Json bench_to_json(const BenchTrajectory& trajectory);
BenchTrajectory bench_from_json(const Json& json);

/// Extracts the stable fields from google-benchmark's
/// --benchmark_format=json output ("benchmarks" array). Aggregate rows
/// (mean/median/stddev re-runs) are kept; error rows are skipped.
std::vector<BenchMark> parse_google_benchmark(const Json& json);

/// Parses the "  <binary> <seconds>" table run_all_figures.sh writes
/// (blank lines and a header line without a numeric second column are
/// skipped).
std::vector<WallTime> parse_wall_times(const std::string& text);

}  // namespace mpbt::report
