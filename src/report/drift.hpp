// Model-vs-simulation drift monitoring.
//
// Scenarios report paired fields by convention: a measurement "sim_X"
// next to the model's prediction "model_X" (efficiency_vs_k pairs the
// swarm's transfer efficiency with the balance-equation eta and its
// phase occupancy with the Markov chain's expected phase fractions;
// stability_vs_B pairs tail entropy with the stability threshold;
// ensemble_transient pairs final populations). The drift monitor finds
// every such pair in a RunSummary's per-point profiles and scores it
// with analysis::profile_rmse / profile_max_gap, giving one row per
// model prediction that the renderer tabulates and the baseline gate
// can regression-check.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "report/summary.hpp"

namespace mpbt::report {

struct DriftRow {
  std::string scenario;
  std::string metric;  ///< the X of the sim_X / model_X pair
  std::size_t points = 0;  ///< profile points compared
  double sim_mean = 0.0;
  double model_mean = 0.0;
  double rmse = -1.0;     ///< -1 when no points overlapped
  double max_gap = -1.0;  ///< -1 when no points overlapped
};

/// Pairs every "sim_X" profile with its "model_X" sibling and scores the
/// residuals. Rows are metric-name-sorted.
std::vector<DriftRow> compute_drift(const RunSummary& summary);

/// Convenience: computes drift and folds each row into summary.metrics
/// as "drift.X.rmse" / "drift.X.max_gap" so the baseline gate covers
/// model fidelity as well as raw measurements. Returns the rows.
std::vector<DriftRow> attach_drift(RunSummary& summary);

}  // namespace mpbt::report
