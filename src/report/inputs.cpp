#include "report/inputs.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>

namespace mpbt::report {

namespace {

exp::Value value_from_json(const Json& json) {
  switch (json.type()) {
    case Json::Type::kBool:
      return json.as_bool();
    case Json::Type::kNumber: {
      const double v = json.as_number();
      // Integral values within long long's exact-double range load as
      // integers so point/rep indices survive the round trip.
      if (v == std::floor(v) && std::abs(v) < 9.0e15) {
        return static_cast<long long>(v);
      }
      return v;
    }
    case Json::Type::kString:
      return json.as_string();
    default:
      // null / nested values have no Record representation; null stands
      // for a non-finite double.
      return std::numeric_limits<double>::quiet_NaN();
  }
}

}  // namespace

std::vector<exp::Record> records_from_jsonl(std::istream& is) {
  std::vector<exp::Record> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    Json json;
    try {
      json = Json::parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("records_from_jsonl: line " +
                               std::to_string(line_number) + ": " + e.what());
    }
    exp::Record record;
    for (const auto& [key, value] : json.as_object()) {
      record.set(key, value_from_json(value));
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<exp::Record> load_records_jsonl(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("load_records_jsonl: cannot open " + path);
  }
  return records_from_jsonl(file);
}

std::vector<Report::MetricRow> metric_rows_from_records(
    const std::vector<exp::Record>& records) {
  std::vector<Report::MetricRow> rows;
  for (const exp::Record& record : records) {
    const exp::Value* kind = record.find("kind");
    const exp::Value* name = record.find("name");
    const auto* kind_str = kind != nullptr ? std::get_if<std::string>(kind) : nullptr;
    const auto* name_str = name != nullptr ? std::get_if<std::string>(name) : nullptr;
    if (kind_str == nullptr || name_str == nullptr) {
      continue;
    }
    Report::MetricRow row;
    row.kind = *kind_str;
    row.name = *name_str;
    if (const exp::Value* value = record.find("value"); value != nullptr) {
      if (const auto* d = std::get_if<double>(value)) {
        row.value = *d;
      } else if (const auto* i = std::get_if<long long>(value)) {
        row.value = static_cast<double>(*i);
      }
    }
    if (const exp::Value* count = record.find("count"); count != nullptr) {
      if (const auto* i = std::get_if<long long>(count)) {
        row.count = static_cast<std::uint64_t>(*i);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<obs::TaskTrace> traces_from_chrome_json(const Json& json,
                                                    double us_per_round) {
  const Json* events = json.find("traceEvents");
  if (events == nullptr) {
    throw std::runtime_error(
        "traces_from_chrome_json: no \"traceEvents\" array (not a chrome trace?)");
  }
  // Sim-time tasks live at pid >= 2 (pid 1 is the wall-time worker
  // process); rebuild one TaskTrace per sim pid, keeping event order.
  constexpr double kTaskPidBase = 2.0;
  std::map<std::uint64_t, obs::TaskTrace> tasks;
  for (const Json& event : events->as_array()) {
    const double pid = event.number_or("pid", -1.0);
    if (pid < kTaskPidBase) {
      continue;
    }
    const auto task_id = static_cast<std::uint64_t>(pid - kTaskPidBase);
    obs::TaskTrace& task = tasks[task_id];
    task.task = task_id;
    const std::string ph = event.string_or("ph", "");
    const std::string name = event.string_or("name", "");
    if (ph == "M") {
      if (name == "process_name") {
        if (const Json* args = event.find("args"); args != nullptr) {
          task.label = args->string_or("name", "");
        }
      }
      continue;
    }
    const double ts = event.number_or("ts", 0.0);
    const auto round =
        static_cast<std::uint64_t>(us_per_round > 0 ? ts / us_per_round + 0.5 : 0);
    const Json* args = event.find("args");
    obs::TraceEvent out;
    out.round = round;
    if (ph == "C" && name == "entropy" && args != nullptr) {
      out.type = obs::EventType::kEntropySample;
      out.value = args->number_or("entropy", 0.0);
      out.value2 = args->number_or("transfer_efficiency", 0.0);
      task.events.push_back(out);
      continue;
    }
    if (ph != "i") {
      continue;
    }
    const double tid = event.number_or("tid", 0.0);
    out.peer = tid >= 1.0 ? static_cast<std::uint32_t>(tid - 1.0) : obs::kNoTracePeer;
    if (name == "client_sample" && args != nullptr) {
      out.type = obs::EventType::kClientSample;
      out.value = args->number_or("potential", 0.0);
      out.other = static_cast<std::uint32_t>(args->number_or("pieces", 0.0));
      out.value2 = args->number_or("bytes", 0.0);
      task.events.push_back(out);
    } else if (name == "peer_complete") {
      out.type = obs::EventType::kPeerComplete;
      if (args != nullptr) {
        out.value = args->number_or("download_rounds", 0.0);
      }
      task.events.push_back(out);
    }
  }
  std::vector<obs::TaskTrace> out;
  out.reserve(tasks.size());
  for (auto& [task_id, task] : tasks) {
    out.push_back(std::move(task));
  }
  return out;
}

}  // namespace mpbt::report
