// Uniform per-scenario run summaries.
//
// summarize_records folds a sweep's result records (in memory or re-read
// from a JSONL file) into one RunSummary per scenario: flattened scalar
// metrics (the mean of every numeric measurement field), per-point mean
// profiles (the drift monitor compares sim_*/model_* profile pairs), and
// — when traces were recorded — the phase rollup of the instrumented
// clients. Summaries serialize to the "mpbt-summary-v1" JSON schema so
// mpbt_report can consume a summary written by mpbt_sweep --summary
// without re-running anything.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "exp/sink.hpp"
#include "report/json.hpp"
#include "report/phase.hpp"

namespace mpbt::report {

inline constexpr std::string_view kSummarySchema = "mpbt-summary-v1";

struct RunSummary {
  std::string scenario;
  std::size_t points = 0;   ///< grid points seen
  std::size_t runs = 0;     ///< max repetitions per point seen
  std::size_t records = 0;  ///< result records folded in

  /// Parameter field names (from the scenario registry when the scenario
  /// is known; empty otherwise). Parameters appear in `profiles` but not
  /// in `metrics`.
  std::vector<std::string> params;

  /// Flattened scalar metrics, name-sorted: mean over all records of each
  /// numeric measurement field, plus "phase.*" / "trace.*" entries once a
  /// rollup is attached and "drift.*" entries once drift is computed.
  /// This is the surface the baseline gate checks.
  std::vector<std::pair<std::string, double>> metrics;

  /// Per-point mean profiles of every numeric field (parameters and
  /// measurements alike), indexed by the record's point index.
  struct Profile {
    std::string field;
    std::vector<double> per_point;
  };
  std::vector<Profile> profiles;

  /// Phase rollup from recorded traces (empty when tracing was off).
  PhaseRollup phases;
  SwarmSeriesStats series;
  bool has_phases = false;

  /// Metric lookup; fallback when absent.
  double metric_or(std::string_view name, double fallback) const;
  const Profile* find_profile(std::string_view field) const;
  /// Inserts or overwrites a metric, keeping the list name-sorted.
  void set_metric(std::string_view name, double value);
  bool is_param(std::string_view field) const;
};

/// Groups `records` by their "scenario" field and summarizes each group.
/// Records are processed in (point, rep) order regardless of input order,
/// so the summaries are identical for any sweep worker count. Parameter
/// names come from the scenario registry when the scenario is registered.
/// Returned summaries are scenario-name-sorted.
std::vector<RunSummary> summarize_records(const std::vector<exp::Record>& records);

/// Computes the phase rollup + series stats over all of `traces`' events
/// and folds them into `summary.metrics` under "phase.*" / "trace.*".
void attach_traces(RunSummary& summary, const std::vector<obs::TaskTrace>& traces);

/// Folds an already-computed rollup into the summary (used when the
/// events are no longer available, e.g. re-loading a summary file).
void attach_phase_rollup(RunSummary& summary, const PhaseRollup& rollup,
                         const SwarmSeriesStats& series);

Json summary_to_json(const RunSummary& summary);
RunSummary summary_from_json(const Json& json);

}  // namespace mpbt::report
