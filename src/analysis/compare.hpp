// Model-vs-simulation comparison metrics used by the validation benches.
#pragma once

#include <vector>

#include "trace/record.hpp"

namespace mpbt::analysis {

/// RMSE between two profiles indexed by piece count. Entries < 0 mean
/// "missing" and are skipped on either side; returns -1 when nothing
/// overlaps. Sizes may differ (compared over the common prefix).
double profile_rmse(const std::vector<double>& a, const std::vector<double>& b);

/// Max |a - b| over the overlapping, non-missing entries; -1 when none.
double profile_max_gap(const std::vector<double>& a, const std::vector<double>& b);

/// Mean of the non-missing entries; -1 when none.
double profile_mean(const std::vector<double>& profile);

/// Pearson correlation between a client's instantaneous download rate and
/// its potential-set size (the relationship Section 4.2 highlights in
/// Figure 2). Requires >= 3 trace points; returns 0 on degenerate traces.
double rate_potential_correlation(const trace::ClientTrace& trace);

}  // namespace mpbt::analysis
