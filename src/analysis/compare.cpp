#include "analysis/compare.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/stats.hpp"

namespace mpbt::analysis {

double profile_rmse(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] < 0.0 || b[i] < 0.0) {
      continue;
    }
    const double d = a[i] - b[i];
    sum += d * d;
    ++count;
  }
  if (count == 0) {
    return -1.0;
  }
  return std::sqrt(sum / static_cast<double>(count));
}

double profile_max_gap(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double gap = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] < 0.0 || b[i] < 0.0) {
      continue;
    }
    gap = std::max(gap, std::abs(a[i] - b[i]));
  }
  return gap;
}

double profile_mean(const std::vector<double>& profile) {
  double sum = 0.0;
  std::size_t count = 0;
  for (double v : profile) {
    if (v >= 0.0) {
      sum += v;
      ++count;
    }
  }
  return count == 0 ? -1.0 : sum / static_cast<double>(count);
}

double rate_potential_correlation(const trace::ClientTrace& trace) {
  if (trace.points.size() < 3) {
    return 0.0;
  }
  std::vector<double> rate;
  std::vector<double> potential;
  for (std::size_t i = 1; i < trace.points.size(); ++i) {
    const auto& prev = trace.points[i - 1];
    const auto& cur = trace.points[i];
    const double dt = cur.time - prev.time;
    if (dt <= 0.0) {
      continue;
    }
    rate.push_back(static_cast<double>(cur.cumulative_bytes - prev.cumulative_bytes) / dt);
    potential.push_back(static_cast<double>(cur.potential_set_size));
  }
  if (rate.size() < 2) {
    return 0.0;
  }
  return numeric::pearson_correlation(rate, potential);
}

}  // namespace mpbt::analysis
