// Calibration: estimate the multiphased model's protocol parameters from
// a finished swarm run (the Section 4 methodology: the model consumes
// p_init / p_r / p_n measured at protocol level, and alpha from the
// arrival-rate formula of Section 3.2).
#pragma once

#include "bt/swarm.hpp"
#include "model/params.hpp"

namespace mpbt::analysis {

struct CalibrationOptions {
  /// w — probability a newly arriving peer has a piece to exchange
  /// (enters alpha = lambda * w * s / N).
  double w = 0.5;
  /// gamma — last-phase refresh probability (not directly measurable from
  /// aggregate metrics; supplied by the caller).
  double gamma = 0.1;
  /// Fallbacks when the swarm produced no observations.
  double fallback_p_r = 0.5;
  double fallback_p_n = 0.5;
  double fallback_p_init = 0.5;
};

/// Builds ModelParams with B/k/s copied from the swarm's configuration,
/// p_r / p_n / p_init measured from its metrics, and alpha derived from
/// lambda, w, s, and the current population.
model::ModelParams calibrate_model(const bt::Swarm& swarm,
                                   const CalibrationOptions& options = {});

}  // namespace mpbt::analysis
