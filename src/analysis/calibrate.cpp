#include "analysis/calibrate.hpp"

#include <algorithm>

namespace mpbt::analysis {

model::ModelParams calibrate_model(const bt::Swarm& swarm, const CalibrationOptions& options) {
  model::ModelParams params;
  params.B = static_cast<int>(swarm.config().num_pieces);
  params.k = static_cast<int>(swarm.config().max_connections);
  params.s = static_cast<int>(swarm.config().peer_set_size);
  params.p_r = swarm.metrics().estimated_p_r(options.fallback_p_r);
  params.p_n = swarm.metrics().estimated_p_n(options.fallback_p_n);
  params.p_init = swarm.metrics().estimated_p_init(options.fallback_p_init);
  const double population = std::max<double>(1.0, static_cast<double>(swarm.population()));
  params.alpha = model::ModelParams::alpha_from(swarm.config().arrival_rate, options.w,
                                                params.s, population);
  params.gamma = options.gamma;
  return params;
}

}  // namespace mpbt::analysis
