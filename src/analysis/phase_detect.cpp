#include "analysis/phase_detect.hpp"

#include "util/assert.hpp"

namespace mpbt::analysis {

PhaseSegmentation detect_phases(const trace::ClientTrace& trace,
                                const PhaseDetectOptions& options) {
  util::throw_if_invalid(trace.points.empty(), "detect_phases requires a non-empty trace");
  const auto& pts = trace.points;
  PhaseSegmentation seg;

  // Bootstrap ends at the first point where the client holds a piece AND
  // has someone to trade it with.
  seg.efficient_begin = pts.size();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].pieces_held >= 1 && pts[i].potential_set_size >= 1) {
      seg.efficient_begin = i;
      break;
    }
  }

  // Last phase: the maximal suffix (after reaching the completion floor)
  // where the potential set stays collapsed. The very last point is exempt
  // from the collapse requirement: on the completion round the potential
  // set briefly recovers (that is what let the client finish).
  const double completion_floor =
      options.last_phase_min_completion * static_cast<double>(trace.num_pieces);
  seg.last_begin = pts.size();
  for (std::size_t i = pts.size() - 1; i-- > 0;) {
    const bool collapsed = pts[i].potential_set_size <= options.last_phase_potential;
    const bool late = static_cast<double>(pts[i].pieces_held) >= completion_floor;
    if (collapsed && late) {
      seg.last_begin = i;
    } else {
      break;
    }
  }
  if (seg.last_begin < seg.efficient_begin) {
    seg.last_begin = seg.efficient_begin;
  }
  // A one-point suffix is measurement noise, not a phase.
  if (pts.size() - seg.last_begin <= 1) {
    seg.last_begin = pts.size();
  }

  const double t0 = pts.front().time;
  const double t_end = pts.back().time;
  const double t_eff = seg.efficient_begin < pts.size() ? pts[seg.efficient_begin].time : t_end;
  const double t_last = seg.last_begin < pts.size() ? pts[seg.last_begin].time : t_end;

  seg.total_duration = t_end - t0;
  seg.bootstrap_duration = t_eff - t0;
  seg.efficient_duration = t_last - t_eff;
  seg.last_duration = t_end - t_last;
  return seg;
}

}  // namespace mpbt::analysis
