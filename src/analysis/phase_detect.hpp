// Phase segmentation of a client trace.
//
// Detects the paper's three phases in measured (or simulated) client
// traces: the bootstrap prefix (no tradable neighbor yet), the efficient
// middle, and the last-download suffix (potential set collapsed near the
// end of the file). Used to validate that the simulator reproduces the
// archetypes of Figure 2 and to report per-phase durations.
#pragma once

#include <cstddef>

#include "trace/record.hpp"

namespace mpbt::analysis {

struct PhaseSegmentation {
  /// Index of the first trace point in the efficient phase (== 0 when the
  /// client was trading immediately; == points.size() when it never left
  /// bootstrap).
  std::size_t efficient_begin = 0;
  /// Index of the first trace point of the last-download suffix
  /// (== points.size() when there is no last phase).
  std::size_t last_begin = 0;

  double bootstrap_duration = 0.0;
  double efficient_duration = 0.0;
  double last_duration = 0.0;
  double total_duration = 0.0;

  bool has_bootstrap_phase() const { return efficient_begin > 0; }
  bool has_last_phase() const { return last_duration > 0.0; }

  double bootstrap_fraction() const {
    return total_duration <= 0.0 ? 0.0 : bootstrap_duration / total_duration;
  }
  double last_fraction() const {
    return total_duration <= 0.0 ? 0.0 : last_duration / total_duration;
  }
};

struct PhaseDetectOptions {
  /// The last phase is a suffix where the potential set stays at or below
  /// this size.
  std::uint32_t last_phase_potential = 1;
  /// ...and only counts once the client holds at least this fraction of
  /// the file (so a stalled start is not misread as a last phase).
  double last_phase_min_completion = 0.5;
};

/// Segments `trace` into the three phases. Requires a non-empty trace.
PhaseSegmentation detect_phases(const trace::ClientTrace& trace,
                                const PhaseDetectOptions& options = {});

}  // namespace mpbt::analysis
