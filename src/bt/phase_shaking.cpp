#include "bt/phase_shaking.hpp"

#include "bt/fault.hpp"
#include "bt/phase_neighbors.hpp"
#include "obs/trace.hpp"

namespace mpbt::bt {

void run_shake(RoundContext& ctx) {
  const SwarmConfig& config = ctx.config;
  if (!config.shake.enabled) {
    return;
  }
  const auto threshold = static_cast<std::size_t>(
      config.shake.completion_fraction * static_cast<double>(config.num_pieces));
  // Fault tap (test-only): shaken peers clear their own sets but stay in
  // their old partners' sets.
  const bool skip_cleanup = fault::enabled(fault::Fault::kSkipShakeCleanup);
  for (const PeerId id : ctx.store.live()) {
    if (!ctx.store.is_live(id)) {
      continue;
    }
    Peer& p = ctx.store.get(id);
    if (p.is_seed || p.shaken || p.pieces.count() < threshold) {
      continue;
    }
    // Drop the whole neighbor set (and with it all connections)...
    std::vector<PeerId>& old_neighbors = ctx.state.scratch_ids;
    old_neighbors = p.neighbors.as_vector();
    if (!skip_cleanup) {
      for (const PeerId nb : old_neighbors) {
        if (ctx.store.exists(nb)) {
          Peer& q = ctx.store.get(nb);
          q.neighbors.erase(id);
          q.connections.erase(id);
          q.inflight.erase(id);
        }
      }
    }
    p.neighbors.clear();
    p.connections.clear();
    p.inflight.clear();
    p.potential.clear();
    // ...and fetch a fresh random peer set from the tracker.
    fetch_neighbors(ctx, id);
    p.shaken = true;
    if (ctx.trace != nullptr) {
      ctx.trace->peer_set_shake(ctx.round, id);
    }
  }
}

}  // namespace mpbt::bt
