// Tracker: peer registry, random peer sampling, and population statistics.
//
// The tracker is the swarm's rendezvous service. It also records the
// hourly peer-count statistics the paper uses to select stable swarms
// (Section 4.2); trace::classify_swarm consumes that series.
#pragma once

#include <cstddef>
#include <vector>

#include "bt/types.hpp"
#include "numeric/rng.hpp"

namespace mpbt::bt {

class Tracker {
 public:
  Tracker() = default;

  /// Registers a peer; ignores double registration.
  void add_peer(PeerId id);

  /// Removes a peer; ignores unknown ids.
  void remove_peer(PeerId id);

  bool contains(PeerId id) const;
  std::size_t population() const { return order_.size(); }

  /// Samples up to `count` distinct random peers, excluding `exclude`.
  /// Returns fewer when the registry is small.
  std::vector<PeerId> sample_peers(std::size_t count, PeerId exclude, numeric::Rng& rng) const;

  /// Pre-sizes the registry for `capacity` registered peers (and ids up
  /// to `capacity`), so flash-crowd announce bursts don't reallocate
  /// mid-round. No-op when already at least that large.
  void reserve(std::size_t capacity);

  /// Records the current population into the hourly statistics series.
  void record_stats();

  /// Hourly (per-record_stats call) population series.
  const std::vector<std::uint32_t>& population_series() const { return stats_; }

 private:
  // Dense registry with O(1) removal: `order_` holds live ids,
  // `position_` maps id -> index in order_ (or npos).
  std::vector<PeerId> order_;
  std::vector<std::size_t> position_;
  std::vector<std::uint32_t> stats_;

  static constexpr std::size_t kNpos = SIZE_MAX;
};

}  // namespace mpbt::bt
