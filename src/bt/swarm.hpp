// The BitTorrent swarm simulator (Section 4.1 of the paper).
//
// Round-synchronous discrete simulation matching the model's semantics:
// one round = one trading step. Each round the swarm
//   1. admits Poisson arrivals (each gets s random neighbors, symmetric),
//   2. bootstraps piece-less peers (seeds or optimistic unchoking),
//   3. recomputes every leecher's potential set (strict mutual interest),
//   4. prunes connections whose partner departed or lost interest,
//   5. establishes new connections up to k per peer,
//   6. exchanges pieces over connections under strict tit-for-tat
//      (a connection with nothing to trade in either direction drops),
//   7. optionally lets seeds serve pieces,
//   8. departs completed leechers (or converts them to lingering seeds),
//   9. applies peer-set shaking (Section 7.1) when enabled,
//  10. records metrics.
//
// The simulation is fully deterministic for a given SwarmConfig::seed.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bt/config.hpp"
#include "bt/metrics.hpp"
#include "bt/peer.hpp"
#include "bt/tracker.hpp"
#include "numeric/rng.hpp"

namespace mpbt::obs {
class TraceRecorder;
}

namespace mpbt::bt {

class Swarm {
 public:
  explicit Swarm(SwarmConfig config);

  /// Runs one full round.
  void step();

  /// Runs `rounds` rounds.
  void run_rounds(Round rounds);

  /// Number of completed rounds so far.
  Round round() const { return round_; }

  const SwarmConfig& config() const { return config_; }
  const SwarmMetrics& metrics() const { return metrics_; }
  const Tracker& tracker() const { return tracker_; }

  std::size_t num_leechers() const;
  std::size_t num_seeds() const;
  std::size_t population() const { return live_.size(); }

  /// Live peer ids in arrival order.
  const std::vector<PeerId>& live_peers() const { return live_; }

  /// True if the peer is still in the swarm.
  bool is_live(PeerId id) const;

  /// Read access to a peer that has ever existed (live or departed).
  const Peer& peer(PeerId id) const;

  /// Current replication degree of each piece over live peers.
  const std::vector<std::uint32_t>& piece_counts() const { return piece_counts_; }

  /// Swarm entropy E = min_j d_j / max_j d_j (Section 6); 0 when some piece
  /// has no replica while another does; 1 for an empty swarm.
  double entropy() const;

  /// Attaches (or detaches, with nullptr) a structured event-trace
  /// recorder. The constructor picks up obs::current_trace()
  /// automatically, so task-scoped tracing (obs::TaskScope) needs no
  /// explicit call. Tracing is observational only: it draws no
  /// randomness, so results are identical with tracing on or off, and
  /// the disabled path is a branch on this nullptr.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }
  obs::TraceRecorder* trace_recorder() const { return trace_; }

  /// Marks the next arriving peer for detailed per-round trace recording.
  void instrument_next_arrival() { instrument_next_ = true; }

  /// Marks an existing live peer for detailed trace recording.
  void instrument_peer(PeerId id);

  /// Injects one peer immediately (between rounds). `piece_probs` follows
  /// InitialGroup semantics; empty means no pieces. Returns the new id.
  PeerId add_peer(const std::vector<double>& piece_probs = {});

  /// Verifies cross-peer invariants (symmetry, caps, count consistency);
  /// throws util::AssertionError on violation. O(N * (s + B)).
  void check_invariants() const;

 private:
  Peer& peer_ref(PeerId id);
  PeerId create_peer(const std::vector<double>& piece_probs, bool as_seed);
  void assign_initial_neighbors(PeerId id);
  void connect(Peer& a, Peer& b);
  void disconnect(Peer& a, Peer& b);
  void acquire_piece(Peer& p, PieceIndex piece, bool add_bytes = true);
  void depart(Peer& p);

  // Block-granular transfers (blocks_per_piece > 1).
  /// Ensures `down` has a piece in flight from `up`; returns false when
  /// nothing is selectable (strict tit-for-tat then drops the pair).
  bool ensure_inflight(Peer& down, const Peer& up);
  /// Delivers one block of the in-flight piece; completes it when all
  /// blocks have arrived.
  void deliver_block(Peer& down, PeerId from);
  void sweep_departed();

  /// Availability counts for rarest-first, per the configured scope.
  const std::vector<std::uint32_t>& availability_for(const Peer& p);

  /// Piece a seed should upload to `taker`, honoring the seed mode.
  std::optional<PieceIndex> seed_piece_for(Peer& seed, const Peer& taker);

  // Round phases.
  void phase_arrivals();
  void phase_bootstrap();
  void phase_rebuild_potential_sets();
  void phase_prune_connections();
  void phase_establish_connections();
  /// Rate-based choking variant of connection establishment.
  void establish_rate_based();
  void phase_exchange();
  void phase_seed_service();
  void phase_completions();
  void phase_shake();
  void phase_record_metrics();

  /// Single fan-out point for the per-round sample: feeds SwarmMetrics
  /// and, when tracing is attached, the trace recorder (which in turn
  /// feeds the metrics registry) — one call site, so the per-round
  /// series and registry snapshots cannot drift apart.
  void record_round_sample(std::size_t leechers, std::size_t seeds, double ent,
                           double eff_trading, double eff_all, double eff_transfer);

  /// Emits a phase-transition trace event when the classification of
  /// (n, b, i) changed since the last round (tracing only).
  void trace_phase_transition(Peer& p, std::uint32_t n, std::uint32_t b,
                              std::uint32_t i);

  std::vector<PeerId> shuffled_live_leechers();

  SwarmConfig config_;
  numeric::Rng rng_;
  Tracker tracker_;
  SwarmMetrics metrics_;

  std::vector<std::unique_ptr<Peer>> peers_;  // indexed by id; never shrinks
  std::vector<bool> departed_;                // indexed by id
  std::vector<PeerId> live_;                  // arrival order
  std::vector<std::uint32_t> piece_counts_;   // replication degrees

  Round round_ = 0;
  bool instrument_next_ = false;
  /// Structured event trace; null = tracing disabled (the common case).
  obs::TraceRecorder* trace_ = nullptr;

  // Per-round working state.
  std::unordered_map<PeerId, std::uint32_t> seed_budget_;
  std::vector<std::pair<PeerId, PeerId>> round_start_connections_;
  std::unordered_map<PeerId, std::vector<std::uint32_t>> neighborhood_availability_;
  /// Leechers whose potential set was empty last round (tracker bias pool).
  std::vector<PeerId> starving_;
  /// Super-seeding bookkeeping: per seed, how often each piece was served.
  std::unordered_map<PeerId, std::vector<std::uint32_t>> seed_served_;
};

}  // namespace mpbt::bt
