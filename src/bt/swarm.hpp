// The BitTorrent swarm simulator (Section 4.1 of the paper).
//
// Round-synchronous discrete simulation matching the model's semantics:
// one round = one trading step. Each round the swarm
//   1. admits Poisson arrivals (each gets s random neighbors, symmetric),
//   2. bootstraps piece-less peers (seeds or optimistic unchoking),
//   3. recomputes every leecher's potential set (strict mutual interest),
//   4. prunes connections whose partner departed or lost interest,
//   5. establishes new connections up to k per peer,
//   6. exchanges pieces over connections under strict tit-for-tat
//      (a connection with nothing to trade in either direction drops),
//   7. optionally lets seeds serve pieces,
//   8. departs completed leechers (or converts them to lingering seeds),
//   9. applies peer-set shaking (Section 7.1) when enabled,
//  10. records metrics.
//
// Swarm is a thin orchestrator: peer records live in bt::PeerStore and
// the per-phase logic lives in the phase modules (src/bt/phase_*.cpp),
// free functions over a shared RoundContext. See docs/ARCHITECTURE.md
// for the layer map and the determinism contract.
//
// The simulation is fully deterministic for a given SwarmConfig::seed.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "bt/config.hpp"
#include "bt/metrics.hpp"
#include "bt/peer_store.hpp"
#include "bt/round_context.hpp"
#include "bt/tracker.hpp"
#include "numeric/rng.hpp"

namespace mpbt::obs {
class TraceRecorder;
}

namespace mpbt::bt {

class Swarm;

/// Between-phase observation hook, mirroring des::EngineObserver for the
/// round-synchronous simulator: the swarm has no event queue, so the
/// observable unit is the phase boundary instead of the event execution.
/// Observers must be read-only (the Swarm reference is const) and must
/// draw no randomness — results are bit-identical with an observer
/// attached or not; the detached path is one branch on a nullptr.
/// src/check hangs its InvariantSuite off this hook.
class PhaseObserver {
 public:
  virtual ~PhaseObserver() = default;

  /// Called after phase `phase_index` (named `phase`) of a step() has run
  /// and before the next phase starts. `phase` outlives the swarm (it
  /// points at the static phase table).
  virtual void on_phase_end(const Swarm& swarm, std::string_view phase,
                            std::size_t phase_index) = 0;

  /// Called once per step() after the final phase, while swarm.round()
  /// still reports the round just executed.
  virtual void on_round_end(const Swarm& swarm, Round round);
};

class Swarm {
 public:
  explicit Swarm(SwarmConfig config);

  /// Runs one full round.
  void step();

  /// Runs `rounds` rounds.
  void run_rounds(Round rounds);

  /// Number of completed rounds so far.
  Round round() const { return round_; }

  const SwarmConfig& config() const { return config_; }
  const SwarmMetrics& metrics() const { return metrics_; }
  const Tracker& tracker() const { return tracker_; }

  std::size_t num_leechers() const;
  std::size_t num_seeds() const;
  std::size_t population() const { return store_.live().size(); }

  /// Live peer ids in arrival order.
  const std::vector<PeerId>& live_peers() const { return store_.live(); }

  /// True if the peer is still in the swarm.
  bool is_live(PeerId id) const { return store_.is_live(id); }

  /// Read access to a peer that has ever existed (live or departed).
  const Peer& peer(PeerId id) const { return store_.checked(id); }

  /// Current replication degree of each piece over live peers.
  const std::vector<std::uint32_t>& piece_counts() const { return piece_counts_; }

  /// Swarm entropy E = min_j d_j / max_j d_j (Section 6); 0 when some piece
  /// has no replica while another does; 1 for an empty swarm.
  double entropy() const;

  /// Attaches (or detaches, with nullptr) a structured event-trace
  /// recorder. The constructor picks up obs::current_trace()
  /// automatically, so task-scoped tracing (obs::TaskScope) needs no
  /// explicit call. Tracing is observational only: it draws no
  /// randomness, so results are identical with tracing on or off, and
  /// the disabled path is a branch on this nullptr.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }
  obs::TraceRecorder* trace_recorder() const { return trace_; }

  /// Attaches (or detaches, with nullptr) a between-phase observer. Like
  /// tracing, observation is strictly read-only and draws no randomness.
  /// Off by default — benches and production runs pay one nullptr branch
  /// per phase.
  void set_phase_observer(PhaseObserver* observer) { observer_ = observer; }
  PhaseObserver* phase_observer() const { return observer_; }

  /// The static round schedule, for observers that gate work by phase.
  static std::size_t num_phases();
  static std::string_view phase_name(std::size_t phase_index);

  /// Direct read access to the peer store (live list, slots, positions)
  /// for structural introspection by src/check.
  const PeerStore& store() const { return store_; }

  /// Marks the next arriving peer for detailed per-round trace recording.
  void instrument_next_arrival() { instrument_next_ = true; }

  /// Marks an existing live peer for detailed trace recording.
  void instrument_peer(PeerId id);

  /// Injects one peer immediately (between rounds). `piece_probs` follows
  /// InitialGroup semantics; empty means no pieces. Returns the new id.
  PeerId add_peer(const std::vector<double>& piece_probs = {});

  /// Removes one live peer immediately (between rounds): tracker
  /// deregistration, symmetric neighbor repair, replication decrement,
  /// then the live-list sweep. Throws if the peer is not live.
  void remove_peer(PeerId id);

  /// Batch form of remove_peer: one live-list sweep for the whole batch,
  /// so scripted mass departures (takedowns) stay O(live), not
  /// O(batch * live). Ids must be distinct and live.
  void remove_peers(const std::vector<PeerId>& ids);

  /// Pre-sizes the peer store and tracker for `extra` additional peers
  /// beyond those ever created, so arrival bursts (flash crowds) don't
  /// pay reallocation churn inside the round loop. Draw-neutral.
  void reserve_peers(std::size_t extra);

  /// Verifies cross-peer invariants (symmetry, caps, count consistency);
  /// throws util::AssertionError on violation. O(N * (s + B)).
  void check_invariants() const;

 private:
  /// Borrows the swarm's components into a phase-module context.
  RoundContext make_context() {
    return RoundContext{config_, rng_,    tracker_, metrics_,         store_,
                        piece_counts_,    state_,   round_,
                        instrument_next_, trace_};
  }

  SwarmConfig config_;
  numeric::Rng rng_;
  Tracker tracker_;
  SwarmMetrics metrics_;

  PeerStore store_;                          // peer slots + dense live index
  std::vector<std::uint32_t> piece_counts_;  // replication degrees

  Round round_ = 0;
  bool instrument_next_ = false;
  /// Structured event trace; null = tracing disabled (the common case).
  obs::TraceRecorder* trace_ = nullptr;
  /// Between-phase hook; null = no observation (the common case).
  PhaseObserver* observer_ = nullptr;

  /// Cross-phase working state and reusable scratch buffers.
  RoundState state_;
};

}  // namespace mpbt::bt
