// Swarm instrumentation.
//
// SwarmMetrics accumulates everything the paper's figures need:
//  - per-round swarm series (population, entropy, efficiency)
//  - the potential-set-ratio profile vs pieces downloaded (Fig. 1a)
//  - the evolution timeline and per-ordinal time-to-download (Figs. 1b, 3d)
//  - connection-level counters that estimate the model parameters
//    p_r (re-encounter), p_n (new-connection success) and p_init
//  - detailed traces of instrumented clients (Fig. 2)
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bt/types.hpp"
#include "numeric/timeseries.hpp"

namespace mpbt::bt {

/// One per-round sample of an instrumented client's download state.
struct ClientSample {
  Round round = 0;
  std::uint64_t cumulative_bytes = 0;
  std::uint32_t potential_set_size = 0;
  std::uint32_t neighbor_set_size = 0;
  std::uint32_t pieces_held = 0;
  std::uint32_t active_connections = 0;
};

/// Full per-round record of one instrumented client.
struct ClientRecord {
  PeerId peer = kNoPeer;
  Round joined = 0;
  bool completed = false;
  Round completed_round = 0;
  std::vector<ClientSample> samples;
};

class SwarmMetrics {
 public:
  /// `num_pieces` sizes the per-ordinal profiles.
  explicit SwarmMetrics(std::uint32_t num_pieces);

  // --- per-round series -------------------------------------------------
  void record_round(Round round, std::size_t leechers, std::size_t seeds, double entropy,
                    double efficiency_trading, double efficiency_all,
                    double efficiency_transfer);

  const numeric::TimeSeries& population() const { return population_; }
  const numeric::TimeSeries& seeds() const { return seeds_; }
  const numeric::TimeSeries& entropy() const { return entropy_; }
  /// Mean n/k over leechers holding >= 1 piece (the model's η scope).
  const numeric::TimeSeries& efficiency_trading() const { return efficiency_trading_; }
  /// Mean n/k over all leechers including bootstrap-phase peers.
  const numeric::TimeSeries& efficiency_all() const { return efficiency_all_; }

  /// Upload-bandwidth utilization (the paper's efficiency definition):
  /// mean over trading leechers of pieces-transferred-this-round / k.
  const numeric::TimeSeries& efficiency_transfer() const { return efficiency_transfer_; }

  /// Mean of the trading-efficiency series restricted to rounds >= warmup.
  double mean_efficiency(Round warmup) const;

  /// Mean of the transfer-utilization series restricted to rounds >= warmup.
  double mean_transfer_efficiency(Round warmup) const;
  /// Mean of the entropy series restricted to rounds >= warmup.
  double mean_entropy(Round warmup) const;

  // --- potential-set profile (Fig. 1a) -----------------------------------
  /// Accumulates one observation of (pieces held b, potential i, ns size).
  void record_potential_observation(std::uint32_t pieces_held, std::uint32_t potential,
                                    std::uint32_t neighbor_set);

  /// Average potential/neighbor-set ratio for peers holding `b` pieces;
  /// returns -1 when never observed.
  double potential_ratio(std::uint32_t b) const;
  /// Average absolute potential-set size at `b` pieces; -1 when unobserved.
  double potential_size(std::uint32_t b) const;

  // --- acquisition profiles (Figs. 1b, 3d) -------------------------------
  /// Records that some peer acquired its `ordinal`-th piece (1-based)
  /// `rounds_since_join` after joining, `rounds_since_prev` after its
  /// previous piece.
  void record_acquisition(std::uint32_t ordinal, double rounds_since_join,
                          double rounds_since_prev);

  /// Average rounds-from-join at which the `ordinal`-th piece is acquired;
  /// -1 when unobserved.
  double timeline(std::uint32_t ordinal) const;
  /// Average time-to-download of the `ordinal`-th piece; -1 when unobserved.
  double ttd(std::uint32_t ordinal) const;
  std::uint64_t acquisition_count(std::uint32_t ordinal) const;

  // --- completions --------------------------------------------------------
  void record_completion(double download_rounds, std::uint32_t bandwidth_class = 0);
  std::size_t completed_count() const { return download_times_.size(); }
  const std::vector<double>& download_times() const { return download_times_; }
  /// Download times of peers in one bandwidth class (empty if none).
  const std::vector<double>& download_times_for_class(std::uint32_t bandwidth_class) const;

  // --- connection counters (model calibration) ---------------------------
  void record_connection_survival(std::uint64_t alive_before, std::uint64_t survived);
  void record_connection_attempts(std::uint64_t attempts, std::uint64_t successes);
  void record_bootstrap_exit(std::uint32_t initial_potential, std::uint32_t neighbor_set);
  void record_failed_encounter(std::uint64_t count = 1);

  /// Empirical re-encounter probability p_r (connection survives a round).
  /// Returns fallback when no connections were ever observed.
  double estimated_p_r(double fallback = 0.5) const;
  /// Empirical new-connection success probability p_n.
  double estimated_p_n(double fallback = 0.5) const;
  /// Empirical p_init: mean potential/neighbor ratio right after the first
  /// piece is acquired.
  double estimated_p_init(double fallback = 0.5) const;
  std::uint64_t failed_encounters() const { return failed_encounters_; }

  // --- arrivals dropped by the population cap ----------------------------
  void record_dropped_arrival() { ++dropped_arrivals_; }
  std::uint64_t dropped_arrivals() const { return dropped_arrivals_; }

  // --- aborted downloads (the fluid models' theta) ------------------------
  void record_abort() { ++aborts_; }
  std::uint64_t aborts() const { return aborts_; }

  // --- phase occupancy (Section 3.2 validation) ---------------------------
  /// Counts one leecher-round spent in each phase; the classification rule
  /// mirrors model::classify_phase on (n, b, i).
  void record_phase_round(std::uint32_t n, std::uint32_t b, std::uint32_t i,
                          std::uint32_t num_pieces);
  std::uint64_t bootstrap_rounds() const { return bootstrap_rounds_; }
  std::uint64_t efficient_rounds() const { return efficient_rounds_; }
  std::uint64_t last_phase_rounds() const { return last_phase_rounds_; }
  /// Fraction of observed leecher-rounds in each phase (0 when none).
  double bootstrap_fraction() const;
  double efficient_fraction() const;
  double last_phase_fraction() const;

  // --- instrumented clients ----------------------------------------------
  ClientRecord& client_record(PeerId peer, Round joined);
  const std::map<PeerId, ClientRecord>& client_records() const { return client_records_; }

 private:
  std::uint32_t num_pieces_;

  numeric::TimeSeries population_;
  numeric::TimeSeries seeds_;
  numeric::TimeSeries entropy_;
  numeric::TimeSeries efficiency_trading_;
  numeric::TimeSeries efficiency_all_;
  numeric::TimeSeries efficiency_transfer_;

  std::vector<double> potential_ratio_sum_;
  std::vector<double> potential_size_sum_;
  std::vector<std::uint64_t> potential_count_;

  std::vector<double> timeline_sum_;
  std::vector<double> ttd_sum_;
  std::vector<std::uint64_t> acquisition_count_;

  std::vector<double> download_times_;
  std::map<std::uint32_t, std::vector<double>> download_times_by_class_;

  std::uint64_t conn_alive_before_ = 0;
  std::uint64_t conn_survived_ = 0;
  std::uint64_t conn_attempts_ = 0;
  std::uint64_t conn_successes_ = 0;
  double bootstrap_ratio_sum_ = 0.0;
  std::uint64_t bootstrap_exits_ = 0;
  std::uint64_t failed_encounters_ = 0;
  std::uint64_t dropped_arrivals_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t bootstrap_rounds_ = 0;
  std::uint64_t efficient_rounds_ = 0;
  std::uint64_t last_phase_rounds_ = 0;

  std::map<PeerId, ClientRecord> client_records_;
};

}  // namespace mpbt::bt
