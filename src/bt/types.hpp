// Shared identifiers and small value types for the BitTorrent simulator.
#pragma once

#include <cstdint>

namespace mpbt::bt {

/// Dense peer identifier assigned by the swarm at arrival, never reused.
using PeerId = std::uint32_t;

/// Index of a piece within the file, in [0, num_pieces).
using PieceIndex = std::uint32_t;

/// Simulation round counter (one round = one trading step of the model).
using Round = std::uint32_t;

/// Sentinel "no peer".
inline constexpr PeerId kNoPeer = UINT32_MAX;

/// Default piece size used for byte accounting in traces (256 KiB, the
/// usual BitTorrent piece size mentioned in Section 2.1 of the paper).
inline constexpr std::uint64_t kDefaultPieceBytes = 256ULL * 1024ULL;

/// Default block size (16 KiB); blocks are the transmission unit but a
/// piece must be complete before it can be served (Section 2.1).
inline constexpr std::uint64_t kDefaultBlockBytes = 16ULL * 1024ULL;

}  // namespace mpbt::bt
