// Shared state the round phases operate on.
//
// RoundContext is a borrow of the Swarm's components, rebuilt at the
// start of every round (and for out-of-round peer injection); the phase
// modules (phase_*.cpp) are free functions over it, so the orchestrator
// in swarm.cpp stays thin and each phase can be read — and tested —
// in isolation.
//
// RoundState is the cross-phase working state plus the reusable scratch
// buffers that keep the hot loop allocation-free. Determinism contract
// (see docs/ARCHITECTURE.md): any change here must preserve the RNG
// draw order. In particular `seed_budget` is iterated in unordered_map
// hash order by the seed-service phase, so both its container type and
// its insertion pattern (persistent map, clear()ed then refilled in
// live/arrival order each round) are load-bearing for bit-identical
// replay of recorded baselines.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bt/config.hpp"
#include "bt/metrics.hpp"
#include "bt/peer_store.hpp"
#include "bt/tracker.hpp"
#include "bt/types.hpp"
#include "numeric/rng.hpp"

namespace mpbt::obs {
class TraceRecorder;
}

namespace mpbt::bt {

struct RoundState {
  /// Per-round seed upload budgets, refilled by the bootstrap phase in
  /// live order and drained by bootstrap + seed service. Iterated in
  /// hash order by phase_seed_service — keep the container type and the
  /// persistent-clear()-refill lifecycle (see header comment).
  std::unordered_map<PeerId, std::uint32_t> seed_budget;
  /// Connections alive at round start, for the p_r survival estimate.
  std::vector<std::pair<PeerId, PeerId>> round_start_connections;
  /// Leechers whose potential set was empty last round (tracker bias pool).
  std::vector<PeerId> starving;
  /// Super-seeding bookkeeping: per seed, how often each piece was served.
  std::unordered_map<PeerId, std::vector<std::uint32_t>> seed_served;

  // Neighbor-set availability cache, epoch-stamped per peer id: bumping
  // `avail_epoch` invalidates every entry in O(1) (the old code cleared
  // a map of vectors). Values are recomputed lazily on first use.
  std::uint64_t avail_epoch = 1;
  std::vector<std::uint64_t> avail_stamp;
  std::vector<std::vector<std::uint32_t>> avail_counts;
  void invalidate_availability() { ++avail_epoch; }

  // Epoch-stamped per-id marker for O(1) membership tests on transient
  // id lists (e.g. tracker-sample dedup), replacing linear std::find.
  std::uint64_t mark_epoch = 0;
  std::vector<std::uint64_t> id_mark;
  void begin_marks(std::size_t ids) {
    ++mark_epoch;
    if (id_mark.size() < ids) {
      id_mark.resize(ids, 0);
    }
  }
  bool marked(PeerId id) const { return id_mark[id] == mark_epoch; }
  void mark(PeerId id) { id_mark[id] = mark_epoch; }

  // Reusable scratch buffers (cleared before use, never shrunk).
  std::vector<PeerId> scratch_leechers;  // shuffled_live_leechers output
  std::vector<PeerId> scratch_ids;       // per-peer candidate/holder/taker lists
  std::vector<PieceIndex> scratch_pieces;  // in-flight piece candidates
  std::vector<std::pair<PeerId, PeerId>> scratch_pairs;  // exchange pairs
};

struct RoundContext {
  const SwarmConfig& config;
  numeric::Rng& rng;
  Tracker& tracker;
  SwarmMetrics& metrics;
  PeerStore& store;
  std::vector<std::uint32_t>& piece_counts;
  RoundState& state;
  Round round;
  bool& instrument_next;
  obs::TraceRecorder* trace;
};

// --- core cross-phase operations ------------------------------------------

/// Live leecher ids in random order (one shuffle draw sequence). Returns
/// a reference to ctx.state.scratch_leechers; valid until the next call.
const std::vector<PeerId>& shuffled_live_leechers(RoundContext& ctx);

/// Establishes / tears down a symmetric connection (with trace events).
void connect_peers(RoundContext& ctx, Peer& a, Peer& b);
void disconnect_peers(RoundContext& ctx, Peer& a, Peer& b);

/// Grants `p` a piece: updates bitfield, replication counts, byte and
/// acquisition accounting, and cancels a stale in-flight download of it.
void acquire_piece(RoundContext& ctx, Peer& p, PieceIndex piece, bool add_bytes = true);

/// Availability counts for rarest-first, per the configured scope.
const std::vector<std::uint32_t>& availability_for(RoundContext& ctx, const Peer& p);

}  // namespace mpbt::bt
