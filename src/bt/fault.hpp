// Test-only fault injection for the swarm phase modules.
//
// The invariant & fuzz harness (src/check) needs a way to prove it can
// catch real state corruption: each Fault makes exactly one phase module
// skip exactly one piece of bookkeeping (symmetry repair on departure,
// a replication-count decrement, a connection-cap check, ...), so a
// deliberately seeded bug is caught by a specific invariant, shrunk to a
// minimal case and replayed. Production code never arms a fault: the
// active fault is a thread-local that defaults to kNone, every phase
// module hoists `fault::enabled(...)` into a local bool at function
// entry (one thread-local read per phase, nothing per iteration), and
// faults draw no randomness — arming one never perturbs the RNG stream,
// so a faulty run stays deterministic and therefore shrinkable.
#pragma once

#include <string_view>
#include <vector>

namespace mpbt::bt::fault {

enum class Fault : unsigned char {
  kNone = 0,
  /// phase_membership: depart() leaves the departed peer's id in its
  /// partners' neighbor/connection sets (no symmetry repair).
  kSkipDepartureRepair,
  /// phase_membership: depart() keeps the departed peer's pieces in the
  /// replication-degree counters.
  kSkipPieceCountDecrement,
  /// phase_neighbors: fetch_neighbors() inserts the neighbor link on the
  /// fetching side only.
  kAsymmetricNeighborInsert,
  /// phase_connections: establish ignores the fetching peer's own
  /// connection cap, pushing it past k.
  kOverfillConnections,
  /// phase_transfer: ensure_inflight() may target a piece already in
  /// flight from another partner (duplicate in-flight download).
  kDuplicateInflightPiece,
  /// phase_shaking: a shaken peer clears its own sets but stays in its
  /// old partners' neighbor/connection sets.
  kSkipShakeCleanup,
  /// phase_observe: run_record_metrics() records nothing this round.
  kSkipRoundRecord,
  /// eco::Ecosystem: harvest leaves a session whose active peer departed
  /// without the file marked Active forever (session leak).
  kEcoLeakDepartedSession,
  /// eco::Ecosystem: harvest registers the finished peer as a lingering
  /// seed but never records the torrent on the session's completed list.
  kEcoSkipCompletionRecord,
  /// eco::Ecosystem: a takedown removes peers from the swarm but skips
  /// the ecosystem's per-torrent population ledger decrement.
  kEcoSkipTakedownLedger,
};

namespace detail {
inline thread_local Fault active = Fault::kNone;
}

/// The fault armed on this thread (kNone in production).
inline Fault current() { return detail::active; }

/// True when `f` is armed on this thread. Phase modules hoist this into
/// a local bool at function entry.
inline bool enabled(Fault f) { return detail::active == f; }

/// RAII arming of one fault on the current thread; restores the previous
/// fault on destruction. Scopes nest.
class ScopedFault {
 public:
  explicit ScopedFault(Fault f) : prev_(detail::active) { detail::active = f; }
  ~ScopedFault() { detail::active = prev_; }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Fault prev_;
};

/// Stable kebab-case name ("none", "skip-departure-repair", ...), as used
/// in fuzz case specs and mpbt_fuzz --inject-fault.
std::string_view fault_name(Fault f);

/// Inverse of fault_name; throws std::invalid_argument on unknown names.
Fault fault_from_name(std::string_view name);

/// Every fault in declaration order (including kNone).
const std::vector<Fault>& all_faults();

}  // namespace mpbt::bt::fault
