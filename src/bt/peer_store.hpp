// Contiguous slot-based peer storage with a dense live-index.
//
// Slots are indexed by PeerId (ids are assigned densely and never
// reused), so id -> record lookup is a direct vector index. `live()` is
// the live ids in arrival order — the canonical iteration order every
// round phase uses, which keeps simulation runs bit-reproducible — and
// `live_pos_` maps id -> position in that list (kNoPos once departed),
// giving O(1) liveness checks and an O(live) allocation-free sweep
// instead of the old erase(remove_if) + vector<bool> probing.
#pragma once

#include <cstdint>
#include <vector>

#include "bt/peer.hpp"
#include "bt/types.hpp"

namespace mpbt::bt {

class PeerStore {
 public:
  /// Creates a new live peer with the next dense id; returns the id.
  /// May reallocate the slot array: do not hold Peer references across
  /// calls.
  PeerId create(std::size_t num_pieces, Round joined);

  /// Number of peers ever created (live + departed).
  std::size_t size() const { return slots_.size(); }

  /// True if the id was ever assigned (the record persists after
  /// departure for post-hoc inspection).
  bool exists(PeerId id) const { return id < slots_.size(); }

  /// True if the peer is still in the swarm. O(1).
  bool is_live(PeerId id) const { return id < live_pos_.size() && live_pos_[id] != kNoPos; }

  /// Unchecked slot access; id must satisfy exists().
  Peer& get(PeerId id) { return slots_[id]; }
  const Peer& get(PeerId id) const { return slots_[id]; }

  /// Checked access; throws util::OutOfRangeError on unknown ids.
  Peer& checked(PeerId id) {
    check_exists(id);
    return slots_[id];
  }
  const Peer& checked(PeerId id) const {
    check_exists(id);
    return slots_[id];
  }

  /// Live peer ids in arrival order.
  const std::vector<PeerId>& live() const { return live_; }

  /// Marks a live peer departed: liveness flips immediately, but the id
  /// stays in the live list (as a hole) until sweep_departed().
  void mark_departed(PeerId id);

  /// Compacts the live list in place, preserving arrival order.
  void sweep_departed();

  /// Pre-sizes the slot array, live list, and position index for
  /// `capacity` total peers, so arrival bursts (flash crowds) don't pay
  /// reallocation churn inside the round loop. No-op when already at
  /// least that large.
  void reserve(std::size_t capacity);

  /// Sentinel returned by live_position() for departed / unknown peers.
  static constexpr std::uint32_t kNoPosition = UINT32_MAX;

  /// Index of `id` in live(), or kNoPosition when the peer is departed
  /// (or the id was never assigned). Introspection for the invariant
  /// suite: the dense index and the live list must agree at every phase
  /// boundary.
  std::uint32_t live_position(PeerId id) const {
    return id < live_pos_.size() ? live_pos_[id] : kNoPosition;
  }

 private:
  static constexpr std::uint32_t kNoPos = kNoPosition;

  void check_exists(PeerId id) const;

  std::vector<Peer> slots_;            // indexed by id; never shrinks
  std::vector<PeerId> live_;           // arrival order, holes until sweep
  std::vector<std::uint32_t> live_pos_;  // id -> index in live_, kNoPos if departed
};

}  // namespace mpbt::bt
