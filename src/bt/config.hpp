// Swarm simulator configuration.
//
// Field names follow the paper's notation: B = num_pieces, k =
// max_connections, s = peer_set_size. All experiments in the benches are
// expressed as variations of this struct.
#pragma once

#include <cstdint>
#include <vector>

#include "bt/types.hpp"

namespace mpbt::bt {

enum class PieceSelection {
  /// Rarest piece first among the peer's neighbor set (BitTorrent default).
  RarestFirst,
  /// Uniformly random among mutually interesting pieces.
  Random,
  /// Random piece for the first piece, rarest-first afterwards — the
  /// combination described in Section 2.1.
  RandomFirstThenRarest,
};

/// Where rarest-first availability counts come from. The paper defines
/// rarity over the neighbor set; Global (replication degrees over the whole
/// swarm) is an O(1)-maintenance approximation that preserves the dynamics
/// and is the default for large swarms. NeighborSet computes exact
/// per-neighborhood counts (slower; used by tests and small studies).
enum class AvailabilityScope { Global, NeighborSet };

/// Peer-selection (choking) algorithm — Section 2.1: "the peer selection
/// strategy is implemented by the choking algorithm that prefers peers
/// with the highest upload rates".
enum class ChokeAlgorithm {
  /// Random matching within the potential set (the model's abstraction;
  /// the default used by the paper's validation experiments).
  RandomMatching,
  /// Rate-based tit-for-tat: each peer unchokes the neighbors that have
  /// uploaded to it fastest (exponentially smoothed), reserving one slot
  /// for a rotating optimistic unchoke; a connection forms when two peers
  /// unchoke each other.
  RateBased,
};

/// How the tracker composes the peer set it hands to a joining peer.
/// Section 4.3 discusses both alternatives to the uniform default:
/// biasing arrivals toward bootstrap-trapped peers, and clustering peers
/// by download status (the suggestion of ref. [8]).
enum class TrackerPolicy {
  /// Uniform random sample of the registry (BitTorrent's behavior).
  UniformRandom,
  /// Half of the returned peers are drawn from those currently starving
  /// (empty potential set), giving trapped peers fresh contacts.
  BootstrapBias,
  /// Prefer peers whose piece count is closest to the joiner's.
  StatusClustered,
};

/// Peer-set shaking (Section 7.1): at `completion_fraction` of the file a
/// peer drops its whole neighbor set and asks the tracker for a fresh
/// random one.
struct ShakeConfig {
  bool enabled = false;
  double completion_fraction = 0.9;
};

/// A group of peers present at round 0. Peer `holds piece j` independently
/// with probability piece_probs[j]; peers that come out complete have one
/// random held piece removed so they stay leechers. An empty piece_probs
/// means "no pieces" (fresh peers).
struct InitialGroup {
  std::uint32_t count = 0;
  std::vector<double> piece_probs;
};

struct SwarmConfig {
  /// B — number of pieces in the file.
  std::uint32_t num_pieces = 200;
  /// k — maximum simultaneous active (trading) connections per peer.
  std::uint32_t max_connections = 7;
  /// s — target neighbor-set size requested from the tracker.
  std::uint32_t peer_set_size = 40;

  /// Poisson arrival rate: expected new peers per round.
  double arrival_rate = 2.0;

  /// Per-round probability that a leecher aborts and leaves without
  /// finishing (the fluid models' theta). 0 (default) matches the paper's
  /// model, where peers leave only on completion.
  double abort_rate = 0.0;

  /// How seeds pick the pieces they upload (Section 7.2 discusses
  /// super-seeding as an advanced technique).
  enum class SeedMode {
    /// Serve whatever the taker needs (rarest-first like any uploader).
    Classic,
    /// Super-seeding: a seed spreads its upload budget across DISTINCT
    /// pieces, always serving its least-served piece the taker lacks —
    /// maximizing the number of unique pieces injected into the swarm.
    SuperSeed,
  };

  /// Number of always-on seeds present from round 0. Seeds never leave.
  std::uint32_t initial_seeds = 1;

  SeedMode seed_mode = SeedMode::Classic;
  /// Pieces each seed may upload per round (to bootstrap or serve peers).
  std::uint32_t seed_capacity = 4;
  /// When false, seeds only serve peers with zero pieces (bootstrap only)
  /// — matching the paper's trace setup where the instrumented client did
  /// not interact with seeds after bootstrap.
  bool seeds_serve_all = false;

  /// Probability per round that a piece-less peer receives its first piece
  /// via optimistic unchoking from a piece-holding neighbor.
  double optimistic_unchoke_prob = 0.5;

  /// Probability that an attempted new connection between two mutually
  /// interested peers with open slots actually establishes this round
  /// (models handshake/choking latency; the model's p_n).
  double connect_success_prob = 0.9;

  /// When true (default), a freshly established connection only starts
  /// exchanging pieces the NEXT round (handshake + unchoke latency). This
  /// is what makes k = 1 visibly less efficient than k >= 2: a dropped
  /// sole connection wastes a full round, while peers with several
  /// connections mask the gap (Section 5's explanation).
  bool handshake_delay = true;

  PieceSelection piece_selection = PieceSelection::RandomFirstThenRarest;

  AvailabilityScope availability_scope = AvailabilityScope::Global;

  TrackerPolicy tracker_policy = TrackerPolicy::UniformRandom;

  ChokeAlgorithm choke_algorithm = ChokeAlgorithm::RandomMatching;

  /// RateBased only: rounds between optimistic-unchoke rotations
  /// (BitTorrent rotates every third 10-second period).
  Round optimistic_interval = 3;

  /// RateBased only: exponential smoothing factor for per-neighbor
  /// received-rate estimates (rate = decay * rate + received this round).
  double rate_decay = 0.5;

  ShakeConfig shake;

  /// Peers present at round 0 in addition to arrivals.
  std::vector<InitialGroup> initial_groups;

  /// Piece-holding probabilities for NEW arrivals (the paper's `w`: the
  /// probability that a newly arriving peer has a piece to exchange enters
  /// alpha = lambda * w * s / N). Empty (default) = arrivals hold nothing.
  /// Instrumented clients always arrive empty regardless.
  std::vector<double> arrival_piece_probs;

  /// Heterogeneous upload bandwidth (the homogeneity assumption of
  /// Section 3 relaxed, cf. the multiclass analysis of ref. [11]). Each
  /// peer is assigned a class at arrival with probability proportional to
  /// `fraction`; its uploads per round are capped at `upload_per_round`.
  /// Under strict tit-for-tat an upload cap throttles downloads equally.
  /// Empty (default) = unconstrained uploads (homogeneous model).
  struct BandwidthClass {
    double fraction = 1.0;
    std::uint32_t upload_per_round = 1;
  };
  std::vector<BandwidthClass> bandwidth_classes;

  /// When a leecher completes the file it departs immediately (the model's
  /// assumption). If > 0, it lingers as a seed for this many rounds.
  std::uint32_t seed_linger_rounds = 0;

  /// Byte size of one piece, for cumulative-byte trace accounting.
  std::uint64_t piece_bytes = kDefaultPieceBytes;

  /// Blocks per piece (Section 2.1: pieces of ~256 KB are transferred as
  /// 16 KB blocks, and a piece can only be served once complete and hash-
  /// verified). 1 (default) = piece-granular rounds, the model's
  /// semantics; 16 = the realistic block ratio. With m > 1 each active
  /// connection moves one block per round per direction, and a piece
  /// joins the bitfield only when all m blocks have arrived. Partial
  /// pieces are discarded when their connection drops.
  std::uint32_t blocks_per_piece = 1;

  /// Tracker re-announce: every this many rounds, leechers holding fewer
  /// than s neighbors ask the tracker for more (real clients re-announce
  /// periodically). 0 (default) disables it — the paper's model has no
  /// such refresh beyond the alpha/gamma arrival flow.
  Round reannounce_interval = 0;

  /// Stop admitting new arrivals after this round (0 = never stop);
  /// lets flash-crowd style workloads drain.
  Round arrival_cutoff_round = 0;

  /// Hard cap on live peers, a safety valve for unstable configurations;
  /// arrivals beyond the cap are dropped and counted. 0 = unlimited.
  std::uint32_t max_population = 0;

  /// RNG seed for the whole run.
  std::uint64_t seed = 42;

  /// Validates parameter ranges; throws std::invalid_argument.
  void validate() const;
};

}  // namespace mpbt::bt
