#include "bt/metrics.hpp"

#include "util/assert.hpp"

namespace mpbt::bt {

SwarmMetrics::SwarmMetrics(std::uint32_t num_pieces) : num_pieces_(num_pieces) {
  util::throw_if_invalid(num_pieces == 0, "SwarmMetrics requires num_pieces >= 1");
  const std::size_t n = static_cast<std::size_t>(num_pieces) + 1;
  potential_ratio_sum_.assign(n, 0.0);
  potential_size_sum_.assign(n, 0.0);
  potential_count_.assign(n, 0);
  timeline_sum_.assign(n, 0.0);
  ttd_sum_.assign(n, 0.0);
  acquisition_count_.assign(n, 0);
}

void SwarmMetrics::record_round(Round round, std::size_t leechers, std::size_t seeds,
                                double entropy, double efficiency_trading,
                                double efficiency_all, double efficiency_transfer) {
  const auto t = static_cast<double>(round);
  population_.add(t, static_cast<double>(leechers));
  seeds_.add(t, static_cast<double>(seeds));
  entropy_.add(t, entropy);
  efficiency_trading_.add(t, efficiency_trading);
  efficiency_all_.add(t, efficiency_all);
  efficiency_transfer_.add(t, efficiency_transfer);
}

namespace {
double mean_from(const numeric::TimeSeries& series, Round warmup) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : series.samples()) {
    if (s.time >= static_cast<double>(warmup)) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

double SwarmMetrics::mean_efficiency(Round warmup) const {
  return mean_from(efficiency_trading_, warmup);
}

double SwarmMetrics::mean_entropy(Round warmup) const { return mean_from(entropy_, warmup); }

double SwarmMetrics::mean_transfer_efficiency(Round warmup) const {
  return mean_from(efficiency_transfer_, warmup);
}

void SwarmMetrics::record_potential_observation(std::uint32_t pieces_held,
                                                std::uint32_t potential,
                                                std::uint32_t neighbor_set) {
  util::throw_if_invalid(pieces_held > num_pieces_,
                         "record_potential_observation: pieces_held out of range");
  potential_size_sum_[pieces_held] += static_cast<double>(potential);
  if (neighbor_set > 0) {
    potential_ratio_sum_[pieces_held] +=
        static_cast<double>(potential) / static_cast<double>(neighbor_set);
  }
  ++potential_count_[pieces_held];
}

double SwarmMetrics::potential_ratio(std::uint32_t b) const {
  util::throw_if_out_of_range(b > num_pieces_, "potential_ratio: b out of range");
  if (potential_count_[b] == 0) {
    return -1.0;
  }
  return potential_ratio_sum_[b] / static_cast<double>(potential_count_[b]);
}

double SwarmMetrics::potential_size(std::uint32_t b) const {
  util::throw_if_out_of_range(b > num_pieces_, "potential_size: b out of range");
  if (potential_count_[b] == 0) {
    return -1.0;
  }
  return potential_size_sum_[b] / static_cast<double>(potential_count_[b]);
}

void SwarmMetrics::record_acquisition(std::uint32_t ordinal, double rounds_since_join,
                                      double rounds_since_prev) {
  util::throw_if_invalid(ordinal == 0 || ordinal > num_pieces_,
                         "record_acquisition: ordinal must be in [1, num_pieces]");
  timeline_sum_[ordinal] += rounds_since_join;
  ttd_sum_[ordinal] += rounds_since_prev;
  ++acquisition_count_[ordinal];
}

double SwarmMetrics::timeline(std::uint32_t ordinal) const {
  util::throw_if_out_of_range(ordinal > num_pieces_, "timeline: ordinal out of range");
  if (ordinal == 0) {
    return 0.0;
  }
  if (acquisition_count_[ordinal] == 0) {
    return -1.0;
  }
  return timeline_sum_[ordinal] / static_cast<double>(acquisition_count_[ordinal]);
}

double SwarmMetrics::ttd(std::uint32_t ordinal) const {
  util::throw_if_out_of_range(ordinal > num_pieces_, "ttd: ordinal out of range");
  if (ordinal == 0 || acquisition_count_[ordinal] == 0) {
    return -1.0;
  }
  return ttd_sum_[ordinal] / static_cast<double>(acquisition_count_[ordinal]);
}

std::uint64_t SwarmMetrics::acquisition_count(std::uint32_t ordinal) const {
  util::throw_if_out_of_range(ordinal > num_pieces_, "acquisition_count: out of range");
  return acquisition_count_[ordinal];
}

void SwarmMetrics::record_completion(double download_rounds, std::uint32_t bandwidth_class) {
  download_times_.push_back(download_rounds);
  download_times_by_class_[bandwidth_class].push_back(download_rounds);
}

const std::vector<double>& SwarmMetrics::download_times_for_class(
    std::uint32_t bandwidth_class) const {
  static const std::vector<double> kEmpty;
  const auto it = download_times_by_class_.find(bandwidth_class);
  return it == download_times_by_class_.end() ? kEmpty : it->second;
}

void SwarmMetrics::record_connection_survival(std::uint64_t alive_before,
                                              std::uint64_t survived) {
  MPBT_ASSERT(survived <= alive_before);
  conn_alive_before_ += alive_before;
  conn_survived_ += survived;
}

void SwarmMetrics::record_connection_attempts(std::uint64_t attempts, std::uint64_t successes) {
  MPBT_ASSERT(successes <= attempts);
  conn_attempts_ += attempts;
  conn_successes_ += successes;
}

void SwarmMetrics::record_bootstrap_exit(std::uint32_t initial_potential,
                                         std::uint32_t neighbor_set) {
  if (neighbor_set > 0) {
    bootstrap_ratio_sum_ +=
        static_cast<double>(initial_potential) / static_cast<double>(neighbor_set);
    ++bootstrap_exits_;
  }
}

void SwarmMetrics::record_failed_encounter(std::uint64_t count) { failed_encounters_ += count; }

double SwarmMetrics::estimated_p_r(double fallback) const {
  if (conn_alive_before_ == 0) {
    return fallback;
  }
  return static_cast<double>(conn_survived_) / static_cast<double>(conn_alive_before_);
}

double SwarmMetrics::estimated_p_n(double fallback) const {
  if (conn_attempts_ == 0) {
    return fallback;
  }
  return static_cast<double>(conn_successes_) / static_cast<double>(conn_attempts_);
}

double SwarmMetrics::estimated_p_init(double fallback) const {
  if (bootstrap_exits_ == 0) {
    return fallback;
  }
  return bootstrap_ratio_sum_ / static_cast<double>(bootstrap_exits_);
}

void SwarmMetrics::record_phase_round(std::uint32_t n, std::uint32_t b, std::uint32_t i,
                                      std::uint32_t num_pieces) {
  // Mirror of model::classify_phase (kept local so bt does not depend on
  // the model library).
  if (b >= num_pieces) {
    return;  // done peers are not counted
  }
  if (b == 0 || (b + n <= 1 && i == 0)) {
    ++bootstrap_rounds_;
  } else if (i == 0 && n == 0) {
    ++last_phase_rounds_;
  } else {
    ++efficient_rounds_;
  }
}

namespace {
double fraction_of(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(part) / static_cast<double>(total);
}
}  // namespace

double SwarmMetrics::bootstrap_fraction() const {
  return fraction_of(bootstrap_rounds_,
                     bootstrap_rounds_ + efficient_rounds_ + last_phase_rounds_);
}

double SwarmMetrics::efficient_fraction() const {
  return fraction_of(efficient_rounds_,
                     bootstrap_rounds_ + efficient_rounds_ + last_phase_rounds_);
}

double SwarmMetrics::last_phase_fraction() const {
  return fraction_of(last_phase_rounds_,
                     bootstrap_rounds_ + efficient_rounds_ + last_phase_rounds_);
}

ClientRecord& SwarmMetrics::client_record(PeerId peer, Round joined) {
  auto [it, inserted] = client_records_.try_emplace(peer);
  if (inserted) {
    it->second.peer = peer;
    it->second.joined = joined;
  }
  return it->second;
}

}  // namespace mpbt::bt
