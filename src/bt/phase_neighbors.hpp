// Neighbors phase: tracker peer-set fetch (initial wiring and
// re-announce) and potential-set maintenance (steps 3 of the round plus
// the tracker interactions of steps 1 and 9).
#pragma once

#include "bt/round_context.hpp"

namespace mpbt::bt {

/// Tops the peer's neighbor set up to peer_set_size via the configured
/// tracker policy; inserted edges are symmetric (the paper's NS).
void fetch_neighbors(RoundContext& ctx, PeerId id);

/// Tracker re-announce: under-connected leechers top their peer set up
/// every reannounce_interval rounds.
void run_reannounce(RoundContext& ctx);

/// Step 3: recompute every leecher's potential set (strict mutual
/// interest, sorted by peer id) and collect the starving pool.
void run_rebuild_potential_sets(RoundContext& ctx);

}  // namespace mpbt::bt
