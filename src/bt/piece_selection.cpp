#include "bt/piece_selection.hpp"

#include <limits>

#include "util/assert.hpp"

namespace mpbt::bt {

std::optional<PieceIndex> select_random(const Bitfield& downloader, const Bitfield& uploader,
                                        numeric::Rng& rng) {
  // Allocation-free: count the candidate set, draw one index uniformly
  // (the same single draw the old candidate-vector version made), then
  // locate that candidate by rank.
  const std::size_t n = uploader.count_missing_from(downloader);
  if (n == 0) {
    return std::nullopt;
  }
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  return uploader.nth_missing_from(downloader, idx);
}

std::optional<PieceIndex> select_rarest_first(const Bitfield& downloader,
                                              const Bitfield& uploader,
                                              const std::vector<std::uint32_t>& availability,
                                              numeric::Rng& rng) {
  if (!uploader.has_piece_missing_from(downloader)) {
    return std::nullopt;
  }
  if (availability.empty()) {
    return select_random(downloader, uploader, rng);
  }
  util::throw_if_invalid(availability.size() != downloader.size(),
                         "select_rarest_first: availability size must equal num_pieces");
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  // Reservoir-style uniform tie-breaking among equally rare pieces; the
  // visitor walks candidates in the same ascending order the old
  // candidate vector did, so the RNG draw sequence is unchanged.
  PieceIndex chosen = 0;
  std::size_t ties = 0;
  uploader.for_each_missing_from(downloader, [&](PieceIndex p) {
    const std::uint32_t avail = availability[p];
    if (avail < best) {
      best = avail;
      chosen = p;
      ties = 1;
    } else if (avail == best) {
      ++ties;
      if (rng.uniform_int(0, static_cast<std::int64_t>(ties) - 1) == 0) {
        chosen = p;
      }
    }
  });
  return chosen;
}

std::optional<PieceIndex> select_piece(PieceSelection strategy, const Bitfield& downloader,
                                       const Bitfield& uploader,
                                       const std::vector<std::uint32_t>& availability,
                                       numeric::Rng& rng) {
  switch (strategy) {
    case PieceSelection::Random:
      return select_random(downloader, uploader, rng);
    case PieceSelection::RarestFirst:
      return select_rarest_first(downloader, uploader, availability, rng);
    case PieceSelection::RandomFirstThenRarest:
      if (downloader.none()) {
        return select_random(downloader, uploader, rng);
      }
      return select_rarest_first(downloader, uploader, availability, rng);
  }
  MPBT_ASSERT_MSG(false, "unknown piece selection strategy");
  return std::nullopt;
}

}  // namespace mpbt::bt
