// Piece-selection strategies (Section 2.1 of the paper).
//
// Given the downloader's bitfield, the uploader's bitfield, and piece
// availability counts over the downloader's neighbor set, pick the piece
// to request. Stateless functions; the swarm owns availability counting.
#pragma once

#include <optional>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/config.hpp"
#include "numeric/rng.hpp"

namespace mpbt::bt {

/// Picks a piece the uploader holds and the downloader lacks, or nullopt
/// when there is none. `availability[p]` = number of peers in the
/// downloader's neighbor set holding piece p (used by rarest-first; must
/// have one entry per piece or be empty, in which case rarest-first
/// degrades to random). Ties in rarest-first break uniformly at random.
std::optional<PieceIndex> select_piece(PieceSelection strategy, const Bitfield& downloader,
                                       const Bitfield& uploader,
                                       const std::vector<std::uint32_t>& availability,
                                       numeric::Rng& rng);

/// The individual strategies, exposed for tests and custom policies.
std::optional<PieceIndex> select_random(const Bitfield& downloader, const Bitfield& uploader,
                                        numeric::Rng& rng);
std::optional<PieceIndex> select_rarest_first(const Bitfield& downloader,
                                              const Bitfield& uploader,
                                              const std::vector<std::uint32_t>& availability,
                                              numeric::Rng& rng);

}  // namespace mpbt::bt
