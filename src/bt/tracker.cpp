#include "bt/tracker.hpp"

#include "util/assert.hpp"

namespace mpbt::bt {

void Tracker::add_peer(PeerId id) {
  if (contains(id)) {
    return;
  }
  if (id >= position_.size()) {
    position_.resize(static_cast<std::size_t>(id) + 1, kNpos);
  }
  position_[id] = order_.size();
  order_.push_back(id);
}

void Tracker::remove_peer(PeerId id) {
  if (!contains(id)) {
    return;
  }
  const std::size_t pos = position_[id];
  const PeerId last = order_.back();
  order_[pos] = last;
  position_[last] = pos;
  order_.pop_back();
  position_[id] = kNpos;
}

void Tracker::reserve(std::size_t capacity) {
  order_.reserve(capacity);
  position_.reserve(capacity);
}

bool Tracker::contains(PeerId id) const {
  return id < position_.size() && position_[id] != kNpos;
}

std::vector<PeerId> Tracker::sample_peers(std::size_t count, PeerId exclude,
                                          numeric::Rng& rng) const {
  std::vector<PeerId> out;
  const std::size_t available = order_.size() - (contains(exclude) ? 1 : 0);
  const std::size_t want = std::min(count, available);
  if (want == 0) {
    return out;
  }
  out.reserve(want);
  // Sample indices into order_, skipping the excluded peer by resampling;
  // with want <= available this terminates quickly.
  const std::vector<std::size_t> raw =
      rng.sample_without_replacement(order_.size(), std::min(want + (contains(exclude) ? 1 : 0),
                                                             order_.size()));
  for (std::size_t idx : raw) {
    if (order_[idx] == exclude) {
      continue;
    }
    out.push_back(order_[idx]);
    if (out.size() == want) {
      break;
    }
  }
  return out;
}

void Tracker::record_stats() { stats_.push_back(static_cast<std::uint32_t>(order_.size())); }

}  // namespace mpbt::bt
