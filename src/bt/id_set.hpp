// Deterministic small-set of peer ids.
//
// A sorted vector with set semantics. Neighbor sets and connection sets are
// tens of entries, so a sorted vector beats hash sets and — unlike
// unordered_set — iterates in a platform-independent order, which keeps
// simulation runs bit-reproducible.
#pragma once

#include <algorithm>
#include <vector>

#include "bt/types.hpp"

namespace mpbt::bt {

class IdSet {
 public:
  bool contains(PeerId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  /// Returns true if the id was inserted (false if already present).
  bool insert(PeerId id) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) {
      return false;
    }
    ids_.insert(it, id);
    return true;
  }

  /// Returns true if the id was present and removed.
  bool erase(PeerId id) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) {
      return false;
    }
    ids_.erase(it);
    return true;
  }

  void clear() { ids_.clear(); }
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  const std::vector<PeerId>& as_vector() const { return ids_; }

 private:
  std::vector<PeerId> ids_;
};

}  // namespace mpbt::bt
