// Observation phase: per-round metric recording and trace sampling
// (step 10 of the round). Draws no randomness — results are identical
// with tracing/metrics on or off.
#pragma once

#include "bt/round_context.hpp"

namespace mpbt::bt {

void run_record_metrics(RoundContext& ctx);

/// Swarm entropy E = min_j d_j / max_j d_j (Section 6) over the
/// replication-degree vector; 1.0 for an empty swarm.
double swarm_entropy(const std::vector<std::uint32_t>& piece_counts);

}  // namespace mpbt::bt
