#include "bt/fault.hpp"

#include <stdexcept>
#include <string>

namespace mpbt::bt::fault {

std::string_view fault_name(Fault f) {
  switch (f) {
    case Fault::kNone:
      return "none";
    case Fault::kSkipDepartureRepair:
      return "skip-departure-repair";
    case Fault::kSkipPieceCountDecrement:
      return "skip-piece-count-decrement";
    case Fault::kAsymmetricNeighborInsert:
      return "asymmetric-neighbor-insert";
    case Fault::kOverfillConnections:
      return "overfill-connections";
    case Fault::kDuplicateInflightPiece:
      return "duplicate-inflight-piece";
    case Fault::kSkipShakeCleanup:
      return "skip-shake-cleanup";
    case Fault::kSkipRoundRecord:
      return "skip-round-record";
    case Fault::kEcoLeakDepartedSession:
      return "eco-leak-departed-session";
    case Fault::kEcoSkipCompletionRecord:
      return "eco-skip-completion-record";
    case Fault::kEcoSkipTakedownLedger:
      return "eco-skip-takedown-ledger";
  }
  return "unknown";
}

Fault fault_from_name(std::string_view name) {
  for (Fault f : all_faults()) {
    if (fault_name(f) == name) return f;
  }
  throw std::invalid_argument("unknown fault name: " + std::string(name));
}

const std::vector<Fault>& all_faults() {
  static const std::vector<Fault> kAll = {
      Fault::kNone,
      Fault::kSkipDepartureRepair,
      Fault::kSkipPieceCountDecrement,
      Fault::kAsymmetricNeighborInsert,
      Fault::kOverfillConnections,
      Fault::kDuplicateInflightPiece,
      Fault::kSkipShakeCleanup,
      Fault::kSkipRoundRecord,
      Fault::kEcoLeakDepartedSession,
      Fault::kEcoSkipCompletionRecord,
      Fault::kEcoSkipTakedownLedger,
  };
  return kAll;
}

}  // namespace mpbt::bt::fault
