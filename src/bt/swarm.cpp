// Thin orchestrator over the phase modules: construction, the step()
// sequence, public accessors, and cross-peer invariant checking. All
// per-phase simulation logic lives in src/bt/phase_*.cpp.
#include "bt/swarm.hpp"

#include "bt/phase_connections.hpp"
#include "bt/phase_membership.hpp"
#include "bt/phase_neighbors.hpp"
#include "bt/phase_observe.hpp"
#include "bt/phase_shaking.hpp"
#include "bt/phase_transfer.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

#include <iterator>
#include <string>

#ifdef MPBT_PHASE_TIMING
#include <chrono>
#include <cstdio>
#endif

namespace mpbt::bt {

Swarm::Swarm(SwarmConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      metrics_(config_.num_pieces),
      piece_counts_(config_.num_pieces, 0),
      trace_(obs::current_trace()) {
  config_.validate();
  RoundContext ctx = make_context();
  // Initial seeds hold the complete file.
  for (std::uint32_t i = 0; i < config_.initial_seeds; ++i) {
    create_peer(ctx, {}, /*as_seed=*/true);
  }
  // Initial leecher groups.
  for (const InitialGroup& group : config_.initial_groups) {
    for (std::uint32_t i = 0; i < group.count; ++i) {
      create_peer(ctx, group.piece_probs, /*as_seed=*/false);
    }
  }
  // Neighbor wiring happens after all initial peers exist so early peers
  // can know late ones.
  for (const PeerId id : store_.live()) {
    fetch_neighbors(ctx, id);
  }
}

std::size_t Swarm::num_leechers() const {
  std::size_t n = 0;
  for (const PeerId id : store_.live()) {
    if (store_.get(id).is_leecher()) {
      ++n;
    }
  }
  return n;
}

std::size_t Swarm::num_seeds() const { return store_.live().size() - num_leechers(); }

PeerId Swarm::add_peer(const std::vector<double>& piece_probs) {
  util::throw_if_invalid(
      !piece_probs.empty() && piece_probs.size() != config_.num_pieces,
      "Swarm::add_peer: piece_probs must be empty or have num_pieces entries");
  RoundContext ctx = make_context();
  const PeerId id = create_peer(ctx, piece_probs, /*as_seed=*/false);
  fetch_neighbors(ctx, id);
  return id;
}

void Swarm::remove_peer(PeerId id) {
  util::throw_if_invalid(!store_.is_live(id), "Swarm::remove_peer: peer is not live");
  RoundContext ctx = make_context();
  depart(ctx, store_.get(id));
  store_.sweep_departed();
}

void Swarm::remove_peers(const std::vector<PeerId>& ids) {
  if (ids.empty()) {
    return;
  }
  RoundContext ctx = make_context();
  for (const PeerId id : ids) {
    util::throw_if_invalid(!store_.is_live(id), "Swarm::remove_peers: peer is not live");
    depart(ctx, store_.get(id));
  }
  store_.sweep_departed();
}

void Swarm::reserve_peers(std::size_t extra) {
  const std::size_t capacity = store_.size() + extra;
  store_.reserve(capacity);
  tracker_.reserve(capacity);
}

void Swarm::instrument_peer(PeerId id) {
  Peer& p = store_.checked(id);
  util::throw_if_invalid(!is_live(id), "Swarm::instrument_peer: peer is not live");
  p.instrumented = true;
  metrics_.client_record(id, p.joined);
}

namespace {

/// The round schedule: each phase runs once per step, in this order.
struct PhaseEntry {
  const char* name;
  void (*run)(RoundContext&);
};

constexpr PhaseEntry kPhases[] = {
    {"prologue", run_round_prologue},
    {"arrivals", run_arrivals},
    {"reannounce", run_reannounce},
    {"bootstrap", run_bootstrap},
    {"rebuild_potential", run_rebuild_potential_sets},
    {"prune", run_prune_connections},
    {"establish", run_establish_connections},
    {"exchange", run_exchange},
    {"seed_service", run_seed_service},
    {"completions", run_completions},
    {"shake", run_shake},
    {"record_metrics", run_record_metrics},
};

constexpr std::size_t kNumPhases = std::size(kPhases);

#ifdef MPBT_PHASE_TIMING
// Opt-in per-phase wall-time accounting (compile with
// -DMPBT_PHASE_TIMING): accumulates across all Swarm instances and
// prints a table to stderr at exit. Diagnostic only — it draws no
// randomness and never changes results.
struct PhaseTimer {
  double totals_ms[kNumPhases] = {};
  ~PhaseTimer() {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      std::fprintf(stderr, "phase %-18s %10.3f ms\n", kPhases[i].name, totals_ms[i]);
    }
  }
};
PhaseTimer g_phase_timer;
#endif

}  // namespace

void PhaseObserver::on_round_end(const Swarm& /*swarm*/, Round /*round*/) {}

std::size_t Swarm::num_phases() { return kNumPhases; }

std::string_view Swarm::phase_name(std::size_t phase_index) {
  util::throw_if_out_of_range(phase_index >= kNumPhases,
                              "Swarm::phase_name: phase index out of range");
  return kPhases[phase_index].name;
}

void Swarm::step() {
  RoundContext ctx = make_context();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
#ifdef MPBT_PHASE_TIMING
    const auto t0 = std::chrono::steady_clock::now();
    kPhases[i].run(ctx);
    const auto t1 = std::chrono::steady_clock::now();
    g_phase_timer.totals_ms[i] +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
#else
    kPhases[i].run(ctx);
#endif
    if (observer_ != nullptr) {
      observer_->on_phase_end(*this, kPhases[i].name, i);
    }
  }
  if (observer_ != nullptr) {
    observer_->on_round_end(*this, round_);
  }
  ++round_;
}

void Swarm::run_rounds(Round rounds) {
  for (Round r = 0; r < rounds; ++r) {
    step();
  }
}

double Swarm::entropy() const { return swarm_entropy(piece_counts_); }

void Swarm::check_invariants() const {
  // Every message carries round / seed / peer ids, so a CI failure log is
  // enough to reproduce the run locally (rebuild the config with this
  // seed and step() to the reported round).
  const auto at = [this](std::string_view what, PeerId peer,
                         PeerId partner = kNoPeer) {
    std::string msg;
    msg.reserve(96);
    msg.append(what).append(" [round=").append(std::to_string(round_));
    msg.append(" seed=").append(std::to_string(config_.seed));
    if (peer != kNoPeer) {
      msg.append(" peer=").append(std::to_string(peer));
    }
    if (partner != kNoPeer) {
      msg.append(" partner=").append(std::to_string(partner));
    }
    msg.push_back(']');
    return msg;
  };
  std::vector<std::uint32_t> recount(config_.num_pieces, 0);
  for (const PeerId id : store_.live()) {
    MPBT_ASSERT_MSG(store_.is_live(id), at("live list contains departed peer", id));
    const Peer& p = store_.get(id);
    MPBT_ASSERT_MSG(p.id == id, at("peer id mismatch", id));
    p.pieces.for_each_held([&recount](PieceIndex piece) { ++recount[piece]; });
    for (const PeerId nb : p.neighbors.as_vector()) {
      MPBT_ASSERT_MSG(nb != id, at("peer is its own neighbor", id));
      MPBT_ASSERT_MSG(is_live(nb), at("neighbor set contains departed peer", id, nb));
      MPBT_ASSERT_MSG(store_.get(nb).neighbors.contains(id),
                      at("neighbor relation not symmetric", id, nb));
    }
    for (const PeerId c : p.connections.as_vector()) {
      MPBT_ASSERT_MSG(p.neighbors.contains(c), at("connection to non-neighbor", id, c));
      MPBT_ASSERT_MSG(store_.get(c).connections.contains(id),
                      at("connection not symmetric", id, c));
    }
    for (const auto& [partner, flight] : p.inflight) {
      MPBT_ASSERT_MSG(p.connections.contains(partner),
                      at("in-flight piece on dead connection", id, partner));
      MPBT_ASSERT_MSG(!p.pieces.test(flight.piece),
                      at("in-flight piece already held", id, partner));
      MPBT_ASSERT_MSG(flight.blocks_done < config_.blocks_per_piece,
                      at("in-flight piece should have completed", id, partner));
    }
    if (p.is_leecher()) {
      MPBT_ASSERT_MSG(p.connections.size() <= config_.max_connections,
                      at("connection count exceeds k", id));
    }
  }
  for (PieceIndex piece = 0; piece < config_.num_pieces; ++piece) {
    MPBT_ASSERT_MSG(recount[piece] == piece_counts_[piece],
                    at("replication degree counter out of sync for piece " +
                           std::to_string(piece),
                       kNoPeer));
  }
}

}  // namespace mpbt::bt
