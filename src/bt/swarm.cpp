#include "bt/swarm.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>

#include "bt/piece_selection.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mpbt::bt {

Swarm::Swarm(SwarmConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      metrics_(config_.num_pieces),
      piece_counts_(config_.num_pieces, 0),
      trace_(obs::current_trace()) {
  config_.validate();
  // Initial seeds hold the complete file.
  for (std::uint32_t i = 0; i < config_.initial_seeds; ++i) {
    create_peer({}, /*as_seed=*/true);
  }
  // Initial leecher groups.
  for (const InitialGroup& group : config_.initial_groups) {
    for (std::uint32_t i = 0; i < group.count; ++i) {
      create_peer(group.piece_probs, /*as_seed=*/false);
    }
  }
  // Neighbor wiring happens after all initial peers exist so early peers
  // can know late ones.
  for (PeerId id : live_) {
    assign_initial_neighbors(id);
  }
}

Peer& Swarm::peer_ref(PeerId id) {
  util::throw_if_out_of_range(id >= peers_.size() || peers_[id] == nullptr,
                              "Swarm: unknown peer id");
  return *peers_[id];
}

const Peer& Swarm::peer(PeerId id) const {
  util::throw_if_out_of_range(id >= peers_.size() || peers_[id] == nullptr,
                              "Swarm: unknown peer id");
  return *peers_[id];
}

bool Swarm::is_live(PeerId id) const {
  return id < peers_.size() && peers_[id] != nullptr && !departed_[id];
}

std::size_t Swarm::num_leechers() const {
  std::size_t n = 0;
  for (PeerId id : live_) {
    if (peers_[id]->is_leecher()) {
      ++n;
    }
  }
  return n;
}

std::size_t Swarm::num_seeds() const { return live_.size() - num_leechers(); }

PeerId Swarm::create_peer(const std::vector<double>& piece_probs, bool as_seed) {
  const auto id = static_cast<PeerId>(peers_.size());
  peers_.push_back(std::make_unique<Peer>(id, config_.num_pieces, round_));
  departed_.push_back(false);
  Peer& p = *peers_.back();
  p.is_seed = as_seed;
  if (as_seed) {
    for (PieceIndex piece = 0; piece < config_.num_pieces; ++piece) {
      p.pieces.set(piece);
      ++piece_counts_[piece];
    }
  } else if (!piece_probs.empty()) {
    MPBT_ASSERT(piece_probs.size() == config_.num_pieces);
    for (PieceIndex piece = 0; piece < config_.num_pieces; ++piece) {
      if (rng_.bernoulli(piece_probs[piece])) {
        p.pieces.set(piece);
        ++piece_counts_[piece];
      }
    }
    if (p.pieces.all()) {
      // Keep the peer a leecher: drop one random piece.
      const auto drop = static_cast<PieceIndex>(
          rng_.uniform_int(0, static_cast<std::int64_t>(config_.num_pieces) - 1));
      p.pieces.reset(drop);
      --piece_counts_[drop];
    }
    // Pre-seeded pieces count as acquired at the join round.
    p.acquired_rounds.assign(p.pieces.count(), round_);
  }
  if (!config_.bandwidth_classes.empty() && !as_seed) {
    // Sample the peer's bandwidth class proportionally to the fractions.
    double total = 0.0;
    for (const auto& cls : config_.bandwidth_classes) {
      total += cls.fraction;
    }
    double u = rng_.uniform01() * total;
    std::size_t chosen = config_.bandwidth_classes.size() - 1;
    for (std::size_t c = 0; c < config_.bandwidth_classes.size(); ++c) {
      u -= config_.bandwidth_classes[c].fraction;
      if (u < 0.0) {
        chosen = c;
        break;
      }
    }
    p.bandwidth_class = static_cast<std::uint32_t>(chosen);
    p.upload_per_round = config_.bandwidth_classes[chosen].upload_per_round;
    p.upload_left = p.upload_per_round;
  }
  live_.push_back(id);
  tracker_.add_peer(id);
  if (trace_ != nullptr) {
    trace_->peer_join(round_, id, as_seed);
  }
  return id;
}

void Swarm::assign_initial_neighbors(PeerId id) {
  Peer& p = peer_ref(id);
  const std::size_t want = config_.peer_set_size;
  if (p.neighbors.size() >= want) {
    return;
  }
  const std::size_t missing = want - p.neighbors.size();
  std::vector<PeerId> sampled;
  switch (config_.tracker_policy) {
    case TrackerPolicy::UniformRandom:
      sampled = tracker_.sample_peers(missing, id, rng_);
      break;
    case TrackerPolicy::BootstrapBias: {
      // Half the peer set comes from currently starving peers, giving
      // bootstrap-trapped peers fresh contacts (Section 4.3).
      std::vector<PeerId> starving;
      for (PeerId candidate : starving_) {
        if (candidate != id && is_live(candidate)) {
          starving.push_back(candidate);
        }
      }
      rng_.shuffle(std::span<PeerId>(starving));
      const std::size_t biased = std::min(starving.size(), missing / 2);
      sampled.assign(starving.begin(),
                     starving.begin() + static_cast<std::ptrdiff_t>(biased));
      for (PeerId other : tracker_.sample_peers(missing, id, rng_)) {
        if (sampled.size() >= missing) {
          break;
        }
        if (std::find(sampled.begin(), sampled.end(), other) == sampled.end()) {
          sampled.push_back(other);
        }
      }
      break;
    }
    case TrackerPolicy::StatusClustered: {
      // Oversample, then keep the peers whose piece counts are closest to
      // the joiner's (the clustering suggestion of ref. [8]).
      std::vector<PeerId> pool = tracker_.sample_peers(missing * 3, id, rng_);
      const auto joiner_pieces = static_cast<long long>(p.pieces.count());
      std::stable_sort(pool.begin(), pool.end(), [&](PeerId a, PeerId b) {
        const auto da = std::llabs(
            static_cast<long long>(peers_[a]->pieces.count()) - joiner_pieces);
        const auto db = std::llabs(
            static_cast<long long>(peers_[b]->pieces.count()) - joiner_pieces);
        return da < db;
      });
      if (pool.size() > missing) {
        pool.resize(missing);
      }
      sampled = std::move(pool);
      break;
    }
  }
  for (PeerId other : sampled) {
    if (!is_live(other) || other == id) {
      continue;
    }
    Peer& q = peer_ref(other);
    p.neighbors.insert(other);
    q.neighbors.insert(id);  // NS is symmetric (Section 2.1)
  }
}

PeerId Swarm::add_peer(const std::vector<double>& piece_probs) {
  util::throw_if_invalid(
      !piece_probs.empty() && piece_probs.size() != config_.num_pieces,
      "Swarm::add_peer: piece_probs must be empty or have num_pieces entries");
  const PeerId id = create_peer(piece_probs, /*as_seed=*/false);
  assign_initial_neighbors(id);
  return id;
}

void Swarm::instrument_peer(PeerId id) {
  Peer& p = peer_ref(id);
  util::throw_if_invalid(!is_live(id), "Swarm::instrument_peer: peer is not live");
  p.instrumented = true;
  metrics_.client_record(id, p.joined);
}

void Swarm::connect(Peer& a, Peer& b) {
  MPBT_ASSERT(a.id != b.id);
  a.connections.insert(b.id);
  b.connections.insert(a.id);
  if (trace_ != nullptr) {
    trace_->unchoke(round_, a.id, b.id);
  }
}

void Swarm::disconnect(Peer& a, Peer& b) {
  a.connections.erase(b.id);
  b.connections.erase(a.id);
  // Partial pieces in flight over this connection are lost (they cannot
  // be served and we do not model cross-connection block resume).
  a.inflight.erase(b.id);
  b.inflight.erase(a.id);
  if (trace_ != nullptr) {
    trace_->choke(round_, a.id, b.id);
  }
}

void Swarm::acquire_piece(Peer& p, PieceIndex piece, bool add_bytes) {
  MPBT_ASSERT(!p.pieces.test(piece));
  p.pieces.set(piece);
  ++piece_counts_[piece];
  // A piece completed through another path (e.g. seed service) cancels any
  // partial download of the same piece still in flight on a connection.
  if (config_.blocks_per_piece > 1) {
    for (auto it = p.inflight.begin(); it != p.inflight.end();) {
      it = it->second.piece == piece ? p.inflight.erase(it) : std::next(it);
    }
  }
  if (add_bytes) {
    p.bytes_downloaded += config_.piece_bytes;
  }
  const auto ordinal = static_cast<std::uint32_t>(p.pieces.count());
  const Round prev_round =
      p.acquired_rounds.empty() ? p.joined : p.acquired_rounds.back();
  p.acquired_rounds.push_back(round_);
  metrics_.record_acquisition(ordinal, static_cast<double>(round_ - p.joined + 1),
                              static_cast<double>(round_ - prev_round + 1));
  if (trace_ != nullptr) {
    trace_->piece_acquired(round_, p.id, piece);
  }
}

void Swarm::depart(Peer& p) {
  MPBT_ASSERT(!departed_[p.id]);
  departed_[p.id] = true;
  if (trace_ != nullptr) {
    trace_->peer_leave(round_, p.id);
  }
  tracker_.remove_peer(p.id);
  for (PeerId nb : p.neighbors.as_vector()) {
    if (nb < peers_.size() && peers_[nb] != nullptr) {
      peers_[nb]->neighbors.erase(p.id);
      peers_[nb]->connections.erase(p.id);
      peers_[nb]->inflight.erase(p.id);
    }
  }
  p.neighbors.clear();
  p.connections.clear();
  p.inflight.clear();
  for (PieceIndex piece : p.pieces.held_pieces()) {
    MPBT_ASSERT(piece_counts_[piece] > 0);
    --piece_counts_[piece];
  }
}

void Swarm::sweep_departed() {
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [this](PeerId id) { return departed_[id]; }),
              live_.end());
}

std::vector<PeerId> Swarm::shuffled_live_leechers() {
  std::vector<PeerId> out;
  out.reserve(live_.size());
  for (PeerId id : live_) {
    if (!departed_[id] && peers_[id]->is_leecher()) {
      out.push_back(id);
    }
  }
  rng_.shuffle(std::span<PeerId>(out));
  return out;
}

const std::vector<std::uint32_t>& Swarm::availability_for(const Peer& p) {
  if (config_.availability_scope == AvailabilityScope::Global) {
    return piece_counts_;
  }
  auto [it, inserted] = neighborhood_availability_.try_emplace(p.id);
  if (inserted) {
    it->second.assign(config_.num_pieces, 0);
    for (PeerId nb : p.neighbors.as_vector()) {
      if (!is_live(nb)) {
        continue;
      }
      for (PieceIndex piece : peers_[nb]->pieces.held_pieces()) {
        ++it->second[piece];
      }
    }
  }
  return it->second;
}

std::optional<PieceIndex> Swarm::seed_piece_for(Peer& seed, const Peer& taker) {
  MPBT_ASSERT(seed.is_seed);
  if (taker.pieces.all()) {
    return std::nullopt;
  }
  if (config_.seed_mode == SwarmConfig::SeedMode::Classic) {
    // First piece is random (random-piece-first); afterwards the taker's
    // configured piece selection applies.
    if (taker.pieces.none()) {
      return select_random(taker.pieces, seed.pieces, rng_);
    }
    return select_piece(config_.piece_selection, taker.pieces, seed.pieces,
                        availability_for(taker), rng_);
  }
  // Super-seeding: serve the piece this seed has injected least often,
  // breaking ties by global rarity, then uniformly.
  auto& served = seed_served_[seed.id];
  if (served.empty()) {
    served.assign(config_.num_pieces, 0);
  }
  std::optional<PieceIndex> chosen;
  std::size_t ties = 0;
  for (PieceIndex piece : taker.pieces.missing_pieces()) {
    if (!chosen.has_value()) {
      chosen = piece;
      ties = 1;
      continue;
    }
    const auto key = std::make_pair(served[piece], piece_counts_[piece]);
    const auto best = std::make_pair(served[*chosen], piece_counts_[*chosen]);
    if (key < best) {
      chosen = piece;
      ties = 1;
    } else if (key == best) {
      ++ties;
      if (rng_.uniform_int(0, static_cast<std::int64_t>(ties) - 1) == 0) {
        chosen = piece;
      }
    }
  }
  if (chosen.has_value()) {
    ++served[*chosen];
  }
  return chosen;
}

bool Swarm::ensure_inflight(Peer& down, const Peer& up) {
  auto it = down.inflight.find(up.id);
  if (it != down.inflight.end()) {
    // Guard: the piece may have completed via another path meanwhile.
    if (down.pieces.test(it->second.piece)) {
      down.inflight.erase(it);
    } else {
      return true;
    }
  }
  // Select a new target: the uploader holds it, the downloader lacks it,
  // and it is not already in flight from another connection.
  std::vector<PieceIndex> candidates = up.pieces.pieces_missing_from(down.pieces);
  std::erase_if(candidates, [&](PieceIndex piece) {
    for (const auto& [partner, flight] : down.inflight) {
      if (flight.piece == piece) {
        return true;
      }
    }
    return false;
  });
  if (candidates.empty()) {
    return false;
  }
  PieceIndex chosen;
  if (config_.piece_selection == PieceSelection::Random ||
      (config_.piece_selection == PieceSelection::RandomFirstThenRarest &&
       down.pieces.none())) {
    chosen = candidates[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  } else {
    const std::vector<std::uint32_t>& availability = availability_for(down);
    chosen = candidates.front();
    std::size_t ties = 1;
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      const PieceIndex piece = candidates[c];
      if (availability[piece] < availability[chosen]) {
        chosen = piece;
        ties = 1;
      } else if (availability[piece] == availability[chosen]) {
        ++ties;
        if (rng_.uniform_int(0, static_cast<std::int64_t>(ties) - 1) == 0) {
          chosen = piece;
        }
      }
    }
  }
  down.inflight[up.id] = Peer::InFlight{chosen, 0};
  return true;
}

void Swarm::deliver_block(Peer& down, PeerId from) {
  const auto it = down.inflight.find(from);
  MPBT_ASSERT(it != down.inflight.end());
  Peer::InFlight& flight = it->second;
  ++flight.blocks_done;
  const std::uint32_t m = config_.blocks_per_piece;
  const std::uint64_t block_bytes = config_.piece_bytes / m;
  if (flight.blocks_done >= m) {
    // Final block carries any rounding remainder; the piece verifies and
    // joins the bitfield.
    down.bytes_downloaded +=
        config_.piece_bytes - block_bytes * static_cast<std::uint64_t>(m - 1);
    const PieceIndex piece = flight.piece;
    down.inflight.erase(it);
    acquire_piece(down, piece, /*add_bytes=*/false);
  } else {
    down.bytes_downloaded += block_bytes;
  }
}

// --- round phases ----------------------------------------------------------

void Swarm::phase_arrivals() {
  if (config_.arrival_cutoff_round != 0 && round_ >= config_.arrival_cutoff_round) {
    return;
  }
  const int arrivals = rng_.poisson(config_.arrival_rate);
  for (int i = 0; i < arrivals; ++i) {
    if (config_.max_population != 0 && live_.size() >= config_.max_population) {
      metrics_.record_dropped_arrival();
      continue;
    }
    // Instrumented clients arrive empty to expose the full bootstrap.
    const bool instrumented = instrument_next_;
    const PeerId id = create_peer(instrumented ? std::vector<double>{}
                                               : config_.arrival_piece_probs,
                                  /*as_seed=*/false);
    assign_initial_neighbors(id);
    if (instrumented) {
      instrument_next_ = false;
      peers_[id]->instrumented = true;
      metrics_.client_record(id, round_);
    }
  }
}

void Swarm::phase_bootstrap() {
  // Reset per-round seed upload budgets.
  seed_budget_.clear();
  for (PeerId id : live_) {
    if (!departed_[id] && peers_[id]->is_seed) {
      seed_budget_[id] = config_.seed_capacity;
    }
  }

  for (PeerId id : shuffled_live_leechers()) {
    Peer& p = *peers_[id];
    if (!p.pieces.none()) {
      continue;
    }
    // First choice: a neighboring seed with upload budget (a peer "acquires
    // its first piece either through seeds or through optimistic unchoking",
    // Section 3.1).
    PeerId source = kNoPeer;
    for (PeerId nb : p.neighbors.as_vector()) {
      if (!is_live(nb)) {
        continue;
      }
      if (peers_[nb]->is_seed) {
        auto budget = seed_budget_.find(nb);
        if (budget != seed_budget_.end() && budget->second > 0) {
          --budget->second;
          source = nb;
          break;
        }
      }
    }
    if (source == kNoPeer) {
      // Optimistic unchoke from a piece-holding leecher neighbor.
      if (!rng_.bernoulli(config_.optimistic_unchoke_prob)) {
        continue;
      }
      std::vector<PeerId> holders;
      for (PeerId nb : p.neighbors.as_vector()) {
        if (is_live(nb) && peers_[nb]->is_leecher() && !peers_[nb]->pieces.none()) {
          holders.push_back(nb);
        }
      }
      if (holders.empty()) {
        continue;
      }
      source = holders[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(holders.size()) - 1))];
    }
    // The first piece is selected randomly (random-piece-first policy);
    // super-seeding seeds instead inject their least-served piece.
    const auto choice = peers_[source]->is_seed
                            ? seed_piece_for(*peers_[source], p)
                            : select_random(p.pieces, peers_[source]->pieces, rng_);
    MPBT_ASSERT(choice.has_value());
    acquire_piece(p, *choice);
  }
}

void Swarm::phase_rebuild_potential_sets() {
  neighborhood_availability_.clear();
  starving_.clear();
  for (PeerId id : live_) {
    if (departed_[id]) {
      continue;
    }
    Peer& p = *peers_[id];
    p.potential.clear();
    if (p.is_seed || p.pieces.none()) {
      continue;
    }
    for (PeerId nb : p.neighbors.as_vector()) {
      if (!is_live(nb)) {
        continue;
      }
      const Peer& q = *peers_[nb];
      if (q.is_seed) {
        continue;  // seeds are served outside tit-for-tat
      }
      if (mutually_interested(p.pieces, q.pieces)) {
        p.potential.push_back(nb);
      }
    }
    // A trading-capable peer whose potential set is empty despite having
    // neighbors is starving — the paper's failed-encounter condition.
    if (p.potential.empty() && !p.neighbors.empty()) {
      metrics_.record_failed_encounter();
      starving_.push_back(id);
    }
  }
}

void Swarm::phase_prune_connections() {
  // Snapshot connections alive at round start for the p_r estimate.
  round_start_connections_.clear();
  for (PeerId id : live_) {
    if (departed_[id]) {
      continue;
    }
    const Peer& p = *peers_[id];
    for (PeerId other : p.connections.as_vector()) {
      if (id < other) {
        round_start_connections_.emplace_back(id, other);
      }
    }
  }

  for (PeerId id : live_) {
    if (departed_[id]) {
      continue;
    }
    Peer& p = *peers_[id];
    // Copy: disconnect mutates the set.
    const std::vector<PeerId> current = p.connections.as_vector();
    for (PeerId other : current) {
      if (!is_live(other)) {
        p.connections.erase(other);
        continue;
      }
      const bool still_interesting =
          std::find(p.potential.begin(), p.potential.end(), other) != p.potential.end();
      if (!still_interesting) {
        disconnect(p, *peers_[other]);
        if (trace_ != nullptr) {
          trace_->connection_drop(round_, id, other, obs::DropReason::kInterestLost);
        }
      }
    }
  }
}

void Swarm::phase_establish_connections() {
  if (config_.choke_algorithm == ChokeAlgorithm::RateBased) {
    establish_rate_based();
    return;
  }
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  for (PeerId id : shuffled_live_leechers()) {
    Peer& p = *peers_[id];
    if (p.pieces.none()) {
      continue;  // nothing to offer under strict tit-for-tat
    }
    if (p.connections.size() >= config_.max_connections) {
      continue;
    }
    std::vector<PeerId> candidates;
    for (PeerId other : p.potential) {
      if (!is_live(other) || p.connections.contains(other)) {
        continue;
      }
      if (peers_[other]->connections.size() >= config_.max_connections) {
        continue;  // partner has no open slot
      }
      candidates.push_back(other);
    }
    rng_.shuffle(std::span<PeerId>(candidates));
    for (PeerId other : candidates) {
      if (p.connections.size() >= config_.max_connections) {
        break;
      }
      if (peers_[other]->connections.size() >= config_.max_connections) {
        continue;  // filled up since candidate listing
      }
      ++attempts;
      const bool ok = rng_.bernoulli(config_.connect_success_prob);
      if (trace_ != nullptr) {
        trace_->connection_attempt(round_, id, other, ok);
      }
      if (ok) {
        connect(p, *peers_[other]);
        if (config_.handshake_delay) {
          p.fresh_connections.insert(other);
          peers_[other]->fresh_connections.insert(id);
        }
        ++successes;
      }
    }
  }
  metrics_.record_connection_attempts(attempts, successes);
}

void Swarm::establish_rate_based() {
  // The choking algorithm (Section 2.1): each peer unchokes its k - 1
  // fastest recent uploaders among the potential set plus one rotating
  // optimistic slot; a connection exists while both sides unchoke each
  // other.
  std::unordered_map<PeerId, IdSet> desired;
  const std::vector<PeerId> order = shuffled_live_leechers();
  for (PeerId id : order) {
    Peer& p = *peers_[id];
    if (p.pieces.none() || p.potential.empty()) {
      continue;
    }
    // Rotate the optimistic unchoke when stale or invalid.
    const bool optimistic_valid =
        p.optimistic_target != kNoPeer && is_live(p.optimistic_target) &&
        std::find(p.potential.begin(), p.potential.end(), p.optimistic_target) !=
            p.potential.end();
    if (!optimistic_valid || round_ - p.optimistic_since >= config_.optimistic_interval) {
      p.optimistic_target = p.potential[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(p.potential.size()) - 1))];
      p.optimistic_since = round_;
    }
    // Top k - 1 by received rate, ties broken uniformly at random (a
    // deterministic-by-id tie-break would overload low ids).
    std::vector<PeerId> ranked = p.potential;
    rng_.shuffle(std::span<PeerId>(ranked));
    std::stable_sort(ranked.begin(), ranked.end(), [&](PeerId x, PeerId y) {
      const auto rx = p.received_rate.find(x);
      const auto ry = p.received_rate.find(y);
      const double vx = rx == p.received_rate.end() ? 0.0 : rx->second;
      const double vy = ry == p.received_rate.end() ? 0.0 : ry->second;
      return vx > vy;
    });
    IdSet& mine = desired[id];
    mine.insert(p.optimistic_target);
    for (PeerId candidate : ranked) {
      if (mine.size() >= config_.max_connections) {
        break;
      }
      mine.insert(candidate);
    }
  }

  // Choke rotation with low churn: connections persist (they are TCP
  // links in the real protocol; choking only gates transfers). A peer at
  // full capacity that desires an unconnected candidate drops its
  // lowest-rate undesired connection — at most one per round — to make
  // room, mirroring the 10-second unchoke re-evaluation.
  for (PeerId id : order) {
    Peer& p = *peers_[id];
    const auto mine = desired.find(id);
    if (mine == desired.end() || p.connections.size() < config_.max_connections) {
      continue;
    }
    bool wants_new = false;
    for (PeerId candidate : mine->second.as_vector()) {
      if (!p.connections.contains(candidate) && is_live(candidate)) {
        wants_new = true;
        break;
      }
    }
    if (!wants_new) {
      continue;
    }
    PeerId victim = kNoPeer;
    double victim_rate = 0.0;
    for (PeerId other : p.connections.as_vector()) {
      if (mine->second.contains(other)) {
        continue;  // still desired: keep
      }
      const auto r = p.received_rate.find(other);
      const double rate = r == p.received_rate.end() ? 0.0 : r->second;
      if (victim == kNoPeer || rate < victim_rate) {
        victim = other;
        victim_rate = rate;
      }
    }
    if (victim != kNoPeer && is_live(victim)) {
      disconnect(p, *peers_[victim]);
      if (trace_ != nullptr) {
        trace_->connection_drop(round_, id, victim, obs::DropReason::kChokeVictim);
      }
    }
  }

  // Establish mutually desired pairs.
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  for (PeerId id : order) {
    const auto mine = desired.find(id);
    if (mine == desired.end()) {
      continue;
    }
    Peer& p = *peers_[id];
    for (PeerId other : mine->second.as_vector()) {
      if (id >= other || !is_live(other) || p.connections.contains(other)) {
        continue;
      }
      const auto theirs = desired.find(other);
      if (theirs == desired.end() || !theirs->second.contains(id)) {
        continue;
      }
      if (p.connections.size() >= config_.max_connections ||
          peers_[other]->connections.size() >= config_.max_connections) {
        continue;
      }
      ++attempts;
      const bool ok = rng_.bernoulli(config_.connect_success_prob);
      if (trace_ != nullptr) {
        trace_->connection_attempt(round_, id, other, ok);
      }
      if (ok) {
        connect(p, *peers_[other]);
        if (config_.handshake_delay) {
          p.fresh_connections.insert(other);
          peers_[other]->fresh_connections.insert(id);
        }
        ++successes;
      }
    }
  }

  // Fill pass: real clients keep every unchoke slot busy, so remaining
  // open slots take any willing potential partner (this is what makes the
  // optimistic mechanism effective — newcomers with no rate history still
  // get service).
  for (PeerId id : order) {
    Peer& p = *peers_[id];
    if (p.pieces.none() || p.connections.size() >= config_.max_connections) {
      continue;
    }
    std::vector<PeerId> candidates;
    for (PeerId other : p.potential) {
      if (is_live(other) && !p.connections.contains(other) &&
          peers_[other]->connections.size() < config_.max_connections) {
        candidates.push_back(other);
      }
    }
    rng_.shuffle(std::span<PeerId>(candidates));
    for (PeerId other : candidates) {
      if (p.connections.size() >= config_.max_connections) {
        break;
      }
      if (peers_[other]->connections.size() >= config_.max_connections) {
        continue;
      }
      ++attempts;
      const bool ok = rng_.bernoulli(config_.connect_success_prob);
      if (trace_ != nullptr) {
        trace_->connection_attempt(round_, id, other, ok);
      }
      if (ok) {
        connect(p, *peers_[other]);
        if (config_.handshake_delay) {
          p.fresh_connections.insert(other);
          peers_[other]->fresh_connections.insert(id);
        }
        ++successes;
      }
    }
  }
  metrics_.record_connection_attempts(attempts, successes);
}

void Swarm::phase_exchange() {
  // Collect unordered connection pairs, then process in random order.
  std::vector<std::pair<PeerId, PeerId>> pairs;
  for (PeerId id : live_) {
    if (departed_[id]) {
      continue;
    }
    for (PeerId other : peers_[id]->connections.as_vector()) {
      if (id < other) {
        pairs.emplace_back(id, other);
      }
    }
  }
  rng_.shuffle(std::span<std::pair<PeerId, PeerId>>(pairs));

  for (const auto& [ida, idb] : pairs) {
    Peer& a = *peers_[ida];
    Peer& b = *peers_[idb];
    if (!a.connections.contains(idb)) {
      continue;  // dropped earlier this round
    }
    if (a.fresh_connections.contains(idb)) {
      continue;  // still handshaking; exchanges start next round
    }
    if (a.upload_left == 0 || b.upload_left == 0) {
      // An upload-throttled side cannot reciprocate this round; under
      // strict tit-for-tat the pair idles (the connection survives).
      continue;
    }
    if (config_.blocks_per_piece > 1) {
      // Block-granular transfer: one block per direction per round.
      const bool a_ok = ensure_inflight(a, b);
      const bool b_ok = ensure_inflight(b, a);
      if (!a_ok || !b_ok) {
        // Strict tit-for-tat at block level: nothing to reciprocate.
        disconnect(a, b);
        if (trace_ != nullptr) {
          trace_->connection_drop(round_, ida, idb, obs::DropReason::kNothingToTrade);
        }
        continue;
      }
      deliver_block(a, idb);
      deliver_block(b, ida);
      const double block_fraction = 1.0 / static_cast<double>(config_.blocks_per_piece);
      a.received_rate[idb] += block_fraction;
      b.received_rate[ida] += block_fraction;
      if (a.upload_left != UINT32_MAX) {
        --a.upload_left;
      }
      if (b.upload_left != UINT32_MAX) {
        --b.upload_left;
      }
      if (config_.availability_scope == AvailabilityScope::NeighborSet) {
        neighborhood_availability_.clear();
      }
      continue;
    }
    const auto piece_for_a = select_piece(config_.piece_selection, a.pieces, b.pieces,
                                          availability_for(a), rng_);
    const auto piece_for_b = select_piece(config_.piece_selection, b.pieces, a.pieces,
                                          availability_for(b), rng_);
    if (!piece_for_a.has_value() || !piece_for_b.has_value()) {
      // Strict tit-for-tat: no one-sided transfers; the connection fails.
      disconnect(a, b);
      if (trace_ != nullptr) {
        trace_->connection_drop(round_, ida, idb, obs::DropReason::kNothingToTrade);
      }
      continue;
    }
    acquire_piece(a, *piece_for_a);
    acquire_piece(b, *piece_for_b);
    a.received_rate[idb] += 1.0;
    b.received_rate[ida] += 1.0;
    if (a.upload_left != UINT32_MAX) {
      --a.upload_left;
    }
    if (b.upload_left != UINT32_MAX) {
      --b.upload_left;
    }
    // Acquisitions invalidate cached neighborhood availability.
    if (config_.availability_scope == AvailabilityScope::NeighborSet) {
      neighborhood_availability_.clear();
    }
  }

  // p_r estimate: fraction of round-start connections still alive.
  std::uint64_t survived = 0;
  for (const auto& [ida, idb] : round_start_connections_) {
    if (!departed_[ida] && !departed_[idb] && peers_[ida]->connections.contains(idb)) {
      ++survived;
    }
  }
  metrics_.record_connection_survival(round_start_connections_.size(), survived);
}

void Swarm::phase_seed_service() {
  if (!config_.seeds_serve_all) {
    return;
  }
  for (auto& [seed_id, budget] : seed_budget_) {
    if (!is_live(seed_id) || budget == 0) {
      continue;
    }
    Peer& seed = *peers_[seed_id];
    std::vector<PeerId> takers;
    for (PeerId nb : seed.neighbors.as_vector()) {
      if (is_live(nb) && peers_[nb]->is_leecher() && !peers_[nb]->pieces.all() &&
          !peers_[nb]->pieces.none()) {
        takers.push_back(nb);
      }
    }
    rng_.shuffle(std::span<PeerId>(takers));
    for (PeerId taker : takers) {
      if (budget == 0) {
        break;
      }
      Peer& p = *peers_[taker];
      const auto choice = seed_piece_for(seed, p);
      if (choice.has_value()) {
        acquire_piece(p, *choice);
        --budget;
      }
    }
  }
}

void Swarm::phase_completions() {
  for (PeerId id : live_) {
    if (departed_[id]) {
      continue;
    }
    Peer& p = *peers_[id];
    if (p.is_leecher() && !p.pieces.all() && config_.abort_rate > 0.0 &&
        rng_.bernoulli(config_.abort_rate)) {
      metrics_.record_abort();
      depart(p);
      continue;
    }
    if (p.is_leecher() && p.pieces.all()) {
      metrics_.record_completion(static_cast<double>(round_ - p.joined + 1),
                                 p.bandwidth_class);
      if (trace_ != nullptr) {
        trace_->peer_complete(round_, id, static_cast<double>(round_ - p.joined + 1));
      }
      if (p.instrumented) {
        ClientRecord& record = metrics_.client_record(id, p.joined);
        record.completed = true;
        record.completed_round = round_;
      }
      if (config_.seed_linger_rounds > 0) {
        p.is_seed = true;
        p.seed_until = round_ + config_.seed_linger_rounds;
        p.connections.clear();  // drops one side; fix symmetric side below
        p.inflight.clear();
        // Remove this peer from others' connection sets.
        for (PeerId nb : p.neighbors.as_vector()) {
          if (is_live(nb)) {
            peers_[nb]->connections.erase(id);
            peers_[nb]->inflight.erase(id);
          }
        }
      } else {
        depart(p);
      }
    } else if (p.is_seed && p.seed_until != 0 && round_ >= p.seed_until) {
      depart(p);
    }
  }
  sweep_departed();
}

void Swarm::phase_shake() {
  if (!config_.shake.enabled) {
    return;
  }
  const auto threshold = static_cast<std::size_t>(config_.shake.completion_fraction *
                                                  static_cast<double>(config_.num_pieces));
  for (PeerId id : live_) {
    if (departed_[id]) {
      continue;
    }
    Peer& p = *peers_[id];
    if (p.is_seed || p.shaken || p.pieces.count() < threshold) {
      continue;
    }
    // Drop the whole neighbor set (and with it all connections)...
    const std::vector<PeerId> old_neighbors = p.neighbors.as_vector();
    for (PeerId nb : old_neighbors) {
      if (nb < peers_.size() && peers_[nb] != nullptr) {
        peers_[nb]->neighbors.erase(id);
        peers_[nb]->connections.erase(id);
        peers_[nb]->inflight.erase(id);
      }
    }
    p.neighbors.clear();
    p.connections.clear();
    p.inflight.clear();
    p.potential.clear();
    // ...and fetch a fresh random peer set from the tracker.
    assign_initial_neighbors(id);
    p.shaken = true;
    if (trace_ != nullptr) {
      trace_->peer_set_shake(round_, id);
    }
  }
}

void Swarm::phase_record_metrics() {
  std::size_t leechers = 0;
  std::size_t seeds = 0;
  double eff_trading_sum = 0.0;
  std::size_t eff_trading_n = 0;
  double eff_all_sum = 0.0;
  std::size_t eff_all_n = 0;
  double eff_transfer_sum = 0.0;
  std::size_t eff_transfer_n = 0;

  for (PeerId id : live_) {
    const Peer& p = *peers_[id];
    if (p.is_seed) {
      ++seeds;
      continue;
    }
    ++leechers;
    const double n_over_k =
        static_cast<double>(p.connections.size()) / static_cast<double>(config_.max_connections);
    eff_all_sum += n_over_k;
    ++eff_all_n;
    if (!p.pieces.none()) {
      eff_trading_sum += n_over_k;
      ++eff_trading_n;
      // Upload-bandwidth utilization: pieces moved this round over k slots.
      std::size_t transferred = 0;
      for (auto it = p.acquired_rounds.rbegin();
           it != p.acquired_rounds.rend() && *it == round_; ++it) {
        ++transferred;
      }
      eff_transfer_sum += std::min(
          1.0, static_cast<double>(transferred) / static_cast<double>(config_.max_connections));
      ++eff_transfer_n;
    }
    metrics_.record_potential_observation(static_cast<std::uint32_t>(p.pieces.count()),
                                          static_cast<std::uint32_t>(p.potential.size()),
                                          static_cast<std::uint32_t>(p.neighbors.size()));
    metrics_.record_phase_round(static_cast<std::uint32_t>(p.connections.size()),
                                static_cast<std::uint32_t>(p.pieces.count()),
                                static_cast<std::uint32_t>(p.potential.size()),
                                config_.num_pieces);
    if (trace_ != nullptr) {
      trace_phase_transition(*peers_[id], static_cast<std::uint32_t>(p.connections.size()),
                             static_cast<std::uint32_t>(p.pieces.count()),
                             static_cast<std::uint32_t>(p.potential.size()));
    }
    // p_init: potential ratio observed on the round the first piece arrived.
    if (p.pieces.count() == 1 && !p.acquired_rounds.empty() &&
        p.acquired_rounds.front() == round_) {
      metrics_.record_bootstrap_exit(static_cast<std::uint32_t>(p.potential.size()),
                                     static_cast<std::uint32_t>(p.neighbors.size()));
    }
    if (p.instrumented) {
      ClientRecord& record = metrics_.client_record(id, p.joined);
      record.samples.push_back({round_, p.bytes_downloaded,
                                static_cast<std::uint32_t>(p.potential.size()),
                                static_cast<std::uint32_t>(p.neighbors.size()),
                                static_cast<std::uint32_t>(p.pieces.count()),
                                static_cast<std::uint32_t>(p.connections.size())});
      if (trace_ != nullptr) {
        trace_->client_sample(round_, id, static_cast<std::uint32_t>(p.potential.size()),
                              static_cast<std::uint32_t>(p.pieces.count()),
                              p.bytes_downloaded);
      }
    }
  }

  record_round_sample(leechers, seeds, entropy(),
                      eff_trading_n == 0 ? 0.0 : eff_trading_sum / eff_trading_n,
                      eff_all_n == 0 ? 0.0 : eff_all_sum / eff_all_n,
                      eff_transfer_n == 0 ? 0.0 : eff_transfer_sum / eff_transfer_n);
  tracker_.record_stats();
}

void Swarm::record_round_sample(std::size_t leechers, std::size_t seeds, double ent,
                                double eff_trading, double eff_all,
                                double eff_transfer) {
  metrics_.record_round(round_, leechers, seeds, ent, eff_trading, eff_all,
                        eff_transfer);
  if (trace_ != nullptr) {
    trace_->round_sample(round_, leechers, seeds, ent, eff_transfer);
  }
}

void Swarm::trace_phase_transition(Peer& p, std::uint32_t n, std::uint32_t b,
                                   std::uint32_t i) {
  // Mirror of model::classify_phase on (n, b, i), matching
  // SwarmMetrics::record_phase_round (kept local so bt does not depend
  // on the model library): 0 = bootstrap, 1 = efficient, 2 = last, 3 = done.
  std::uint8_t code;
  if (b >= config_.num_pieces) {
    code = 3;
  } else if (b == 0 || (b + n <= 1 && i == 0)) {
    code = 0;
  } else if (i == 0 && n == 0) {
    code = 2;
  } else {
    code = 1;
  }
  if (p.trace_phase != code) {
    trace_->phase_transition(round_, p.id,
                             p.trace_phase == 255 ? -1 : static_cast<int>(p.trace_phase),
                             static_cast<int>(code));
    p.trace_phase = code;
  }
}

void Swarm::step() {
  // Handshakes from the previous round have completed; upload budgets
  // refill; rate estimates decay.
  for (PeerId id : live_) {
    Peer& p = *peers_[id];
    p.fresh_connections.clear();
    p.upload_left = p.upload_per_round;
    if (config_.choke_algorithm == ChokeAlgorithm::RateBased) {
      for (auto it = p.received_rate.begin(); it != p.received_rate.end();) {
        it->second *= config_.rate_decay;
        it = it->second < 1e-3 ? p.received_rate.erase(it) : std::next(it);
      }
    }
  }
  phase_arrivals();
  // Tracker re-announce: under-connected leechers top their peer set up.
  if (config_.reannounce_interval != 0 && round_ != 0 &&
      round_ % config_.reannounce_interval == 0) {
    for (PeerId id : live_) {
      Peer& p = *peers_[id];
      if (p.is_leecher() && p.neighbors.size() < config_.peer_set_size) {
        assign_initial_neighbors(id);
      }
    }
  }
  phase_bootstrap();
  phase_rebuild_potential_sets();
  phase_prune_connections();
  phase_establish_connections();
  phase_exchange();
  phase_seed_service();
  phase_completions();
  phase_shake();
  phase_record_metrics();
  ++round_;
}

void Swarm::run_rounds(Round rounds) {
  for (Round r = 0; r < rounds; ++r) {
    step();
  }
}

double Swarm::entropy() const {
  std::uint32_t min_count = UINT32_MAX;
  std::uint32_t max_count = 0;
  for (std::uint32_t c : piece_counts_) {
    min_count = std::min(min_count, c);
    max_count = std::max(max_count, c);
  }
  if (max_count == 0) {
    return 1.0;  // no pieces anywhere: no skew
  }
  return static_cast<double>(min_count) / static_cast<double>(max_count);
}

void Swarm::check_invariants() const {
  std::vector<std::uint32_t> recount(config_.num_pieces, 0);
  for (PeerId id : live_) {
    MPBT_ASSERT_MSG(!departed_[id], "live list contains departed peer");
    const Peer& p = *peers_[id];
    MPBT_ASSERT_MSG(p.id == id, "peer id mismatch");
    for (PieceIndex piece : p.pieces.held_pieces()) {
      ++recount[piece];
    }
    for (PeerId nb : p.neighbors.as_vector()) {
      MPBT_ASSERT_MSG(nb != id, "peer is its own neighbor");
      MPBT_ASSERT_MSG(is_live(nb), "neighbor set contains departed peer");
      MPBT_ASSERT_MSG(peers_[nb]->neighbors.contains(id), "neighbor relation not symmetric");
    }
    for (PeerId c : p.connections.as_vector()) {
      MPBT_ASSERT_MSG(p.neighbors.contains(c), "connection to non-neighbor");
      MPBT_ASSERT_MSG(peers_[c]->connections.contains(id), "connection not symmetric");
    }
    for (const auto& [partner, flight] : p.inflight) {
      MPBT_ASSERT_MSG(p.connections.contains(partner), "in-flight piece on dead connection");
      MPBT_ASSERT_MSG(!p.pieces.test(flight.piece), "in-flight piece already held");
      MPBT_ASSERT_MSG(flight.blocks_done < config_.blocks_per_piece,
                      "in-flight piece should have completed");
    }
    if (p.is_leecher()) {
      MPBT_ASSERT_MSG(p.connections.size() <= config_.max_connections,
                      "connection count exceeds k");
    }
  }
  for (PieceIndex piece = 0; piece < config_.num_pieces; ++piece) {
    MPBT_ASSERT_MSG(recount[piece] == piece_counts_[piece],
                    "replication degree counter out of sync");
  }
}

}  // namespace mpbt::bt
