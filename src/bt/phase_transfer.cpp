#include "bt/phase_transfer.hpp"

#include <span>
#include <utility>

#include "bt/fault.hpp"
#include "bt/piece_selection.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mpbt::bt {

namespace {

/// Ensures `down` has a piece in flight from `up`; returns false when
/// nothing is selectable (strict tit-for-tat then drops the pair).
bool ensure_inflight(RoundContext& ctx, Peer& down, const Peer& up) {
  auto it = down.inflight.find(up.id);
  if (it != down.inflight.end()) {
    // Guard: the piece may have completed via another path meanwhile.
    if (down.pieces.test(it->second.piece)) {
      down.inflight.erase(it);
    } else {
      return true;
    }
  }
  // Select a new target: the uploader holds it, the downloader lacks it,
  // and it is not already in flight from another connection.
  // Fault tap (test-only): admit pieces already in flight elsewhere.
  const bool allow_duplicate = fault::enabled(fault::Fault::kDuplicateInflightPiece);
  std::vector<PieceIndex>& candidates = ctx.state.scratch_pieces;
  candidates.clear();
  up.pieces.for_each_missing_from(down.pieces, [&](PieceIndex piece) {
    if (!allow_duplicate) {
      for (const auto& [partner, flight] : down.inflight) {
        if (flight.piece == piece) {
          return;
        }
      }
    }
    candidates.push_back(piece);
  });
  if (candidates.empty()) {
    return false;
  }
  PieceIndex chosen;
  if (ctx.config.piece_selection == PieceSelection::Random ||
      (ctx.config.piece_selection == PieceSelection::RandomFirstThenRarest &&
       down.pieces.none())) {
    chosen = candidates[static_cast<std::size_t>(
        ctx.rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  } else {
    const std::vector<std::uint32_t>& availability = availability_for(ctx, down);
    chosen = candidates.front();
    std::size_t ties = 1;
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      const PieceIndex piece = candidates[c];
      if (availability[piece] < availability[chosen]) {
        chosen = piece;
        ties = 1;
      } else if (availability[piece] == availability[chosen]) {
        ++ties;
        if (ctx.rng.uniform_int(0, static_cast<std::int64_t>(ties) - 1) == 0) {
          chosen = piece;
        }
      }
    }
  }
  down.inflight[up.id] = Peer::InFlight{chosen, 0};
  return true;
}

/// Delivers one block of the in-flight piece; completes it when all
/// blocks have arrived.
void deliver_block(RoundContext& ctx, Peer& down, PeerId from) {
  const auto it = down.inflight.find(from);
  MPBT_ASSERT(it != down.inflight.end());
  Peer::InFlight& flight = it->second;
  ++flight.blocks_done;
  const std::uint32_t m = ctx.config.blocks_per_piece;
  const std::uint64_t block_bytes = ctx.config.piece_bytes / m;
  if (flight.blocks_done >= m) {
    // Final block carries any rounding remainder; the piece verifies and
    // joins the bitfield.
    down.bytes_downloaded +=
        ctx.config.piece_bytes - block_bytes * static_cast<std::uint64_t>(m - 1);
    const PieceIndex piece = flight.piece;
    down.inflight.erase(it);
    acquire_piece(ctx, down, piece, /*add_bytes=*/false);
  } else {
    down.bytes_downloaded += block_bytes;
  }
}

}  // namespace

std::optional<PieceIndex> seed_piece_for(RoundContext& ctx, Peer& seed,
                                         const Peer& taker) {
  MPBT_ASSERT(seed.is_seed);
  if (taker.pieces.all()) {
    return std::nullopt;
  }
  if (ctx.config.seed_mode == SwarmConfig::SeedMode::Classic) {
    // First piece is random (random-piece-first); afterwards the taker's
    // configured piece selection applies.
    if (taker.pieces.none()) {
      return select_random(taker.pieces, seed.pieces, ctx.rng);
    }
    return select_piece(ctx.config.piece_selection, taker.pieces, seed.pieces,
                        availability_for(ctx, taker), ctx.rng);
  }
  // Super-seeding: serve the piece this seed has injected least often,
  // breaking ties by global rarity, then uniformly.
  auto& served = ctx.state.seed_served[seed.id];
  if (served.empty()) {
    served.assign(ctx.config.num_pieces, 0);
  }
  std::optional<PieceIndex> chosen;
  std::size_t ties = 0;
  taker.pieces.for_each_missing([&](PieceIndex piece) {
    if (!chosen.has_value()) {
      chosen = piece;
      ties = 1;
      return;
    }
    const auto key = std::make_pair(served[piece], ctx.piece_counts[piece]);
    const auto best = std::make_pair(served[*chosen], ctx.piece_counts[*chosen]);
    if (key < best) {
      chosen = piece;
      ties = 1;
    } else if (key == best) {
      ++ties;
      if (ctx.rng.uniform_int(0, static_cast<std::int64_t>(ties) - 1) == 0) {
        chosen = piece;
      }
    }
  });
  if (chosen.has_value()) {
    ++served[*chosen];
  }
  return chosen;
}

void run_bootstrap(RoundContext& ctx) {
  // Reset per-round seed upload budgets.
  ctx.state.seed_budget.clear();
  for (const PeerId id : ctx.store.live()) {
    if (ctx.store.is_live(id) && ctx.store.get(id).is_seed) {
      ctx.state.seed_budget[id] = ctx.config.seed_capacity;
    }
  }

  for (const PeerId id : shuffled_live_leechers(ctx)) {
    Peer& p = ctx.store.get(id);
    if (!p.pieces.none()) {
      continue;
    }
    // First choice: a neighboring seed with upload budget (a peer "acquires
    // its first piece either through seeds or through optimistic unchoking",
    // Section 3.1).
    PeerId source = kNoPeer;
    for (const PeerId nb : p.neighbors.as_vector()) {
      if (!ctx.store.is_live(nb)) {
        continue;
      }
      if (ctx.store.get(nb).is_seed) {
        auto budget = ctx.state.seed_budget.find(nb);
        if (budget != ctx.state.seed_budget.end() && budget->second > 0) {
          --budget->second;
          source = nb;
          break;
        }
      }
    }
    if (source == kNoPeer) {
      // Optimistic unchoke from a piece-holding leecher neighbor.
      if (!ctx.rng.bernoulli(ctx.config.optimistic_unchoke_prob)) {
        continue;
      }
      std::vector<PeerId>& holders = ctx.state.scratch_ids;
      holders.clear();
      for (const PeerId nb : p.neighbors.as_vector()) {
        if (ctx.store.is_live(nb)) {
          const Peer& q = ctx.store.get(nb);
          if (q.is_leecher() && !q.pieces.none()) {
            holders.push_back(nb);
          }
        }
      }
      if (holders.empty()) {
        continue;
      }
      source = holders[static_cast<std::size_t>(
          ctx.rng.uniform_int(0, static_cast<std::int64_t>(holders.size()) - 1))];
    }
    // The first piece is selected randomly (random-piece-first policy);
    // super-seeding seeds instead inject their least-served piece.
    Peer& src = ctx.store.get(source);
    const auto choice = src.is_seed ? seed_piece_for(ctx, src, p)
                                    : select_random(p.pieces, src.pieces, ctx.rng);
    MPBT_ASSERT(choice.has_value());
    acquire_piece(ctx, p, *choice);
  }
}

void run_exchange(RoundContext& ctx) {
  const SwarmConfig& config = ctx.config;
  // received_rate feeds rate-based choking only; skip the per-pair map
  // updates (and their node allocations) under the other algorithms.
  const bool track_rates = config.choke_algorithm == ChokeAlgorithm::RateBased;
  // Collect unordered connection pairs, then process in random order.
  std::vector<std::pair<PeerId, PeerId>>& pairs = ctx.state.scratch_pairs;
  pairs.clear();
  for (const PeerId id : ctx.store.live()) {
    if (!ctx.store.is_live(id)) {
      continue;
    }
    for (const PeerId other : ctx.store.get(id).connections.as_vector()) {
      if (id < other) {
        pairs.emplace_back(id, other);
      }
    }
  }
  ctx.rng.shuffle(std::span<std::pair<PeerId, PeerId>>(pairs));

  for (const auto& [ida, idb] : pairs) {
    Peer& a = ctx.store.get(ida);
    Peer& b = ctx.store.get(idb);
    if (!a.connections.contains(idb)) {
      continue;  // dropped earlier this round
    }
    if (a.fresh_connections.contains(idb)) {
      continue;  // still handshaking; exchanges start next round
    }
    if (a.upload_left == 0 || b.upload_left == 0) {
      // An upload-throttled side cannot reciprocate this round; under
      // strict tit-for-tat the pair idles (the connection survives).
      continue;
    }
    if (config.blocks_per_piece > 1) {
      // Block-granular transfer: one block per direction per round.
      const bool a_ok = ensure_inflight(ctx, a, b);
      const bool b_ok = ensure_inflight(ctx, b, a);
      if (!a_ok || !b_ok) {
        // Strict tit-for-tat at block level: nothing to reciprocate.
        disconnect_peers(ctx, a, b);
        if (ctx.trace != nullptr) {
          ctx.trace->connection_drop(ctx.round, ida, idb,
                                     obs::DropReason::kNothingToTrade);
        }
        continue;
      }
      deliver_block(ctx, a, idb);
      deliver_block(ctx, b, ida);
      if (track_rates) {
        const double block_fraction =
            1.0 / static_cast<double>(config.blocks_per_piece);
        a.received_rate[idb] += block_fraction;
        b.received_rate[ida] += block_fraction;
      }
      if (a.upload_left != UINT32_MAX) {
        --a.upload_left;
      }
      if (b.upload_left != UINT32_MAX) {
        --b.upload_left;
      }
      if (config.availability_scope == AvailabilityScope::NeighborSet) {
        ctx.state.invalidate_availability();
      }
      continue;
    }
    const auto piece_for_a = select_piece(config.piece_selection, a.pieces, b.pieces,
                                          availability_for(ctx, a), ctx.rng);
    const auto piece_for_b = select_piece(config.piece_selection, b.pieces, a.pieces,
                                          availability_for(ctx, b), ctx.rng);
    if (!piece_for_a.has_value() || !piece_for_b.has_value()) {
      // Strict tit-for-tat: no one-sided transfers; the connection fails.
      disconnect_peers(ctx, a, b);
      if (ctx.trace != nullptr) {
        ctx.trace->connection_drop(ctx.round, ida, idb,
                                   obs::DropReason::kNothingToTrade);
      }
      continue;
    }
    acquire_piece(ctx, a, *piece_for_a);
    acquire_piece(ctx, b, *piece_for_b);
    if (track_rates) {
      a.received_rate[idb] += 1.0;
      b.received_rate[ida] += 1.0;
    }
    if (a.upload_left != UINT32_MAX) {
      --a.upload_left;
    }
    if (b.upload_left != UINT32_MAX) {
      --b.upload_left;
    }
    // Acquisitions invalidate cached neighborhood availability.
    if (config.availability_scope == AvailabilityScope::NeighborSet) {
      ctx.state.invalidate_availability();
    }
  }

  // p_r estimate: fraction of round-start connections still alive.
  std::uint64_t survived = 0;
  for (const auto& [ida, idb] : ctx.state.round_start_connections) {
    if (ctx.store.is_live(ida) && ctx.store.is_live(idb) &&
        ctx.store.get(ida).connections.contains(idb)) {
      ++survived;
    }
  }
  ctx.metrics.record_connection_survival(ctx.state.round_start_connections.size(),
                                         survived);
}

void run_seed_service(RoundContext& ctx) {
  if (!ctx.config.seeds_serve_all) {
    return;
  }
  for (auto& [seed_id, budget] : ctx.state.seed_budget) {
    if (!ctx.store.is_live(seed_id) || budget == 0) {
      continue;
    }
    Peer& seed = ctx.store.get(seed_id);
    std::vector<PeerId>& takers = ctx.state.scratch_ids;
    takers.clear();
    for (const PeerId nb : seed.neighbors.as_vector()) {
      if (ctx.store.is_live(nb)) {
        const Peer& q = ctx.store.get(nb);
        if (q.is_leecher() && !q.pieces.all() && !q.pieces.none()) {
          takers.push_back(nb);
        }
      }
    }
    ctx.rng.shuffle(std::span<PeerId>(takers));
    for (const PeerId taker : takers) {
      if (budget == 0) {
        break;
      }
      Peer& p = ctx.store.get(taker);
      const auto choice = seed_piece_for(ctx, seed, p);
      if (choice.has_value()) {
        acquire_piece(ctx, p, *choice);
        --budget;
      }
    }
  }
}

}  // namespace mpbt::bt
