// Transfer phase: bootstrap piece injection, tit-for-tat piece/block
// exchange over connections, and seed service (steps 2, 6 and 7 of the
// round).
#pragma once

#include <optional>

#include "bt/round_context.hpp"

namespace mpbt::bt {

/// Piece a seed should upload to `taker`, honoring the seed mode
/// (random-piece-first for classic seeds, least-served for super-seeds).
std::optional<PieceIndex> seed_piece_for(RoundContext& ctx, Peer& seed,
                                         const Peer& taker);

/// Step 2: piece-less peers acquire their first piece through seeds or
/// optimistic unchoking (Section 3.1).
void run_bootstrap(RoundContext& ctx);

/// Step 6: exchange pieces (or blocks) over connections under strict
/// tit-for-tat; a pair with nothing to trade in either direction drops.
void run_exchange(RoundContext& ctx);

/// Step 7: seeds spend leftover upload budget on piece-holding leechers
/// (only when seeds_serve_all is configured).
void run_seed_service(RoundContext& ctx);

}  // namespace mpbt::bt
