// Membership phase: peer creation, Poisson arrivals, departures,
// completion handling and seed linger (steps 1 and 8 of the round).
#pragma once

#include <vector>

#include "bt/round_context.hpp"

namespace mpbt::bt {

/// Creates a peer (optionally pre-seeded per `piece_probs`, or a full
/// seed), samples its bandwidth class, and registers it with the
/// tracker. Does not wire neighbors — see fetch_neighbors().
PeerId create_peer(RoundContext& ctx, const std::vector<double>& piece_probs,
                   bool as_seed);

/// Removes a peer from the swarm: trace + tracker deregistration,
/// symmetric neighbor/connection cleanup, replication-count decrement.
/// The id stays in the live list (as a hole) until the completion
/// phase's sweep.
void depart(RoundContext& ctx, Peer& p);

/// Start-of-round housekeeping: handshakes from the previous round
/// complete, upload budgets refill, rate estimates decay.
void run_round_prologue(RoundContext& ctx);

/// Step 1: admit Poisson arrivals (capped at max_population).
void run_arrivals(RoundContext& ctx);

/// Step 8: abort sampling, completion accounting, linger-or-depart, and
/// the live-list sweep.
void run_completions(RoundContext& ctx);

}  // namespace mpbt::bt
