// Peer-set shaking (Section 7.1): once past the configured completion
// fraction, a leecher drops its entire peer set and refetches a fresh
// one from the tracker (step 9 of the round).
#pragma once

#include "bt/round_context.hpp"

namespace mpbt::bt {

void run_shake(RoundContext& ctx);

}  // namespace mpbt::bt
