// Connections phase: tit-for-tat connection pruning and establishment,
// including the rate-based choking variant (steps 4 and 5 of the round).
#pragma once

#include "bt/round_context.hpp"

namespace mpbt::bt {

/// Step 4: snapshot round-start connections for the p_r estimate, then
/// drop connections whose partner departed or lost mutual interest.
void run_prune_connections(RoundContext& ctx);

/// Step 5: establish new connections up to k per peer — optimistic
/// tit-for-tat by default, rate-based choking (Section 2.1) when
/// configured.
void run_establish_connections(RoundContext& ctx);

}  // namespace mpbt::bt
