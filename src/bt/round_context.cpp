#include "bt/round_context.hpp"

#include <span>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mpbt::bt {

const std::vector<PeerId>& shuffled_live_leechers(RoundContext& ctx) {
  std::vector<PeerId>& out = ctx.state.scratch_leechers;
  out.clear();
  for (const PeerId id : ctx.store.live()) {
    if (ctx.store.is_live(id) && ctx.store.get(id).is_leecher()) {
      out.push_back(id);
    }
  }
  ctx.rng.shuffle(std::span<PeerId>(out));
  return out;
}

void connect_peers(RoundContext& ctx, Peer& a, Peer& b) {
  MPBT_ASSERT(a.id != b.id);
  a.connections.insert(b.id);
  b.connections.insert(a.id);
  if (ctx.trace != nullptr) {
    ctx.trace->unchoke(ctx.round, a.id, b.id);
  }
}

void disconnect_peers(RoundContext& ctx, Peer& a, Peer& b) {
  a.connections.erase(b.id);
  b.connections.erase(a.id);
  // Partial pieces in flight over this connection are lost (they cannot
  // be served and we do not model cross-connection block resume).
  a.inflight.erase(b.id);
  b.inflight.erase(a.id);
  if (ctx.trace != nullptr) {
    ctx.trace->choke(ctx.round, a.id, b.id);
  }
}

void acquire_piece(RoundContext& ctx, Peer& p, PieceIndex piece, bool add_bytes) {
  MPBT_ASSERT(!p.pieces.test(piece));
  p.pieces.set(piece);
  ++ctx.piece_counts[piece];
  // A piece completed through another path (e.g. seed service) cancels any
  // partial download of the same piece still in flight on a connection.
  if (ctx.config.blocks_per_piece > 1) {
    for (auto it = p.inflight.begin(); it != p.inflight.end();) {
      it = it->second.piece == piece ? p.inflight.erase(it) : std::next(it);
    }
  }
  if (add_bytes) {
    p.bytes_downloaded += ctx.config.piece_bytes;
  }
  const auto ordinal = static_cast<std::uint32_t>(p.pieces.count());
  const Round prev_round =
      p.acquired_rounds.empty() ? p.joined : p.acquired_rounds.back();
  p.acquired_rounds.push_back(ctx.round);
  ctx.metrics.record_acquisition(ordinal,
                                 static_cast<double>(ctx.round - p.joined + 1),
                                 static_cast<double>(ctx.round - prev_round + 1));
  if (ctx.trace != nullptr) {
    ctx.trace->piece_acquired(ctx.round, p.id, piece);
  }
}

const std::vector<std::uint32_t>& availability_for(RoundContext& ctx, const Peer& p) {
  if (ctx.config.availability_scope == AvailabilityScope::Global) {
    return ctx.piece_counts;
  }
  RoundState& state = ctx.state;
  if (state.avail_stamp.size() < ctx.store.size()) {
    state.avail_stamp.resize(ctx.store.size(), 0);
    state.avail_counts.resize(ctx.store.size());
  }
  std::vector<std::uint32_t>& counts = state.avail_counts[p.id];
  if (state.avail_stamp[p.id] != state.avail_epoch) {
    counts.assign(ctx.config.num_pieces, 0);
    for (const PeerId nb : p.neighbors.as_vector()) {
      if (!ctx.store.is_live(nb)) {
        continue;
      }
      ctx.store.get(nb).pieces.for_each_held(
          [&counts](PieceIndex piece) { ++counts[piece]; });
    }
    state.avail_stamp[p.id] = state.avail_epoch;
  }
  return counts;
}

}  // namespace mpbt::bt
