#include "bt/phase_membership.hpp"

#include "bt/fault.hpp"
#include "bt/phase_neighbors.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mpbt::bt {

PeerId create_peer(RoundContext& ctx, const std::vector<double>& piece_probs,
                   bool as_seed) {
  const SwarmConfig& config = ctx.config;
  const PeerId id = ctx.store.create(config.num_pieces, ctx.round);
  Peer& p = ctx.store.get(id);
  p.is_seed = as_seed;
  if (as_seed) {
    for (PieceIndex piece = 0; piece < config.num_pieces; ++piece) {
      p.pieces.set(piece);
      ++ctx.piece_counts[piece];
    }
  } else if (!piece_probs.empty()) {
    MPBT_ASSERT(piece_probs.size() == config.num_pieces);
    for (PieceIndex piece = 0; piece < config.num_pieces; ++piece) {
      if (ctx.rng.bernoulli(piece_probs[piece])) {
        p.pieces.set(piece);
        ++ctx.piece_counts[piece];
      }
    }
    if (p.pieces.all()) {
      // Keep the peer a leecher: drop one random piece.
      const auto drop = static_cast<PieceIndex>(
          ctx.rng.uniform_int(0, static_cast<std::int64_t>(config.num_pieces) - 1));
      p.pieces.reset(drop);
      --ctx.piece_counts[drop];
    }
    // Pre-seeded pieces count as acquired at the join round.
    p.acquired_rounds.assign(p.pieces.count(), ctx.round);
  }
  if (!config.bandwidth_classes.empty() && !as_seed) {
    // Sample the peer's bandwidth class proportionally to the fractions.
    double total = 0.0;
    for (const auto& cls : config.bandwidth_classes) {
      total += cls.fraction;
    }
    double u = ctx.rng.uniform01() * total;
    std::size_t chosen = config.bandwidth_classes.size() - 1;
    for (std::size_t c = 0; c < config.bandwidth_classes.size(); ++c) {
      u -= config.bandwidth_classes[c].fraction;
      if (u < 0.0) {
        chosen = c;
        break;
      }
    }
    p.bandwidth_class = static_cast<std::uint32_t>(chosen);
    p.upload_per_round = config.bandwidth_classes[chosen].upload_per_round;
    p.upload_left = p.upload_per_round;
  }
  ctx.tracker.add_peer(id);
  if (ctx.trace != nullptr) {
    ctx.trace->peer_join(ctx.round, id, as_seed);
  }
  return id;
}

void depart(RoundContext& ctx, Peer& p) {
  // Fault taps (test-only, see bt/fault.hpp): hoisted to locals so the
  // hot path pays one thread-local read per call, not per partner.
  const bool skip_repair = fault::enabled(fault::Fault::kSkipDepartureRepair);
  const bool skip_decrement = fault::enabled(fault::Fault::kSkipPieceCountDecrement);
  ctx.store.mark_departed(p.id);
  if (ctx.trace != nullptr) {
    ctx.trace->peer_leave(ctx.round, p.id);
  }
  ctx.tracker.remove_peer(p.id);
  if (!skip_repair) {
    for (const PeerId nb : p.neighbors.as_vector()) {
      if (ctx.store.exists(nb)) {
        Peer& q = ctx.store.get(nb);
        q.neighbors.erase(p.id);
        q.connections.erase(p.id);
        q.inflight.erase(p.id);
      }
    }
  }
  p.neighbors.clear();
  p.connections.clear();
  p.inflight.clear();
  if (!skip_decrement) {
    p.pieces.for_each_held([&ctx](PieceIndex piece) {
      MPBT_ASSERT(ctx.piece_counts[piece] > 0);
      --ctx.piece_counts[piece];
    });
  }
}

void run_round_prologue(RoundContext& ctx) {
  const bool rate_based = ctx.config.choke_algorithm == ChokeAlgorithm::RateBased;
  for (const PeerId id : ctx.store.live()) {
    Peer& p = ctx.store.get(id);
    p.fresh_connections.clear();
    p.upload_left = p.upload_per_round;
    if (rate_based) {
      for (auto it = p.received_rate.begin(); it != p.received_rate.end();) {
        it->second *= ctx.config.rate_decay;
        it = it->second < 1e-3 ? p.received_rate.erase(it) : std::next(it);
      }
    }
  }
}

void run_arrivals(RoundContext& ctx) {
  const SwarmConfig& config = ctx.config;
  if (config.arrival_cutoff_round != 0 && ctx.round >= config.arrival_cutoff_round) {
    return;
  }
  const int arrivals = ctx.rng.poisson(config.arrival_rate);
  for (int i = 0; i < arrivals; ++i) {
    if (config.max_population != 0 && ctx.store.live().size() >= config.max_population) {
      ctx.metrics.record_dropped_arrival();
      continue;
    }
    // Instrumented clients arrive empty to expose the full bootstrap.
    const bool instrumented = ctx.instrument_next;
    const PeerId id = create_peer(ctx,
                                  instrumented ? std::vector<double>{}
                                               : config.arrival_piece_probs,
                                  /*as_seed=*/false);
    fetch_neighbors(ctx, id);
    if (instrumented) {
      ctx.instrument_next = false;
      ctx.store.get(id).instrumented = true;
      ctx.metrics.client_record(id, ctx.round);
    }
  }
}

void run_completions(RoundContext& ctx) {
  const SwarmConfig& config = ctx.config;
  for (const PeerId id : ctx.store.live()) {
    if (!ctx.store.is_live(id)) {
      continue;
    }
    Peer& p = ctx.store.get(id);
    if (p.is_leecher() && !p.pieces.all() && config.abort_rate > 0.0 &&
        ctx.rng.bernoulli(config.abort_rate)) {
      ctx.metrics.record_abort();
      depart(ctx, p);
      continue;
    }
    if (p.is_leecher() && p.pieces.all()) {
      ctx.metrics.record_completion(static_cast<double>(ctx.round - p.joined + 1),
                                    p.bandwidth_class);
      if (ctx.trace != nullptr) {
        ctx.trace->peer_complete(ctx.round, id,
                                 static_cast<double>(ctx.round - p.joined + 1));
      }
      if (p.instrumented) {
        ClientRecord& record = ctx.metrics.client_record(id, p.joined);
        record.completed = true;
        record.completed_round = ctx.round;
      }
      if (config.seed_linger_rounds > 0) {
        p.is_seed = true;
        p.seed_until = ctx.round + config.seed_linger_rounds;
        p.connections.clear();  // drops one side; fix symmetric side below
        p.inflight.clear();
        // Remove this peer from others' connection sets.
        for (const PeerId nb : p.neighbors.as_vector()) {
          if (ctx.store.is_live(nb)) {
            Peer& q = ctx.store.get(nb);
            q.connections.erase(id);
            q.inflight.erase(id);
          }
        }
      } else {
        depart(ctx, p);
      }
    } else if (p.is_seed && p.seed_until != 0 && ctx.round >= p.seed_until) {
      depart(ctx, p);
    }
  }
  ctx.store.sweep_departed();
}

}  // namespace mpbt::bt
