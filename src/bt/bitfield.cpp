#include "bt/bitfield.hpp"

#include <bit>

#include "util/assert.hpp"

namespace mpbt::bt {

namespace {
constexpr std::size_t kWordBits = 64;
}

Bitfield::Bitfield(std::size_t num_pieces)
    : num_pieces_(num_pieces), words_((num_pieces + kWordBits - 1) / kWordBits, 0) {
  util::throw_if_invalid(num_pieces == 0, "Bitfield requires at least one piece");
}

void Bitfield::check_index(PieceIndex piece) const {
  util::throw_if_out_of_range(piece >= num_pieces_, "Bitfield piece index out of range");
}

void Bitfield::check_same_size(const Bitfield& other) const {
  util::throw_if_invalid(num_pieces_ != other.num_pieces_, "Bitfield size mismatch");
}

bool Bitfield::test(PieceIndex piece) const {
  check_index(piece);
  return (words_[piece / kWordBits] >> (piece % kWordBits)) & 1ULL;
}

void Bitfield::set(PieceIndex piece) {
  check_index(piece);
  std::uint64_t& word = words_[piece / kWordBits];
  const std::uint64_t mask = 1ULL << (piece % kWordBits);
  if (!(word & mask)) {
    word |= mask;
    ++count_;
  }
}

void Bitfield::reset(PieceIndex piece) {
  check_index(piece);
  std::uint64_t& word = words_[piece / kWordBits];
  const std::uint64_t mask = 1ULL << (piece % kWordBits);
  if (word & mask) {
    word &= ~mask;
    --count_;
  }
}

bool Bitfield::has_piece_missing_from(const Bitfield& other) const {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] & ~other.words_[w]) {
      return true;
    }
  }
  return false;
}

std::vector<PieceIndex> Bitfield::pieces_missing_from(const Bitfield& other) const {
  check_same_size(other);
  std::vector<PieceIndex> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w] & ~other.words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<PieceIndex>(w * kWordBits + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<PieceIndex> Bitfield::held_pieces() const {
  std::vector<PieceIndex> out;
  out.reserve(count_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<PieceIndex>(w * kWordBits + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<PieceIndex> Bitfield::missing_pieces() const {
  std::vector<PieceIndex> out;
  out.reserve(num_pieces_ - count_);
  for (PieceIndex p = 0; p < num_pieces_; ++p) {
    if (!test(p)) {
      out.push_back(p);
    }
  }
  return out;
}

std::size_t Bitfield::intersection_count(const Bitfield& other) const {
  check_same_size(other);
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
  }
  return n;
}

bool Bitfield::operator==(const Bitfield& other) const {
  return num_pieces_ == other.num_pieces_ && words_ == other.words_;
}

}  // namespace mpbt::bt
