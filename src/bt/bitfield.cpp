#include "bt/bitfield.hpp"

#include <bit>

#include "util/assert.hpp"

namespace mpbt::bt {

Bitfield::Bitfield(std::size_t num_pieces)
    : num_pieces_(num_pieces), words_((num_pieces + kWordBits - 1) / kWordBits, 0) {
  util::throw_if_invalid(num_pieces == 0, "Bitfield requires at least one piece");
}

std::vector<PieceIndex> Bitfield::pieces_missing_from(const Bitfield& other) const {
  check_same_size(other);
  std::vector<PieceIndex> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w] & ~other.words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<PieceIndex>(w * kWordBits + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<PieceIndex> Bitfield::held_pieces() const {
  std::vector<PieceIndex> out;
  out.reserve(count_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<PieceIndex>(w * kWordBits + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<PieceIndex> Bitfield::missing_pieces() const {
  std::vector<PieceIndex> out;
  out.reserve(num_pieces_ - count_);
  for (PieceIndex p = 0; p < num_pieces_; ++p) {
    if (!test(p)) {
      out.push_back(p);
    }
  }
  return out;
}

PieceIndex Bitfield::nth_missing_from(const Bitfield& other, std::size_t n) const {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w] & ~other.words_[w];
    const auto in_word = static_cast<std::size_t>(std::popcount(bits));
    if (n >= in_word) {
      n -= in_word;
      continue;
    }
    while (n > 0) {
      bits &= bits - 1;
      --n;
    }
    return static_cast<PieceIndex>(w * kWordBits +
                                   static_cast<std::size_t>(std::countr_zero(bits)));
  }
  util::throw_if_out_of_range(true, "Bitfield::nth_missing_from: index out of range");
  return 0;  // unreachable
}

bool Bitfield::operator==(const Bitfield& other) const {
  return num_pieces_ == other.num_pieces_ && words_ == other.words_;
}

}  // namespace mpbt::bt
