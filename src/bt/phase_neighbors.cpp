#include "bt/phase_neighbors.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>

#include "bt/fault.hpp"
#include "bt/peer.hpp"

namespace mpbt::bt {

void fetch_neighbors(RoundContext& ctx, PeerId id) {
  const SwarmConfig& config = ctx.config;
  Peer& p = ctx.store.checked(id);
  const std::size_t want = config.peer_set_size;
  if (p.neighbors.size() >= want) {
    return;
  }
  const std::size_t missing = want - p.neighbors.size();
  std::vector<PeerId> sampled;
  switch (config.tracker_policy) {
    case TrackerPolicy::UniformRandom:
      sampled = ctx.tracker.sample_peers(missing, id, ctx.rng);
      break;
    case TrackerPolicy::BootstrapBias: {
      // Half the peer set comes from currently starving peers, giving
      // bootstrap-trapped peers fresh contacts (Section 4.3).
      std::vector<PeerId> starving;
      for (const PeerId candidate : ctx.state.starving) {
        if (candidate != id && ctx.store.is_live(candidate)) {
          starving.push_back(candidate);
        }
      }
      ctx.rng.shuffle(std::span<PeerId>(starving));
      const std::size_t biased = std::min(starving.size(), missing / 2);
      sampled.assign(starving.begin(),
                     starving.begin() + static_cast<std::ptrdiff_t>(biased));
      ctx.state.begin_marks(ctx.store.size());
      for (const PeerId already : sampled) {
        ctx.state.mark(already);
      }
      for (const PeerId other : ctx.tracker.sample_peers(missing, id, ctx.rng)) {
        if (sampled.size() >= missing) {
          break;
        }
        if (!ctx.state.marked(other)) {
          ctx.state.mark(other);
          sampled.push_back(other);
        }
      }
      break;
    }
    case TrackerPolicy::StatusClustered: {
      // Oversample, then keep the peers whose piece counts are closest to
      // the joiner's (the clustering suggestion of ref. [8]).
      std::vector<PeerId> pool = ctx.tracker.sample_peers(missing * 3, id, ctx.rng);
      const auto joiner_pieces = static_cast<long long>(p.pieces.count());
      std::stable_sort(pool.begin(), pool.end(), [&](PeerId a, PeerId b) {
        const auto da = std::llabs(
            static_cast<long long>(ctx.store.get(a).pieces.count()) - joiner_pieces);
        const auto db = std::llabs(
            static_cast<long long>(ctx.store.get(b).pieces.count()) - joiner_pieces);
        return da < db;
      });
      if (pool.size() > missing) {
        pool.resize(missing);
      }
      sampled = std::move(pool);
      break;
    }
  }
  // Fault tap (test-only): drop the reciprocal insert below.
  const bool asymmetric = fault::enabled(fault::Fault::kAsymmetricNeighborInsert);
  for (const PeerId other : sampled) {
    if (!ctx.store.is_live(other) || other == id) {
      continue;
    }
    Peer& q = ctx.store.get(other);
    p.neighbors.insert(other);
    if (!asymmetric) {
      q.neighbors.insert(id);  // NS is symmetric (Section 2.1)
    }
  }
}

void run_reannounce(RoundContext& ctx) {
  const SwarmConfig& config = ctx.config;
  if (config.reannounce_interval == 0 || ctx.round == 0 ||
      ctx.round % config.reannounce_interval != 0) {
    return;
  }
  for (const PeerId id : ctx.store.live()) {
    const Peer& p = ctx.store.get(id);
    if (p.is_leecher() && p.neighbors.size() < config.peer_set_size) {
      fetch_neighbors(ctx, id);
    }
  }
}

void run_rebuild_potential_sets(RoundContext& ctx) {
  ctx.state.invalidate_availability();
  ctx.state.starving.clear();
  for (const PeerId id : ctx.store.live()) {
    if (!ctx.store.is_live(id)) {
      continue;
    }
    Peer& p = ctx.store.get(id);
    p.potential.clear();
    if (p.is_seed || p.pieces.none()) {
      continue;
    }
    for (const PeerId nb : p.neighbors.as_vector()) {
      if (!ctx.store.is_live(nb)) {
        continue;
      }
      const Peer& q = ctx.store.get(nb);
      if (q.is_seed) {
        continue;  // seeds are served outside tit-for-tat
      }
      if (mutually_interested(p.pieces, q.pieces)) {
        p.potential.push_back(nb);
      }
    }
    // A trading-capable peer whose potential set is empty despite having
    // neighbors is starving — the paper's failed-encounter condition.
    if (p.potential.empty() && !p.neighbors.empty()) {
      ctx.metrics.record_failed_encounter();
      ctx.state.starving.push_back(id);
    }
  }
}

}  // namespace mpbt::bt
