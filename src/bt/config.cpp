#include "bt/config.hpp"

#include <string>

#include "util/assert.hpp"

namespace mpbt::bt {

void SwarmConfig::validate() const {
  util::throw_if_invalid(num_pieces == 0, "SwarmConfig: num_pieces must be >= 1");
  util::throw_if_invalid(max_connections == 0, "SwarmConfig: max_connections must be >= 1");
  util::throw_if_invalid(peer_set_size == 0, "SwarmConfig: peer_set_size must be >= 1");
  util::throw_if_invalid(arrival_rate < 0.0, "SwarmConfig: arrival_rate must be >= 0");
  util::throw_if_invalid(abort_rate < 0.0 || abort_rate > 1.0,
                         "SwarmConfig: abort_rate must be in [0, 1]");
  util::throw_if_invalid(optimistic_unchoke_prob < 0.0 || optimistic_unchoke_prob > 1.0,
                         "SwarmConfig: optimistic_unchoke_prob must be in [0, 1]");
  util::throw_if_invalid(connect_success_prob < 0.0 || connect_success_prob > 1.0,
                         "SwarmConfig: connect_success_prob must be in [0, 1]");
  util::throw_if_invalid(shake.completion_fraction <= 0.0 || shake.completion_fraction > 1.0,
                         "SwarmConfig: shake.completion_fraction must be in (0, 1]");
  util::throw_if_invalid(piece_bytes == 0, "SwarmConfig: piece_bytes must be >= 1");
  util::throw_if_invalid(blocks_per_piece == 0, "SwarmConfig: blocks_per_piece must be >= 1");
  util::throw_if_invalid(optimistic_interval == 0,
                         "SwarmConfig: optimistic_interval must be >= 1");
  util::throw_if_invalid(rate_decay < 0.0 || rate_decay >= 1.0,
                         "SwarmConfig: rate_decay must be in [0, 1)");
  util::throw_if_invalid(
      !arrival_piece_probs.empty() && arrival_piece_probs.size() != num_pieces,
      "SwarmConfig: arrival_piece_probs must be empty or have num_pieces entries");
  for (double p : arrival_piece_probs) {
    util::throw_if_invalid(p < 0.0 || p > 1.0,
                           "SwarmConfig: arrival piece probabilities must be in [0, 1]");
  }
  double class_mass = 0.0;
  for (const BandwidthClass& cls : bandwidth_classes) {
    util::throw_if_invalid(cls.fraction < 0.0, "SwarmConfig: class fraction must be >= 0");
    util::throw_if_invalid(cls.upload_per_round == 0,
                           "SwarmConfig: class upload_per_round must be >= 1");
    class_mass += cls.fraction;
  }
  util::throw_if_invalid(!bandwidth_classes.empty() && class_mass <= 0.0,
                         "SwarmConfig: bandwidth class fractions must have positive mass");
  for (const InitialGroup& group : initial_groups) {
    util::throw_if_invalid(
        !group.piece_probs.empty() && group.piece_probs.size() != num_pieces,
        "SwarmConfig: initial group piece_probs must be empty or have num_pieces entries");
    for (double p : group.piece_probs) {
      util::throw_if_invalid(p < 0.0 || p > 1.0,
                             "SwarmConfig: initial group piece probabilities must be in [0, 1]");
    }
  }
}

}  // namespace mpbt::bt
