// Piece-possession bitfield.
//
// Fixed-size dynamic bitset specialized for the swarm simulator's hot
// operations: mutual-interest tests between two peers ("does A have a piece
// B lacks?") run on 64-bit words.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bt/types.hpp"
#include "util/assert.hpp"

namespace mpbt::bt {

class Bitfield {
 public:
  /// Creates an all-zero bitfield over `num_pieces` pieces (>= 1).
  explicit Bitfield(std::size_t num_pieces);

  std::size_t size() const { return num_pieces_; }

  bool test(PieceIndex piece) const {
    check_index(piece);
    return (words_[piece / kWordBits] >> (piece % kWordBits)) & 1ULL;
  }

  void set(PieceIndex piece) {
    check_index(piece);
    std::uint64_t& word = words_[piece / kWordBits];
    const std::uint64_t mask = 1ULL << (piece % kWordBits);
    if (!(word & mask)) {
      word |= mask;
      ++count_;
    }
  }

  void reset(PieceIndex piece) {
    check_index(piece);
    std::uint64_t& word = words_[piece / kWordBits];
    const std::uint64_t mask = 1ULL << (piece % kWordBits);
    if (word & mask) {
      word &= ~mask;
      --count_;
    }
  }

  /// Number of pieces held.
  std::size_t count() const { return count_; }

  bool none() const { return count_ == 0; }
  bool all() const { return count_ == num_pieces_; }

  /// True if this bitfield holds at least one piece `other` lacks.
  /// Sizes must match.
  bool has_piece_missing_from(const Bitfield& other) const {
    check_same_size(other);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & ~other.words_[w]) {
        return true;
      }
    }
    return false;
  }

  /// Indices of pieces this holds that `other` lacks.
  std::vector<PieceIndex> pieces_missing_from(const Bitfield& other) const;

  /// Indices of pieces held / not held.
  std::vector<PieceIndex> held_pieces() const;
  std::vector<PieceIndex> missing_pieces() const;

  /// Number of pieces this holds that `other` lacks.
  std::size_t count_missing_from(const Bitfield& other) const {
    check_same_size(other);
    std::size_t n = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      n += static_cast<std::size_t>(std::popcount(words_[w] & ~other.words_[w]));
    }
    return n;
  }

  /// The n-th (ascending, 0-based) piece this holds that `other` lacks;
  /// n must be < count_missing_from(other).
  PieceIndex nth_missing_from(const Bitfield& other, std::size_t n) const;

  /// Calls f(piece) for each held piece, ascending. Allocation-free
  /// equivalent of held_pieces() for hot loops.
  template <typename F>
  void for_each_held(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(static_cast<PieceIndex>(w * kWordBits + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Calls f(piece) for each piece not held, ascending.
  template <typename F>
  void for_each_missing(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = ~words_[w] & word_mask(w);
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(static_cast<PieceIndex>(w * kWordBits + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Calls f(piece) for each piece this holds that `other` lacks,
  /// ascending — the visitation order of pieces_missing_from().
  template <typename F>
  void for_each_missing_from(const Bitfield& other, F&& f) const {
    check_same_size(other);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w] & ~other.words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(static_cast<PieceIndex>(w * kWordBits + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Number of pieces both bitfields hold.
  std::size_t intersection_count(const Bitfield& other) const {
    check_same_size(other);
    std::size_t n = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      n += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
    }
    return n;
  }

  bool operator==(const Bitfield& other) const;

 private:
  static constexpr std::size_t kWordBits = 64;

  void check_index(PieceIndex piece) const {
    util::throw_if_out_of_range(piece >= num_pieces_, "Bitfield piece index out of range");
  }

  void check_same_size(const Bitfield& other) const {
    util::throw_if_invalid(num_pieces_ != other.num_pieces_, "Bitfield size mismatch");
  }

  /// Valid-bit mask for word w (trims the tail word past num_pieces_).
  std::uint64_t word_mask(std::size_t w) const {
    if (w + 1 < words_.size() || num_pieces_ % kWordBits == 0) {
      return ~0ULL;
    }
    return (1ULL << (num_pieces_ % kWordBits)) - 1;
  }

  std::size_t num_pieces_;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mpbt::bt
