// Piece-possession bitfield.
//
// Fixed-size dynamic bitset specialized for the swarm simulator's hot
// operations: mutual-interest tests between two peers ("does A have a piece
// B lacks?") run on 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bt/types.hpp"

namespace mpbt::bt {

class Bitfield {
 public:
  /// Creates an all-zero bitfield over `num_pieces` pieces (>= 1).
  explicit Bitfield(std::size_t num_pieces);

  std::size_t size() const { return num_pieces_; }

  bool test(PieceIndex piece) const;
  void set(PieceIndex piece);
  void reset(PieceIndex piece);

  /// Number of pieces held.
  std::size_t count() const { return count_; }

  bool none() const { return count_ == 0; }
  bool all() const { return count_ == num_pieces_; }

  /// True if this bitfield holds at least one piece `other` lacks.
  /// Sizes must match.
  bool has_piece_missing_from(const Bitfield& other) const;

  /// Indices of pieces this holds that `other` lacks.
  std::vector<PieceIndex> pieces_missing_from(const Bitfield& other) const;

  /// Indices of pieces held / not held.
  std::vector<PieceIndex> held_pieces() const;
  std::vector<PieceIndex> missing_pieces() const;

  /// Number of pieces both bitfields hold.
  std::size_t intersection_count(const Bitfield& other) const;

  bool operator==(const Bitfield& other) const;

 private:
  void check_index(PieceIndex piece) const;
  void check_same_size(const Bitfield& other) const;

  std::size_t num_pieces_;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mpbt::bt
