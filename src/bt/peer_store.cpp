#include "bt/peer_store.hpp"

#include "util/assert.hpp"

namespace mpbt::bt {

PeerId PeerStore::create(std::size_t num_pieces, Round joined) {
  const auto id = static_cast<PeerId>(slots_.size());
  slots_.emplace_back(id, num_pieces, joined);
  live_pos_.push_back(static_cast<std::uint32_t>(live_.size()));
  live_.push_back(id);
  return id;
}

void PeerStore::mark_departed(PeerId id) {
  MPBT_ASSERT(is_live(id));
  live_pos_[id] = kNoPos;
}

void PeerStore::sweep_departed() {
  std::size_t out = 0;
  for (const PeerId id : live_) {
    if (live_pos_[id] == kNoPos) {
      continue;
    }
    live_[out] = id;
    live_pos_[id] = static_cast<std::uint32_t>(out);
    ++out;
  }
  live_.resize(out);
}

void PeerStore::reserve(std::size_t capacity) {
  slots_.reserve(capacity);
  live_.reserve(capacity);
  live_pos_.reserve(capacity);
}

void PeerStore::check_exists(PeerId id) const {
  util::throw_if_out_of_range(id >= slots_.size(), "Swarm: unknown peer id");
}

}  // namespace mpbt::bt
