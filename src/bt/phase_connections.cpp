#include "bt/phase_connections.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "bt/fault.hpp"
#include "bt/id_set.hpp"
#include "obs/trace.hpp"

namespace mpbt::bt {

namespace {

/// The potential set is built in sorted-neighbor order, so membership
/// tests are binary searches (the old code used linear std::find).
bool in_potential(const Peer& p, PeerId id) {
  return std::binary_search(p.potential.begin(), p.potential.end(), id);
}

void establish_rate_based(RoundContext& ctx) {
  const SwarmConfig& config = ctx.config;
  // The choking algorithm (Section 2.1): each peer unchokes its k - 1
  // fastest recent uploaders among the potential set plus one rotating
  // optimistic slot; a connection exists while both sides unchoke each
  // other.
  std::unordered_map<PeerId, IdSet> desired;
  const std::vector<PeerId>& order = shuffled_live_leechers(ctx);
  for (const PeerId id : order) {
    Peer& p = ctx.store.get(id);
    if (p.pieces.none() || p.potential.empty()) {
      continue;
    }
    // Rotate the optimistic unchoke when stale or invalid.
    const bool optimistic_valid = p.optimistic_target != kNoPeer &&
                                  ctx.store.is_live(p.optimistic_target) &&
                                  in_potential(p, p.optimistic_target);
    if (!optimistic_valid ||
        ctx.round - p.optimistic_since >= config.optimistic_interval) {
      p.optimistic_target = p.potential[static_cast<std::size_t>(
          ctx.rng.uniform_int(0, static_cast<std::int64_t>(p.potential.size()) - 1))];
      p.optimistic_since = ctx.round;
    }
    // Top k - 1 by received rate, ties broken uniformly at random (a
    // deterministic-by-id tie-break would overload low ids).
    std::vector<PeerId>& ranked = ctx.state.scratch_ids;
    ranked.assign(p.potential.begin(), p.potential.end());
    ctx.rng.shuffle(std::span<PeerId>(ranked));
    std::stable_sort(ranked.begin(), ranked.end(), [&](PeerId x, PeerId y) {
      const auto rx = p.received_rate.find(x);
      const auto ry = p.received_rate.find(y);
      const double vx = rx == p.received_rate.end() ? 0.0 : rx->second;
      const double vy = ry == p.received_rate.end() ? 0.0 : ry->second;
      return vx > vy;
    });
    IdSet& mine = desired[id];
    mine.insert(p.optimistic_target);
    for (const PeerId candidate : ranked) {
      if (mine.size() >= config.max_connections) {
        break;
      }
      mine.insert(candidate);
    }
  }

  // Choke rotation with low churn: connections persist (they are TCP
  // links in the real protocol; choking only gates transfers). A peer at
  // full capacity that desires an unconnected candidate drops its
  // lowest-rate undesired connection — at most one per round — to make
  // room, mirroring the 10-second unchoke re-evaluation.
  for (const PeerId id : order) {
    Peer& p = ctx.store.get(id);
    const auto mine = desired.find(id);
    if (mine == desired.end() || p.connections.size() < config.max_connections) {
      continue;
    }
    bool wants_new = false;
    for (const PeerId candidate : mine->second.as_vector()) {
      if (!p.connections.contains(candidate) && ctx.store.is_live(candidate)) {
        wants_new = true;
        break;
      }
    }
    if (!wants_new) {
      continue;
    }
    PeerId victim = kNoPeer;
    double victim_rate = 0.0;
    for (const PeerId other : p.connections.as_vector()) {
      if (mine->second.contains(other)) {
        continue;  // still desired: keep
      }
      const auto r = p.received_rate.find(other);
      const double rate = r == p.received_rate.end() ? 0.0 : r->second;
      if (victim == kNoPeer || rate < victim_rate) {
        victim = other;
        victim_rate = rate;
      }
    }
    if (victim != kNoPeer && ctx.store.is_live(victim)) {
      disconnect_peers(ctx, p, ctx.store.get(victim));
      if (ctx.trace != nullptr) {
        ctx.trace->connection_drop(ctx.round, id, victim, obs::DropReason::kChokeVictim);
      }
    }
  }

  // Establish mutually desired pairs.
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  for (const PeerId id : order) {
    const auto mine = desired.find(id);
    if (mine == desired.end()) {
      continue;
    }
    Peer& p = ctx.store.get(id);
    for (const PeerId other : mine->second.as_vector()) {
      if (id >= other || !ctx.store.is_live(other) || p.connections.contains(other)) {
        continue;
      }
      const auto theirs = desired.find(other);
      if (theirs == desired.end() || !theirs->second.contains(id)) {
        continue;
      }
      Peer& q = ctx.store.get(other);
      if (p.connections.size() >= config.max_connections ||
          q.connections.size() >= config.max_connections) {
        continue;
      }
      ++attempts;
      const bool ok = ctx.rng.bernoulli(config.connect_success_prob);
      if (ctx.trace != nullptr) {
        ctx.trace->connection_attempt(ctx.round, id, other, ok);
      }
      if (ok) {
        connect_peers(ctx, p, q);
        if (config.handshake_delay) {
          p.fresh_connections.insert(other);
          q.fresh_connections.insert(id);
        }
        ++successes;
      }
    }
  }

  // Fill pass: real clients keep every unchoke slot busy, so remaining
  // open slots take any willing potential partner (this is what makes the
  // optimistic mechanism effective — newcomers with no rate history still
  // get service).
  for (const PeerId id : order) {
    Peer& p = ctx.store.get(id);
    if (p.pieces.none() || p.connections.size() >= config.max_connections) {
      continue;
    }
    std::vector<PeerId>& candidates = ctx.state.scratch_ids;
    candidates.clear();
    for (const PeerId other : p.potential) {
      if (ctx.store.is_live(other) && !p.connections.contains(other) &&
          ctx.store.get(other).connections.size() < config.max_connections) {
        candidates.push_back(other);
      }
    }
    ctx.rng.shuffle(std::span<PeerId>(candidates));
    for (const PeerId other : candidates) {
      if (p.connections.size() >= config.max_connections) {
        break;
      }
      Peer& q = ctx.store.get(other);
      if (q.connections.size() >= config.max_connections) {
        continue;
      }
      ++attempts;
      const bool ok = ctx.rng.bernoulli(config.connect_success_prob);
      if (ctx.trace != nullptr) {
        ctx.trace->connection_attempt(ctx.round, id, other, ok);
      }
      if (ok) {
        connect_peers(ctx, p, q);
        if (config.handshake_delay) {
          p.fresh_connections.insert(other);
          q.fresh_connections.insert(id);
        }
        ++successes;
      }
    }
  }
  ctx.metrics.record_connection_attempts(attempts, successes);
}

}  // namespace

void run_prune_connections(RoundContext& ctx) {
  // Snapshot connections alive at round start for the p_r estimate.
  ctx.state.round_start_connections.clear();
  for (const PeerId id : ctx.store.live()) {
    if (!ctx.store.is_live(id)) {
      continue;
    }
    const Peer& p = ctx.store.get(id);
    for (const PeerId other : p.connections.as_vector()) {
      if (id < other) {
        ctx.state.round_start_connections.emplace_back(id, other);
      }
    }
  }

  for (const PeerId id : ctx.store.live()) {
    if (!ctx.store.is_live(id)) {
      continue;
    }
    Peer& p = ctx.store.get(id);
    // Copy: disconnect mutates the set.
    std::vector<PeerId>& current = ctx.state.scratch_ids;
    current = p.connections.as_vector();
    for (const PeerId other : current) {
      if (!ctx.store.is_live(other)) {
        p.connections.erase(other);
        continue;
      }
      if (!in_potential(p, other)) {
        disconnect_peers(ctx, p, ctx.store.get(other));
        if (ctx.trace != nullptr) {
          ctx.trace->connection_drop(ctx.round, id, other, obs::DropReason::kInterestLost);
        }
      }
    }
  }
}

void run_establish_connections(RoundContext& ctx) {
  const SwarmConfig& config = ctx.config;
  if (config.choke_algorithm == ChokeAlgorithm::RateBased) {
    establish_rate_based(ctx);
    return;
  }
  // Fault tap (test-only): ignore the fetching peer's own cap so its
  // connection count can grow past k.
  const bool overfill = fault::enabled(fault::Fault::kOverfillConnections);
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  for (const PeerId id : shuffled_live_leechers(ctx)) {
    Peer& p = ctx.store.get(id);
    if (p.pieces.none()) {
      continue;  // nothing to offer under strict tit-for-tat
    }
    if (!overfill && p.connections.size() >= config.max_connections) {
      continue;
    }
    std::vector<PeerId>& candidates = ctx.state.scratch_ids;
    candidates.clear();
    for (const PeerId other : p.potential) {
      if (!ctx.store.is_live(other) || p.connections.contains(other)) {
        continue;
      }
      if (ctx.store.get(other).connections.size() >= config.max_connections) {
        continue;  // partner has no open slot
      }
      candidates.push_back(other);
    }
    ctx.rng.shuffle(std::span<PeerId>(candidates));
    for (const PeerId other : candidates) {
      if (!overfill && p.connections.size() >= config.max_connections) {
        break;
      }
      Peer& q = ctx.store.get(other);
      if (q.connections.size() >= config.max_connections) {
        continue;  // filled up since candidate listing
      }
      ++attempts;
      const bool ok = ctx.rng.bernoulli(config.connect_success_prob);
      if (ctx.trace != nullptr) {
        ctx.trace->connection_attempt(ctx.round, id, other, ok);
      }
      if (ok) {
        connect_peers(ctx, p, q);
        if (config.handshake_delay) {
          p.fresh_connections.insert(other);
          q.fresh_connections.insert(id);
        }
        ++successes;
      }
    }
  }
  ctx.metrics.record_connection_attempts(attempts, successes);
}

}  // namespace mpbt::bt
