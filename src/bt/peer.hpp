// Peer state within a swarm.
//
// Plain data managed by Swarm; the trading logic lives in Swarm so that
// all cross-peer invariants (symmetric neighbor sets, symmetric
// connections) are maintained in one place.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/id_set.hpp"
#include "bt/types.hpp"

namespace mpbt::bt {

struct Peer {
  Peer(PeerId peer_id, std::size_t num_pieces, Round joined_round)
      : id(peer_id), pieces(num_pieces), joined(joined_round) {}

  PeerId id;
  Bitfield pieces;
  Round joined = 0;

  /// True for initial seeds and for completed leechers that linger.
  bool is_seed = false;
  /// Round after which a lingering seed departs (only when is_seed and
  /// linger was configured); 0 means "never" (initial seeds).
  Round seed_until = 0;

  /// Symmetric neighbor relation (the paper's NS).
  IdSet neighbors;
  /// Active trading connections; subset of neighbors, symmetric.
  IdSet connections;
  /// Connections established this round (still handshaking); subset of
  /// connections, cleared at the start of the next round.
  IdSet fresh_connections;
  /// This round's potential set (recomputed each round by the swarm).
  std::vector<PeerId> potential;

  std::uint64_t bytes_downloaded = 0;
  bool shaken = false;
  bool instrumented = false;

  /// Last phase classification emitted to the trace recorder (255 =
  /// never classified). Only maintained while tracing is enabled.
  std::uint8_t trace_phase = 255;

  /// Block-granular transfer state: per connection, the piece currently
  /// being downloaded from that partner and how many of its blocks have
  /// arrived. Only used when blocks_per_piece > 1; entries are discarded
  /// when the connection drops (partial pieces cannot be served anyway).
  struct InFlight {
    PieceIndex piece = 0;
    std::uint32_t blocks_done = 0;
  };
  std::map<PeerId, InFlight> inflight;

  /// Rate-based choking state: exponentially smoothed pieces/round
  /// received from each neighbor, the current optimistic-unchoke target,
  /// and when it was last rotated.
  std::map<PeerId, double> received_rate;
  PeerId optimistic_target = kNoPeer;
  Round optimistic_since = 0;

  /// Bandwidth class index (0 when the swarm is homogeneous).
  std::uint32_t bandwidth_class = 0;
  /// Upload slots per round (UINT32_MAX = unconstrained).
  std::uint32_t upload_per_round = UINT32_MAX;
  /// Uploads still available this round.
  std::uint32_t upload_left = UINT32_MAX;

  /// acquired_rounds[o] = round at which the (o+1)-th piece was obtained.
  std::vector<Round> acquired_rounds;

  std::size_t num_pieces_held() const { return pieces.count(); }
  bool is_leecher() const { return !is_seed; }
};

/// Strict tit-for-tat interest test: true when each side holds at least
/// one piece the other lacks (the paper's potential-set membership rule).
inline bool mutually_interested(const Bitfield& a, const Bitfield& b) {
  return a.has_piece_missing_from(b) && b.has_piece_missing_from(a);
}

}  // namespace mpbt::bt
