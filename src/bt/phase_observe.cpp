#include "bt/phase_observe.hpp"

#include <algorithm>

#include "bt/fault.hpp"
#include "obs/trace.hpp"

namespace mpbt::bt {

namespace {

/// Emits a phase-transition trace event when the classification of
/// (n, b, i) changed since the last round (tracing only). Mirror of
/// model::classify_phase, matching SwarmMetrics::record_phase_round
/// (kept local so bt does not depend on the model library):
/// 0 = bootstrap, 1 = efficient, 2 = last, 3 = done.
void trace_phase_transition(RoundContext& ctx, Peer& p, std::uint32_t n,
                            std::uint32_t b, std::uint32_t i) {
  std::uint8_t code;
  if (b >= ctx.config.num_pieces) {
    code = 3;
  } else if (b == 0 || (b + n <= 1 && i == 0)) {
    code = 0;
  } else if (i == 0 && n == 0) {
    code = 2;
  } else {
    code = 1;
  }
  if (p.trace_phase != code) {
    ctx.trace->phase_transition(
        ctx.round, p.id, p.trace_phase == 255 ? -1 : static_cast<int>(p.trace_phase),
        static_cast<int>(code));
    p.trace_phase = code;
  }
}

}  // namespace

double swarm_entropy(const std::vector<std::uint32_t>& piece_counts) {
  std::uint32_t min_count = UINT32_MAX;
  std::uint32_t max_count = 0;
  for (const std::uint32_t c : piece_counts) {
    min_count = std::min(min_count, c);
    max_count = std::max(max_count, c);
  }
  if (max_count == 0) {
    return 1.0;  // no pieces anywhere: no skew
  }
  return static_cast<double>(min_count) / static_cast<double>(max_count);
}

void run_record_metrics(RoundContext& ctx) {
  // Fault tap (test-only): drop this round's sample entirely.
  if (fault::enabled(fault::Fault::kSkipRoundRecord)) {
    return;
  }
  const SwarmConfig& config = ctx.config;
  std::size_t leechers = 0;
  std::size_t seeds = 0;
  double eff_trading_sum = 0.0;
  std::size_t eff_trading_n = 0;
  double eff_all_sum = 0.0;
  std::size_t eff_all_n = 0;
  double eff_transfer_sum = 0.0;
  std::size_t eff_transfer_n = 0;

  for (const PeerId id : ctx.store.live()) {
    Peer& p = ctx.store.get(id);
    if (p.is_seed) {
      ++seeds;
      continue;
    }
    ++leechers;
    const double n_over_k = static_cast<double>(p.connections.size()) /
                            static_cast<double>(config.max_connections);
    eff_all_sum += n_over_k;
    ++eff_all_n;
    if (!p.pieces.none()) {
      eff_trading_sum += n_over_k;
      ++eff_trading_n;
      // Upload-bandwidth utilization: pieces moved this round over k slots.
      std::size_t transferred = 0;
      for (auto it = p.acquired_rounds.rbegin();
           it != p.acquired_rounds.rend() && *it == ctx.round; ++it) {
        ++transferred;
      }
      eff_transfer_sum += std::min(1.0, static_cast<double>(transferred) /
                                            static_cast<double>(config.max_connections));
      ++eff_transfer_n;
    }
    ctx.metrics.record_potential_observation(
        static_cast<std::uint32_t>(p.pieces.count()),
        static_cast<std::uint32_t>(p.potential.size()),
        static_cast<std::uint32_t>(p.neighbors.size()));
    ctx.metrics.record_phase_round(static_cast<std::uint32_t>(p.connections.size()),
                                   static_cast<std::uint32_t>(p.pieces.count()),
                                   static_cast<std::uint32_t>(p.potential.size()),
                                   config.num_pieces);
    if (ctx.trace != nullptr) {
      trace_phase_transition(ctx, p, static_cast<std::uint32_t>(p.connections.size()),
                             static_cast<std::uint32_t>(p.pieces.count()),
                             static_cast<std::uint32_t>(p.potential.size()));
    }
    // p_init: potential ratio observed on the round the first piece arrived.
    if (p.pieces.count() == 1 && !p.acquired_rounds.empty() &&
        p.acquired_rounds.front() == ctx.round) {
      ctx.metrics.record_bootstrap_exit(static_cast<std::uint32_t>(p.potential.size()),
                                        static_cast<std::uint32_t>(p.neighbors.size()));
    }
    if (p.instrumented) {
      ClientRecord& record = ctx.metrics.client_record(id, p.joined);
      record.samples.push_back({ctx.round, p.bytes_downloaded,
                                static_cast<std::uint32_t>(p.potential.size()),
                                static_cast<std::uint32_t>(p.neighbors.size()),
                                static_cast<std::uint32_t>(p.pieces.count()),
                                static_cast<std::uint32_t>(p.connections.size())});
      if (ctx.trace != nullptr) {
        ctx.trace->client_sample(ctx.round, id,
                                 static_cast<std::uint32_t>(p.potential.size()),
                                 static_cast<std::uint32_t>(p.pieces.count()),
                                 p.bytes_downloaded);
      }
    }
  }

  // Single fan-out point for the per-round sample: feeds SwarmMetrics
  // and, when tracing is attached, the trace recorder — one call site,
  // so the per-round series and registry snapshots cannot drift apart.
  const double ent = swarm_entropy(ctx.piece_counts);
  const double eff_trading = eff_trading_n == 0 ? 0.0 : eff_trading_sum / eff_trading_n;
  const double eff_all = eff_all_n == 0 ? 0.0 : eff_all_sum / eff_all_n;
  const double eff_transfer =
      eff_transfer_n == 0 ? 0.0 : eff_transfer_sum / eff_transfer_n;
  ctx.metrics.record_round(ctx.round, leechers, seeds, ent, eff_trading, eff_all,
                           eff_transfer);
  if (ctx.trace != nullptr) {
    ctx.trace->round_sample(ctx.round, leechers, seeds, ent, eff_transfer);
  }
  ctx.tracker.record_stats();
}

}  // namespace mpbt::bt
