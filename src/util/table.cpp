#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace mpbt::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  throw_if_invalid(columns_.empty(), "Table requires at least one column");
}

void Table::set_precision(int digits) {
  throw_if_invalid(digits < 0 || digits > 17, "Table precision must be in [0, 17]");
  precision_ = digits;
}

void Table::add_row(std::vector<Cell> row) {
  throw_if_invalid(row.size() != columns_.size(),
                   "Table row has wrong number of cells: got " + std::to_string(row.size()) +
                       ", expected " + std::to_string(columns_.size()));
  rows_.push_back(std::move(row));
}

const std::vector<Cell>& Table::row(std::size_t r) const {
  throw_if_out_of_range(r >= rows_.size(), "Table row index out of range");
  return rows_[r];
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return *s;
  }
  if (const auto* i = std::get_if<long long>(&cell)) {
    return std::to_string(*i);
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print_text(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };

  print_row(columns_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(rule_width, '-') << '\n';
  for (const auto& cells : formatted) {
    print_row(cells);
  }
}

namespace {
std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(format_cell(row[c]));
    }
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open CSV output file: " + path);
  }
  write_csv(out);
  if (!out) {
    throw std::runtime_error("error writing CSV output file: " + path);
  }
}

}  // namespace mpbt::util
