// Minimal leveled logger.
//
// Experiments and examples use this to report progress; the library core is
// silent by default (level = Warn, overridable once at startup via the
// MPBT_LOG environment variable — debug/info/warn/error/off). Each line is
// prefixed with an ISO-8601 UTC timestamp and a short thread tag so
// interleaved worker output stays attributable. There is deliberately no
// global mutable configuration beyond the level: output always goes to
// stderr so that bench binaries can pipe their stdout tables cleanly.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mpbt::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the current global log level (default: Warn).
LogLevel log_level();

/// Sets the global log level. Thread-compatible: call before spawning work.
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Throws std::invalid_argument on unknown names.
LogLevel parse_log_level(std::string_view name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: `Log(LogLevel::Info) << "x=" << x;`
/// The message is emitted when the temporary is destroyed.
class Log {
 public:
  explicit Log(LogLevel level) : level_(level) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() {
    if (level_ >= log_level()) {
      detail::emit(level_, stream_.str());
    }
  }

  template <typename T>
  Log& operator<<(const T& value) {
    if (level_ >= log_level()) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mpbt::util

#define MPBT_LOG_DEBUG ::mpbt::util::Log(::mpbt::util::LogLevel::Debug)
#define MPBT_LOG_INFO ::mpbt::util::Log(::mpbt::util::LogLevel::Info)
#define MPBT_LOG_WARN ::mpbt::util::Log(::mpbt::util::LogLevel::Warn)
#define MPBT_LOG_ERROR ::mpbt::util::Log(::mpbt::util::LogLevel::Error)
