// Tiny command-line flag parser for bench harnesses and examples.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
// Unknown flags are an error (so typos in experiment parameters fail loudly
// instead of silently running the default configuration).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mpbt::util {

class CliParser {
 public:
  /// `description` is printed at the top of --help output.
  explicit CliParser(std::string program, std::string description);

  /// Registers a flag. `help` is shown in --help; flags are matched by
  /// exact name (without the leading "--").
  void add_flag(const std::string& name, const std::string& help);

  /// Registers an option taking a value, with a default shown in help.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses argv. Returns false if --help was requested (help printed to
  /// stdout); throws std::invalid_argument on unknown or malformed flags.
  bool parse(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;

  /// Positional arguments left after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  void print_help(std::ostream& os) const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace mpbt::util
