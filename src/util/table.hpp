// Aligned-text and CSV table output used by all bench harnesses.
//
// A Table is a column-typed grid: add columns first, then append rows.
// `print_text` writes an aligned, human-readable table (what the bench
// binaries show on stdout); `write_csv` writes the machine-readable form.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mpbt::util {

/// One cell: either a string, an integer, or a floating-point value.
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  /// Creates a table with the given column headers. At least one column.
  explicit Table(std::vector<std::string> columns);

  /// Number of digits printed after the decimal point for doubles (default 4).
  void set_precision(int digits);

  /// Appends one row; the row must have exactly as many cells as columns.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Cell>& row(std::size_t r) const;

  /// Writes the table as aligned text with a header rule.
  void print_text(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields with commas/quotes/newlines are quoted).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to `path`; throws std::runtime_error on I/O error.
  void write_csv_file(const std::string& path) const;

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace mpbt::util
