// Internal invariant checking for the mpbt library.
//
// MPBT_ASSERT checks internal invariants (bugs in *our* code); it is active
// in all build types because the simulators are cheap relative to the cost
// of silently corrupt experiment output. Public-API precondition violations
// (bugs in *caller* code) throw std::invalid_argument / std::out_of_range
// instead — see the `throw_if` helpers below.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mpbt::util {

/// Thrown when an internal invariant of the library is violated.
/// Catching this is almost always wrong; it indicates a library bug.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void assertion_failure(std::string_view expr, std::string_view message,
                                    const std::source_location& loc);

/// Throws std::invalid_argument with `message` when `condition` is true.
/// Used to validate public-API preconditions.
void throw_if_invalid(bool condition, const std::string& message);

/// Throws std::out_of_range with `message` when `condition` is true.
void throw_if_out_of_range(bool condition, const std::string& message);

[[noreturn]] void throw_invalid(const char* message);
[[noreturn]] void throw_out_of_range(const char* message);

/// Literal-message overloads. String literals bind here instead of to the
/// std::string& versions above, so the happy path never materializes a
/// std::string (the temporary was a heap allocation per guard call in hot
/// loops like Bitfield::test).
inline void throw_if_invalid(bool condition, const char* message) {
  if (condition) [[unlikely]] {
    throw_invalid(message);
  }
}

inline void throw_if_out_of_range(bool condition, const char* message) {
  if (condition) [[unlikely]] {
    throw_out_of_range(message);
  }
}

}  // namespace mpbt::util

#define MPBT_ASSERT(expr)                                                             \
  do {                                                                                \
    if (!(expr)) {                                                                    \
      ::mpbt::util::assertion_failure(#expr, "", std::source_location::current());    \
    }                                                                                 \
  } while (false)

#define MPBT_ASSERT_MSG(expr, msg)                                                    \
  do {                                                                                \
    if (!(expr)) {                                                                    \
      ::mpbt::util::assertion_failure(#expr, (msg), std::source_location::current()); \
    }                                                                                 \
  } while (false)
