#include "util/assert.hpp"

#include <sstream>

namespace mpbt::util {

void assertion_failure(std::string_view expr, std::string_view message,
                       const std::source_location& loc) {
  std::ostringstream os;
  os << "mpbt assertion failed: " << expr;
  if (!message.empty()) {
    os << " (" << message << ")";
  }
  os << " at " << loc.file_name() << ":" << loc.line() << " in " << loc.function_name();
  throw AssertionError(os.str());
}

void throw_if_invalid(bool condition, const std::string& message) {
  if (condition) {
    throw std::invalid_argument(message);
  }
}

void throw_if_out_of_range(bool condition, const std::string& message) {
  if (condition) {
    throw std::out_of_range(message);
  }
}

void throw_invalid(const char* message) { throw std::invalid_argument(message); }

void throw_out_of_range(const char* message) { throw std::out_of_range(message); }

}  // namespace mpbt::util
