#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace mpbt::util {

namespace {

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Initial level: MPBT_LOG env var when set and parseable, else Warn.
/// Read once, at first use — later env changes are ignored by design.
int initial_level() {
  if (const char* env = std::getenv("MPBT_LOG"); env != nullptr && *env != '\0') {
    try {
      return static_cast<int>(parse_log_level(env));
    } catch (const std::invalid_argument&) {
      // An unknown MPBT_LOG value must not abort whatever binary linked
      // us; fall through to the default and say so once.
      std::fprintf(stderr, "[mpbt WARN] ignoring unknown MPBT_LOG value '%s'\n", env);
    }
  }
  return static_cast<int>(LogLevel::Warn);
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{initial_level()};
  return level;
}

/// ISO-8601 UTC timestamp with millisecond precision, e.g.
/// "2026-08-07T12:34:56.789Z".
std::string utc_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch()).count() %
      1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(millis));
  return buf;
}

/// Short stable per-thread tag (hash of std::thread::id, 4 hex digits) —
/// enough to tell pool workers apart without platform-specific TIDs.
std::string thread_tag() {
  const std::size_t hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%04zx", hash & 0xffffU);
  return buf;
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  const std::string lower = to_lower(name);
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  throw std::invalid_argument("unknown log level: " + std::string(name));
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  // Concurrent workers log freely: build the whole record first, then
  // emit it under a mutex as a single write so lines never interleave.
  std::string line;
  line.reserve(message.size() + 48);
  line.append("[").append(utc_timestamp()).append(" t=").append(thread_tag());
  line.append(" mpbt ").append(level_name(level)).append("] ").append(message).append("\n");
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}
}  // namespace detail

}  // namespace mpbt::util
