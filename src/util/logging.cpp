#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace mpbt::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  const std::string lower = to_lower(name);
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  throw std::invalid_argument("unknown log level: " + std::string(name));
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  // Concurrent workers log freely: build the whole record first, then
  // emit it under a mutex as a single write so lines never interleave.
  std::string line;
  line.reserve(message.size() + 16);
  line.append("[mpbt ").append(level_name(level)).append("] ").append(message).append("\n");
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}
}  // namespace detail

}  // namespace mpbt::util
