#include "util/cli.hpp"

#include <iostream>
#include <stdexcept>

#include "util/assert.hpp"

namespace mpbt::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  throw_if_invalid(name.empty() || name.starts_with("--"),
                   "flag name must be non-empty and given without leading --");
  Option opt;
  opt.help = help;
  opt.is_flag = true;
  opt.value = "false";
  const bool inserted = options_.emplace(name, std::move(opt)).second;
  throw_if_invalid(!inserted, "duplicate flag: " + name);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  throw_if_invalid(name.empty() || name.starts_with("--"),
                   "option name must be non-empty and given without leading --");
  Option opt;
  opt.help = help;
  opt.value = default_value;
  const bool inserted = options_.emplace(name, std::move(opt)).second;
  throw_if_invalid(!inserted, "duplicate option: " + name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--help" || arg == "-h") {
      print_help(std::cout);
      return false;
    }
    if (!arg.starts_with("--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(body);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown flag: --" + body + " (try --help)");
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      if (has_value) {
        throw std::invalid_argument("flag --" + body + " does not take a value");
      }
      opt.value = "true";
    } else {
      if (!has_value) {
        if (a + 1 >= argc) {
          throw std::invalid_argument("option --" + body + " requires a value");
        }
        value = argv[++a];
      }
      opt.value = value;
    }
    opt.seen = true;
  }
  return true;
}

bool CliParser::has_flag(const std::string& name) const {
  const auto it = options_.find(name);
  throw_if_invalid(it == options_.end(), "unregistered flag queried: " + name);
  return it->second.value == "true";
}

std::string CliParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  throw_if_invalid(it == options_.end(), "unregistered option queried: " + name);
  return it->second.value;
}

long long CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(v, &pos);
    if (pos != v.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" + v + "'");
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" + v + "'");
  }
}

void CliParser::print_help(std::ostream& os) const {
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) {
      os << "=<value> (default: " << opt.value << ")";
    }
    os << "\n      " << opt.help << '\n';
  }
  os << "  --help\n      Show this help.\n";
}

}  // namespace mpbt::util
