// Analysis of absorbing Markov chains.
//
// The paper's download-evolution chain is absorbing (state (0, B, 0)); the
// quantities of interest — expected steps to absorption, absorption
// probabilities per absorbing state — are computed here with sparse
// Gauss-Seidel sweeps (the chains are large but very sparse, and their
// structure makes the sweeps converge quickly).
#pragma once

#include <cstddef>
#include <vector>

#include "markov/sparse_chain.hpp"

namespace mpbt::markov {

/// Classifies states: true where the state is absorbing.
std::vector<bool> absorbing_states(const SparseChain& chain);

struct AbsorptionResult {
  /// expected_steps[s] = E[steps to absorption | start at s];
  /// 0 for absorbing states; +inf where absorption is not a.s. reachable.
  std::vector<double> expected_steps;
  /// Number of Gauss-Seidel sweeps performed.
  std::size_t iterations = 0;
  /// Max residual at the final sweep.
  double residual = 0.0;
  bool converged = false;
};

/// Solves t = 1 + Q t for expected absorption times with Gauss-Seidel.
/// `max_iterations` bounds work; `tolerance` is the max-change stopping
/// criterion. Requires a finalized chain.
AbsorptionResult expected_steps_to_absorption(const SparseChain& chain,
                                              std::size_t max_iterations = 100000,
                                              double tolerance = 1e-10);

/// Probability, for each start state, of ever reaching `target` (which
/// must be a valid state). Solved by Gauss-Seidel on h = P h with
/// h(target) = 1 pinned.
std::vector<double> hitting_probability(const SparseChain& chain, std::size_t target,
                                        std::size_t max_iterations = 100000,
                                        double tolerance = 1e-12);

}  // namespace mpbt::markov
