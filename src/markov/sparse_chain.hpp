// Sparse finite Markov chain representation.
//
// States are dense indices [0, n). Each row stores its nonzero transition
// probabilities as (target, probability) pairs. Rows are validated to sum
// to 1 (within tolerance) on `finalize()`. This is the representation both
// the download-evolution chain (Section 3) and tests operate on.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/rng.hpp"

namespace mpbt::markov {

struct Transition {
  std::size_t target = 0;
  double probability = 0.0;
};

class SparseChain {
 public:
  /// Creates a chain with `num_states` states and no transitions.
  explicit SparseChain(std::size_t num_states);

  std::size_t num_states() const { return rows_.size(); }

  /// Adds probability mass `p` from `from` to `to`. Repeated calls with the
  /// same (from, to) accumulate. Requires valid indices and p >= 0;
  /// zero-probability entries are dropped.
  void add_transition(std::size_t from, std::size_t to, double p);

  /// Validates that every row sums to 1 within `tolerance` and normalizes
  /// it exactly; throws std::invalid_argument listing the first bad row.
  /// Rows with no entries are treated as absorbing (self-loop added).
  void finalize(double tolerance = 1e-9);

  bool finalized() const { return finalized_; }

  const std::vector<Transition>& row(std::size_t state) const;

  /// Sum of probabilities currently in a row (pre- or post-finalize).
  double row_sum(std::size_t state) const;

  /// True if the state's only transition is a self-loop.
  bool is_absorbing(std::size_t state) const;

  /// One random step from `state`. Requires finalized().
  std::size_t step(std::size_t state, numeric::Rng& rng) const;

  /// Advances a distribution one step: out[j] = sum_i dist[i] * P(i -> j).
  /// Requires finalized() and dist.size() == num_states().
  std::vector<double> step_distribution(const std::vector<double>& dist) const;

  /// Total number of stored transitions.
  std::size_t num_transitions() const;

 private:
  std::vector<std::vector<Transition>> rows_;
  bool finalized_ = false;
};

}  // namespace mpbt::markov
