#include "markov/trajectory.hpp"

#include <cmath>

#include "numeric/stats.hpp"
#include "util/assert.hpp"

namespace mpbt::markov {

Trajectory sample_trajectory(const SparseChain& chain, std::size_t start, numeric::Rng& rng,
                             std::size_t max_steps) {
  util::throw_if_invalid(!chain.finalized(), "sample_trajectory: finalize first");
  util::throw_if_out_of_range(start >= chain.num_states(),
                              "sample_trajectory: start out of range");
  Trajectory traj;
  traj.states.push_back(start);
  std::size_t state = start;
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (chain.is_absorbing(state)) {
      traj.absorbed = true;
      return traj;
    }
    state = chain.step(state, rng);
    traj.states.push_back(state);
  }
  traj.absorbed = chain.is_absorbing(state);
  return traj;
}

HittingTimeStats estimate_absorption_time(const SparseChain& chain, std::size_t start,
                                          numeric::Rng& rng, std::size_t samples,
                                          std::size_t max_steps) {
  util::throw_if_invalid(samples == 0, "estimate_absorption_time requires samples >= 1");
  numeric::RunningStats stats;
  HittingTimeStats out;
  out.sample_count = samples;
  for (std::size_t i = 0; i < samples; ++i) {
    const Trajectory traj = sample_trajectory(chain, start, rng, max_steps);
    if (traj.absorbed) {
      ++out.absorbed_count;
      stats.add(static_cast<double>(traj.states.size() - 1));
    }
  }
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  return out;
}

std::size_t walk(const SparseChain& chain, std::size_t start, numeric::Rng& rng,
                 const std::function<void(std::size_t, std::size_t)>& visit,
                 std::size_t max_steps) {
  util::throw_if_invalid(!chain.finalized(), "walk: finalize first");
  util::throw_if_invalid(!visit, "walk requires a visit callback");
  std::size_t state = start;
  visit(0, state);
  std::size_t step = 0;
  while (step < max_steps && !chain.is_absorbing(state)) {
    state = chain.step(state, rng);
    ++step;
    visit(step, state);
  }
  return step;
}

}  // namespace mpbt::markov
