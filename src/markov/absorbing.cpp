#include "markov/absorbing.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mpbt::markov {

std::vector<bool> absorbing_states(const SparseChain& chain) {
  std::vector<bool> out(chain.num_states(), false);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    out[s] = chain.is_absorbing(s);
  }
  return out;
}

AbsorptionResult expected_steps_to_absorption(const SparseChain& chain,
                                              std::size_t max_iterations, double tolerance) {
  util::throw_if_invalid(!chain.finalized(), "expected_steps_to_absorption: finalize first");
  const std::size_t n = chain.num_states();
  const std::vector<bool> absorbing = absorbing_states(chain);

  AbsorptionResult result;
  result.expected_steps.assign(n, 0.0);
  auto& t = result.expected_steps;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    double max_change = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (absorbing[s]) {
        continue;
      }
      // t(s) = 1 + sum_j P(s,j) t(j); the self-loop term is moved to the
      // left-hand side: (1 - P(s,s)) t(s) = 1 + sum_{j != s} P(s,j) t(j).
      double self_p = 0.0;
      double rhs = 1.0;
      for (const Transition& tr : chain.row(s)) {
        if (tr.target == s) {
          self_p = tr.probability;
        } else {
          rhs += tr.probability * t[tr.target];
        }
      }
      double updated;
      if (self_p >= 1.0 - 1e-15) {
        updated = std::numeric_limits<double>::infinity();
      } else {
        updated = rhs / (1.0 - self_p);
      }
      const double change = std::abs(updated - t[s]);
      if (std::isfinite(change)) {
        max_change = std::max(max_change, change);
      } else if (std::isfinite(t[s]) || std::isfinite(updated)) {
        max_change = std::numeric_limits<double>::infinity();
      }
      t[s] = updated;
    }
    result.iterations = iter + 1;
    result.residual = max_change;
    if (max_change <= tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<double> hitting_probability(const SparseChain& chain, std::size_t target,
                                        std::size_t max_iterations, double tolerance) {
  util::throw_if_invalid(!chain.finalized(), "hitting_probability: finalize first");
  util::throw_if_out_of_range(target >= chain.num_states(),
                              "hitting_probability: target out of range");
  const std::size_t n = chain.num_states();
  std::vector<double> h(n, 0.0);
  h[target] = 1.0;
  const std::vector<bool> absorbing = absorbing_states(chain);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    double max_change = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (s == target || absorbing[s]) {
        continue;
      }
      double self_p = 0.0;
      double rhs = 0.0;
      for (const Transition& tr : chain.row(s)) {
        if (tr.target == s) {
          self_p = tr.probability;
        } else {
          rhs += tr.probability * h[tr.target];
        }
      }
      const double updated = (self_p >= 1.0 - 1e-15) ? 0.0 : rhs / (1.0 - self_p);
      max_change = std::max(max_change, std::abs(updated - h[s]));
      h[s] = updated;
    }
    if (max_change <= tolerance) {
      break;
    }
  }
  return h;
}

}  // namespace mpbt::markov
