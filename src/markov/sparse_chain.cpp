#include "markov/sparse_chain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace mpbt::markov {

SparseChain::SparseChain(std::size_t num_states) : rows_(num_states) {
  util::throw_if_invalid(num_states == 0, "SparseChain requires at least one state");
}

void SparseChain::add_transition(std::size_t from, std::size_t to, double p) {
  util::throw_if_invalid(finalized_, "SparseChain::add_transition after finalize");
  util::throw_if_out_of_range(from >= rows_.size() || to >= rows_.size(),
                              "SparseChain transition index out of range");
  util::throw_if_invalid(p < 0.0 || !std::isfinite(p),
                         "SparseChain transition probability must be finite and >= 0");
  if (p == 0.0) {
    return;
  }
  auto& row = rows_[from];
  for (Transition& t : row) {
    if (t.target == to) {
      t.probability += p;
      return;
    }
  }
  row.push_back({to, p});
}

void SparseChain::finalize(double tolerance) {
  util::throw_if_invalid(finalized_, "SparseChain::finalize called twice");
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    auto& row = rows_[s];
    if (row.empty()) {
      row.push_back({s, 1.0});
      continue;
    }
    double sum = 0.0;
    for (const Transition& t : row) {
      sum += t.probability;
    }
    if (std::abs(sum - 1.0) > tolerance) {
      throw std::invalid_argument("SparseChain row " + std::to_string(s) +
                                  " sums to " + std::to_string(sum) + ", expected 1");
    }
    for (Transition& t : row) {
      t.probability /= sum;
    }
    std::sort(row.begin(), row.end(),
              [](const Transition& a, const Transition& b) { return a.target < b.target; });
  }
  finalized_ = true;
}

const std::vector<Transition>& SparseChain::row(std::size_t state) const {
  util::throw_if_out_of_range(state >= rows_.size(), "SparseChain state out of range");
  return rows_[state];
}

double SparseChain::row_sum(std::size_t state) const {
  double sum = 0.0;
  for (const Transition& t : row(state)) {
    sum += t.probability;
  }
  return sum;
}

bool SparseChain::is_absorbing(std::size_t state) const {
  const auto& r = row(state);
  return r.size() == 1 && r.front().target == state;
}

std::size_t SparseChain::step(std::size_t state, numeric::Rng& rng) const {
  util::throw_if_invalid(!finalized_, "SparseChain::step requires finalize()");
  const auto& r = row(state);
  double u = rng.uniform01();
  for (const Transition& t : r) {
    if (u < t.probability) {
      return t.target;
    }
    u -= t.probability;
  }
  return r.back().target;  // rounding fell off the end
}

std::vector<double> SparseChain::step_distribution(const std::vector<double>& dist) const {
  util::throw_if_invalid(!finalized_, "SparseChain::step_distribution requires finalize()");
  util::throw_if_invalid(dist.size() != rows_.size(),
                         "step_distribution: distribution size mismatch");
  std::vector<double> out(rows_.size(), 0.0);
  for (std::size_t s = 0; s < rows_.size(); ++s) {
    const double mass = dist[s];
    if (mass == 0.0) {
      continue;
    }
    for (const Transition& t : rows_[s]) {
      out[t.target] += mass * t.probability;
    }
  }
  return out;
}

std::size_t SparseChain::num_transitions() const {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    n += row.size();
  }
  return n;
}

}  // namespace mpbt::markov
