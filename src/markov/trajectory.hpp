// Monte Carlo trajectory sampling over a SparseChain.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "markov/sparse_chain.hpp"
#include "numeric/rng.hpp"

namespace mpbt::markov {

struct Trajectory {
  /// Visited states, beginning with the start state.
  std::vector<std::size_t> states;
  /// True if the walk ended in an absorbing state (vs hitting the cap).
  bool absorbed = false;
};

/// Samples a single trajectory from `start`, stopping at an absorbing state
/// or after `max_steps` transitions.
Trajectory sample_trajectory(const SparseChain& chain, std::size_t start,
                             numeric::Rng& rng, std::size_t max_steps = 1000000);

struct HittingTimeStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t absorbed_count = 0;
  std::size_t sample_count = 0;
};

/// Estimates the absorption time from `start` over `samples` runs.
/// Runs that hit the step cap count toward sample_count but not
/// absorbed_count and are excluded from the mean.
HittingTimeStats estimate_absorption_time(const SparseChain& chain, std::size_t start,
                                          numeric::Rng& rng, std::size_t samples,
                                          std::size_t max_steps = 1000000);

/// Walks one trajectory calling `visit(step, state)` at every state
/// (including the start at step 0). Stops on absorption or the cap;
/// returns the number of transitions taken.
std::size_t walk(const SparseChain& chain, std::size_t start, numeric::Rng& rng,
                 const std::function<void(std::size_t, std::size_t)>& visit,
                 std::size_t max_steps = 1000000);

}  // namespace mpbt::markov
