#include "des/event_queue.hpp"

#include "util/assert.hpp"

namespace mpbt::des {

void EventHandle::cancel() {
  if (cancelled_) {
    *cancelled_ = true;
  }
}

bool EventHandle::active() const { return cancelled_ != nullptr && !*cancelled_; }

EventHandle EventQueue::push(double time, EventCallback callback) {
  util::throw_if_invalid(!callback, "EventQueue::push requires a callable");
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{time, next_seq_++, std::move(callback), cancelled});
  return EventHandle(std::move(cancelled));
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) {
    const_cast<EventQueue*>(this)->heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

std::size_t EventQueue::size() const {
  drop_cancelled();
  return heap_.size();
}

double EventQueue::next_time() const {
  drop_cancelled();
  util::throw_if_invalid(heap_.empty(), "EventQueue::next_time on empty queue");
  return heap_.top().time;
}

std::pair<double, EventCallback> EventQueue::pop() {
  drop_cancelled();
  util::throw_if_invalid(heap_.empty(), "EventQueue::pop on empty queue");
  // priority_queue::top() returns const&; moving the callback out requires
  // a const_cast that is safe because we pop immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  std::pair<double, EventCallback> out{top.time, std::move(top.callback)};
  heap_.pop();
  return out;
}

}  // namespace mpbt::des
