// Discrete-event simulation engine.
//
// A thin sequential engine over EventQueue: schedule callbacks at absolute
// times or relative delays, run until the queue drains or a time/step limit
// is hit. The BitTorrent swarm and coupon simulators are built on this.
#pragma once

#include <cstdint>
#include <functional>

#include "des/event_queue.hpp"

namespace mpbt::des {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time; starts at 0.
  double now() const { return now_; }

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// Schedules at absolute time `time` (must be >= now()).
  EventHandle schedule_at(double time, EventCallback callback);

  /// Schedules `delay` time units from now (delay >= 0).
  EventHandle schedule_in(double delay, EventCallback callback);

  bool has_pending() const { return !queue_.empty(); }

  /// Executes the single earliest event. Returns false when none pending.
  bool step();

  /// Runs until the queue is empty or simulation time would exceed
  /// `end_time` (events at exactly end_time still run). Returns the number
  /// of events executed by this call.
  std::uint64_t run_until(double end_time);

  /// Runs until the queue is empty or `max_events` more events have run.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace mpbt::des
