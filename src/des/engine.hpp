// Discrete-event simulation engine.
//
// A thin sequential engine over EventQueue: schedule callbacks at absolute
// times or relative delays, run until the queue drains or a time/step limit
// is hit. The BitTorrent swarm and coupon simulators are built on this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "des/event_queue.hpp"

namespace mpbt::des {

/// Observer hooks for engine activity. Non-owning; attach with
/// Engine::set_observer. Callbacks run synchronously on the engine's
/// thread and must not schedule-or-cancel reentrantly from on_schedule.
/// The obs layer (or a test) implements this to feed a metrics registry
/// without the engine depending on it.
struct EngineObserver {
  virtual ~EngineObserver() = default;
  /// An event was scheduled at absolute `time`.
  virtual void on_schedule(double time) { (void)time; }
  /// An event finished executing; `now` is the engine clock.
  virtual void on_execute(double now) { (void)now; }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time; starts at 0.
  double now() const { return now_; }

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// High-water mark of the pending-event queue (counts lazily cancelled
  /// entries until they surface, like EventQueue::size).
  std::size_t queue_high_water() const { return queue_high_water_; }

  /// Attaches an observer (nullptr detaches). Observation only: hooks
  /// must not change what the engine would compute.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Schedules at absolute time `time` (must be >= now()).
  EventHandle schedule_at(double time, EventCallback callback);

  /// Schedules `delay` time units from now (delay >= 0).
  EventHandle schedule_in(double delay, EventCallback callback);

  bool has_pending() const { return !queue_.empty(); }

  /// Executes the single earliest event. Returns false when none pending.
  bool step();

  /// Runs until the queue is empty or simulation time would exceed
  /// `end_time` (events at exactly end_time still run). Returns the number
  /// of events executed by this call.
  std::uint64_t run_until(double end_time);

  /// Runs until the queue is empty or `max_events` more events have run.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t executed_ = 0;
  std::size_t queue_high_water_ = 0;
  EngineObserver* observer_ = nullptr;
};

}  // namespace mpbt::des
