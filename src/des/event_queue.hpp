// Stable-order pending-event set for the discrete-event engine.
//
// Events are ordered by (time, sequence number) so that ties break in
// scheduling order — a requirement for reproducible simulations. Supports
// O(log n) push/pop and lazy cancellation via EventHandle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace mpbt::des {

using EventCallback = std::function<void()>;

/// Cancellation token for a scheduled event. Copyable; cancelling any copy
/// cancels the event. A default-constructed handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Marks the event cancelled; a cancelled event's callback never runs.
  /// Idempotent; safe on a default-constructed handle.
  void cancel();

  /// True if this handle refers to an event that has not been cancelled.
  /// (The event may already have fired.)
  bool active() const;

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  /// Schedules `callback` at absolute `time`. Times may repeat; FIFO among
  /// equal times. Returns a handle for cancellation.
  EventHandle push(double time, EventCallback callback);

  bool empty() const;

  /// Upper bound on the number of pending events (buried cancelled entries
  /// are counted until they reach the top of the heap).
  std::size_t size() const;

  /// Time of the earliest non-cancelled event. Requires !empty().
  double next_time() const;

  /// Pops and returns the earliest non-cancelled event's callback along
  /// with its time. Requires !empty().
  std::pair<double, EventCallback> pop();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventCallback callback;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mpbt::des
