#include "des/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mpbt::des {

EventHandle Engine::schedule_at(double time, EventCallback callback) {
  util::throw_if_invalid(time < now_, "Engine::schedule_at requires time >= now()");
  EventHandle handle = queue_.push(time, std::move(callback));
  queue_high_water_ = std::max(queue_high_water_, queue_.size());
  if (observer_ != nullptr) {
    observer_->on_schedule(time);
  }
  return handle;
}

EventHandle Engine::schedule_in(double delay, EventCallback callback) {
  util::throw_if_invalid(delay < 0.0, "Engine::schedule_in requires delay >= 0");
  return schedule_at(now_ + delay, std::move(callback));
}

bool Engine::step() {
  if (queue_.empty()) {
    return false;
  }
  auto [time, callback] = queue_.pop();
  MPBT_ASSERT(time >= now_);
  now_ = time;
  ++executed_;
  callback();
  if (observer_ != nullptr) {
    observer_->on_execute(now_);
  }
  return true;
}

std::uint64_t Engine::run_until(double end_time) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= end_time) {
    step();
    ++count;
  }
  return count;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && step()) {
    ++count;
  }
  return count;
}

}  // namespace mpbt::des
