#include "exp/runner.hpp"

#include <chrono>
#include <utility>

#include "exp/seed_stream.hpp"
#include "exp/thread_pool.hpp"
#include "util/assert.hpp"

namespace mpbt::exp {

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {
  util::throw_if_invalid(options_.runs < 1, "SweepOptions: runs must be >= 1");
  util::throw_if_invalid(options_.jobs < 0, "SweepOptions: jobs must be >= 0");
}

SweepSummary SweepRunner::run(const Scenario& scenario, Sink* sink,
                              ProgressReporter* progress) const {
  const std::vector<ParamPoint> points = scenario.make_points(options_);
  const auto runs = static_cast<std::size_t>(options_.runs);

  SweepSummary summary;
  summary.points = points.size();
  summary.tasks = points.size() * runs;
  summary.jobs =
      options_.jobs > 0 ? static_cast<std::size_t>(options_.jobs) : ThreadPool::default_jobs();
  summary.records.resize(summary.tasks);

  const auto start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(summary.jobs);
    parallel_for_each(pool, summary.tasks, [&](std::size_t task) {
      const std::size_t point_index = task / runs;
      const std::size_t rep = task % runs;
      const ParamPoint& point = points[point_index];
      const std::uint64_t seed = derive_seed(options_.seed, point_index, rep);

      Record record;
      record.set("scenario", scenario.name);
      record.set("point", static_cast<long long>(point_index));
      record.set("rep", static_cast<long long>(rep));
      // As a decimal string: 64-bit seeds overflow both signed long long
      // and JSON parsers' double-backed numbers.
      record.set("seed", std::to_string(seed));
      for (const auto& [key, value] : point.params) {
        record.set(key, value);
      }
      Record measured = scenario.run(point, seed, options_);
      for (auto& [key, value] : measured.fields) {
        record.set(std::move(key), std::move(value));
      }

      if (sink != nullptr) {
        sink->write(record);  // sinks serialize internally
      }
      summary.records[task] = std::move(record);  // distinct slot per task
      if (progress != nullptr) {
        progress->task_done();
      }
    });
  }
  summary.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (sink != nullptr) {
    sink->flush();
  }
  return summary;
}

}  // namespace mpbt::exp
