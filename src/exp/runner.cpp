#include "exp/runner.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "exp/seed_stream.hpp"
#include "exp/thread_pool.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mpbt::exp {

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {
  util::throw_if_invalid(options_.runs < 1, "SweepOptions: runs must be >= 1");
  util::throw_if_invalid(options_.jobs < 0, "SweepOptions: jobs must be >= 0");
}

SweepSummary SweepRunner::run(const Scenario& scenario, Sink* sink,
                              ProgressReporter* progress) const {
  const std::vector<ParamPoint> points = scenario.make_points(options_);
  const auto runs = static_cast<std::size_t>(options_.runs);
  const obs::Observability& obs = options_.observability;

  SweepSummary summary;
  summary.points = points.size();
  summary.tasks = points.size() * runs;
  summary.jobs =
      options_.jobs > 0 ? static_cast<std::size_t>(options_.jobs) : ThreadPool::default_jobs();
  summary.records.resize(summary.tasks);

  // Per-task metric scope: handles resolved once, shared by all workers.
  obs::Histogram* task_seconds = nullptr;
  obs::StreamStats* task_stats = nullptr;
  obs::Counter* tasks_completed = nullptr;
  if (obs.registry != nullptr) {
    task_seconds = &obs.registry->histogram(
        "sweep.task_seconds",
        {0.001, 0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300});
    // Companion exact-quantile stream: per-task durations are low-rate
    // (one observe per task), so StreamStats' mutex is off the hot path.
    task_stats = &obs.registry->stats("sweep.task_seconds");
    tasks_completed = &obs.registry->counter("sweep.tasks_completed");
  }

  const auto start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(summary.jobs);
    if (obs.profiler != nullptr) {
      pool.set_profiler(obs.profiler);
    }
    parallel_for_each(pool, summary.tasks, [&](std::size_t task) {
      const std::size_t point_index = task / runs;
      const std::size_t rep = task % runs;
      const ParamPoint& point = points[point_index];
      const std::uint64_t seed = derive_seed(options_.seed, point_index, rep);

      // Task-scoped observability: this task's swarms pick the recorder
      // up from the thread-local scope at construction.
      std::optional<obs::TraceRecorder> recorder;
      if (obs.traces != nullptr) {
        recorder.emplace(obs.trace_capacity);
        recorder->set_registry(obs.registry);
      }
      const obs::TaskScope scope(recorder.has_value() ? &*recorder : nullptr,
                                 obs.registry);

      Record record;
      record.set("scenario", scenario.name);
      record.set("point", static_cast<long long>(point_index));
      record.set("rep", static_cast<long long>(rep));
      // As a decimal string: 64-bit seeds overflow both signed long long
      // and JSON parsers' double-backed numbers.
      record.set("seed", std::to_string(seed));
      for (const auto& [key, value] : point.params) {
        record.set(key, value);
      }
      {
        const auto task_start = std::chrono::steady_clock::now();
        Record measured = scenario.run(point, seed, options_);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - task_start)
                .count();
        if (task_seconds != nullptr) {
          task_seconds->observe(elapsed);
        }
        if (task_stats != nullptr) {
          task_stats->observe(elapsed);
        }
        for (auto& [key, value] : measured.fields) {
          record.set(std::move(key), std::move(value));
        }
      }
      if (tasks_completed != nullptr) {
        tasks_completed->add();
      }
      if (recorder.has_value()) {
        obs::TaskTrace trace;
        trace.task = task;
        trace.label = scenario.name + " point=" + std::to_string(point_index) +
                      " rep=" + std::to_string(rep);
        trace.events = recorder->events();
        trace.dropped = recorder->dropped();
        obs.traces->add(std::move(trace));
      }

      if (sink != nullptr) {
        sink->write(record);  // sinks serialize internally
      }
      summary.records[task] = std::move(record);  // distinct slot per task
      if (progress != nullptr) {
        progress->task_done();
      }
    });
  }
  summary.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (sink != nullptr) {
    sink->flush();
  }

  if (obs.registry != nullptr) {
    summary.metrics = obs.registry->snapshot();
    if (progress != nullptr) {
      // Fold the observability snapshot into the progress report so the
      // final stderr line carries utilization next to the ETA history.
      std::ostringstream note;
      note << "obs: " << summary.metrics.counters.size() << " counters, "
           << summary.metrics.histograms.size() << " histograms";
      for (const auto& hist : summary.metrics.histograms) {
        if (hist.name == "sweep.task_seconds" && hist.count > 0) {
          note << "; task wall p50<=" << hist.quantile(0.5) << "s p95<="
               << hist.quantile(0.95) << "s";
        }
      }
      if (obs.traces != nullptr) {
        note << "; trace events " << obs.traces->total_events();
        if (obs.traces->total_dropped() > 0) {
          note << " (" << obs.traces->total_dropped() << " dropped)";
        }
      }
      if (obs.profiler != nullptr) {
        const auto workers = obs.profiler->worker_stats();
        double busy = 0.0;
        for (const auto& w : workers) {
          busy += w.busy_seconds;
        }
        const double wall = summary.seconds * static_cast<double>(summary.jobs);
        if (wall > 0.0) {
          note << "; worker utilization " << static_cast<int>(100.0 * busy / wall)
               << "%";
        }
      }
      progress->annotate(note.str());
    }
  }
  return summary;
}

}  // namespace mpbt::exp
