#include "exp/metrics_export.hpp"

#include <cmath>
#include <cstdio>
#include <string>

namespace mpbt::exp {

namespace {

Record base_record(std::string kind, const std::string& name) {
  Record record;
  record.set("kind", std::move(kind));
  record.set("name", name);
  record.set("value", 0.0);
  record.set("count", static_cast<long long>(0));
  record.set("sum", 0.0);
  record.set("buckets", std::string());
  return record;
}

}  // namespace

std::string format_stats(const obs::StreamStatsSnapshot& stats) {
  std::string out;
  out += "stddev:";
  out += format_value(stats.stddev);
  out += "|min:";
  out += format_value(stats.min);
  out += "|max:";
  out += format_value(stats.max);
  for (const auto& [probability, estimate] : stats.quantiles) {
    // Probes are labels, not measurements: "p0.9", not the probe's
    // 17-digit double representation.
    char probe[32];
    std::snprintf(probe, sizeof probe, "|p%g:", probability);
    out += probe;
    out += format_value(estimate);
  }
  return out;
}

std::string format_buckets(const obs::HistogramSnapshot& hist) {
  std::string out;
  for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
    if (i > 0) {
      out += '|';
    }
    if (i < hist.bounds.size()) {
      out += format_value(hist.bounds[i]);
    } else {
      out += "+inf";
    }
    out += ':';
    out += std::to_string(hist.buckets[i]);
  }
  return out;
}

void write_metrics_snapshot(const obs::MetricsSnapshot& snapshot, Sink& sink) {
  for (const obs::CounterSnapshot& counter : snapshot.counters) {
    Record record = base_record("counter", counter.name);
    record.set("value", static_cast<double>(counter.value));
    record.set("count", static_cast<long long>(counter.value));
    sink.write(record);
  }
  for (const obs::GaugeSnapshot& gauge : snapshot.gauges) {
    Record record = base_record("gauge", gauge.name);
    record.set("value", gauge.value);
    sink.write(record);
  }
  for (const obs::HistogramSnapshot& hist : snapshot.histograms) {
    Record record = base_record("histogram", hist.name);
    record.set("value", hist.mean());
    record.set("count", static_cast<long long>(hist.count));
    record.set("sum", hist.sum);
    record.set("buckets", format_buckets(hist));
    sink.write(record);
  }
  for (const obs::StreamStatsSnapshot& stats : snapshot.stats) {
    Record record = base_record("stats", stats.name);
    record.set("value", stats.mean);
    record.set("count", static_cast<long long>(stats.count));
    record.set("sum", stats.sum);
    record.set("buckets", format_stats(stats));
    sink.write(record);
  }
}

}  // namespace mpbt::exp
