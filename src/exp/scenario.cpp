#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/calibrate.hpp"
#include "bt/swarm.hpp"
#include "efficiency/balance.hpp"
#include "model/download_model.hpp"
#include "model/ensemble.hpp"
#include "stability/entropy.hpp"
#include "stability/experiment.hpp"

namespace mpbt::exp {

void ParamPoint::set(std::string key, Value value) {
  for (auto& [name, existing] : params) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  params.emplace_back(std::move(key), std::move(value));
}

const Value& ParamPoint::get(std::string_view key) const {
  for (const auto& [name, value] : params) {
    if (name == key) {
      return value;
    }
  }
  throw std::invalid_argument("ParamPoint: no parameter named " + std::string(key));
}

long long ParamPoint::get_int(std::string_view key) const {
  const Value& value = get(key);
  if (const auto* i = std::get_if<long long>(&value)) {
    return *i;
  }
  throw std::invalid_argument("ParamPoint: parameter " + std::string(key) + " is not an integer");
}

double ParamPoint::get_double(std::string_view key) const {
  const Value& value = get(key);
  if (const auto* d = std::get_if<double>(&value)) {
    return *d;
  }
  if (const auto* i = std::get_if<long long>(&value)) {
    return static_cast<double>(*i);
  }
  throw std::invalid_argument("ParamPoint: parameter " + std::string(key) + " is not numeric");
}

namespace {

// --- efficiency_vs_k ------------------------------------------------------
// The Fig. 3/4(a) setup (see bench/fig3a_efficiency_vs_k.cpp): a steady
// mixed-completion swarm with age-correlated content, swept over k. Each
// repetition reports the simulated efficiency, the measured re-encounter
// probability p_r, and the balance-equation model's eta fed with that p_r.

bt::SwarmConfig efficiency_swarm_config(std::uint32_t k, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 100 : 200;
  config.max_connections = k;
  config.peer_set_size = 40;
  config.arrival_rate = 3.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seed = seed;
  const std::vector<double> ramp = stability::ramp_piece_probs(config.num_pieces, 0.75, 0.05);
  bt::InitialGroup warm;
  warm.count = 100;
  warm.piece_probs = ramp;
  config.initial_groups.push_back(std::move(warm));
  config.arrival_piece_probs = ramp;
  return config;
}

Scenario make_efficiency_vs_k() {
  Scenario scenario;
  scenario.name = "efficiency_vs_k";
  scenario.description =
      "Fig. 3/4(a): swarm efficiency and balance-equation model vs the connection limit k";
  scenario.make_points = [](const SweepOptions&) {
    std::vector<ParamPoint> points;
    for (long long k = 1; k <= 10; ++k) {
      ParamPoint point;
      point.set("k", k);
      points.push_back(std::move(point));
    }
    return points;
  };
  scenario.run = [](const ParamPoint& point, std::uint64_t seed, const SweepOptions& options) {
    const auto k = static_cast<std::uint32_t>(point.get_int("k"));
    const bt::Round rounds = options.quick ? 150 : 300;
    bt::Swarm swarm(efficiency_swarm_config(k, seed, options.quick));
    // Instrument a handful of arrivals spread over the first half of the
    // run: their per-round client records feed the report layer's phase
    // rollups. Instrumentation happens whether or not tracing is on, so
    // the RNG path — and therefore every record value — stays identical
    // with and without observability attached.
    const bt::Round chunk = std::max<bt::Round>(1, rounds / 8);
    for (int i = 0; i < 4; ++i) {
      swarm.instrument_next_arrival();
      swarm.run_rounds(chunk);
    }
    swarm.run_rounds(rounds - 4 * chunk);
    const double sim_eta = swarm.metrics().mean_transfer_efficiency(rounds / 4);
    const double p_r = swarm.metrics().estimated_p_r();

    efficiency::EfficiencyParams params;
    params.k = static_cast<int>(k);
    params.p_r = p_r;
    params.N = std::max(2.0, static_cast<double>(swarm.population()));
    const double model_eta = efficiency::EfficiencySolver(params).solve().eta;

    // Markov-chain phase-occupancy prediction for the drift monitor: the
    // calibrated chain's expected per-phase rounds vs the fraction of
    // leecher-rounds the simulator observed in each phase.
    const model::ModelParams calibrated = analysis::calibrate_model(swarm);
    const model::EvolutionResult evolution = model::compute_evolution(
        calibrated, /*max_steps=*/options.quick ? 20000 : 50000);
    const double model_total = evolution.bootstrap_rounds + evolution.efficient_rounds +
                               evolution.last_rounds;

    Record record;
    record.set("sim_eta", sim_eta);
    record.set("model_eta", model_eta);
    record.set("sim_bootstrap_frac", swarm.metrics().bootstrap_fraction());
    record.set("model_bootstrap_frac",
               model_total > 0.0 ? evolution.bootstrap_rounds / model_total : 0.0);
    record.set("sim_last_frac", swarm.metrics().last_phase_fraction());
    record.set("model_last_frac",
               model_total > 0.0 ? evolution.last_rounds / model_total : 0.0);
    record.set("measured_p_r", p_r);
    record.set("population", static_cast<long long>(swarm.population()));
    return record;
  };
  return scenario;
}

// --- stability_vs_B -------------------------------------------------------
// The Section 6 experiment: skew-seeded swarms swept over the piece count
// B and the arrival rate; reports the divergence verdict and the entropy
// trajectory summary (B = 3 diverges, B >= 10 recovers).

Scenario make_stability_vs_b() {
  Scenario scenario;
  scenario.name = "stability_vs_B";
  scenario.description =
      "Section 6: population divergence and entropy recovery vs piece count B and arrival rate";
  scenario.make_points = [](const SweepOptions& options) {
    const std::vector<long long> piece_counts = {3, 10, 100};
    const std::vector<double> arrival_rates =
        options.quick ? std::vector<double>{4.0} : std::vector<double>{2.0, 4.0};
    std::vector<ParamPoint> points;
    for (const long long b : piece_counts) {
      for (const double lambda : arrival_rates) {
        ParamPoint point;
        point.set("B", b);
        point.set("arrival_rate", lambda);
        points.push_back(std::move(point));
      }
    }
    return points;
  };
  scenario.run = [](const ParamPoint& point, std::uint64_t seed, const SweepOptions& options) {
    stability::StabilityConfig config;
    config.num_pieces = static_cast<std::uint32_t>(point.get_int("B"));
    config.arrival_rate = point.get_double("arrival_rate");
    config.rounds = options.quick ? 200 : 400;
    config.initial_peers = options.quick ? 150 : 300;
    config.seed = seed;
    const stability::StabilityResult result = run_stability_experiment(config);

    // The paper's stability threshold is the model prediction here: few
    // pieces (B <= 3) cannot re-balance — entropy collapses to 0 and the
    // population diverges — while B >= 10 recovers entropy toward 1.
    const bool model_diverges = config.num_pieces <= 3;

    Record record;
    record.set("diverged", result.diverged);
    record.set("final_entropy", result.final_entropy);
    record.set("mean_entropy_tail", result.mean_entropy_tail);
    record.set("sim_entropy_tail", result.mean_entropy_tail);
    record.set("model_entropy_tail", model_diverges ? 0.0 : 1.0);
    record.set("sim_diverged", result.diverged ? 1.0 : 0.0);
    record.set("model_diverged", model_diverges ? 1.0 : 0.0);
    record.set("peak_population", static_cast<long long>(result.peak_population));
    record.set("final_population", static_cast<long long>(result.final_population));
    record.set("completed", static_cast<long long>(result.completed));
    return record;
  };
  return scenario;
}

// --- ensemble_transient ---------------------------------------------------
// Sections 6/8: run a healthy seeded swarm, calibrate the per-peer chain
// from it, evolve the transient ensemble under the same arrival rate, and
// report how well the ensemble's population trajectory tracks the
// simulator's (the paper's future-work machinery, quantified).

Scenario make_ensemble_transient() {
  Scenario scenario;
  scenario.name = "ensemble_transient";
  scenario.description =
      "Sections 6/8: transient ensemble population vs the simulator across arrival rates";
  scenario.make_points = [](const SweepOptions& options) {
    const std::vector<double> arrival_rates =
        options.quick ? std::vector<double>{2.0} : std::vector<double>{1.0, 2.0, 4.0};
    std::vector<ParamPoint> points;
    for (const double lambda : arrival_rates) {
      ParamPoint point;
      point.set("arrival_rate", lambda);
      points.push_back(std::move(point));
    }
    return points;
  };
  scenario.run = [](const ParamPoint& point, std::uint64_t seed, const SweepOptions& options) {
    const bt::Round rounds = options.quick ? 150 : 250;
    bt::SwarmConfig config;
    config.num_pieces = options.quick ? 40 : 60;
    config.max_connections = 4;
    config.peer_set_size = 20;
    config.arrival_rate = point.get_double("arrival_rate");
    config.initial_seeds = 2;
    config.seed_capacity = 6;
    config.seeds_serve_all = true;
    config.seed = seed;
    bt::Swarm swarm(config);
    swarm.run_rounds(rounds);

    analysis::CalibrationOptions calibration;
    calibration.w = 0.5;
    calibration.gamma = 0.1;
    model::EnsembleParams ensemble;
    ensemble.peer = analysis::calibrate_model(swarm, calibration);
    ensemble.arrival_rate = config.arrival_rate;
    ensemble.rounds = rounds;
    const model::EnsembleResult predicted = model::run_ensemble(ensemble);

    const auto horizon = static_cast<double>(rounds - 1);
    const double sim_final = swarm.metrics().population().value_at(horizon);
    const double ensemble_final = predicted.population.value_at(horizon);

    Record record;
    record.set("sim_final_population", sim_final);
    record.set("model_final_population", ensemble_final);
    record.set("abs_error", std::abs(sim_final - ensemble_final));
    record.set("ensemble_completed", predicted.total_completed);
    record.set("ensemble_growing", predicted.population_growing);
    return record;
  };
  return scenario;
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = []() {
    auto* r = new ScenarioRegistry();
    r->add(make_efficiency_vs_k());
    r->add(make_stability_vs_b());
    r->add(make_ensemble_transient());
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty() || !scenario.make_points || !scenario.run) {
    throw std::invalid_argument("ScenarioRegistry::add: incomplete scenario");
  }
  for (const Scenario& existing : scenarios_) {
    if (existing.name == scenario.name) {
      throw std::invalid_argument("ScenarioRegistry::add: duplicate scenario " + scenario.name);
    }
  }
  scenarios_.push_back(std::move(scenario));
}

bool ScenarioRegistry::add_if_absent(Scenario scenario) {
  if (find(scenario.name) != nullptr) {
    return false;
  }
  add(std::move(scenario));
  return true;
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) {
      return &scenario;
    }
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::all() const {
  std::vector<const Scenario*> result;
  result.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) {
    result.push_back(&scenario);
  }
  std::sort(result.begin(), result.end(),
            [](const Scenario* a, const Scenario* b) { return a->name < b->name; });
  return result;
}

}  // namespace mpbt::exp
