// Deterministic seed derivation for parallel experiment sweeps.
//
// Every task in a sweep derives its RNG seed purely from (base_seed,
// task_index) — never from thread identity, completion order, or wall
// clock — so a sweep's results are bit-identical for any worker count.
// Derivation is the SplitMix64 output function: the seed for index i is
// the i-th output of a SplitMix64 generator whose state starts at the
// base seed. The two-level form derive_seed(base, point, rep) nests two
// such streams, which keeps a grid point's repetition seeds stable when
// the surrounding grid grows or is reordered.
#pragma once

#include <cstdint>

namespace mpbt::exp {

/// The SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
/// (This is the output function alone; it does not advance any state.)
std::uint64_t splitmix64_mix(std::uint64_t x);

/// Seed for task `task_index` of a stream rooted at `base_seed`. Equals
/// the (task_index+1)-th output of SplitMix64 seeded with `base_seed`,
/// computable in O(1) for any index.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index);

/// Seed for repetition `rep` of grid point `point_index`: nests two
/// streams, derive_seed(derive_seed(base, point_index), rep).
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t point_index, std::uint64_t rep);

/// A lazily-indexable stream of derived seeds rooted at one base seed.
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t base_seed) : base_(base_seed) {}

  std::uint64_t base() const { return base_; }

  /// Seed for index `i`; pure, any index, any order.
  std::uint64_t at(std::uint64_t i) const { return derive_seed(base_, i); }

  /// An independent stream rooted at this stream's i-th seed.
  SeedStream substream(std::uint64_t i) const { return SeedStream(at(i)); }

 private:
  std::uint64_t base_;
};

}  // namespace mpbt::exp
