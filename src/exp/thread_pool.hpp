// Fixed-size worker pool with futures-based submission.
//
// Deliberately simple — no work stealing, no priorities, no resizing: a
// single locked queue feeds a fixed set of workers, which is all an
// embarrassingly parallel sweep needs (tasks are seconds-long swarm runs,
// so queue contention is irrelevant). Determinism is the design driver:
// the pool never injects ordering into results — callers index their
// output by task, and seeds come from exp::SeedStream, so worker count
// and scheduling cannot change any computed value.
//
// Shutdown contract: the destructor runs every task already submitted
// (it drains the queue), then joins. Submitting from a worker thread is
// allowed; blocking a worker on a future of a task that has not started
// can deadlock a 1-thread pool — don't wait on the pool from the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mpbt::obs {
class WallProfiler;
}

namespace mpbt::exp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue (runs all submitted tasks), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// std::thread::hardware_concurrency, clamped to at least 1.
  static std::size_t default_jobs();

  /// Attaches a wall-time profiler (nullptr detaches): every executed
  /// task records one span (worker index, start, duration, enqueue ->
  /// dequeue queue wait). Attach BEFORE submitting work; with no
  /// profiler the only overhead is a null check per task. Profiling is
  /// wall-clock-only and cannot change task results or ordering.
  void set_profiler(obs::WallProfiler* profiler);

  /// Schedules `f()` on the pool and returns a future for its result.
  /// Exceptions thrown by `f` are captured and rethrown by future::get.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function needs copyable targets,
    // hence the shared_ptr wrapper.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

 private:
  struct Job {
    std::function<void()> fn;
    std::int64_t enqueue_us = 0;  // profiler clock; 0 when not profiling
  };

  void enqueue(std::function<void()> job);
  void worker_loop(std::uint32_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<Job> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  obs::WallProfiler* profiler_ = nullptr;  // guarded by mutex_
};

/// Runs fn(i) for every i in [0, count) across the pool and blocks until
/// all complete. If any invocations throw, the exception of the LOWEST
/// failing index is rethrown (a deterministic choice — completion order
/// never picks the winner); the remaining tasks still run to completion.
template <typename Fn>
void parallel_for_each(ThreadPool& pool, std::size_t count, Fn&& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i]() { fn(i); }));
  }
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

}  // namespace mpbt::exp
