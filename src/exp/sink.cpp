#include "exp/sink.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace mpbt::exp {

void Record::set(std::string key, Value value) {
  for (auto& [name, existing] : fields) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  fields.emplace_back(std::move(key), std::move(value));
}

const Value* Record::find(std::string_view key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

std::string format_double(double d) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << d;
  return os.str();
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open sink output file: " + path);
  }
  return file;
}

}  // namespace

std::string format_value(const Value& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    return *s;
  }
  if (const auto* i = std::get_if<long long>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return format_double(*d);
  }
  return std::get<bool>(value) ? "true" : "false";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string json_value(const Value& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    return '"' + json_escape(*s) + '"';
  }
  if (const auto* d = std::get_if<double>(&value)) {
    if (!std::isfinite(*d)) {
      return "null";
    }
  }
  return format_value(value);
}

std::string csv_field(const Value& value) {
  std::string text = format_value(value);
  if (text.find_first_of(",\"\n") != std::string::npos) {
    std::string quoted = "\"";
    for (const char c : text) {
      if (c == '"') {
        quoted += '"';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }
  return text;
}

}  // namespace

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(open_or_throw(path))), os_(owned_.get()) {}

void JsonlSink::write(const Record& record) {
  std::string line = "{";
  bool first = true;
  for (const auto& [key, value] : record.fields) {
    if (!first) {
      line += ',';
    }
    first = false;
    line += '"';
    line += json_escape(key);
    line += "\":";
    line += json_value(value);
  }
  line += "}\n";
  const std::lock_guard<std::mutex> lock(mutex_);
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
}

void JsonlSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  os_->flush();
}

CsvSink::CsvSink(std::ostream& os) : os_(&os) {}

CsvSink::CsvSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(open_or_throw(path))), os_(owned_.get()) {}

void CsvSink::write(const Record& record) {
  std::string line;
  std::string header;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (columns_.empty()) {
      for (const auto& [key, value] : record.fields) {
        (void)value;
        columns_.push_back(key);
        if (!header.empty()) {
          header += ',';
        }
        header += csv_field(key);
      }
      header += '\n';
    } else {
      MPBT_ASSERT_MSG(record.fields.size() == columns_.size(),
                      "CsvSink: record field count differs from header");
      for (std::size_t i = 0; i < columns_.size(); ++i) {
        MPBT_ASSERT_MSG(record.fields[i].first == columns_[i],
                        "CsvSink: record field order differs from header");
      }
    }
    for (const auto& [key, value] : record.fields) {
      (void)key;
      if (!line.empty()) {
        line += ',';
      }
      line += csv_field(value);
    }
    line += '\n';
    if (!header.empty()) {
      os_->write(header.data(), static_cast<std::streamsize>(header.size()));
    }
    os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

void CsvSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  os_->flush();
}

ProgressReporter::ProgressReporter(std::size_t total, std::ostream* os, std::string label)
    : total_(total), os_(os), label_(std::move(label)), start_(std::chrono::steady_clock::now()) {}

void ProgressReporter::task_done() {
  const std::size_t done = completed_.fetch_add(1) + 1;
  if (os_ == nullptr || total_ == 0) {
    return;
  }
  const std::size_t percent = done * 100 / total_;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (percent == last_percent_reported_ && done != total_) {
    return;
  }
  last_percent_reported_ = percent;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const double eta = done > 0 ? elapsed * static_cast<double>(total_ - done) / done : 0.0;
  std::ostringstream line;
  line << "[" << label_ << "] " << done << "/" << total_ << " (" << percent << "%)"
       << std::fixed << std::setprecision(1) << " elapsed " << elapsed << "s eta " << eta
       << "s\n";
  const std::string text = line.str();
  os_->write(text.data(), static_cast<std::streamsize>(text.size()));
  os_->flush();
}

void ProgressReporter::annotate(std::string line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  annotations_.push_back(std::move(line));
}

void ProgressReporter::finish() {
  if (os_ == nullptr) {
    return;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::ostringstream line;
  line << "[" << label_ << "] done: " << completed_.load() << " tasks in " << std::fixed
       << std::setprecision(2) << elapsed << "s\n";
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& note : annotations_) {
    line << "[" << label_ << "] " << note << "\n";
  }
  const std::string text = line.str();
  os_->write(text.data(), static_cast<std::streamsize>(text.size()));
  os_->flush();
}

}  // namespace mpbt::exp
