// SweepRunner: fans a scenario's (grid point × repetition) tasks over a
// ThreadPool.
//
// Determinism contract: task t = point_index * runs + rep is seeded with
// derive_seed(options.seed, point_index, rep) and computes its record
// from (point, seed) alone. Records are streamed to the sink in
// COMPLETION order (each record is one serialized write — sort the file
// to compare across job counts) and returned in TASK order, so the
// in-memory result is byte-for-byte identical for any --jobs value.
#pragma once

#include <cstddef>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "obs/metrics.hpp"

namespace mpbt::exp {

struct SweepSummary {
  std::size_t points = 0;       ///< grid points expanded
  std::size_t tasks = 0;        ///< points × runs
  std::size_t jobs = 0;         ///< worker threads actually used
  double seconds = 0.0;         ///< wall-clock for the parallel region
  std::vector<Record> records;  ///< one per task, in task order
  /// Registry snapshot taken after all tasks joined (empty when no
  /// registry was attached via SweepOptions::observability).
  obs::MetricsSnapshot metrics;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options);

  const SweepOptions& options() const { return options_; }

  /// Runs the scenario. `sink` and `progress` may be null; the sink
  /// receives records as tasks complete, the summary holds them in task
  /// order. Exceptions from scenario.run propagate (lowest failing task
  /// index wins) after all tasks finish.
  SweepSummary run(const Scenario& scenario, Sink* sink = nullptr,
                   ProgressReporter* progress = nullptr) const;

 private:
  SweepOptions options_;
};

}  // namespace mpbt::exp
