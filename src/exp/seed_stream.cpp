#include "exp/seed_stream.hpp"

namespace mpbt::exp {

namespace {
// SplitMix64's Weyl-sequence increment (the golden-ratio constant).
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
}  // namespace

std::uint64_t splitmix64_mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // State after (task_index + 1) SplitMix64 steps from base_seed, then the
  // output mix. Jumping the Weyl sequence directly makes this O(1).
  return splitmix64_mix(base_seed + (task_index + 1) * kGamma);
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t point_index, std::uint64_t rep) {
  return derive_seed(derive_seed(base_seed, point_index), rep);
}

}  // namespace mpbt::exp
