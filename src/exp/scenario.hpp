// Named experiment scenarios: a parameter grid plus a per-point runner.
//
// A Scenario is the unit the sweep machinery fans out: `make_points`
// expands a parameter grid (k values, piece counts, arrival rates, ...)
// and `run` executes ONE seeded repetition of one grid point, returning
// the measured outputs as a Record. The SweepRunner crosses the grid
// with --runs repetitions, derives each task's seed from (base seed,
// point index, rep index), and annotates every record with the point's
// parameters — scenarios only produce measurements.
//
// Built-in scenarios (registered on first registry access):
//   efficiency_vs_k    Fig. 3/4(a): swarm efficiency + balance model vs k
//   stability_vs_B     Section 6: divergence/entropy vs piece count B and
//                      arrival rate, from a skew-seeded start
//   ensemble_transient Sections 6/8: transient ensemble population vs the
//                      simulator across arrival rates
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/sink.hpp"
#include "obs/observability.hpp"

namespace mpbt::exp {

struct SweepOptions {
  std::uint64_t seed = 42;  ///< base seed for the whole sweep
  int runs = 3;             ///< repetitions per grid point
  int jobs = 0;             ///< worker threads; 0 = all hardware threads
  bool quick = false;       ///< smaller workloads for smoke runs
  std::string out;          ///< output path; empty = stdout
  /// Tracing / metrics / profiling sinks (all off by default). Sim-time
  /// traces depend only on each task's seed, so output — including the
  /// scenario records — is identical whether or not this is enabled.
  obs::Observability observability;
};

/// One point of a scenario's parameter grid. Parameters are ordered
/// (name, value) pairs; they are echoed into every result record.
struct ParamPoint {
  std::vector<std::pair<std::string, Value>> params;

  void set(std::string key, Value value);
  /// Typed getters; throw std::invalid_argument on a missing key or a
  /// type mismatch (scenario bugs should fail loudly).
  long long get_int(std::string_view key) const;
  double get_double(std::string_view key) const;

 private:
  const Value& get(std::string_view key) const;
};

struct Scenario {
  std::string name;
  std::string description;
  /// Expands the parameter grid (may shrink under options.quick).
  std::function<std::vector<ParamPoint>(const SweepOptions&)> make_points;
  /// Runs one seeded repetition of one grid point. Must be pure in
  /// (point, seed, options): no shared mutable state, so points can run
  /// on any worker in any order.
  std::function<Record(const ParamPoint&, std::uint64_t seed, const SweepOptions&)> run;
};

/// Process-wide scenario registry. The built-in scenarios are registered
/// the first time instance() is called; library users can add their own.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// Registers a scenario; throws std::invalid_argument on a duplicate name.
  void add(Scenario scenario);

  /// Registers a scenario unless one with the same name already exists;
  /// returns true when it was added. Higher layers (eco) register their
  /// scenarios from every CLI entry point, so registration must be
  /// idempotent.
  bool add_if_absent(Scenario scenario);

  /// Returns the scenario or nullptr.
  const Scenario* find(std::string_view name) const;

  /// All scenarios, sorted by name.
  std::vector<const Scenario*> all() const;

 private:
  ScenarioRegistry() = default;
  std::vector<Scenario> scenarios_;
};

}  // namespace mpbt::exp
