// Bridges obs::MetricsSnapshot into the exp result sinks.
//
// Lives in exp (not obs) because obs sits below the sink layer in the
// dependency graph. Every metric becomes one Record with a UNIFORM
// schema — kind/name/value/count/sum/buckets — so the rows satisfy
// CsvSink's same-columns invariant as well as JSONL. Fields that do not
// apply to a kind are zero / empty, never omitted.
#pragma once

#include "exp/sink.hpp"
#include "obs/metrics.hpp"

namespace mpbt::exp {

/// Encodes histogram buckets as "edge:count|edge:count|...|+inf:count"
/// (one token per bucket, inclusive upper edges, final token = overflow).
std::string format_buckets(const obs::HistogramSnapshot& hist);

/// Encodes a StreamStats snapshot's distribution summary in the shared
/// `buckets` column: "stddev:s|min:m|max:M|p0.5:est|p0.9:est|..."
/// (quantile tokens ascending by probability).
std::string format_stats(const obs::StreamStatsSnapshot& stats);

/// Writes the snapshot to the sink, one record per metric, ordered
/// counters -> gauges -> histograms -> stats (each name-sorted, as the
/// snapshot already is). Does not flush; the caller owns the sink
/// lifecycle.
void write_metrics_snapshot(const obs::MetricsSnapshot& snapshot, Sink& sink);

}  // namespace mpbt::exp
