#include "exp/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mpbt::exp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::size_t ThreadPool::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MPBT_ASSERT_MSG(!stopping_, "ThreadPool::submit after destruction began");
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();  // packaged_task captures exceptions into the future
  }
}

}  // namespace mpbt::exp
