#include "exp/thread_pool.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace mpbt::exp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i]() { worker_loop(static_cast<std::uint32_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::size_t ThreadPool::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::set_profiler(obs::WallProfiler* profiler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  MPBT_ASSERT_MSG(queue_.empty(), "ThreadPool::set_profiler with tasks queued");
  profiler_ = profiler;
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MPBT_ASSERT_MSG(!stopping_, "ThreadPool::submit after destruction began");
    Job item;
    item.fn = std::move(job);
    if (profiler_ != nullptr) {
      item.enqueue_us = profiler_->now_us();
    }
    queue_.push(std::move(item));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::uint32_t worker_index) {
  for (;;) {
    Job job;
    obs::WallProfiler* profiler = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      job = std::move(queue_.front());
      queue_.pop();
      profiler = profiler_;
    }
    if (profiler == nullptr) {
      job.fn();  // packaged_task captures exceptions into the future
      continue;
    }
    const std::int64_t start_us = profiler->now_us();
    job.fn();
    obs::TaskSpan span;
    span.worker = worker_index;
    span.start_us = start_us;
    span.duration_us = profiler->now_us() - start_us;
    span.queue_wait_us = start_us - job.enqueue_us;
    profiler->record(std::move(span));
  }
}

}  // namespace mpbt::exp
