// Thread-safe structured result sinks for parallel sweeps.
//
// Workers complete tasks in a nondeterministic order, so each completed
// task's record is serialized to a full line of text first and then
// emitted as ONE stream write under the sink's mutex — concurrent
// workers' lines never interleave mid-record. Because every record is
// self-describing (it carries its point/rep indices) and doubles are
// formatted with round-trip precision, sorting a JSONL file yields
// byte-identical output for any worker count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mpbt::exp {

/// One field value. Booleans are distinct from integers so JSONL emits
/// true/false and CSV emits 1/0 consistently.
using Value = std::variant<std::string, long long, double, bool>;

/// One result row: an ordered field list (insertion order is the output
/// column/key order, so records from one scenario line up).
struct Record {
  std::vector<std::pair<std::string, Value>> fields;

  /// Appends the field, or overwrites it in place if the key exists.
  void set(std::string key, Value value);

  /// Returns the value for `key`, or nullptr if absent.
  const Value* find(std::string_view key) const;
};

/// Formats a value the way the sinks do: locale-free, doubles with
/// round-trip (max_digits10) precision, booleans as true/false.
std::string format_value(const Value& value);

/// Abstract sink; write() must be safe to call from any worker thread.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const Record& record) = 0;
  virtual void flush() {}
};

/// JSON Lines: one object per record, one stream write per record.
/// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
class JsonlSink : public Sink {
 public:
  /// Non-owning: writes to `os` (e.g. std::cout or a test stringstream).
  explicit JsonlSink(std::ostream& os);
  /// Owning: opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlSink(const std::string& path);

  void write(const Record& record) override;
  void flush() override;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_;
  std::mutex mutex_;
};

/// CSV: the header row comes from the first record's field names; every
/// later record must carry the same fields in the same order (this is an
/// internal invariant of the runner, so it is asserted, not thrown).
class CsvSink : public Sink {
 public:
  explicit CsvSink(std::ostream& os);
  explicit CsvSink(const std::string& path);

  void write(const Record& record) override;
  void flush() override;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_;
  std::mutex mutex_;
  std::vector<std::string> columns_;  // fixed by the first record
};

/// Escapes a string for a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

/// Progress / ETA reporter for stderr; task_done() is thread-safe and
/// prints at most once per percent so large sweeps don't spam the log.
class ProgressReporter {
 public:
  /// `os` may be null for a silent reporter. `label` prefixes each line.
  ProgressReporter(std::size_t total, std::ostream* os, std::string label = "sweep");

  /// Marks one task complete; prints "label: done/total (pct%) eta Xs".
  void task_done();

  /// Queues an extra line (e.g. an observability summary) that finish()
  /// prints after the elapsed-time line. Thread-safe; no-op output-wise
  /// when the reporter is silent.
  void annotate(std::string line);

  /// Prints the final elapsed-time line plus any queued annotations.
  void finish();

  std::size_t completed() const { return completed_.load(); }

 private:
  std::size_t total_;
  std::ostream* os_;
  std::string label_;
  std::atomic<std::size_t> completed_{0};
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::size_t last_percent_reported_ = 0;
  std::vector<std::string> annotations_;  // guarded by mutex_
};

}  // namespace mpbt::exp
