#include "stability/experiment.hpp"

#include <algorithm>

#include "bt/swarm.hpp"
#include "stability/entropy.hpp"
#include "util/assert.hpp"

namespace mpbt::stability {

bt::SwarmConfig make_swarm_config(const StabilityConfig& config) {
  util::throw_if_invalid(config.num_pieces == 0, "StabilityConfig: num_pieces must be >= 1");
  util::throw_if_invalid(config.rounds == 0, "StabilityConfig: rounds must be >= 1");
  bt::SwarmConfig swarm;
  swarm.num_pieces = config.num_pieces;
  swarm.max_connections = config.max_connections;
  swarm.peer_set_size = config.peer_set_size;
  swarm.arrival_rate = config.arrival_rate;
  swarm.initial_seeds = config.initial_seeds;
  swarm.seed_capacity = config.seed_capacity;
  swarm.max_population = config.max_population;
  swarm.seed = config.seed;
  bt::InitialGroup group;
  group.count = config.initial_peers;
  group.piece_probs = ramp_piece_probs(config.num_pieces, config.skew_base, config.skew_floor);
  swarm.initial_groups.push_back(std::move(group));
  return swarm;
}

StabilityResult run_stability_experiment(const StabilityConfig& config) {
  bt::Swarm swarm(make_swarm_config(config));
  swarm.run_rounds(config.rounds);

  StabilityResult result;
  result.population = swarm.metrics().population();
  result.entropy = swarm.metrics().entropy();
  result.completed = swarm.metrics().completed_count();
  result.dropped_arrivals = swarm.metrics().dropped_arrivals();

  for (const auto& sample : result.population.samples()) {
    result.peak_population =
        std::max(result.peak_population, static_cast<std::uint32_t>(sample.value));
  }
  if (!result.population.empty()) {
    result.final_population =
        static_cast<std::uint32_t>(result.population.samples().back().value);
  }
  if (!result.entropy.empty()) {
    result.final_entropy = result.entropy.samples().back().value;
    const double tail_start = result.entropy.last_time() * 0.75;
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& sample : result.entropy.samples()) {
      if (sample.time >= tail_start) {
        sum += sample.value;
        ++n;
      }
    }
    result.mean_entropy_tail = n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

  // Divergence heuristic: the population ends near its peak, well above
  // the initial load, while tail entropy stays collapsed — or the safety
  // cap was hit.
  const bool population_growing =
      result.final_population > config.initial_peers &&
      result.final_population >= result.peak_population * 9 / 10;
  const bool entropy_collapsed = result.mean_entropy_tail < 0.2;
  result.diverged =
      (population_growing && entropy_collapsed) || result.dropped_arrivals > 0;
  return result;
}

}  // namespace mpbt::stability
