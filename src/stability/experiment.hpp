// Stability experiment drivers (Section 6, Figure panels (b) and (c)).
//
// Runs a swarm from a skew-seeded initial population and reports the
// population and entropy trajectories plus a divergence verdict. The
// paper's experiment: with B = 3 pieces the swarm cannot re-balance — the
// peer count diverges and entropy collapses to 0 — while B = 10 recovers
// entropy to 1 and keeps the population bounded.
#pragma once

#include <cstdint>

#include "bt/config.hpp"
#include "numeric/timeseries.hpp"

namespace mpbt::stability {

struct StabilityConfig {
  /// B — number of pieces.
  std::uint32_t num_pieces = 10;
  /// Expected peer arrivals per round.
  double arrival_rate = 4.0;
  /// Rounds to simulate.
  std::uint32_t rounds = 400;
  /// Initial skew-seeded leechers.
  std::uint32_t initial_peers = 400;
  /// Initial holding probability ramps linearly from `skew_base` (piece 0,
  /// heavily replicated) down to `skew_floor` (last piece, rare). The
  /// floor must be small but non-zero: the instability mechanism is rare
  /// copies evaporating with departing peers, not a piece missing from the
  /// swarm entirely.
  double skew_base = 0.9;
  double skew_floor = 0.05;

  std::uint32_t peer_set_size = 40;
  std::uint32_t max_connections = 4;
  /// Seeds provide exogenous piece injection; the paper's instability
  /// argument assumes trading dominates, so keep this small.
  std::uint32_t initial_seeds = 1;
  std::uint32_t seed_capacity = 2;

  /// Safety valve against runaway unstable populations.
  std::uint32_t max_population = 20000;

  std::uint64_t seed = 7;
};

struct StabilityResult {
  numeric::TimeSeries population;
  numeric::TimeSeries entropy;
  double final_entropy = 0.0;
  double mean_entropy_tail = 0.0;  // mean entropy over the last quarter
  std::uint32_t peak_population = 0;
  std::uint32_t final_population = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped_arrivals = 0;
  /// Heuristic verdict: population kept growing and the tail entropy
  /// stayed depressed.
  bool diverged = false;
};

/// Builds the swarm per `config`, runs it, and summarizes stability.
StabilityResult run_stability_experiment(const StabilityConfig& config);

/// Builds the underlying SwarmConfig (exposed for tests and custom runs).
bt::SwarmConfig make_swarm_config(const StabilityConfig& config);

}  // namespace mpbt::stability
