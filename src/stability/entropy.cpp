#include "stability/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::stability {

double entropy_from_counts(const std::vector<std::uint32_t>& counts) {
  if (counts.empty()) {
    return 1.0;
  }
  std::uint32_t min_count = UINT32_MAX;
  std::uint32_t max_count = 0;
  for (std::uint32_t c : counts) {
    min_count = std::min(min_count, c);
    max_count = std::max(max_count, c);
  }
  if (max_count == 0) {
    return 1.0;
  }
  return static_cast<double>(min_count) / static_cast<double>(max_count);
}

std::vector<double> skewed_piece_probs(std::uint32_t B, double base, double rho) {
  util::throw_if_invalid(B == 0, "skewed_piece_probs: B must be >= 1");
  util::throw_if_invalid(base < 0.0 || base > 1.0, "skewed_piece_probs: base must be in [0, 1]");
  util::throw_if_invalid(rho <= 0.0 || rho > 1.0, "skewed_piece_probs: rho must be in (0, 1]");
  std::vector<double> probs(B);
  double p = base;
  for (std::uint32_t j = 0; j < B; ++j) {
    probs[j] = p;
    p *= rho;
  }
  return probs;
}

std::vector<double> ramp_piece_probs(std::uint32_t B, double first, double last) {
  util::throw_if_invalid(B == 0, "ramp_piece_probs: B must be >= 1");
  util::throw_if_invalid(first < 0.0 || first > 1.0 || last < 0.0 || last > 1.0,
                         "ramp_piece_probs: probabilities must be in [0, 1]");
  std::vector<double> probs(B);
  if (B == 1) {
    probs[0] = first;
    return probs;
  }
  for (std::uint32_t j = 0; j < B; ++j) {
    const double t = static_cast<double>(j) / static_cast<double>(B - 1);
    probs[j] = first + (last - first) * t;
  }
  return probs;
}

}  // namespace mpbt::stability
