// Swarm entropy (Section 6): E = min_j d_j / max_j d_j over the piece
// replication degrees d_j. E -> 1 means a balanced piece distribution;
// E -> 0 means skew severe enough to stall downloads.
#pragma once

#include <cstdint>
#include <vector>

namespace mpbt::stability {

/// Entropy of a replication-degree vector. Empty input or all-zero counts
/// return 1 (no pieces, no skew); any zero count with a nonzero maximum
/// returns 0.
double entropy_from_counts(const std::vector<std::uint32_t>& counts);

/// Skewed initial piece-holding probabilities for stability experiments:
/// piece j is held with probability base * rho^j (geometric decay), so low
/// pieces are common and high pieces rare. Requires B >= 1,
/// base in [0, 1], rho in (0, 1].
std::vector<double> skewed_piece_probs(std::uint32_t B, double base, double rho);

/// Linear ramp variant: piece j held with probability interpolated from
/// `first` down to `last`. Both in [0, 1].
std::vector<double> ramp_piece_probs(std::uint32_t B, double first, double last);

}  // namespace mpbt::stability
