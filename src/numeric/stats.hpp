// Streaming and batch statistics used by the simulators and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace mpbt::numeric {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Sum of all added values.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary of a sample: mean, stddev, min, max, and quantiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Computes a Summary over the sample (copies and sorts internally).
/// Returns an all-zero Summary for an empty sample.
Summary summarize(const std::vector<double>& sample);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
/// Requires a non-empty sorted vector.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Pearson correlation coefficient; requires equal sizes >= 2.
/// Returns 0 when either side has zero variance.
double pearson_correlation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace mpbt::numeric
