#include "numeric/logbinom.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mpbt::numeric {

double log_choose(int n, int k) {
  util::throw_if_invalid(n < 0, "log_choose requires n >= 0");
  if (k < 0 || k > n) {
    return -std::numeric_limits<double>::infinity();
  }
  if (k == 0 || k == n) {
    return 0.0;
  }
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

double choose_ratio(int j, int m, int B) {
  util::throw_if_invalid(B < 0, "choose_ratio requires B >= 0");
  util::throw_if_invalid(m < 0 || m > B, "choose_ratio requires 0 <= m <= B");
  util::throw_if_invalid(j < 0 || j > B, "choose_ratio requires 0 <= j <= B");
  if (j < m) {
    return 0.0;
  }
  return std::exp(log_choose(j, m) - log_choose(B, m));
}

double binomial_pmf(int n, int k, double p) {
  util::throw_if_invalid(n < 0, "binomial_pmf requires n >= 0");
  util::throw_if_invalid(p < 0.0 || p > 1.0, "binomial_pmf requires p in [0, 1]");
  if (k < 0 || k > n) {
    return 0.0;
  }
  if (p == 0.0) {
    return k == 0 ? 1.0 : 0.0;
  }
  if (p == 1.0) {
    return k == n ? 1.0 : 0.0;
  }
  const double log_pmf =
      log_choose(n, k) + k * std::log(p) + (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_cdf(int n, int k, double p) {
  util::throw_if_invalid(n < 0, "binomial_cdf requires n >= 0");
  util::throw_if_invalid(p < 0.0 || p > 1.0, "binomial_cdf requires p in [0, 1]");
  if (k < 0) {
    return 0.0;
  }
  if (k >= n) {
    return 1.0;
  }
  double sum = 0.0;
  for (int i = 0; i <= k; ++i) {
    sum += binomial_pmf(n, i, p);
  }
  return std::min(sum, 1.0);
}

std::vector<double> binomial_pmf_vector(int n, double p) {
  util::throw_if_invalid(n < 0, "binomial_pmf_vector requires n >= 0");
  util::throw_if_invalid(p < 0.0 || p > 1.0, "binomial_pmf_vector requires p in [0, 1]");
  std::vector<double> pmf(static_cast<std::size_t>(n) + 1, 0.0);
  if (p == 0.0) {
    pmf[0] = 1.0;
    return pmf;
  }
  if (p == 1.0) {
    pmf[static_cast<std::size_t>(n)] = 1.0;
    return pmf;
  }
  // Recurrence from P(X=0) avoids n lgamma calls; switch to log-space start
  // when (1-p)^n underflows.
  double p0 = std::pow(1.0 - p, n);
  if (p0 > 0.0) {
    pmf[0] = p0;
    const double ratio = p / (1.0 - p);
    for (int k = 1; k <= n; ++k) {
      pmf[static_cast<std::size_t>(k)] =
          pmf[static_cast<std::size_t>(k - 1)] * ratio * (n - k + 1) / k;
    }
  } else {
    for (int k = 0; k <= n; ++k) {
      pmf[static_cast<std::size_t>(k)] = binomial_pmf(n, k, p);
    }
  }
  return pmf;
}

std::vector<double> binomial_sum_pmf(int n1, double p1, int n2, double p2) {
  const std::vector<double> a = binomial_pmf_vector(n1, p1);
  const std::vector<double> b = binomial_pmf_vector(n2, p2);
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

}  // namespace mpbt::numeric
