#include "numeric/timeseries.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace mpbt::numeric {

TimeSeries::TimeSeries(std::vector<Sample> samples) : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    util::throw_if_invalid(samples_[i].time < samples_[i - 1].time,
                           "TimeSeries samples must be time-ordered");
  }
}

void TimeSeries::add(double time, double value) {
  util::throw_if_invalid(!samples_.empty() && time < samples_.back().time,
                         "TimeSeries::add requires non-decreasing times");
  samples_.push_back({time, value});
}

double TimeSeries::first_time() const {
  util::throw_if_invalid(samples_.empty(), "TimeSeries is empty");
  return samples_.front().time;
}

double TimeSeries::last_time() const {
  util::throw_if_invalid(samples_.empty(), "TimeSeries is empty");
  return samples_.back().time;
}

double TimeSeries::value_at(double t) const {
  util::throw_if_invalid(samples_.empty(), "TimeSeries is empty");
  if (t <= samples_.front().time) {
    return samples_.front().value;
  }
  // Find the last sample with time <= t.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double lhs, const Sample& rhs) { return lhs < rhs.time; });
  return std::prev(it)->value;
}

TimeSeries TimeSeries::resample(double t0, double t1, std::size_t points) const {
  util::throw_if_invalid(points < 2, "resample requires at least 2 points");
  util::throw_if_invalid(!(t0 < t1), "resample requires t0 < t1");
  util::throw_if_invalid(samples_.empty(), "TimeSeries is empty");
  TimeSeries out;
  for (std::size_t i = 0; i < points; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.add(t, value_at(t));
  }
  return out;
}

double TimeSeries::first_time_at_least(double threshold) const {
  for (const Sample& s : samples_) {
    if (s.value >= threshold) {
      return s.time;
    }
  }
  return -1.0;
}

TimeSeries average_series(const std::vector<TimeSeries>& runs, std::size_t points) {
  util::throw_if_invalid(runs.empty(), "average_series requires at least one run");
  util::throw_if_invalid(points < 2, "average_series requires at least 2 points");
  double t0 = -std::numeric_limits<double>::infinity();
  double t1 = std::numeric_limits<double>::infinity();
  for (const TimeSeries& run : runs) {
    util::throw_if_invalid(run.empty(), "average_series requires non-empty runs");
    t0 = std::max(t0, run.first_time());
    t1 = std::min(t1, run.last_time());
  }
  util::throw_if_invalid(!(t0 < t1), "average_series: runs have no common time span");
  TimeSeries out;
  for (std::size_t i = 0; i < points; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(points - 1);
    double sum = 0.0;
    for (const TimeSeries& run : runs) {
      sum += run.value_at(t);
    }
    out.add(t, sum / static_cast<double>(runs.size()));
  }
  return out;
}

}  // namespace mpbt::numeric
