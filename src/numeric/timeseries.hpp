// Time series container with resampling and multi-run averaging.
//
// Simulator metrics are recorded as (time, value) samples on irregular
// grids (event times); benches average several seeded runs onto a common
// grid before printing figure series.
#pragma once

#include <cstddef>
#include <vector>

namespace mpbt::numeric {

struct Sample {
  double time = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<Sample> samples);

  /// Appends a sample; time must be >= the last sample's time.
  void add(double time, double value);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  double first_time() const;
  double last_time() const;

  /// Piecewise-constant (left-continuous step) interpolation at `t`:
  /// the value of the latest sample with sample.time <= t. Before the first
  /// sample, returns the first sample's value. Requires a non-empty series.
  double value_at(double t) const;

  /// Resamples onto a uniform grid of `points` samples across [t0, t1]
  /// using step interpolation. Requires points >= 2 and t0 < t1.
  TimeSeries resample(double t0, double t1, std::size_t points) const;

  /// First time at which value >= threshold (step semantics), or negative
  /// (-1.0) if the series never reaches it.
  double first_time_at_least(double threshold) const;

 private:
  std::vector<Sample> samples_;
};

/// Averages several series onto a uniform grid across their common span
/// [max first_time, min last_time]. All series must be non-empty; requires
/// points >= 2 and a non-degenerate common span.
TimeSeries average_series(const std::vector<TimeSeries>& runs, std::size_t points);

}  // namespace mpbt::numeric
