#include "numeric/rng.hpp"

#include <cmath>
#include <unordered_set>

#include "util/assert.hpp"

namespace mpbt::numeric {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

int Rng::binomial(int n, double p) {
  util::throw_if_invalid(n < 0, "Rng::binomial requires n >= 0");
  util::throw_if_invalid(p < 0.0 || p > 1.0, "Rng::binomial requires p in [0, 1]");
  if (n == 0 || p == 0.0) {
    return 0;
  }
  if (p == 1.0) {
    return n;
  }
  if (n <= 64) {
    int count = 0;
    for (int i = 0; i < n; ++i) {
      count += bernoulli(p) ? 1 : 0;
    }
    return count;
  }
  // Inversion by cumulative search, iterating from the mode outward is not
  // needed at our sizes: plain forward accumulation in log-safe form.
  const double q = 1.0 - p;
  double pmf = std::pow(q, n);  // P(X = 0)
  if (pmf <= 0.0) {
    // Underflow regime: fall back to a sum of two halves, preserving the
    // exact distribution because Bin(n,p) = Bin(n1,p) + Bin(n2,p).
    const int half = n / 2;
    return binomial(half, p) + binomial(n - half, p);
  }
  double u = uniform01();
  int k = 0;
  double cdf = pmf;
  while (u > cdf && k < n) {
    pmf *= (static_cast<double>(n - k) / (k + 1)) * (p / q);
    cdf += pmf;
    ++k;
  }
  return k;
}

int Rng::poisson(double lambda) {
  util::throw_if_invalid(lambda < 0.0, "Rng::poisson requires lambda >= 0");
  if (lambda == 0.0) {
    return 0;
  }
  if (lambda > 30.0) {
    // Poisson additivity keeps Knuth's product away from underflow.
    const double half = lambda / 2.0;
    return poisson(half) + poisson(lambda - half);
  }
  const double limit = std::exp(-lambda);
  int k = 0;
  double product = uniform01();
  while (product > limit) {
    ++k;
    product *= uniform01();
  }
  return k;
}

double Rng::exponential(double rate) {
  util::throw_if_invalid(rate <= 0.0, "Rng::exponential requires rate > 0");
  double u = uniform01();
  // uniform01 can return exactly 0; log(0) would be -inf.
  while (u == 0.0) {
    u = uniform01();
  }
  return -std::log(u) / rate;
}

int Rng::geometric(double p) {
  util::throw_if_invalid(p <= 0.0 || p > 1.0, "Rng::geometric requires p in (0, 1]");
  if (p == 1.0) {
    return 0;
  }
  double u = uniform01();
  while (u == 0.0) {
    u = uniform01();
  }
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  util::throw_if_invalid(k > n, "Rng::sample_without_replacement requires k <= n");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) {
    return out;
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = i;
    }
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  while (out.size() < k) {
    const auto v = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (chosen.insert(v).second) {
      out.push_back(v);
    }
  }
  return out;
}

Rng Rng::split() {
  // Derive a child seed from fresh output; the parent advances, so repeated
  // splits give distinct streams.
  const std::uint64_t child_seed = next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL;
  return Rng(child_seed);
}

}  // namespace mpbt::numeric
