// Deterministic random number generation for simulations.
//
// `Rng` wraps the xoshiro256** generator with SplitMix64 seeding. Every
// stochastic component in mpbt takes an explicit Rng (or a seed), so a run
// is fully reproducible from its seed. `split()` derives an independent
// substream, which lets a swarm hand each peer its own stream without the
// per-peer event order perturbing other peers' randomness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mpbt::numeric {

class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is a valid seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Binomial(n, p) sample; exact inversion for small n, BTPE-free
  /// normal-approximation-free loop is fine at the n used here (<= a few
  /// thousand): uses the sum-of-Bernoulli method below n=64 and inversion
  /// by cumulative search otherwise.
  int binomial(int n, double p);

  /// Poisson(lambda) sample; Knuth's method for small lambda, normal-based
  /// PTRS-style rejection is unnecessary at our scales; for lambda > 30 we
  /// use the sum of smaller Poissons to avoid underflow.
  int poisson(double lambda);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Geometric: number of failures before the first success, p in (0, 1].
  int geometric(double p);

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// Requires 0 <= k <= n. Returns indices in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derives an independent substream (hash-mixes internal state).
  Rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace mpbt::numeric
