// Deterministic random number generation for simulations.
//
// `Rng` wraps the xoshiro256** generator with SplitMix64 seeding. Every
// stochastic component in mpbt takes an explicit Rng (or a seed), so a run
// is fully reproducible from its seed. `split()` derives an independent
// substream, which lets a swarm hand each peer its own stream without the
// per-peer event order perturbing other peers' randomness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace mpbt::numeric {

class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is a valid seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output. Inline: the simulators draw millions of
  /// times per run, so the generator core must not be an opaque call.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 random bits into [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi) {
    util::throw_if_invalid(!(lo < hi), "Rng::uniform requires lo < hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    util::throw_if_invalid(lo > hi, "Rng::uniform_int requires lo <= hi");
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) {  // full 64-bit range
      return static_cast<std::int64_t>(next_u64());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = range * (UINT64_MAX / range);
    std::uint64_t v = next_u64();
    while (v >= limit) {
      v = next_u64();
    }
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    util::throw_if_invalid(p < 0.0 || p > 1.0, "Rng::bernoulli requires p in [0, 1]");
    return uniform01() < p;
  }

  /// Binomial(n, p) sample; exact inversion for small n, BTPE-free
  /// normal-approximation-free loop is fine at the n used here (<= a few
  /// thousand): uses the sum-of-Bernoulli method below n=64 and inversion
  /// by cumulative search otherwise.
  int binomial(int n, double p);

  /// Poisson(lambda) sample; Knuth's method for small lambda, normal-based
  /// PTRS-style rejection is unnecessary at our scales; for lambda > 30 we
  /// use the sum of smaller Poissons to avoid underflow.
  int poisson(double lambda);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Geometric: number of failures before the first success, p in (0, 1].
  int geometric(double p);

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// Requires 0 <= k <= n. Returns indices in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derives an independent substream (hash-mixes internal state).
  Rng split();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace mpbt::numeric
