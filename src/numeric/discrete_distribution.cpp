#include "numeric/discrete_distribution.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::numeric {

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
    : pmf_(std::move(weights)) {
  util::throw_if_invalid(pmf_.empty(), "DiscreteDistribution requires non-empty weights");
  double total = 0.0;
  for (double w : pmf_) {
    util::throw_if_invalid(w < 0.0 || !std::isfinite(w),
                           "DiscreteDistribution weights must be finite and >= 0");
    total += w;
  }
  util::throw_if_invalid(total <= 0.0,
                         "DiscreteDistribution requires at least one positive weight");
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

DiscreteDistribution DiscreteDistribution::uniform_range(std::size_t size, std::size_t lo,
                                                         std::size_t hi) {
  util::throw_if_invalid(size == 0, "uniform_range requires size >= 1");
  util::throw_if_invalid(lo > hi || hi >= size, "uniform_range requires 0 <= lo <= hi < size");
  std::vector<double> w(size, 0.0);
  for (std::size_t i = lo; i <= hi; ++i) {
    w[i] = 1.0;
  }
  return DiscreteDistribution(std::move(w));
}

DiscreteDistribution DiscreteDistribution::point_mass(std::size_t size, std::size_t at) {
  util::throw_if_invalid(at >= size, "point_mass requires at < size");
  std::vector<double> w(size, 0.0);
  w[at] = 1.0;
  return DiscreteDistribution(std::move(w));
}

double DiscreteDistribution::pmf(std::size_t k) const {
  util::throw_if_out_of_range(k >= pmf_.size(), "DiscreteDistribution index out of range");
  return pmf_[k];
}

double DiscreteDistribution::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    m += static_cast<double>(i) * pmf_[i];
  }
  return m;
}

double DiscreteDistribution::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double d = static_cast<double>(i) - m;
    v += d * d * pmf_[i];
  }
  return v;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double DiscreteDistribution::linf_distance(const DiscreteDistribution& other) const {
  util::throw_if_invalid(size() != other.size(), "linf_distance requires equal supports");
  double d = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    d = std::max(d, std::abs(pmf_[i] - other.pmf_[i]));
  }
  return d;
}

}  // namespace mpbt::numeric
