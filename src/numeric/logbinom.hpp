// Log-space binomial coefficients and binomial distribution helpers.
//
// Equation (1) of the paper evaluates ratios C(j, m)/C(B, m) with B up to
// thousands; computed naively these overflow. Everything here works in
// log space via lgamma and only exponentiates ratios, which stay in [0, 1].
#pragma once

#include <vector>

namespace mpbt::numeric {

/// ln C(n, k). Returns -inf when k < 0 or k > n (an impossible choice).
/// Requires n >= 0.
double log_choose(int n, int k);

/// C(j, m) / C(B, m) — the probability that m specific items are all among a
/// uniformly random j-subset of B items. Requires 0 <= m, j <= B, B >= 0.
/// Returns 0 when j < m.
double choose_ratio(int j, int m, int B);

/// P(X = k) for X ~ Binomial(n, p). Requires n >= 0, p in [0, 1].
double binomial_pmf(int n, int k, double p);

/// P(X <= k) for X ~ Binomial(n, p).
double binomial_cdf(int n, int k, double p);

/// Full pmf vector [P(X=0), ..., P(X=n)] for X ~ Binomial(n, p);
/// sums to 1 up to rounding.
std::vector<double> binomial_pmf_vector(int n, double p);

/// Pmf of Y1 + Y2 where Y1 ~ Bin(n1, p1), Y2 ~ Bin(n2, p2), independent
/// (discrete convolution). Result has size n1 + n2 + 1.
std::vector<double> binomial_sum_pmf(int n1, double p1, int n2, double p2);

}  // namespace mpbt::numeric
