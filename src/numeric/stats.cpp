#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mpbt::numeric {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ += delta * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  util::throw_if_invalid(sorted.empty(), "quantile_sorted requires a non-empty sample");
  util::throw_if_invalid(q < 0.0 || q > 1.0, "quantile q must be in [0, 1]");
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  if (sample.empty()) {
    return s;
  }
  RunningStats rs;
  for (double v : sample) {
    rs.add(v);
  }
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  return s;
}

double pearson_correlation(const std::vector<double>& x, const std::vector<double>& y) {
  util::throw_if_invalid(x.size() != y.size(), "pearson_correlation requires equal sizes");
  util::throw_if_invalid(x.size() < 2, "pearson_correlation requires at least 2 points");
  RunningStats sx;
  RunningStats sy;
  for (double v : x) {
    sx.add(v);
  }
  for (double v : y) {
    sy.add(v);
  }
  const double mx = sx.mean();
  const double my = sy.mean();
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - mx) * (y[i] - my);
  }
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  if (denom == 0.0) {
    return 0.0;
  }
  return cov / denom;
}

}  // namespace mpbt::numeric
