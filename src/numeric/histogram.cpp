#include "numeric/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace mpbt::numeric {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  util::throw_if_invalid(!(lo < hi), "Histogram requires lo < hi");
  util::throw_if_invalid(bins == 0, "Histogram requires at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  util::throw_if_out_of_range(bin >= counts_.size(), "Histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  util::throw_if_out_of_range(bin >= counts_.size(), "Histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  util::throw_if_out_of_range(bin >= counts_.size(), "Histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
}

double Histogram::fraction(std::size_t bin) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) {
    return 0.0;
  }
  return static_cast<double>(count(bin)) / static_cast<double>(in_range);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 0;
  for (std::size_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        max_count == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(max_count, 1);
    os << '[' << bin_lo(b) << ", " << bin_hi(b) << ") " << std::string(bar, '#') << ' '
       << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace mpbt::numeric
