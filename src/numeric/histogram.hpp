// Fixed-width histogram over a numeric range.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mpbt::numeric {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal-width buckets; values outside the range
  /// are counted in underflow/overflow. Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Inclusive lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  double bin_hi(std::size_t bin) const;

  /// Fraction of in-range samples in the bin (0 when empty).
  double fraction(std::size_t bin) const;

  /// ASCII rendering used by examples, one row per bin.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace mpbt::numeric
