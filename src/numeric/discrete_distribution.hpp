// Discrete probability distribution over {0, ..., n} with normalization,
// sampling, and moments. Used for the paper's piece-count distribution ϕ
// and for validating transition-kernel rows.
#pragma once

#include <vector>

#include "numeric/rng.hpp"

namespace mpbt::numeric {

class DiscreteDistribution {
 public:
  /// Builds from non-negative weights; normalizes to sum 1.
  /// Requires at least one strictly positive weight.
  explicit DiscreteDistribution(std::vector<double> weights);

  /// Uniform over {lo, ..., hi} embedded in a support of size `size`
  /// (entries outside [lo, hi] get probability 0). Requires
  /// 0 <= lo <= hi < size.
  static DiscreteDistribution uniform_range(std::size_t size, std::size_t lo, std::size_t hi);

  /// Point mass at `at` in a support of size `size`.
  static DiscreteDistribution point_mass(std::size_t size, std::size_t at);

  std::size_t size() const { return pmf_.size(); }
  double pmf(std::size_t k) const;
  const std::vector<double>& probabilities() const { return pmf_; }

  double mean() const;
  double variance() const;

  /// Samples an index by inverse-CDF lookup (binary search).
  std::size_t sample(Rng& rng) const;

  /// Max |pmf - other.pmf| over the common support; sizes must match.
  double linf_distance(const DiscreteDistribution& other) const;

 private:
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace mpbt::numeric
