#include "coupon/coupon.hpp"

#include <algorithm>

#include "bt/peer.hpp"
#include "util/assert.hpp"

namespace mpbt::coupon {

void CouponConfig::validate() const {
  util::throw_if_invalid(num_coupons == 0, "CouponConfig: num_coupons must be >= 1");
  util::throw_if_invalid(arrival_rate < 0.0, "CouponConfig: arrival_rate must be >= 0");
  util::throw_if_invalid(encounter_rate <= 0.0, "CouponConfig: encounter_rate must be > 0");
  util::throw_if_invalid(horizon <= 0.0, "CouponConfig: horizon must be > 0");
}

CouponSimulator::CouponSimulator(CouponConfig config)
    : config_(config), rng_(config.seed) {
  config_.validate();
}

void CouponSimulator::add_peer() {
  const std::size_t index = peers_.size();
  peers_.push_back(std::make_unique<CouponPeer>(config_.num_coupons));
  CouponPeer& p = *peers_.back();
  p.arrived = engine_.now();
  // Exogenous injection: one uniformly random coupon on arrival.
  p.coupons.set(static_cast<bt::PieceIndex>(
      rng_.uniform_int(0, static_cast<std::int64_t>(config_.num_coupons) - 1)));
  live_pos_.push_back(live_.size());
  live_.push_back(index);
  schedule_encounter(index);
}

void CouponSimulator::schedule_arrival() {
  if (config_.arrival_rate <= 0.0) {
    return;
  }
  const double dt = rng_.exponential(config_.arrival_rate);
  const double when = engine_.now() + dt;
  if (when > config_.horizon ||
      (config_.arrival_cutoff > 0.0 && when > config_.arrival_cutoff)) {
    return;
  }
  engine_.schedule_at(when, [this] {
    add_peer();
    result_.population.add(engine_.now(), static_cast<double>(live_count()));
    schedule_arrival();
  });
}

void CouponSimulator::schedule_encounter(std::size_t peer_index) {
  const double dt = rng_.exponential(config_.encounter_rate);
  const double when = engine_.now() + dt;
  if (when > config_.horizon) {
    return;
  }
  engine_.schedule_at(when, [this, peer_index] { do_encounter(peer_index); });
}

void CouponSimulator::do_encounter(std::size_t peer_index) {
  CouponPeer& p = *peers_[peer_index];
  if (p.departed) {
    return;
  }
  if (live_.size() >= 2) {
    ++result_.encounters;
    // Uniform partner from the entire swarm — no neighbor set.
    std::size_t partner_index = peer_index;
    while (partner_index == peer_index) {
      partner_index = live_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(live_.size()) - 1))];
    }
    CouponPeer& q = *peers_[partner_index];
    if (bt::mutually_interested(p.coupons, q.coupons)) {
      // One-for-one swap over the single connection.
      const auto for_p = q.coupons.pieces_missing_from(p.coupons);
      const auto for_q = p.coupons.pieces_missing_from(q.coupons);
      MPBT_ASSERT(!for_p.empty() && !for_q.empty());
      p.coupons.set(for_p[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(for_p.size()) - 1))]);
      q.coupons.set(for_q[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(for_q.size()) - 1))]);
    } else {
      ++result_.failed_encounters;
    }
    // Departures on completion.
    for (std::size_t idx : {peer_index, partner_index}) {
      CouponPeer& peer = *peers_[idx];
      if (!peer.departed && peer.coupons.all()) {
        peer.departed = true;
        ++result_.completed;
        completion_times_.push_back(engine_.now() - peer.arrived);
        // O(1) removal from the live list.
        const std::size_t pos = live_pos_[idx];
        const std::size_t moved = live_.back();
        live_[pos] = moved;
        live_pos_[moved] = pos;
        live_.pop_back();
        result_.population.add(engine_.now(), static_cast<double>(live_count()));
      }
    }
  }
  if (!p.departed) {
    schedule_encounter(peer_index);
  }
}

CouponResult CouponSimulator::run() {
  util::throw_if_invalid(ran_, "CouponSimulator::run may only be called once per instance");
  ran_ = true;

  for (std::uint32_t i = 0; i < config_.initial_peers; ++i) {
    add_peer();
  }
  result_.population.add(0.0, static_cast<double>(live_count()));
  schedule_arrival();
  engine_.run_until(config_.horizon);

  result_.completion_time = numeric::summarize(completion_times_);
  if (result_.population.empty() || result_.population.last_time() < config_.horizon) {
    result_.population.add(config_.horizon, static_cast<double>(live_count()));
  }
  return result_;
}

}  // namespace mpbt::coupon
