// Coupon replication system — the related-work baseline (Massoulié &
// Vojnovic, SIGMETRICS'05) the paper contrasts BitTorrent against
// (Section 2.2).
//
// Differences from the BitTorrent swarm that the paper highlights, both
// modeled here:
//  * encounters are sampled uniformly from the ENTIRE swarm (no neighbor
//    set), so encounters can fail when the sampled pair has nothing to
//    trade;
//  * a peer uses a single connection per encounter (no k parallelism).
//
// The simulator runs asynchronously on the DES engine: each peer holds a
// Poisson encounter clock; arrivals are a Poisson process. Arriving peers
// carry one uniformly random coupon (the exogenous injection assumed by
// coupon replication systems).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bt/bitfield.hpp"
#include "des/engine.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"
#include "numeric/timeseries.hpp"

namespace mpbt::coupon {

struct CouponConfig {
  /// Number of coupons (pieces) to collect.
  std::uint32_t num_coupons = 20;
  /// Poisson arrival rate (peers per time unit).
  double arrival_rate = 5.0;
  /// Per-peer encounter rate (encounters initiated per time unit).
  double encounter_rate = 1.0;
  /// Initial population, each holding one random coupon.
  std::uint32_t initial_peers = 100;
  /// Simulated time horizon.
  double horizon = 500.0;
  /// Stop admitting arrivals after this time (0 = never).
  double arrival_cutoff = 0.0;
  std::uint64_t seed = 11;

  void validate() const;
};

struct CouponResult {
  std::uint64_t encounters = 0;
  std::uint64_t failed_encounters = 0;
  std::uint64_t completed = 0;
  /// Completion times (time from arrival to full collection).
  numeric::Summary completion_time;
  /// Population over time.
  numeric::TimeSeries population;
  double failed_fraction() const {
    return encounters == 0
               ? 0.0
               : static_cast<double>(failed_encounters) / static_cast<double>(encounters);
  }
};

class CouponSimulator {
 public:
  explicit CouponSimulator(CouponConfig config);

  /// Runs to the configured horizon and returns the aggregated result.
  /// May be called once per simulator instance.
  CouponResult run();

 private:
  struct CouponPeer {
    bt::Bitfield coupons;
    double arrived = 0.0;
    bool departed = false;
    explicit CouponPeer(std::uint32_t n) : coupons(n) {}
  };

  void schedule_arrival();
  void schedule_encounter(std::size_t peer_index);
  void do_encounter(std::size_t peer_index);
  void add_peer();
  std::size_t live_count() const { return live_.size(); }

  CouponConfig config_;
  numeric::Rng rng_;
  des::Engine engine_;
  std::vector<std::unique_ptr<CouponPeer>> peers_;
  std::vector<std::size_t> live_;  // indices into peers_
  std::vector<std::size_t> live_pos_;
  std::vector<double> completion_times_;
  CouponResult result_;
  bool ran_ = false;
};

}  // namespace mpbt::coupon
