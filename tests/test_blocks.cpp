// Block-granular transfers (Section 2.1: pieces are moved as blocks and
// serve only once complete).
#include <gtest/gtest.h>

#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace mpbt::bt {
namespace {

SwarmConfig block_config(std::uint32_t blocks, std::uint64_t seed = 9) {
  SwarmConfig config;
  config.num_pieces = 30;
  config.max_connections = 3;
  config.peer_set_size = 12;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 3;
  config.blocks_per_piece = blocks;
  config.seed = seed;
  InitialGroup warm;
  warm.count = 30;
  warm.piece_probs.assign(config.num_pieces, 0.3);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

TEST(Blocks, ConfigValidation) {
  SwarmConfig config;
  config.blocks_per_piece = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.blocks_per_piece = 16;
  EXPECT_NO_THROW(config.validate());
}

TEST(Blocks, InvariantsHoldWithBlockTransfers) {
  Swarm swarm(block_config(4));
  for (int r = 0; r < 80; ++r) {
    swarm.step();
    ASSERT_NO_THROW(swarm.check_invariants()) << "round " << r;
  }
}

TEST(Blocks, DownloadsCompleteAtBlockGranularity) {
  Swarm swarm(block_config(4));
  swarm.run_rounds(200);
  EXPECT_GT(swarm.metrics().completed_count(), 10u);
}

TEST(Blocks, MoreBlocksSlowDownloads) {
  auto mean_download = [](std::uint32_t blocks) {
    std::vector<double> times;
    for (std::uint64_t seed : {9ULL, 19ULL, 29ULL}) {
      Swarm swarm(block_config(blocks, seed));
      swarm.run_rounds(250);
      for (double t : swarm.metrics().download_times()) {
        times.push_back(t);
      }
    }
    return numeric::summarize(times).mean;
  };
  const double t1 = mean_download(1);
  const double t4 = mean_download(4);
  // Downloads in this workload are partly wait-limited (connection and
  // potential-set dynamics), so the slowdown is sub-linear in the block
  // count — but it must be clearly present.
  EXPECT_GT(t4, t1 * 1.1);
}

TEST(Blocks, PartialPiecesNeverServe) {
  // A piece must not appear in any bitfield before all blocks arrive: the
  // piece-count bookkeeping (which feeds rarity and entropy) only moves on
  // completion. Verified indirectly: bytes accumulate smoothly while piece
  // counts move in whole pieces.
  Swarm swarm(block_config(8));
  swarm.run_rounds(40);
  for (PeerId id : swarm.live_peers()) {
    const Peer& p = swarm.peer(id);
    if (p.is_seed) {
      continue;
    }
    for (const auto& [partner, flight] : p.inflight) {
      EXPECT_FALSE(p.pieces.test(flight.piece));
      EXPECT_LT(flight.blocks_done, 8u);
    }
  }
}

TEST(Blocks, ByteAccountingMatchesPieces) {
  // With no partial pieces in flight at the end of a trade-free period,
  // total bytes equal pieces * piece_bytes. Instead of forcing that state,
  // check the weaker invariant: bytes never exceed (pieces + in-flight
  // partials) * piece_bytes and never undercount completed pieces.
  SwarmConfig config = block_config(4);
  config.piece_bytes = 1024;
  Swarm swarm(std::move(config));
  swarm.run_rounds(60);
  for (PeerId id : swarm.live_peers()) {
    const Peer& p = swarm.peer(id);
    if (p.is_seed) {
      continue;
    }
    // Bytes from arrival-carried pieces are not accounted (they were not
    // downloaded); only count pieces acquired after joining.
    const std::uint64_t traded_pieces =
        p.acquired_rounds.empty()
            ? 0
            : static_cast<std::uint64_t>(std::count_if(
                  p.acquired_rounds.begin(), p.acquired_rounds.end(),
                  [&](Round r) { return r > p.joined; }));
    const std::uint64_t lower = 0;  // partial losses make exact lower bounds moot
    const std::uint64_t upper =
        (traded_pieces + p.inflight.size() + 1) * 1024;  // +1 bootstrap piece
    EXPECT_GE(p.bytes_downloaded, lower);
    EXPECT_LE(p.bytes_downloaded,
              upper + 4 * 1024 /* slack for partials discarded mid-run */);
  }
}

TEST(Blocks, SingleBlockModeUnchanged) {
  // blocks_per_piece = 1 must reproduce the piece-granular runs exactly.
  SwarmConfig reference = block_config(1);
  Swarm a(reference);
  Swarm b(reference);
  a.run_rounds(60);
  b.run_rounds(60);
  EXPECT_EQ(a.piece_counts(), b.piece_counts());
  EXPECT_TRUE(a.peer(1).inflight.empty());
}

TEST(Blocks, DeterministicForSeed) {
  Swarm a(block_config(4));
  Swarm b(block_config(4));
  a.run_rounds(80);
  b.run_rounds(80);
  EXPECT_EQ(a.piece_counts(), b.piece_counts());
  EXPECT_EQ(a.metrics().completed_count(), b.metrics().completed_count());
}

}  // namespace
}  // namespace mpbt::bt
