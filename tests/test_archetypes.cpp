// End-to-end checks that the synthetic trace archetypes reproduce the
// qualitative shapes of Figure 2 (the paper's real-world measurements).
#include <gtest/gtest.h>

#include "analysis/compare.hpp"
#include "analysis/phase_detect.hpp"
#include "trace/archetypes.hpp"

namespace mpbt::trace {
namespace {

TEST(Archetypes, InstrumentedRunWithoutArrivalsThrows) {
  bt::SwarmConfig config;
  config.num_pieces = 10;
  config.arrival_rate = 0.0;  // no client will ever arrive
  config.initial_seeds = 1;
  EXPECT_THROW(
      run_instrumented_client(std::move(config), /*warmup_rounds=*/2,
                              /*max_rounds=*/10, "none"),
      std::runtime_error);
}

TEST(Archetypes, SmoothTraceHasNoDominantPhases) {
  const ClientTrace trace = make_smooth_trace();
  ASSERT_GT(trace.points.size(), 10u);
  EXPECT_TRUE(trace.completed);
  const analysis::PhaseSegmentation seg = analysis::detect_phases(trace);
  // Fig. 2(a)/(b): smooth start-to-finish, potential set healthy.
  EXPECT_LT(seg.bootstrap_fraction(), 0.15);
  EXPECT_LT(seg.last_fraction(), 0.15);
}

TEST(Archetypes, SmoothTracePotentialStaysHigh) {
  const ClientTrace trace = make_smooth_trace();
  std::size_t healthy = 0;
  for (const TracePoint& p : trace.points) {
    if (p.potential_set_size >= 8) {
      ++healthy;
    }
  }
  EXPECT_GT(static_cast<double>(healthy) / static_cast<double>(trace.points.size()), 0.7);
}

TEST(Archetypes, LastPhaseTraceHasCollapsedTail) {
  const ClientTrace trace = make_last_phase_trace();
  ASSERT_GT(trace.points.size(), 10u);
  analysis::PhaseDetectOptions options;
  options.last_phase_potential = 1;
  const analysis::PhaseSegmentation seg = analysis::detect_phases(trace, options);
  // Fig. 2(c)/(d): a visible last-download phase.
  EXPECT_TRUE(seg.has_last_phase());
  EXPECT_GT(seg.last_fraction(), 0.05);
}

TEST(Archetypes, BootstrapTraceStallsAtStart) {
  const ClientTrace trace = make_bootstrap_trace();
  ASSERT_GT(trace.points.size(), 10u);
  const analysis::PhaseSegmentation seg = analysis::detect_phases(trace);
  // Fig. 2(e)/(f): a visible bootstrap phase with zero download rate.
  EXPECT_TRUE(seg.has_bootstrap_phase());
  EXPECT_GT(seg.bootstrap_fraction(), 0.1);
  // During the stall no bytes arrive beyond (at most) the first piece.
  const std::size_t stall_end = seg.efficient_begin;
  ASSERT_GT(stall_end, 0u);
  EXPECT_LE(trace.points[stall_end - 1].cumulative_bytes, trace.piece_bytes);
}

TEST(Archetypes, DownloadRateTracksPotentialSetSize) {
  // Section 4: "the potential set evolution and the download rate are
  // highly correlated" — check it on the last-phase archetype where both
  // vary the most.
  const ClientTrace trace = make_last_phase_trace();
  EXPECT_GT(analysis::rate_potential_correlation(trace), 0.2);
}

TEST(Archetypes, AllThreeProduceCoherentTraces) {
  const std::vector<ClientTrace> traces = make_all_archetypes(2);
  ASSERT_EQ(traces.size(), 3u);
  for (const ClientTrace& trace : traces) {
    ASSERT_FALSE(trace.points.empty()) << trace.label;
    // Cumulative bytes never decrease.
    for (std::size_t i = 1; i < trace.points.size(); ++i) {
      ASSERT_GE(trace.points[i].cumulative_bytes, trace.points[i - 1].cumulative_bytes)
          << trace.label;
    }
    EXPECT_EQ(trace.num_pieces, 200u);
  }
}

}  // namespace
}  // namespace mpbt::trace
