// Cross-implementation consistency checks: independent code paths that
// must agree on the same quantity.
#include <gtest/gtest.h>

#include "markov/absorbing.hpp"
#include "markov/sparse_chain.hpp"
#include "markov/trajectory.hpp"
#include "model/kernel.hpp"
#include "numeric/rng.hpp"
#include "trace/filter.hpp"
#include "trace/record.hpp"

#include "bt/swarm.hpp"

namespace mpbt {
namespace {

TEST(CrossCheck, DistributionSteppingMatchesTrajectoryHistogram) {
  // The exact state distribution after t steps must match the empirical
  // histogram of sampled trajectories.
  markov::SparseChain chain(4);
  chain.add_transition(0, 1, 0.6);
  chain.add_transition(0, 2, 0.4);
  chain.add_transition(1, 0, 0.3);
  chain.add_transition(1, 3, 0.7);
  chain.add_transition(2, 2, 0.5);
  chain.add_transition(2, 3, 0.5);
  chain.add_transition(3, 3, 1.0);
  chain.finalize();

  const int steps = 4;
  std::vector<double> dist{1.0, 0.0, 0.0, 0.0};
  for (int t = 0; t < steps; ++t) {
    dist = chain.step_distribution(dist);
  }

  numeric::Rng rng(91);
  const int samples = 200000;
  std::vector<int> histogram(4, 0);
  for (int i = 0; i < samples; ++i) {
    std::size_t state = 0;
    for (int t = 0; t < steps; ++t) {
      state = chain.step(state, rng);
    }
    ++histogram[state];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(static_cast<double>(histogram[s]) / samples, dist[s], 0.005)
        << "state " << s;
  }
}

TEST(CrossCheck, KernelPmfsMatchMonteCarloDraws) {
  // g and h pmfs from the kernel must match empirical frequencies of the
  // sampling path used by sample_download.
  model::ModelParams params;
  params.B = 8;
  params.k = 3;
  params.s = 5;
  params.p_init = 0.6;
  params.p_r = 0.7;
  params.p_n = 0.8;
  const model::TransitionKernel kernel(params);

  numeric::Rng rng(92);
  const int n = 2;
  const int b = 3;
  const auto g = kernel.potential_pmf(n, b, /*i=*/2);
  std::vector<int> g_hist(g.size(), 0);
  const int draws = 100000;
  const double p_trade = kernel.trading_power()[static_cast<std::size_t>(b + n)];
  for (int i = 0; i < draws; ++i) {
    ++g_hist[static_cast<std::size_t>(rng.binomial(params.s, p_trade))];
  }
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_NEAR(static_cast<double>(g_hist[v]) / draws, g[v], 0.006) << "i'=" << v;
  }

  const int i_new = 4;
  const auto h = kernel.connection_pmf(n, b, i_new);
  std::vector<int> h_hist(h.size(), 0);
  const int max_new = std::max(std::min(i_new, params.k) - n, 0);
  for (int i = 0; i < draws; ++i) {
    ++h_hist[static_cast<std::size_t>(rng.binomial(n, params.p_r) +
                                      rng.binomial(max_new, params.p_n))];
  }
  for (std::size_t v = 0; v < h.size(); ++v) {
    EXPECT_NEAR(static_cast<double>(h_hist[v]) / draws, h[v], 0.006) << "n'=" << v;
  }
}

TEST(CrossCheck, TrackerSeriesFromSimulatorClassifiesSensibly) {
  // Swarm-selection on series the simulator itself produced.
  // Stable regime: steady arrivals and service.
  bt::SwarmConfig stable_config;
  stable_config.num_pieces = 30;
  stable_config.max_connections = 4;
  stable_config.peer_set_size = 15;
  stable_config.arrival_rate = 2.0;
  stable_config.initial_seeds = 2;
  stable_config.seed_capacity = 6;
  stable_config.seeds_serve_all = true;
  stable_config.seed = 31;
  bt::InitialGroup warm;
  warm.count = 40;
  warm.piece_probs.assign(stable_config.num_pieces, 0.3);
  stable_config.initial_groups.push_back(std::move(warm));
  bt::Swarm stable_swarm(std::move(stable_config));
  stable_swarm.run_rounds(250);

  trace::SwarmStatsSeries stable_series;
  stable_series.label = "sim-stable";
  // Aggregate into "hourly" buckets (mean of 8 rounds), skipping the
  // initial transient — tracker statistics are coarse by nature and the
  // paper's swarms are large; raw per-round counts of a small simulated
  // swarm are too noisy for the flash-crowd ratio test.
  const auto& raw = stable_swarm.tracker().population_series();
  for (std::size_t i = 40; i + 8 <= raw.size(); i += 8) {
    std::uint32_t sum = 0;
    for (std::size_t j = i; j < i + 8; ++j) {
      sum += raw[j];
    }
    stable_series.hourly_peers.push_back(sum / 8);
  }
  EXPECT_EQ(trace::classify_swarm(stable_series), trace::SwarmClass::Stable);

  // Flash-crowd regime: sudden massive arrivals after a quiet start.
  bt::SwarmConfig flash_config;
  flash_config.num_pieces = 30;
  flash_config.arrival_rate = 0.2;
  flash_config.initial_seeds = 1;
  flash_config.seed = 32;
  bt::Swarm flash_swarm(std::move(flash_config));
  flash_swarm.run_rounds(40);
  for (int i = 0; i < 300; ++i) {
    flash_swarm.add_peer();
  }
  flash_swarm.run_rounds(40);
  trace::SwarmStatsSeries flash_series;
  flash_series.label = "sim-flash";
  const auto& flash_raw = flash_swarm.tracker().population_series();
  for (std::size_t i = 0; i < flash_raw.size(); i += 4) {
    flash_series.hourly_peers.push_back(flash_raw[i]);
  }
  EXPECT_EQ(trace::classify_swarm(flash_series), trace::SwarmClass::FlashCrowd);
}

TEST(CrossCheck, SimEntropyMatchesStandaloneComputation) {
  bt::SwarmConfig config;
  config.num_pieces = 20;
  config.max_connections = 3;
  config.peer_set_size = 10;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 3;
  config.seed = 33;
  bt::InitialGroup warm;
  warm.count = 20;
  warm.piece_probs.assign(config.num_pieces, 0.4);
  config.initial_groups.push_back(std::move(warm));
  bt::Swarm swarm(std::move(config));
  for (int r = 0; r < 30; ++r) {
    swarm.step();
    // Recompute replication degrees from scratch and compare.
    std::vector<std::uint32_t> counts(swarm.config().num_pieces, 0);
    for (bt::PeerId id : swarm.live_peers()) {
      for (bt::PieceIndex piece : swarm.peer(id).pieces.held_pieces()) {
        ++counts[piece];
      }
    }
    ASSERT_EQ(counts, swarm.piece_counts());
  }
}

}  // namespace
}  // namespace mpbt
