#include <gtest/gtest.h>

#include <cmath>

#include "analysis/compare.hpp"
#include "analysis/phase_detect.hpp"

namespace mpbt::analysis {
namespace {

trace::ClientTrace trace_with(std::vector<trace::TracePoint> points, std::uint32_t pieces = 100) {
  trace::ClientTrace t;
  t.label = "test";
  t.num_pieces = pieces;
  t.piece_bytes = 1000;
  t.points = std::move(points);
  return t;
}

TEST(PhaseDetect, RequiresNonEmptyTrace) {
  EXPECT_THROW(detect_phases(trace_with({})), std::invalid_argument);
}

TEST(PhaseDetect, SmoothDownloadHasNoSignificantPhases) {
  // Potential set healthy from the first trading round to the end.
  std::vector<trace::TracePoint> points;
  for (int t = 0; t <= 50; ++t) {
    points.push_back({static_cast<double>(t), static_cast<std::uint64_t>(t) * 2000,
                      15, static_cast<std::uint32_t>(t * 2)});
  }
  const PhaseSegmentation seg = detect_phases(trace_with(points));
  EXPECT_LE(seg.efficient_begin, 1u);
  EXPECT_FALSE(seg.has_last_phase());
  EXPECT_LT(seg.bootstrap_fraction(), 0.05);
  EXPECT_EQ(seg.last_fraction(), 0.0);
}

TEST(PhaseDetect, BootstrapPrefixDetected) {
  // 20 rounds stuck at zero pieces / zero potential, then normal trading.
  std::vector<trace::TracePoint> points;
  for (int t = 0; t < 20; ++t) {
    points.push_back({static_cast<double>(t), 0, 0, 0});
  }
  for (int t = 20; t <= 60; ++t) {
    points.push_back({static_cast<double>(t), static_cast<std::uint64_t>(t - 19) * 1000,
                      10, static_cast<std::uint32_t>((t - 19) * 2)});
  }
  const PhaseSegmentation seg = detect_phases(trace_with(points));
  EXPECT_TRUE(seg.has_bootstrap_phase());
  EXPECT_EQ(seg.efficient_begin, 20u);
  EXPECT_NEAR(seg.bootstrap_duration, 20.0, 1e-9);
  EXPECT_GT(seg.bootstrap_fraction(), 0.3);
}

TEST(PhaseDetect, LastPhaseSuffixDetected) {
  // Healthy until 80% completion, then the potential set collapses.
  std::vector<trace::TracePoint> points;
  for (int t = 0; t <= 40; ++t) {
    points.push_back({static_cast<double>(t), static_cast<std::uint64_t>(t) * 1000,
                      12, static_cast<std::uint32_t>(t * 2)});
  }
  for (int t = 41; t <= 70; ++t) {
    points.push_back({static_cast<double>(t), 40000 + static_cast<std::uint64_t>(t - 40) * 100,
                      1, static_cast<std::uint32_t>(80 + (t - 40) / 3)});
  }
  const PhaseSegmentation seg = detect_phases(trace_with(points));
  EXPECT_TRUE(seg.has_last_phase());
  EXPECT_EQ(seg.last_begin, 41u);
  EXPECT_GT(seg.last_fraction(), 0.3);
}

TEST(PhaseDetect, EarlyStallIsNotALastPhase) {
  // Collapsed potential at LOW completion must not register as last phase.
  std::vector<trace::TracePoint> points;
  for (int t = 0; t <= 30; ++t) {
    points.push_back({static_cast<double>(t), static_cast<std::uint64_t>(t) * 100,
                      t < 15 ? 0u : 10u, static_cast<std::uint32_t>(t)});
  }
  const PhaseSegmentation seg = detect_phases(trace_with(points));
  EXPECT_FALSE(seg.has_last_phase());
}

TEST(PhaseDetect, OptionsControlThreshold) {
  std::vector<trace::TracePoint> points;
  for (int t = 0; t <= 20; ++t) {
    points.push_back({static_cast<double>(t), static_cast<std::uint64_t>(t) * 1000, 8,
                      static_cast<std::uint32_t>(t * 4)});
  }
  for (int t = 21; t <= 30; ++t) {
    points.push_back({static_cast<double>(t), 20000, 2, 85});
  }
  PhaseDetectOptions defaults;  // threshold 1 -> potential 2 is "healthy"
  EXPECT_FALSE(detect_phases(trace_with(points), defaults).has_last_phase());
  PhaseDetectOptions loose;
  loose.last_phase_potential = 2;
  EXPECT_TRUE(detect_phases(trace_with(points), loose).has_last_phase());
}

TEST(ProfileCompare, RmseAndGapSkipMissing) {
  const std::vector<double> a{1.0, -1.0, 3.0, 5.0};
  const std::vector<double> b{1.0, 2.0, 4.0, -1.0};
  // Overlap: indices 0 and 2 -> errors 0 and 1.
  EXPECT_NEAR(profile_rmse(a, b), std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(profile_max_gap(a, b), 1.0, 1e-12);
}

TEST(ProfileCompare, NoOverlapReturnsMinusOne) {
  const std::vector<double> a{-1.0, -1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_EQ(profile_rmse(a, b), -1.0);
  EXPECT_EQ(profile_max_gap(a, b), -1.0);
  EXPECT_EQ(profile_mean(a), -1.0);
}

TEST(ProfileCompare, MeanSkipsMissing) {
  EXPECT_NEAR(profile_mean({1.0, -1.0, 3.0}), 2.0, 1e-12);
}

TEST(RatePotentialCorrelation, PositivelyCorrelatedTrace) {
  // Rate tracks potential size exactly -> correlation near 1.
  std::vector<trace::TracePoint> points;
  std::uint64_t bytes = 0;
  for (int t = 0; t <= 40; ++t) {
    const std::uint32_t potential = static_cast<std::uint32_t>(5 + 4 * (t % 5));
    bytes += potential * 100;
    points.push_back({static_cast<double>(t), bytes, potential,
                      static_cast<std::uint32_t>(t)});
  }
  const double corr = rate_potential_correlation(trace_with(points));
  EXPECT_GT(corr, 0.9);
}

TEST(RatePotentialCorrelation, DegenerateTraces) {
  EXPECT_EQ(rate_potential_correlation(trace_with({})), 0.0);
  EXPECT_EQ(rate_potential_correlation(
                trace_with({{0.0, 0, 0, 0}, {1.0, 10, 1, 1}})),
            0.0);
}

TEST(RatePotentialCorrelation, ExactlyThreePointsIsEnough) {
  // Three points yield two rate samples — the documented minimum for a
  // defined correlation; the 0 return is reserved for fewer.
  const double corr = rate_potential_correlation(
      trace_with({{0.0, 0, 2, 0}, {1.0, 200, 8, 1}, {2.0, 1000, 2, 2}}));
  EXPECT_TRUE(std::isfinite(corr));
}

TEST(PhaseDetect, NeverLeavesBootstrap) {
  // Potential set empty for the whole trace: efficient_begin lands past
  // the end, everything is bootstrap, and no phase fraction divides by 0.
  std::vector<trace::TracePoint> points;
  for (int t = 0; t <= 30; ++t) {
    points.push_back({static_cast<double>(t), 0, 0, 0});
  }
  const PhaseSegmentation seg = detect_phases(trace_with(points));
  EXPECT_EQ(seg.efficient_begin, points.size());
  EXPECT_TRUE(seg.has_bootstrap_phase());
  EXPECT_FALSE(seg.has_last_phase());
  EXPECT_NEAR(seg.bootstrap_duration, seg.total_duration, 1e-9);
  EXPECT_NEAR(seg.bootstrap_fraction(), 1.0, 1e-9);
  EXPECT_EQ(seg.efficient_duration, 0.0);
  EXPECT_EQ(seg.last_fraction(), 0.0);
}

TEST(PhaseDetect, SinglePointTraceHasZeroDurations) {
  // One sample spans no time at all: every duration is 0 and the
  // fraction accessors fall back to 0 rather than dividing by zero.
  const PhaseSegmentation seg = detect_phases(trace_with({{5.0, 1000, 4, 10}}));
  EXPECT_EQ(seg.total_duration, 0.0);
  EXPECT_EQ(seg.bootstrap_fraction(), 0.0);
  EXPECT_EQ(seg.last_fraction(), 0.0);
  EXPECT_FALSE(seg.has_last_phase());
}

TEST(PhaseDetect, CompletedTraceWithoutCollapseHasNoLastPhase) {
  // The potential set stays healthy through 100% completion: the
  // last-download suffix must be empty even though completion passed the
  // min-completion threshold.
  std::vector<trace::TracePoint> points;
  for (int t = 0; t <= 50; ++t) {
    points.push_back({static_cast<double>(t), static_cast<std::uint64_t>(t) * 2000,
                      20, static_cast<std::uint32_t>(t * 2)});
  }
  const PhaseSegmentation seg = detect_phases(trace_with(points));
  EXPECT_FALSE(seg.has_last_phase());
  EXPECT_EQ(seg.last_begin, points.size());
  EXPECT_EQ(seg.last_duration, 0.0);
}

}  // namespace
}  // namespace mpbt::analysis
