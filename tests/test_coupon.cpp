#include "coupon/coupon.hpp"

#include <gtest/gtest.h>

namespace mpbt::coupon {
namespace {

CouponConfig small_config() {
  CouponConfig config;
  config.num_coupons = 10;
  config.arrival_rate = 3.0;
  config.encounter_rate = 1.0;
  config.initial_peers = 60;
  config.horizon = 150.0;
  config.seed = 5;
  return config;
}

TEST(CouponConfig, Validation) {
  CouponConfig c;
  c.num_coupons = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = CouponConfig{};
  c.arrival_rate = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = CouponConfig{};
  c.encounter_rate = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = CouponConfig{};
  c.horizon = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_NO_THROW(CouponConfig{}.validate());
}

TEST(CouponSimulator, RunsAndCompletesDownloads) {
  CouponSimulator sim(small_config());
  const CouponResult result = sim.run();
  EXPECT_GT(result.encounters, 100u);
  EXPECT_GT(result.completed, 10u);
  EXPECT_GT(result.completion_time.mean, 0.0);
}

TEST(CouponSimulator, FailedEncountersArePositive) {
  // Global random encounters must sometimes pair peers with nothing to
  // trade — the paper's key structural contrast with BitTorrent.
  CouponSimulator sim(small_config());
  const CouponResult result = sim.run();
  EXPECT_GT(result.failed_encounters, 0u);
  EXPECT_GT(result.failed_fraction(), 0.0);
  EXPECT_LT(result.failed_fraction(), 1.0);
}

TEST(CouponSimulator, DeterministicForSeed) {
  CouponSimulator a(small_config());
  CouponSimulator b(small_config());
  const CouponResult ra = a.run();
  const CouponResult rb = b.run();
  EXPECT_EQ(ra.encounters, rb.encounters);
  EXPECT_EQ(ra.failed_encounters, rb.failed_encounters);
  EXPECT_EQ(ra.completed, rb.completed);
}

TEST(CouponSimulator, RunIsSingleUse) {
  CouponSimulator sim(small_config());
  sim.run();
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(CouponSimulator, PopulationSeriesIsRecorded) {
  CouponSimulator sim(small_config());
  const CouponResult result = sim.run();
  ASSERT_FALSE(result.population.empty());
  EXPECT_EQ(result.population.first_time(), 0.0);
  EXPECT_DOUBLE_EQ(result.population.last_time(), small_config().horizon);
}

TEST(CouponSimulator, ArrivalCutoffDrainsSwarm) {
  CouponConfig config = small_config();
  config.arrival_cutoff = 20.0;
  config.horizon = 400.0;
  CouponSimulator sim(config);
  const CouponResult result = sim.run();
  // With no fresh arrivals after t=20 the swarm should shrink well below
  // its starting size by the horizon (most peers complete).
  const double final_pop = result.population.value_at(400.0);
  EXPECT_LT(final_pop, static_cast<double>(config.initial_peers));
}

TEST(CouponSimulator, NoArrivalsStillRuns) {
  CouponConfig config = small_config();
  config.arrival_rate = 0.0;
  config.initial_peers = 30;
  CouponSimulator sim(config);
  const CouponResult result = sim.run();
  EXPECT_GT(result.encounters, 0u);
}

TEST(CouponSimulator, MoreCouponsSlowCompletion) {
  CouponConfig few = small_config();
  few.num_coupons = 5;
  CouponConfig many = small_config();
  many.num_coupons = 25;
  const CouponResult r_few = CouponSimulator(few).run();
  const CouponResult r_many = CouponSimulator(many).run();
  ASSERT_GT(r_few.completed, 0u);
  ASSERT_GT(r_many.completed, 0u);
  EXPECT_LT(r_few.completion_time.mean, r_many.completion_time.mean);
}

}  // namespace
}  // namespace mpbt::coupon
