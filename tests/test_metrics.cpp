#include "bt/metrics.hpp"

#include <gtest/gtest.h>

namespace mpbt::bt {
namespace {

TEST(SwarmMetrics, ConstructionValidation) {
  EXPECT_THROW(SwarmMetrics(0), std::invalid_argument);
  EXPECT_NO_THROW(SwarmMetrics(10));
}

TEST(SwarmMetrics, RoundSeries) {
  SwarmMetrics m(10);
  m.record_round(0, 5, 1, 0.9, 0.8, 0.6, 0.5);
  m.record_round(1, 6, 1, 0.95, 0.85, 0.7, 0.55);
  EXPECT_EQ(m.population().size(), 2u);
  EXPECT_EQ(m.population()[1].value, 6.0);
  EXPECT_EQ(m.seeds()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(m.entropy()[0].value, 0.9);
  EXPECT_DOUBLE_EQ(m.efficiency_trading()[1].value, 0.85);
  EXPECT_DOUBLE_EQ(m.efficiency_all()[1].value, 0.7);
  EXPECT_DOUBLE_EQ(m.efficiency_transfer()[1].value, 0.55);
}

TEST(SwarmMetrics, MeanWithWarmup) {
  SwarmMetrics m(10);
  m.record_round(0, 1, 0, 0.0, 0.0, 0.0, 0.0);
  m.record_round(1, 1, 0, 0.5, 0.4, 0.4, 0.3);
  m.record_round(2, 1, 0, 1.0, 0.8, 0.8, 0.5);
  EXPECT_NEAR(m.mean_efficiency(1), 0.6, 1e-12);
  EXPECT_NEAR(m.mean_entropy(1), 0.75, 1e-12);
  EXPECT_NEAR(m.mean_efficiency(0), 0.4, 1e-12);
  EXPECT_EQ(m.mean_efficiency(5), 0.0);  // no rounds past warmup
  EXPECT_NEAR(m.mean_transfer_efficiency(1), 0.4, 1e-12);
}

TEST(SwarmMetrics, PotentialProfile) {
  SwarmMetrics m(10);
  EXPECT_EQ(m.potential_ratio(3), -1.0);
  m.record_potential_observation(3, 4, 8);
  m.record_potential_observation(3, 2, 8);
  EXPECT_NEAR(m.potential_ratio(3), 0.375, 1e-12);  // (0.5 + 0.25) / 2
  EXPECT_NEAR(m.potential_size(3), 3.0, 1e-12);
  // Zero neighbor-set observations count toward the size but not the ratio.
  m.record_potential_observation(5, 2, 0);
  EXPECT_NEAR(m.potential_size(5), 2.0, 1e-12);
  EXPECT_THROW(m.record_potential_observation(11, 0, 0), std::invalid_argument);
  EXPECT_THROW(m.potential_ratio(11), std::out_of_range);
}

TEST(SwarmMetrics, AcquisitionProfiles) {
  SwarmMetrics m(10);
  m.record_acquisition(1, 2.0, 2.0);
  m.record_acquisition(1, 4.0, 4.0);
  m.record_acquisition(2, 5.0, 1.0);
  EXPECT_NEAR(m.timeline(1), 3.0, 1e-12);
  EXPECT_NEAR(m.timeline(2), 5.0, 1e-12);
  EXPECT_NEAR(m.ttd(2), 1.0, 1e-12);
  EXPECT_EQ(m.acquisition_count(1), 2u);
  EXPECT_EQ(m.timeline(0), 0.0);
  EXPECT_EQ(m.timeline(3), -1.0);
  EXPECT_EQ(m.ttd(3), -1.0);
  EXPECT_THROW(m.record_acquisition(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.record_acquisition(11, 1.0, 1.0), std::invalid_argument);
}

TEST(SwarmMetrics, CompletionTracking) {
  SwarmMetrics m(10);
  m.record_completion(12.0);
  m.record_completion(18.0);
  EXPECT_EQ(m.completed_count(), 2u);
  EXPECT_EQ(m.download_times().size(), 2u);
}

TEST(SwarmMetrics, ParameterEstimates) {
  SwarmMetrics m(10);
  EXPECT_EQ(m.estimated_p_r(0.42), 0.42);  // fallback with no data
  m.record_connection_survival(10, 7);
  m.record_connection_survival(10, 9);
  EXPECT_NEAR(m.estimated_p_r(), 0.8, 1e-12);
  m.record_connection_attempts(20, 15);
  EXPECT_NEAR(m.estimated_p_n(), 0.75, 1e-12);
  m.record_bootstrap_exit(4, 8);
  m.record_bootstrap_exit(0, 8);
  EXPECT_NEAR(m.estimated_p_init(), 0.25, 1e-12);
  m.record_failed_encounter(3);
  EXPECT_EQ(m.failed_encounters(), 3u);
}

TEST(SwarmMetrics, ClientRecordsKeyedByPeer) {
  SwarmMetrics m(10);
  ClientRecord& r1 = m.client_record(5, 2);
  r1.samples.push_back({3, 100, 1, 4, 1, 1});
  ClientRecord& again = m.client_record(5, 99);  // joined ignored on re-fetch
  EXPECT_EQ(again.joined, 2u);
  EXPECT_EQ(again.samples.size(), 1u);
  m.client_record(8, 0);
  EXPECT_EQ(m.client_records().size(), 2u);
}

}  // namespace
}  // namespace mpbt::bt
