#include "numeric/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace mpbt::numeric {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInverted) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, BinomialEdges) {
  Rng rng(3);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(10, 0.0), 0);
  EXPECT_EQ(rng.binomial(10, 1.0), 10);
  EXPECT_THROW(rng.binomial(-1, 0.5), std::invalid_argument);
}

struct BinomialCase {
  int n;
  double p;
};

class RngBinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(RngBinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(42);
  const int samples = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < samples; ++i) {
    const int v = rng.binomial(n, p);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, n);
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / samples;
  const double var = sum_sq / samples - mean * mean;
  const double expected_mean = n * p;
  const double expected_var = n * p * (1.0 - p);
  EXPECT_NEAR(mean, expected_mean, 0.05 * std::max(1.0, expected_mean));
  EXPECT_NEAR(var, expected_var, 0.1 * std::max(1.0, expected_var));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RngBinomialMoments,
                         ::testing::Values(BinomialCase{5, 0.5}, BinomialCase{40, 0.1},
                                           BinomialCase{40, 0.9}, BinomialCase{100, 0.3},
                                           BinomialCase{500, 0.02}, BinomialCase{1000, 0.7}));

class RngPoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonMoments, MeanAndVarianceMatch) {
  const double lambda = GetParam();
  Rng rng(5);
  const int samples = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < samples; ++i) {
    const int v = rng.poisson(lambda);
    ASSERT_GE(v, 0);
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / samples;
  const double var = sum_sq / samples - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05 * std::max(1.0, lambda));
  EXPECT_NEAR(var, lambda, 0.12 * std::max(1.0, lambda));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RngPoissonMoments,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 200.0));

TEST(Rng, PoissonZeroLambda) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.poisson(0.0), 0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(rate);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, GeometricMean) {
  Rng rng(8);
  const double p = 0.3;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.geometric(p);
  }
  // E[failures before success] = (1 - p) / p.
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.05);
  EXPECT_EQ(rng.geometric(1.0), 0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(11);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[static_cast<std::size_t>(i)] = i;
  }
  const std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(12);
  for (std::size_t n : {1u, 5u, 50u, 1000u}) {
    for (std::size_t k : {std::size_t{0}, n / 2, n}) {
      const auto sample = rng.sample_without_replacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (std::size_t idx : sample) {
        EXPECT_LT(idx, n);
      }
    }
  }
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  // Each element of [0, 10) should appear in a k=5 sample about half the time.
  Rng rng(13);
  std::vector<int> hits(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t idx : rng.sample_without_replacement(10, 5)) {
      ++hits[idx];
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.5, 0.02);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u64() == child2.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace mpbt::numeric
