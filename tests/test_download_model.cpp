#include "model/download_model.hpp"

#include <gtest/gtest.h>

#include "markov/absorbing.hpp"

namespace mpbt::model {
namespace {

ModelParams small_params() {
  ModelParams p;
  p.B = 8;
  p.k = 3;
  p.s = 5;
  p.p_init = 0.6;
  p.p_r = 0.7;
  p.p_n = 0.8;
  p.alpha = 0.3;
  p.gamma = 0.2;
  return p;
}

TEST(ComputeEvolution, AbsorbsAllMass) {
  const EvolutionResult evo = compute_evolution(small_params());
  EXPECT_NEAR(evo.absorbed_mass, 1.0, 1e-6);
  EXPECT_GT(evo.steps_taken, 2u);
}

TEST(ComputeEvolution, TimelineIsMonotoneIncreasing) {
  const EvolutionResult evo = compute_evolution(small_params());
  ASSERT_EQ(evo.expected_timeline.size(), 9u);
  EXPECT_EQ(evo.expected_timeline[0], 0.0);
  for (std::size_t b = 1; b < evo.expected_timeline.size(); ++b) {
    EXPECT_GT(evo.expected_timeline[b], evo.expected_timeline[b - 1] - 1e-9) << "b=" << b;
  }
  EXPECT_NEAR(evo.expected_completion, evo.expected_timeline.back(), 1e-12);
}

TEST(ComputeEvolution, MatchesExactAbsorbingAnalysis) {
  // The collapsed stepping must agree with the exact full-chain
  // fundamental-matrix solution for E[time to absorb].
  const auto params = small_params();
  const TransitionKernel kernel(params);
  const markov::SparseChain chain = kernel.build_chain();
  const auto exact = markov::expected_steps_to_absorption(chain);
  const double exact_time = exact.expected_steps[kernel.start_state()];

  const EvolutionResult evo = compute_evolution(params);
  EXPECT_NEAR(evo.expected_completion, exact_time, exact_time * 0.01 + 0.01);
}

TEST(ComputeEvolution, PhaseRoundsSumToCompletion) {
  const EvolutionResult evo = compute_evolution(small_params());
  const double total = evo.bootstrap_rounds + evo.efficient_rounds + evo.last_rounds;
  EXPECT_NEAR(total, evo.expected_completion, evo.expected_completion * 0.02 + 0.1);
}

TEST(ComputeEvolution, PotentialProfileWithinSupport) {
  const auto params = small_params();
  const EvolutionResult evo = compute_evolution(params);
  for (std::size_t b = 1; b < evo.expected_potential.size() - 1; ++b) {
    if (evo.expected_potential[b] >= 0.0) {
      EXPECT_LE(evo.expected_potential[b], static_cast<double>(params.s));
    }
    if (evo.expected_connections[b] >= 0.0) {
      EXPECT_LE(evo.expected_connections[b], static_cast<double>(params.k));
    }
  }
}

TEST(ComputeEvolution, SmallerAlphaSlowsBootstrapHeavyRuns) {
  // With a tiny neighbor set, peers hit the empty-potential state often;
  // smaller alpha/gamma should lengthen the expected download.
  ModelParams slow = small_params();
  slow.s = 2;
  slow.p_init = 0.1;
  slow.alpha = 0.05;
  slow.gamma = 0.05;
  ModelParams fast = slow;
  fast.alpha = 0.9;
  fast.gamma = 0.9;
  const double t_slow = compute_evolution(slow).expected_completion;
  const double t_fast = compute_evolution(fast).expected_completion;
  EXPECT_GT(t_slow, t_fast);
}

TEST(ComputeEvolution, LargerKDownloadsFaster) {
  ModelParams k1 = small_params();
  k1.k = 1;
  ModelParams k3 = small_params();
  k3.k = 3;
  EXPECT_GT(compute_evolution(k1).expected_completion,
            compute_evolution(k3).expected_completion);
}

TEST(ComputeEvolution, MaxStepsCapReported) {
  const EvolutionResult evo = compute_evolution(small_params(), /*max_steps=*/3);
  EXPECT_EQ(evo.steps_taken, 3u);
  EXPECT_LT(evo.absorbed_mass, 1.0);
}

TEST(ComputeEvolution, RealisticParametersRunFast) {
  // The headline configuration of the paper: B=200, s=40. The collapsed
  // stepping must handle it exactly (this is what Fig. 1b uses).
  ModelParams p;
  p.B = 200;
  p.k = 7;
  p.s = 40;
  const EvolutionResult evo = compute_evolution(p, 5000);
  EXPECT_NEAR(evo.absorbed_mass, 1.0, 1e-6);
  EXPECT_GT(evo.expected_completion, 20.0);
  EXPECT_LT(evo.expected_completion, 500.0);
}

TEST(SampleDownload, CompletesAndClassifiesPhases) {
  const TransitionKernel kernel(small_params());
  numeric::Rng rng(31);
  const SampledDownload d = sample_download(kernel, rng);
  EXPECT_TRUE(d.completed);
  ASSERT_GE(d.points.size(), 2u);
  EXPECT_EQ(d.points.front().b, 0);
  EXPECT_EQ(d.points.back().b, kernel.params().B);
  EXPECT_EQ(d.points.back().phase, Phase::Done);
  // b never decreases along the trajectory.
  for (std::size_t t = 1; t < d.points.size(); ++t) {
    EXPECT_GE(d.points[t].b, d.points[t - 1].b);
  }
  EXPECT_EQ(d.bootstrap_steps + d.efficient_steps + d.last_steps + 1, d.points.size());
}

TEST(SampleDownload, StateComponentsStayInRange) {
  const auto params = small_params();
  const TransitionKernel kernel(params);
  numeric::Rng rng(32);
  for (int run = 0; run < 20; ++run) {
    const SampledDownload d = sample_download(kernel, rng);
    for (const TrajectoryPoint& pt : d.points) {
      ASSERT_GE(pt.n, 0);
      ASSERT_LE(pt.n, params.k);
      ASSERT_GE(pt.b, 0);
      ASSERT_LE(pt.b, params.B);
      ASSERT_GE(pt.i, 0);
      ASSERT_LE(pt.i, params.s);
    }
  }
}

TEST(SampleDownload, MonteCarloAgreesWithExactEvolution) {
  const auto params = small_params();
  const TransitionKernel kernel(params);
  numeric::Rng rng(33);
  const std::vector<double> mc = monte_carlo_timeline(kernel, rng, 3000);
  const EvolutionResult evo = compute_evolution(params);
  for (std::size_t b = 1; b < mc.size(); ++b) {
    ASSERT_GE(mc[b], 0.0) << "b=" << b;
    EXPECT_NEAR(mc[b], evo.expected_timeline[b],
                0.12 * evo.expected_timeline[b] + 0.5)
        << "b=" << b;
  }
}

TEST(SampleDownload, MonteCarloTimelineValidation) {
  const TransitionKernel kernel(small_params());
  numeric::Rng rng(34);
  EXPECT_THROW(monte_carlo_timeline(kernel, rng, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mpbt::model
