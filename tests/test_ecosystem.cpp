// Tests for the multi-torrent ecosystem layer (src/eco).
//
// Covers the session model's bookkeeping (arrivals, completions,
// aborts, takedown removals), Zipf popularity determinism, the
// takedown/recovery transient shape, jobs-invariance of the ecosystem
// fingerprint, the eco fault -> invariant mappings, and the CaseSpec
// ecosystem section. Golden fingerprints mirror test_swarm_golden:
// regenerate with MPBT_GOLDEN_REGEN=1 after an INTENTIONAL change.
#include "eco/ecosystem.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "bt/fault.hpp"
#include "check/case_spec.hpp"
#include "check/eco_invariants.hpp"
#include "check/fuzzer.hpp"
#include "eco/zipf.hpp"
#include "numeric/rng.hpp"
#include "report/json.hpp"

namespace mpbt::eco {
namespace {

/// Small but busy ecosystem: every churn path (completion, linger,
/// cross-swarm seeding, abort, organic + burst arrivals) is exercised
/// within ~40 rounds.
EcosystemConfig small_config() {
  EcosystemConfig config;
  config.num_torrents = 4;
  config.zipf_s = 1.0;
  config.arrival_rate = 3.0;
  config.initial_sessions = 30;
  config.max_wants = 3;
  config.swarm.num_pieces = 20;
  config.swarm.max_connections = 4;
  config.swarm.peer_set_size = 15;
  config.swarm.initial_seeds = 2;
  config.swarm.seed_capacity = 6;
  config.swarm.seeds_serve_all = true;
  config.swarm.seed_linger_rounds = 10;
  config.swarm.abort_rate = 0.02;
  return config;
}

// --- Zipf popularity -------------------------------------------------------

TEST(Zipf, SampleSequenceIsDeterministic) {
  const ZipfSampler zipf(16, 1.2);
  numeric::Rng a(99);
  numeric::Rng b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.sample(a), zipf.sample(b));
  }
}

TEST(Zipf, ProbabilitiesAreNormalizedAndMonotone) {
  const ZipfSampler zipf(12, 0.8);
  double total = 0.0;
  for (std::size_t t = 0; t < zipf.size(); ++t) {
    total += zipf.probability(t);
    if (t > 0) {
      EXPECT_LE(zipf.probability(t), zipf.probability(t - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t t = 0; t < zipf.size(); ++t) {
    EXPECT_NEAR(zipf.probability(t), 0.1, 1e-12);
  }
}

TEST(Zipf, EmpiricalFrequenciesTrackTheLaw) {
  const ZipfSampler zipf(8, 1.0);
  numeric::Rng rng(7);
  std::vector<int> counts(zipf.size(), 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    ++counts[zipf.sample(rng)];
  }
  for (std::size_t t = 0; t < zipf.size(); ++t) {
    const double expected = zipf.probability(t) * draws;
    EXPECT_NEAR(counts[t], expected, 5.0 * std::sqrt(expected) + 5.0) << "category " << t;
  }
}

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(4, -0.5), std::invalid_argument);
}

// --- churn and session bookkeeping -----------------------------------------

TEST(Ecosystem, SessionStatesPartitionTheArrivals) {
  Ecosystem eco(small_config(), /*jobs=*/1);
  eco.run_rounds(40);

  std::uint64_t active = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t removed = 0;
  for (const Session& session : eco.sessions()) {
    switch (session.state) {
      case SessionState::kActive: ++active; break;
      case SessionState::kCompleted: ++completed; break;
      case SessionState::kAborted: ++aborted; break;
      case SessionState::kRemoved: ++removed; break;
    }
  }
  EXPECT_EQ(eco.sessions().size(), eco.sessions_arrived());
  EXPECT_EQ(active, eco.active_session_count());
  EXPECT_EQ(completed, eco.sessions_completed());
  EXPECT_EQ(aborted, eco.sessions_aborted());
  EXPECT_EQ(removed, eco.sessions_removed());
  EXPECT_EQ(active + completed + aborted + removed, eco.sessions_arrived());
  EXPECT_GT(eco.sessions_completed(), 0u);
  EXPECT_GT(eco.sessions_aborted(), 0u);
}

TEST(Ecosystem, LedgerMatchesSwarmAndTrackerEveryRound) {
  Ecosystem eco(small_config(), /*jobs=*/1);
  for (int r = 0; r < 25; ++r) {
    eco.step();
    for (std::size_t t = 0; t < eco.num_torrents(); ++t) {
      EXPECT_EQ(eco.ledger(t), eco.swarm(t).population()) << "round " << r << " torrent " << t;
      EXPECT_EQ(eco.ledger(t), eco.swarm(t).tracker().population())
          << "round " << r << " torrent " << t;
    }
  }
}

TEST(Ecosystem, WantListsAreDistinctAndCompletionsAreWanted) {
  Ecosystem eco(small_config(), /*jobs=*/1);
  eco.run_rounds(40);
  for (const Session& session : eco.sessions()) {
    ASSERT_FALSE(session.wants.empty());
    ASSERT_LE(session.wants.size(), 3u);
    const std::set<std::uint32_t> distinct(session.wants.begin(), session.wants.end());
    EXPECT_EQ(distinct.size(), session.wants.size()) << "session " << session.id;
    for (const std::uint32_t t : session.completed) {
      EXPECT_NE(std::find(session.wants.begin(), session.wants.end(), t), session.wants.end())
          << "session " << session.id << " completed unwanted torrent " << t;
    }
  }
}

TEST(Ecosystem, CrossSwarmSeedingHappens) {
  Ecosystem eco(small_config(), /*jobs=*/1);
  eco.run_rounds(40);

  // Multi-want sessions finish files one at a time, so the file
  // completion count strictly exceeds the completed-session count, and
  // at least one session must have been observed seeding a finished
  // torrent while still working through its want list.
  EXPECT_GT(eco.file_completions(), eco.sessions_completed());
  bool saw_seed_while_active = false;
  for (const Session& session : eco.sessions()) {
    if (session.state == SessionState::kActive && !session.seeding.empty()) {
      saw_seed_while_active = true;
      for (const auto& [torrent, peer] : session.seeding) {
        ASSERT_LT(torrent, eco.num_torrents());
        EXPECT_TRUE(eco.swarm(torrent).is_live(peer));
        EXPECT_TRUE(eco.swarm(torrent).peer(peer).is_seed);
      }
    }
  }
  EXPECT_TRUE(saw_seed_while_active);
}

TEST(Ecosystem, FlashCrowdInjectsSessionsAtItsRound) {
  EcosystemConfig config = small_config();
  config.arrival_rate = 0.0;
  config.flash_crowds.push_back({/*round=*/5, /*sessions=*/50, /*torrent=*/1});
  Ecosystem eco(std::move(config), /*jobs=*/1);
  eco.run_rounds(5);  // rounds 0..4
  const std::uint64_t before = eco.sessions_arrived();
  eco.step();  // round 5: the burst fires
  EXPECT_EQ(eco.sessions_arrived(), before + 50);
  // Pinned bursts rush the targeted torrent.
  std::uint64_t pinned = 0;
  for (const Session& session : eco.sessions()) {
    if (session.arrived == 5 && session.wants.front() == 1) {
      ++pinned;
    }
  }
  EXPECT_EQ(pinned, 50u);
}

TEST(Ecosystem, TakedownRemovesPeersAndMarksSessions) {
  EcosystemConfig config = small_config();
  config.takedowns.push_back({/*round=*/10, /*fraction=*/0.5, /*torrent=*/-1});
  Ecosystem eco(std::move(config), /*jobs=*/1);
  eco.run_rounds(10);  // rounds 0..9
  const std::size_t pre = eco.population();
  eco.step();  // round 10: the takedown fires before arrivals/stepping
  EXPECT_GT(eco.takedown_removed(), 0u);
  EXPECT_GE(eco.takedown_removed(), pre / 2 - eco.num_torrents());
  EXPECT_GT(eco.sessions_removed(), 0u);
}

// --- takedown/recovery transient -------------------------------------------

TEST(Ecosystem, TakedownTransientShowsTroughAndRecovery) {
  EcosystemConfig config = small_config();
  config.arrival_rate = 4.0;
  Takedown takedown{/*round=*/25, /*fraction=*/0.6, /*torrent=*/-1};
  config.takedowns.push_back(takedown);
  Ecosystem eco(std::move(config), /*jobs=*/1);
  eco.run_rounds(70);

  const TransientSummary transient = eco.transient(takedown);
  EXPECT_GT(transient.pre, 0.0);
  EXPECT_LT(transient.trough, 0.6 * transient.pre);
  // Arrivals keep flowing, so the population climbs back above 90% of
  // the pre-takedown level within the run.
  EXPECT_GE(transient.recovery_rounds, 0.0);
  EXPECT_LE(transient.recovery_rounds, 45.0);
  // Steady state fluctuates, so the final round need not sit exactly at
  // the pre-event level — but it must be well above the trough.
  EXPECT_GT(transient.recovered_frac, 0.6);
}

TEST(Ecosystem, NoArrivalsMeansNoRecovery) {
  EcosystemConfig config = small_config();
  config.arrival_rate = 0.0;
  config.initial_sessions = 60;
  config.swarm.abort_rate = 0.0;
  Takedown takedown{/*round=*/5, /*fraction=*/0.7, /*torrent=*/-1};
  config.takedowns.push_back(takedown);
  Ecosystem eco(std::move(config), /*jobs=*/1);
  eco.run_rounds(30);

  const TransientSummary transient = eco.transient(takedown);
  EXPECT_GT(transient.pre, 0.0);
  EXPECT_LT(transient.trough, transient.pre);
  EXPECT_EQ(transient.recovery_rounds, -1.0);
}

// --- determinism -----------------------------------------------------------

TEST(Ecosystem, FingerprintIsInvariantAcrossJobs) {
  EcosystemConfig config = small_config();
  config.num_torrents = 8;
  config.initial_sessions = 120;
  config.arrival_rate = 6.0;
  config.flash_crowds.push_back({/*round=*/8, /*sessions=*/60, /*torrent=*/-1});
  config.takedowns.push_back({/*round=*/20, /*fraction=*/0.4, /*torrent=*/2});

  EcosystemConfig copy = config;
  Ecosystem serial(std::move(config), /*jobs=*/1);
  Ecosystem parallel(std::move(copy), /*jobs=*/8);
  serial.run_rounds(30);
  parallel.run_rounds(30);

  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_EQ(serial.metrics().population, parallel.metrics().population);
  EXPECT_EQ(serial.metrics().seeds, parallel.metrics().seeds);
  EXPECT_EQ(serial.metrics().torrent_population, parallel.metrics().torrent_population);
  EXPECT_EQ(serial.sessions_arrived(), parallel.sessions_arrived());
  EXPECT_EQ(serial.file_completions(), parallel.file_completions());
}

TEST(Ecosystem, SameSeedSameTrajectoryDifferentSeedDiverges) {
  EcosystemConfig config = small_config();
  EcosystemConfig same = config;
  EcosystemConfig other = config;
  other.seed = 1234;

  Ecosystem a(std::move(config), /*jobs=*/1);
  Ecosystem b(std::move(same), /*jobs=*/1);
  Ecosystem c(std::move(other), /*jobs=*/1);
  a.run_rounds(20);
  b.run_rounds(20);
  c.run_rounds(20);

  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// --- golden fingerprints ---------------------------------------------------

struct GoldenCase {
  std::uint64_t seed;
  std::uint64_t expected;
};

// Regenerate with MPBT_GOLDEN_REGEN=1 (prints rows, fails, so a stale
// pin cannot slip through by accident).
const GoldenCase kGolden[] = {
    {42, 0x69a2d4bfa06b77d5ULL},
    {7, 0x4ba41a9e24b0ad97ULL},
    {1234, 0x9e3f6cb681a4fee0ULL},
};

TEST(EcosystemGolden, FingerprintsMatchPinnedValues) {
  const bool regen = std::getenv("MPBT_GOLDEN_REGEN") != nullptr;
  for (const GoldenCase& c : kGolden) {
    EcosystemConfig config = small_config();
    config.flash_crowds.push_back({/*round=*/8, /*sessions=*/40, /*torrent=*/0});
    config.takedowns.push_back({/*round=*/20, /*fraction=*/0.5, /*torrent=*/-1});
    config.seed = c.seed;
    Ecosystem eco(std::move(config), /*jobs=*/1);
    eco.run_rounds(40);
    const std::uint64_t actual = eco.fingerprint();
    if (regen) {
      std::printf("    {%llu, 0x%llxULL},\n", static_cast<unsigned long long>(c.seed),
                  static_cast<unsigned long long>(actual));
      EXPECT_EQ(actual, c.expected) << "seed=" << c.seed << " (regen mode)";
      continue;
    }
    EXPECT_EQ(actual, c.expected) << "seed=" << c.seed;
  }
}

// --- invariants and faults -------------------------------------------------

/// Steps until an InvariantViolation fires (or `rounds` elapse) and
/// returns the violated invariant's name (empty when none fired).
std::string violation_under(bt::fault::Fault fault, int rounds) {
  EcosystemConfig config = small_config();
  config.takedowns.push_back({/*round=*/10, /*fraction=*/0.5, /*torrent=*/-1});
  Ecosystem eco(std::move(config), /*jobs=*/1);
  check::EcosystemChecker checker(eco);
  const bt::fault::ScopedFault scoped(fault);
  try {
    checker.check_round();
    for (int r = 0; r < rounds; ++r) {
      eco.step();
      checker.check_round();
    }
  } catch (const check::InvariantViolation& violation) {
    return violation.invariant();
  }
  return "";
}

TEST(EcosystemInvariants, CleanRunPassesAndCountsChecks) {
  Ecosystem eco(small_config(), /*jobs=*/1);
  check::EcosystemChecker checker(eco);
  for (int r = 0; r < 20; ++r) {
    eco.step();
    checker.check_round();
  }
  EXPECT_GT(checker.checks_run(), 0u);
}

TEST(EcosystemInvariants, LeakedDepartedSessionViolatesConservation) {
  EXPECT_EQ(violation_under(bt::fault::Fault::kEcoLeakDepartedSession, 40), "eco-session-conservation");
}

TEST(EcosystemInvariants, SkippedCompletionRecordViolatesWantSeedCoherence) {
  EXPECT_EQ(violation_under(bt::fault::Fault::kEcoSkipCompletionRecord, 40), "eco-want-seed-coherence");
}

TEST(EcosystemInvariants, SkippedTakedownLedgerViolatesLedgerCoherence) {
  EXPECT_EQ(violation_under(bt::fault::Fault::kEcoSkipTakedownLedger, 40), "eco-ledger-coherence");
}

TEST(EcosystemInvariants, NamesAreStable) {
  const auto& names = check::EcosystemInvariants::invariant_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "eco-session-conservation");
  EXPECT_EQ(names[1], "eco-want-seed-coherence");
  EXPECT_EQ(names[2], "eco-ledger-coherence");
}

// --- CaseSpec ecosystem section --------------------------------------------

TEST(EcosystemCaseSpec, JsonRoundTripPreservesEcoFields) {
  check::CaseSpec spec = check::random_case(42, 3, /*quick=*/true);
  spec.eco_torrents = 3;
  spec.eco_zipf_s = 1.1;
  spec.eco_arrival_rate = 2.5;
  spec.eco_initial_sessions = 12;
  spec.eco_max_wants = 2;
  spec.eco_flash_round = 4;
  spec.eco_flash_sessions = 15;
  spec.eco_takedown_round = 7;
  spec.eco_takedown_fraction = 0.6;

  const check::CaseSpec back = check::case_from_json(check::to_json(spec));
  EXPECT_EQ(back, spec);
}

TEST(EcosystemCaseSpec, PlainSwarmSpecOmitsAndRejectsEcoConfig) {
  check::CaseSpec spec = check::random_case(42, 0, /*quick=*/true);
  spec.eco_torrents = 0;
  const check::CaseSpec back = check::case_from_json(check::to_json(spec));
  EXPECT_EQ(back.eco_torrents, 0u);
  EXPECT_THROW(check::to_ecosystem_config(spec), std::invalid_argument);
}

TEST(EcosystemCaseSpec, ToEcosystemConfigMapsFieldsAndEvents) {
  check::CaseSpec spec = check::random_case(42, 1, /*quick=*/true);
  spec.eco_torrents = 4;
  spec.eco_zipf_s = 0.9;
  spec.eco_arrival_rate = 1.5;
  spec.eco_initial_sessions = 8;
  spec.eco_max_wants = 3;
  spec.eco_flash_round = 5;
  spec.eco_flash_sessions = 10;
  spec.eco_takedown_round = 9;
  spec.eco_takedown_fraction = 0.4;

  const EcosystemConfig config = check::to_ecosystem_config(spec);
  EXPECT_EQ(config.num_torrents, 4u);
  EXPECT_DOUBLE_EQ(config.zipf_s, 0.9);
  EXPECT_DOUBLE_EQ(config.arrival_rate, 1.5);
  EXPECT_EQ(config.initial_sessions, 8u);
  EXPECT_EQ(config.max_wants, 3u);
  EXPECT_EQ(config.seed, spec.seed);
  ASSERT_EQ(config.flash_crowds.size(), 1u);
  EXPECT_EQ(config.flash_crowds.front().round, 5u);
  EXPECT_EQ(config.flash_crowds.front().sessions, 10u);
  ASSERT_EQ(config.takedowns.size(), 1u);
  EXPECT_EQ(config.takedowns.front().round, 9u);
  EXPECT_DOUBLE_EQ(config.takedowns.front().fraction, 0.4);
}

TEST(EcosystemCaseSpec, FuzzerRunsEcoCases) {
  check::CaseSpec spec = check::random_case(42, 2, /*quick=*/true);
  spec.eco_torrents = 3;
  spec.eco_initial_sessions = 10;
  spec.eco_arrival_rate = 1.0;
  spec.rounds = std::max<std::uint32_t>(spec.rounds, 10);
  const check::CaseResult result = check::run_case(spec);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_GT(result.checks_run, 0u);
  EXPECT_NE(result.fingerprint, 0u);
}

// --- config validation -----------------------------------------------------

TEST(EcosystemConfigValidate, RejectsBadParameters) {
  EcosystemConfig config = small_config();
  config.num_torrents = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_config();
  config.zipf_s = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_config();
  config.max_wants = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_config();
  config.takedowns.push_back({/*round=*/0, /*fraction=*/0.5, /*torrent=*/-1});
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_config();
  config.takedowns.push_back({/*round=*/5, /*fraction=*/1.5, /*torrent=*/-1});
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_config();
  config.takedowns.push_back({/*round=*/5, /*fraction=*/0.5, /*torrent=*/99});
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace mpbt::eco
