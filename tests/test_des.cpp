#include <gtest/gtest.h>

#include <vector>

#include "des/engine.hpp"
#include "des/event_queue.hpp"

namespace mpbt::des {
namespace {

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.push(1.0, [&] { order.push_back(3); });
  while (!q.empty()) {
    q.pop().second();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TimeOrdering) {
  EventQueue q;
  std::vector<double> times;
  q.push(3.0, [&] { times.push_back(3.0); });
  q.push(1.0, [&] { times.push_back(1.0); });
  q.push(2.0, [&] { times.push_back(2.0); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
    EXPECT_EQ(times.back(), t);
  }
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { ++fired; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  while (!q.empty()) {
    q.pop().second();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelledEventsSkippedByNextTime) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  q.push(5.0, [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.active());
  EXPECT_NO_THROW(h.cancel());
}

TEST(EventQueue, EmptyPopThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::invalid_argument);
  EXPECT_THROW(q.next_time(), std::invalid_argument);
  EXPECT_THROW(q.push(1.0, EventCallback{}), std::invalid_argument);
}

TEST(Engine, AdvancesTimeMonotonically) {
  Engine e;
  std::vector<double> seen;
  e.schedule_at(2.0, [&] { seen.push_back(e.now()); });
  e.schedule_at(1.0, [&] { seen.push_back(e.now()); });
  e.schedule_in(3.0, [&] { seen.push_back(e.now()); });
  e.run();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(e.events_executed(), 3u);
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, SchedulingInThePastRejected) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_EQ(e.now(), 5.0);
  EXPECT_THROW(e.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(3.0, [&] { ++fired; });
  const auto n = e.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(e.has_pending());
  e.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(e.has_pending());
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      e.schedule_in(1.0, tick);
    }
  };
  e.schedule_at(0.0, tick);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 4.0);
}

TEST(Engine, RunWithEventCap) {
  Engine e;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    e.schedule_in(1.0, tick);  // infinite chain
  };
  e.schedule_at(0.0, tick);
  const auto executed = e.run(10);
  EXPECT_EQ(executed, 10u);
  EXPECT_EQ(count, 10);
}

TEST(Engine, StepReturnsFalseWhenDrained) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

}  // namespace
}  // namespace mpbt::des
