#include "exp/seed_stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "numeric/rng.hpp"

namespace mpbt::exp {
namespace {

TEST(SeedStream, MatchesSplitMix64ReferenceOutputs) {
  // derive_seed(base, i) is the (i+1)-th output of SplitMix64 seeded with
  // `base`; the first three outputs for seed 0 are published test vectors.
  EXPECT_EQ(derive_seed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(derive_seed(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(derive_seed(0, 2), 0x06c45d188009454fULL);
}

TEST(SeedStream, DeterministicAndIndexSensitive) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  EXPECT_NE(derive_seed(42, 7), derive_seed(42, 8));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

TEST(SeedStream, NoCollisionsOverAGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      seen.insert(derive_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 1000u);
}

TEST(SeedStream, TwoLevelFormComposes) {
  EXPECT_EQ(derive_seed(42, 3, 5), derive_seed(derive_seed(42, 3), 5));
}

TEST(SeedStream, StreamClassMatchesFreeFunctions) {
  const SeedStream stream(42);
  EXPECT_EQ(stream.at(9), derive_seed(42, 9));
  EXPECT_EQ(stream.substream(3).at(5), derive_seed(42, 3, 5));
}

TEST(SeedStream, RepetitionSeedsStableUnderGridGrowth) {
  // Point 2's repetition seeds must not change when the grid gains points.
  const SeedStream small_grid(42);
  const SeedStream big_grid(42);
  EXPECT_EQ(small_grid.substream(2).at(0), big_grid.substream(2).at(0));
}

// --- determinism of a full sweep across worker counts ---------------------

// A cheap synthetic scenario: the record depends on (point, seed) only,
// through an actual Rng draw, like the real scenarios.
Scenario synthetic_scenario() {
  Scenario scenario;
  scenario.name = "synthetic";
  scenario.description = "test scenario";
  scenario.make_points = [](const SweepOptions&) {
    std::vector<ParamPoint> points;
    for (long long x = 0; x < 6; ++x) {
      ParamPoint point;
      point.set("x", x);
      points.push_back(std::move(point));
    }
    return points;
  };
  scenario.run = [](const ParamPoint& point, std::uint64_t seed, const SweepOptions&) {
    numeric::Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < 100; ++i) {
      sum += rng.uniform01();
    }
    Record record;
    record.set("value", sum * static_cast<double>(1 + point.get_int("x")));
    return record;
  };
  return scenario;
}

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(SweepDeterminism, OneThreadAndEightThreadsProduceIdenticalJsonl) {
  const Scenario scenario = synthetic_scenario();

  auto run_with_jobs = [&scenario](int jobs) {
    SweepOptions options;
    options.seed = 42;
    options.runs = 4;
    options.jobs = jobs;
    std::ostringstream out;
    JsonlSink sink(out);
    SweepRunner(options).run(scenario, &sink);
    return out.str();
  };

  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(8);
  // Completion order may differ; the sorted payloads must be byte-identical.
  EXPECT_EQ(sorted_lines(serial), sorted_lines(parallel));
  EXPECT_FALSE(serial.empty());
}

TEST(SweepDeterminism, RecordsReturnInTaskOrderForAnyJobCount) {
  const Scenario scenario = synthetic_scenario();
  auto records_with_jobs = [&scenario](int jobs) {
    SweepOptions options;
    options.seed = 7;
    options.runs = 3;
    options.jobs = jobs;
    return SweepRunner(options).run(scenario).records;
  };
  const auto serial = records_with_jobs(1);
  const auto parallel = records_with_jobs(8);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 6u * 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].fields.size(), parallel[i].fields.size());
    for (std::size_t f = 0; f < serial[i].fields.size(); ++f) {
      EXPECT_EQ(serial[i].fields[f].first, parallel[i].fields[f].first);
      EXPECT_EQ(format_value(serial[i].fields[f].second),
                format_value(parallel[i].fields[f].second));
    }
  }
}

TEST(SweepDeterminism, RunnerAnnotatesRecordsWithPointRepAndSeed) {
  const Scenario scenario = synthetic_scenario();
  SweepOptions options;
  options.seed = 42;
  options.runs = 2;
  options.jobs = 2;
  const SweepSummary summary = SweepRunner(options).run(scenario);
  ASSERT_EQ(summary.tasks, 12u);
  const Record& record = summary.records[3];  // point 1, rep 1
  ASSERT_NE(record.find("seed"), nullptr);
  EXPECT_EQ(std::get<std::string>(*record.find("seed")), std::to_string(derive_seed(42, 1, 1)));
  EXPECT_EQ(std::get<long long>(*record.find("point")), 1);
  EXPECT_EQ(std::get<long long>(*record.find("rep")), 1);
  EXPECT_EQ(std::get<long long>(*record.find("x")), 1);
}

TEST(ScenarioRegistry, BuiltinScenariosAreRegistered) {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  EXPECT_NE(registry.find("efficiency_vs_k"), nullptr);
  EXPECT_NE(registry.find("stability_vs_B"), nullptr);
  EXPECT_NE(registry.find("ensemble_transient"), nullptr);
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
  const auto all = registry.all();
  EXPECT_GE(all.size(), 3u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), [](const Scenario* a, const Scenario* b) {
    return a->name < b->name;
  }));
}

TEST(ScenarioRegistry, BuiltinGridsExpandAndShrinkUnderQuick) {
  const Scenario* stability = ScenarioRegistry::instance().find("stability_vs_B");
  ASSERT_NE(stability, nullptr);
  SweepOptions full;
  SweepOptions quick;
  quick.quick = true;
  EXPECT_GT(stability->make_points(full).size(), stability->make_points(quick).size());
}

}  // namespace
}  // namespace mpbt::exp
