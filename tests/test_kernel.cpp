#include "model/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "markov/absorbing.hpp"

namespace mpbt::model {
namespace {

ModelParams small_params() {
  ModelParams p;
  p.B = 8;
  p.k = 3;
  p.s = 5;
  p.p_init = 0.6;
  p.p_r = 0.7;
  p.p_n = 0.8;
  p.alpha = 0.3;
  p.gamma = 0.2;
  return p;
}

double pmf_sum(const std::vector<double>& pmf) {
  return std::accumulate(pmf.begin(), pmf.end(), 0.0);
}

TEST(TransitionKernel, NextBMatchesF) {
  const TransitionKernel kernel(small_params());
  // b = 0 -> first piece.
  EXPECT_EQ(kernel.next_b(0, 0), 1);
  EXPECT_EQ(kernel.next_b(3, 0), 1);
  // b >= 1 -> min(b + n, B).
  EXPECT_EQ(kernel.next_b(0, 1), 1);
  EXPECT_EQ(kernel.next_b(2, 3), 5);
  EXPECT_EQ(kernel.next_b(3, 7), 8);
  EXPECT_EQ(kernel.next_b(0, 8), 8);
  EXPECT_THROW(kernel.next_b(4, 0), std::out_of_range);
  EXPECT_THROW(kernel.next_b(0, 9), std::out_of_range);
}

TEST(TransitionKernel, StateIndexRoundTrip) {
  const TransitionKernel kernel(small_params());
  const auto& p = kernel.params();
  EXPECT_EQ(kernel.num_states(),
            static_cast<std::size_t>((p.k + 1) * (p.B + 1) * (p.s + 1)));
  for (int n = 0; n <= p.k; ++n) {
    for (int b = 0; b <= p.B; ++b) {
      for (int i = 0; i <= p.s; ++i) {
        const auto idx = kernel.index_of(n, b, i);
        ASSERT_LT(idx, kernel.num_states());
        const auto [n2, b2, i2] = kernel.state_of(idx);
        ASSERT_EQ(n2, n);
        ASSERT_EQ(b2, b);
        ASSERT_EQ(i2, i);
      }
    }
  }
  EXPECT_THROW(kernel.index_of(-1, 0, 0), std::out_of_range);
  EXPECT_THROW(kernel.state_of(kernel.num_states()), std::out_of_range);
}

TEST(TransitionKernel, PotentialPmfRowsSumToOne) {
  const TransitionKernel kernel(small_params());
  const auto& p = kernel.params();
  for (int n = 0; n <= p.k; ++n) {
    for (int b = 0; b <= p.B; ++b) {
      for (int i = 0; i <= p.s; ++i) {
        const auto pmf = kernel.potential_pmf(n, b, i);
        ASSERT_EQ(pmf.size(), static_cast<std::size_t>(p.s) + 1);
        ASSERT_NEAR(pmf_sum(pmf), 1.0, 1e-9) << "n=" << n << " b=" << b << " i=" << i;
      }
    }
  }
}

TEST(TransitionKernel, PotentialPmfMatchesEquation2Rows) {
  const auto params = small_params();
  const TransitionKernel kernel(params);
  // b + n = 0: X1 ~ Bin(s, p_init).
  const auto x1 = kernel.potential_pmf(0, 0, 0);
  EXPECT_NEAR(x1[0], std::pow(1.0 - params.p_init, params.s), 1e-9);
  // b + n = 1, i = 0: alpha row.
  const auto alpha_row = kernel.potential_pmf(0, 1, 0);
  EXPECT_NEAR(alpha_row[1], params.alpha, 1e-12);
  EXPECT_NEAR(alpha_row[0], 1.0 - params.alpha, 1e-12);
  // b + n > 1, i = 0: gamma row.
  const auto gamma_row = kernel.potential_pmf(0, 4, 0);
  EXPECT_NEAR(gamma_row[1], params.gamma, 1e-12);
  EXPECT_NEAR(gamma_row[0], 1.0 - params.gamma, 1e-12);
  // b = B: absorbed, i' = 0.
  const auto done = kernel.potential_pmf(0, params.B, 3);
  EXPECT_EQ(done[0], 1.0);
}

TEST(TransitionKernel, ConnectionPmfRowsSumToOne) {
  const TransitionKernel kernel(small_params());
  const auto& p = kernel.params();
  for (int n = 0; n <= p.k; ++n) {
    for (int b = 0; b <= p.B; ++b) {
      for (int i2 = 0; i2 <= p.s; ++i2) {
        const auto pmf = kernel.connection_pmf(n, b, i2);
        ASSERT_EQ(pmf.size(), static_cast<std::size_t>(p.k) + 1);
        ASSERT_NEAR(pmf_sum(pmf), 1.0, 1e-9) << "n=" << n << " b=" << b << " i'=" << i2;
      }
    }
  }
}

TEST(TransitionKernel, ConnectionPmfMatchesEquation3Rows) {
  const auto params = small_params();
  const TransitionKernel kernel(params);
  // b + n = 0: n' = 0.
  const auto join = kernel.connection_pmf(0, 0, 4);
  EXPECT_EQ(join[0], 1.0);
  // b = B: n' = 0.
  const auto done = kernel.connection_pmf(2, params.B, 4);
  EXPECT_EQ(done[0], 1.0);
  // i' = 0 and n = 2: only re-encounters survive, Y1 ~ Bin(2, p_r).
  const auto survivors = kernel.connection_pmf(2, 4, 0);
  EXPECT_NEAR(survivors[2], params.p_r * params.p_r, 1e-12);
  EXPECT_NEAR(survivors[0], (1 - params.p_r) * (1 - params.p_r), 1e-12);
  EXPECT_EQ(survivors[3], 0.0);
  // n = 0, i' >= k: all new, Y2 ~ Bin(k, p_n).
  const auto fresh = kernel.connection_pmf(0, 4, params.s);
  EXPECT_NEAR(fresh[params.k], std::pow(params.p_n, params.k), 1e-12);
}

TEST(TransitionKernel, ConnectionCountNeverExceedsBound) {
  // n' <= max(n, min(i', k)) always.
  const TransitionKernel kernel(small_params());
  const auto& p = kernel.params();
  for (int n = 0; n <= p.k; ++n) {
    for (int i2 = 0; i2 <= p.s; ++i2) {
      const auto pmf = kernel.connection_pmf(n, 4, i2);
      const int bound = std::max(n, std::min(i2, p.k));
      for (int n2 = bound + 1; n2 <= p.k; ++n2) {
        ASSERT_EQ(pmf[static_cast<std::size_t>(n2)], 0.0)
            << "n=" << n << " i'=" << i2 << " n'=" << n2;
      }
    }
  }
}

TEST(TransitionKernel, BuildChainRowsSumToOne) {
  const TransitionKernel kernel(small_params());
  const markov::SparseChain chain = kernel.build_chain();
  EXPECT_EQ(chain.num_states(), kernel.num_states());
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    ASSERT_NEAR(chain.row_sum(s), 1.0, 1e-9) << "state " << s;
  }
}

TEST(TransitionKernel, AbsorbingStateIsAbsorbing) {
  const TransitionKernel kernel(small_params());
  const markov::SparseChain chain = kernel.build_chain();
  EXPECT_TRUE(chain.is_absorbing(kernel.absorbing_state()));
}

TEST(TransitionKernel, AbsorptionCertainFromStart) {
  const TransitionKernel kernel(small_params());
  const markov::SparseChain chain = kernel.build_chain();
  const std::vector<double> h = markov::hitting_probability(chain, kernel.absorbing_state());
  EXPECT_NEAR(h[kernel.start_state()], 1.0, 1e-6);
}

TEST(TransitionKernel, ExpectedAbsorptionTimeFinite) {
  const TransitionKernel kernel(small_params());
  const markov::SparseChain chain = kernel.build_chain();
  const auto result = markov::expected_steps_to_absorption(chain);
  EXPECT_TRUE(result.converged);
  const double t = result.expected_steps[kernel.start_state()];
  EXPECT_GT(t, 2.0);          // at least bootstrap + a few trading rounds
  EXPECT_LT(t, 1000.0);       // and clearly finite
}

TEST(TransitionKernel, BuildChainGuardsHugeInstances) {
  ModelParams p;
  p.B = 500;
  p.k = 8;
  p.s = 120;
  const TransitionKernel kernel(p);
  EXPECT_THROW(kernel.build_chain(), std::invalid_argument);
}

struct KernelSweepCase {
  int B;
  int k;
  int s;
};

class KernelParamSweep : public ::testing::TestWithParam<KernelSweepCase> {};

TEST_P(KernelParamSweep, ChainIsStochasticAndAbsorbs) {
  const auto [B, k, s] = GetParam();
  ModelParams p;
  p.B = B;
  p.k = k;
  p.s = s;
  const TransitionKernel kernel(p);
  const markov::SparseChain chain = kernel.build_chain();
  for (std::size_t st = 0; st < chain.num_states(); ++st) {
    ASSERT_NEAR(chain.row_sum(st), 1.0, 1e-9);
  }
  const auto h = markov::hitting_probability(chain, kernel.absorbing_state());
  EXPECT_NEAR(h[kernel.start_state()], 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelParamSweep,
                         ::testing::Values(KernelSweepCase{1, 1, 1}, KernelSweepCase{2, 1, 2},
                                           KernelSweepCase{5, 2, 3}, KernelSweepCase{10, 4, 6},
                                           KernelSweepCase{15, 2, 10}));

}  // namespace
}  // namespace mpbt::model
