// Model calibration from swarm metrics (the Section 4 methodology).
#include <gtest/gtest.h>

#include "analysis/calibrate.hpp"
#include "model/download_model.hpp"

namespace mpbt::analysis {
namespace {

bt::SwarmConfig warm_config() {
  bt::SwarmConfig config;
  config.num_pieces = 50;
  config.max_connections = 4;
  config.peer_set_size = 20;
  config.arrival_rate = 2.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seed = 15;
  bt::InitialGroup warm;
  warm.count = 60;
  warm.piece_probs.assign(config.num_pieces, 0.35);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

TEST(Calibrate, CopiesStructuralParameters) {
  bt::Swarm swarm(warm_config());
  swarm.run_rounds(100);
  const model::ModelParams params = calibrate_model(swarm);
  EXPECT_EQ(params.B, 50);
  EXPECT_EQ(params.k, 4);
  EXPECT_EQ(params.s, 20);
}

TEST(Calibrate, MeasuredProbabilitiesAreValid) {
  bt::Swarm swarm(warm_config());
  swarm.run_rounds(100);
  model::ModelParams params = calibrate_model(swarm);
  EXPECT_NO_THROW(params.validate_and_normalize());
  for (double p : {params.p_r, params.p_n, params.p_init, params.alpha, params.gamma}) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // A warm trading swarm keeps connections alive most rounds.
  EXPECT_GT(params.p_r, 0.5);
  EXPECT_GT(params.p_n, 0.5);
}

TEST(Calibrate, OptionsPassThrough) {
  bt::Swarm swarm(warm_config());
  swarm.run_rounds(40);
  CalibrationOptions options;
  options.gamma = 0.42;
  options.w = 1.0;
  const model::ModelParams params = calibrate_model(swarm, options);
  EXPECT_DOUBLE_EQ(params.gamma, 0.42);
  // alpha = lambda * w * s / N, clamped to [0, 1].
  const double expected_alpha = std::min(
      1.0, 2.0 * 1.0 * 20.0 / static_cast<double>(swarm.population()));
  EXPECT_NEAR(params.alpha, expected_alpha, 1e-12);
}

TEST(Calibrate, FallbacksUsedOnFreshSwarm) {
  // A swarm that never ran has no observations; the fallbacks apply.
  bt::SwarmConfig config;
  config.num_pieces = 10;
  config.initial_seeds = 0;
  config.arrival_rate = 0.0;
  const bt::Swarm swarm(std::move(config));
  CalibrationOptions options;
  options.fallback_p_r = 0.33;
  options.fallback_p_n = 0.44;
  options.fallback_p_init = 0.55;
  const model::ModelParams params = calibrate_model(swarm, options);
  EXPECT_DOUBLE_EQ(params.p_r, 0.33);
  EXPECT_DOUBLE_EQ(params.p_n, 0.44);
  EXPECT_DOUBLE_EQ(params.p_init, 0.55);
}

TEST(Calibrate, CalibratedModelPredictsSimTimeline) {
  // End-to-end: the calibrated model's completion estimate lands within
  // 40% of the simulator's mean download time.
  bt::Swarm swarm(warm_config());
  swarm.run_rounds(150);
  ASSERT_GT(swarm.metrics().completed_count(), 30u);
  double sim_mean = 0.0;
  for (double t : swarm.metrics().download_times()) {
    sim_mean += t;
  }
  sim_mean /= static_cast<double>(swarm.metrics().completed_count());
  const model::ModelParams params = calibrate_model(swarm);
  const double model_mean = model::compute_evolution(params).expected_completion;
  EXPECT_LT(std::abs(model_mean - sim_mean) / sim_mean, 0.4);
}

}  // namespace
}  // namespace mpbt::analysis
