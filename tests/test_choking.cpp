// Rate-based choking (the BitTorrent choking algorithm of Section 2.1).
#include <gtest/gtest.h>

#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace mpbt::bt {
namespace {

SwarmConfig rate_config(std::uint64_t seed = 44) {
  SwarmConfig config;
  config.num_pieces = 80;
  config.max_connections = 4;
  config.peer_set_size = 25;
  config.arrival_rate = 2.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  config.choke_algorithm = ChokeAlgorithm::RateBased;
  config.seed = seed;
  config.arrival_piece_probs.assign(config.num_pieces, 0.2);
  return config;
}

TEST(Choking, ConfigValidation) {
  SwarmConfig config;
  config.optimistic_interval = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SwarmConfig{};
  config.rate_decay = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SwarmConfig{};
  config.rate_decay = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Choking, InvariantsHoldUnderRateBasedChoking) {
  Swarm swarm(rate_config());
  for (int r = 0; r < 70; ++r) {
    swarm.step();
    ASSERT_NO_THROW(swarm.check_invariants()) << "round " << r;
  }
}

TEST(Choking, DownloadsCompleteUnderRateBasedChoking) {
  Swarm swarm(rate_config());
  swarm.run_rounds(200);
  EXPECT_GT(swarm.metrics().completed_count(), 50u);
}

TEST(Choking, DeterministicForSeed) {
  Swarm a(rate_config());
  Swarm b(rate_config());
  a.run_rounds(60);
  b.run_rounds(60);
  EXPECT_EQ(a.piece_counts(), b.piece_counts());
  EXPECT_EQ(a.metrics().completed_count(), b.metrics().completed_count());
}

TEST(Choking, OptimisticTargetRotates) {
  Swarm swarm(rate_config());
  swarm.run_rounds(3);
  // Collect optimistic targets over several intervals for one long-lived
  // peer; rotation must change the target at least once.
  PeerId watched = kNoPeer;
  for (PeerId id : swarm.live_peers()) {
    const Peer& p = swarm.peer(id);
    if (p.is_leecher() && !p.pieces.none() && !p.potential.empty()) {
      watched = id;
      break;
    }
  }
  ASSERT_NE(watched, kNoPeer);
  std::set<PeerId> targets;
  for (int r = 0; r < 30 && swarm.is_live(watched); ++r) {
    swarm.step();
    if (swarm.is_live(watched)) {
      const PeerId t = swarm.peer(watched).optimistic_target;
      if (t != kNoPeer) {
        targets.insert(t);
      }
    }
  }
  EXPECT_GE(targets.size(), 2u);
}

TEST(Choking, RatesDecayWhenIdle) {
  Swarm swarm(rate_config());
  swarm.run_rounds(40);
  // All stored rates are bounded: with decay 0.5 and at most k pieces per
  // round from one neighbor, the geometric series caps at 2k.
  for (PeerId id : swarm.live_peers()) {
    for (const auto& [nb, rate] : swarm.peer(id).received_rate) {
      ASSERT_GE(rate, 0.0);
      ASSERT_LE(rate, 2.0 * swarm.config().max_connections);
    }
  }
}

TEST(Choking, RateBasedFavorsFastUploaders) {
  // With bandwidth classes, rate-based choking should cluster fast peers:
  // a fast peer's download time advantage grows vs random matching.
  auto class_gap = [](ChokeAlgorithm algorithm) {
    std::vector<double> slow;
    std::vector<double> fast;
    for (std::uint64_t seed : {44ULL, 88ULL, 132ULL}) {
      SwarmConfig config = rate_config(seed);
      config.choke_algorithm = algorithm;
      config.bandwidth_classes = {{0.5, 1}, {0.5, 4}};
      Swarm swarm(std::move(config));
      swarm.run_rounds(200);
      for (double t : swarm.metrics().download_times_for_class(0)) {
        slow.push_back(t);
      }
      for (double t : swarm.metrics().download_times_for_class(1)) {
        fast.push_back(t);
      }
    }
    if (slow.empty() || fast.empty()) {
      return 0.0;
    }
    return numeric::summarize(slow).mean / numeric::summarize(fast).mean;
  };
  const double gap_rate_based = class_gap(ChokeAlgorithm::RateBased);
  const double gap_random = class_gap(ChokeAlgorithm::RandomMatching);
  ASSERT_GT(gap_random, 0.0);
  ASSERT_GT(gap_rate_based, 0.0);
  // Both couple download to upload; rate-based must not weaken the
  // coupling (it is the mechanism designed to enforce it).
  EXPECT_GE(gap_rate_based, gap_random * 0.9);
  EXPECT_GT(gap_rate_based, 1.1);
}

}  // namespace
}  // namespace mpbt::bt
