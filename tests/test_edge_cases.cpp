// Edge-case coverage: degenerate sizes and empty regimes across modules.
#include <gtest/gtest.h>

#include "bt/swarm.hpp"
#include "markov/absorbing.hpp"
#include "model/download_model.hpp"
#include "numeric/logbinom.hpp"

namespace mpbt {
namespace {

TEST(EdgeCase, SinglePieceSwarm) {
  bt::SwarmConfig config;
  config.num_pieces = 1;
  config.max_connections = 2;
  config.peer_set_size = 5;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 3;
  config.seed = 3;
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(40);
  swarm.check_invariants();
  // With B = 1, the bootstrap piece IS the whole file.
  EXPECT_GT(swarm.metrics().completed_count(), 5u);
  for (double t : swarm.metrics().download_times()) {
    EXPECT_GE(t, 1.0);
  }
}

TEST(EdgeCase, SinglePieceModel) {
  model::ModelParams params;
  params.B = 1;
  params.k = 1;
  params.s = 1;
  const model::EvolutionResult evo = model::compute_evolution(params);
  // One bootstrap transition completes the file.
  EXPECT_NEAR(evo.expected_completion, 1.0, 1e-9);
  EXPECT_NEAR(evo.absorbed_mass, 1.0, 1e-9);
}

TEST(EdgeCase, SwarmWithNoSeedsAndNoContentNeverProgresses) {
  bt::SwarmConfig config;
  config.num_pieces = 10;
  config.initial_seeds = 0;
  config.arrival_rate = 1.0;
  config.seed = 4;
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(30);
  swarm.check_invariants();
  EXPECT_EQ(swarm.metrics().completed_count(), 0u);
  for (std::uint32_t count : swarm.piece_counts()) {
    EXPECT_EQ(count, 0u);
  }
  // Entropy of an empty piece distribution is defined as 1 (no skew).
  EXPECT_EQ(swarm.entropy(), 1.0);
}

TEST(EdgeCase, ZeroArrivalSwarmDrains) {
  bt::SwarmConfig config;
  config.num_pieces = 15;
  config.max_connections = 4;
  config.peer_set_size = 20;
  config.arrival_rate = 0.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  // Without re-announce a peer whose whole neighborhood departs would be
  // stranded; periodic tracker contact reconnects it to the seed.
  config.reannounce_interval = 10;
  config.seed = 5;
  bt::InitialGroup warm;
  warm.count = 25;
  warm.piece_probs.assign(config.num_pieces, 0.3);
  config.initial_groups.push_back(std::move(warm));
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(150);
  EXPECT_EQ(swarm.num_leechers(), 0u);
  EXPECT_EQ(swarm.metrics().completed_count(), 25u);
}

TEST(EdgeCase, PeerSetLargerThanPopulation) {
  bt::SwarmConfig config;
  config.num_pieces = 10;
  config.peer_set_size = 100;  // far beyond the population
  config.arrival_rate = 0.5;
  config.initial_seeds = 1;
  config.seed = 6;
  bt::InitialGroup warm;
  warm.count = 5;
  warm.piece_probs.assign(config.num_pieces, 0.4);
  config.initial_groups.push_back(std::move(warm));
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(30);
  swarm.check_invariants();
  // Everyone simply knows everyone.
  for (bt::PeerId id : swarm.live_peers()) {
    EXPECT_LT(swarm.peer(id).neighbors.size(), swarm.population());
  }
}

TEST(EdgeCase, MaxConnectionsOne) {
  bt::SwarmConfig config;
  config.num_pieces = 20;
  config.max_connections = 1;
  config.peer_set_size = 10;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 2;
  config.seed = 7;
  bt::InitialGroup warm;
  warm.count = 30;
  warm.piece_probs.assign(config.num_pieces, 0.35);
  config.initial_groups.push_back(std::move(warm));
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(120);
  swarm.check_invariants();
  EXPECT_GT(swarm.metrics().completed_count(), 5u);
}

TEST(EdgeCase, ModelWithExtremeProbabilities) {
  for (double extreme : {0.0, 1.0}) {
    model::ModelParams params;
    params.B = 6;
    params.k = 2;
    params.s = 3;
    params.p_init = extreme;
    params.p_r = extreme;
    params.p_n = extreme;
    params.alpha = std::max(extreme, 0.05);  // keep bootstrap escapable
    params.gamma = std::max(extreme, 0.05);
    const model::TransitionKernel kernel(params);
    const markov::SparseChain chain = kernel.build_chain();
    for (std::size_t s = 0; s < chain.num_states(); ++s) {
      ASSERT_NEAR(chain.row_sum(s), 1.0, 1e-9);
    }
  }
}

TEST(EdgeCase, ModelAllZeroConnectivityStillAbsorbs) {
  // p_n = 0 means no connections ever form; progress comes only through
  // the alpha/gamma refresh... which cannot transfer without connections.
  // The chain must remain well-formed; absorption is then not guaranteed
  // within finite expected time, and compute_evolution reports the
  // unabsorbed mass honestly.
  model::ModelParams params;
  params.B = 4;
  params.k = 2;
  params.s = 3;
  params.p_init = 0.0;
  params.p_r = 0.0;
  params.p_n = 0.0;
  params.alpha = 0.5;
  params.gamma = 0.5;
  const model::EvolutionResult evo = model::compute_evolution(params, 500);
  EXPECT_LT(evo.absorbed_mass, 0.5);
  EXPECT_EQ(evo.steps_taken, 500u);
}

TEST(EdgeCase, BinomialDegenerateSizes) {
  EXPECT_EQ(numeric::binomial_pmf_vector(0, 0.5).size(), 1u);
  EXPECT_EQ(numeric::binomial_pmf_vector(0, 0.5)[0], 1.0);
  const auto conv = numeric::binomial_sum_pmf(0, 0.2, 0, 0.8);
  ASSERT_EQ(conv.size(), 1u);
  EXPECT_EQ(conv[0], 1.0);
}

TEST(EdgeCase, SwarmSurvivesPopulationCollapseAndRegrowth) {
  bt::SwarmConfig config;
  config.num_pieces = 12;
  config.max_connections = 3;
  config.peer_set_size = 8;
  config.arrival_rate = 0.3;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  config.seed = 8;
  bt::InitialGroup warm;
  warm.count = 15;
  warm.piece_probs.assign(config.num_pieces, 0.5);
  config.initial_groups.push_back(std::move(warm));
  bt::Swarm swarm(std::move(config));
  // The warm cohort drains quickly; thin arrivals rebuild the swarm.
  swarm.run_rounds(300);
  swarm.check_invariants();
  EXPECT_GT(swarm.metrics().completed_count(), 15u);
}

}  // namespace
}  // namespace mpbt
