// Property-based tests: invariants that must hold across randomized
// configurations and inputs, checked against reference implementations
// where one exists.
#include <gtest/gtest.h>

#include <set>

#include "bt/bitfield.hpp"
#include "bt/swarm.hpp"
#include "markov/absorbing.hpp"
#include "markov/sparse_chain.hpp"
#include "markov/trajectory.hpp"
#include "model/kernel.hpp"
#include "numeric/logbinom.hpp"
#include "numeric/rng.hpp"

namespace mpbt {
namespace {

// --- Bitfield vs std::set reference -----------------------------------------

TEST(Property, BitfieldMatchesSetReference) {
  numeric::Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 300));
    bt::Bitfield field(size);
    std::set<bt::PieceIndex> reference;
    for (int op = 0; op < 200; ++op) {
      const auto piece =
          static_cast<bt::PieceIndex>(rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
      if (rng.bernoulli(0.6)) {
        field.set(piece);
        reference.insert(piece);
      } else {
        field.reset(piece);
        reference.erase(piece);
      }
      ASSERT_EQ(field.count(), reference.size());
      ASSERT_EQ(field.test(piece), reference.count(piece) == 1);
    }
    const auto held = field.held_pieces();
    ASSERT_EQ(held.size(), reference.size());
    ASSERT_TRUE(std::equal(held.begin(), held.end(), reference.begin()));
    // held + missing partitions the index space.
    ASSERT_EQ(held.size() + field.missing_pieces().size(), size);
  }
}

TEST(Property, BitfieldSetOpsMatchReference) {
  numeric::Rng rng(72);
  for (int trial = 0; trial < 20; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 200));
    bt::Bitfield a(size);
    bt::Bitfield b(size);
    std::set<bt::PieceIndex> sa;
    std::set<bt::PieceIndex> sb;
    for (std::size_t p = 0; p < size; ++p) {
      if (rng.bernoulli(0.4)) {
        a.set(static_cast<bt::PieceIndex>(p));
        sa.insert(static_cast<bt::PieceIndex>(p));
      }
      if (rng.bernoulli(0.4)) {
        b.set(static_cast<bt::PieceIndex>(p));
        sb.insert(static_cast<bt::PieceIndex>(p));
      }
    }
    std::vector<bt::PieceIndex> expected_diff;
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(expected_diff));
    ASSERT_EQ(a.pieces_missing_from(b), expected_diff);
    ASSERT_EQ(a.has_piece_missing_from(b), !expected_diff.empty());
    std::vector<bt::PieceIndex> expected_inter;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(expected_inter));
    ASSERT_EQ(a.intersection_count(b), expected_inter.size());
  }
}

// --- RNG statistical sanity --------------------------------------------------

TEST(Property, RngUniformIntChiSquare) {
  // 10 buckets, 100k draws: chi-square with 9 dof; 99.9th percentile ~27.9.
  numeric::Rng rng(73);
  const int buckets = 10;
  const int draws = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform_int(0, buckets - 1)];
  }
  const double expected = static_cast<double>(draws) / buckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Property, RngBinomialMatchesPmf) {
  numeric::Rng rng(74);
  const int n = 12;
  const double p = 0.35;
  const int draws = 200000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.binomial(n, p)];
  }
  for (int k = 0; k <= n; ++k) {
    const double expected = numeric::binomial_pmf(n, k, p);
    const double observed = static_cast<double>(counts[k]) / draws;
    ASSERT_NEAR(observed, expected, 0.004) << "k=" << k;
  }
}

// --- Markov chain properties ---------------------------------------------------

markov::SparseChain random_absorbing_chain(numeric::Rng& rng, std::size_t states) {
  markov::SparseChain chain(states);
  // State states-1 is absorbing; every state can step toward it.
  for (std::size_t s = 0; s + 1 < states; ++s) {
    const int fanout = static_cast<int>(rng.uniform_int(1, 3));
    std::vector<double> weights(static_cast<std::size_t>(fanout) + 1);
    double total = 0.0;
    for (double& w : weights) {
      w = rng.uniform(0.05, 1.0);
      total += w;
    }
    // Last weight goes "forward" (toward absorption) to guarantee reachability.
    chain.add_transition(s, s + 1, weights.back() / total);
    for (int f = 0; f < fanout; ++f) {
      const auto target = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(states) - 1));
      chain.add_transition(s, target, weights[static_cast<std::size_t>(f)] / total);
    }
  }
  chain.add_transition(states - 1, states - 1, 1.0);
  chain.finalize(1e-6);
  return chain;
}

TEST(Property, RandomAbsorbingChainsConvergeAndAgreeWithMonteCarlo) {
  numeric::Rng rng(75);
  for (int trial = 0; trial < 5; ++trial) {
    const auto states = static_cast<std::size_t>(rng.uniform_int(5, 25));
    const markov::SparseChain chain = random_absorbing_chain(rng, states);
    const auto result = markov::expected_steps_to_absorption(chain);
    ASSERT_TRUE(result.converged);
    const double exact = result.expected_steps[0];
    ASSERT_GE(exact, 0.0);
    const auto mc = markov::estimate_absorption_time(chain, 0, rng, 3000);
    ASSERT_EQ(mc.absorbed_count, mc.sample_count);
    ASSERT_NEAR(mc.mean, exact, exact * 0.15 + 0.5) << "states=" << states;
  }
}

TEST(Property, DistributionSteppingPreservesMassOnRandomChains) {
  numeric::Rng rng(76);
  for (int trial = 0; trial < 5; ++trial) {
    const auto states = static_cast<std::size_t>(rng.uniform_int(4, 30));
    const markov::SparseChain chain = random_absorbing_chain(rng, states);
    std::vector<double> dist(states, 0.0);
    dist[0] = 1.0;
    for (int t = 0; t < 100; ++t) {
      dist = chain.step_distribution(dist);
      double total = 0.0;
      for (double v : dist) {
        ASSERT_GE(v, -1e-12);
        total += v;
      }
      ASSERT_NEAR(total, 1.0, 1e-9);
    }
  }
}

// --- Model kernel across random parameters ----------------------------------

TEST(Property, KernelRowsStochasticAcrossRandomParams) {
  numeric::Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    model::ModelParams params;
    params.B = static_cast<int>(rng.uniform_int(1, 12));
    params.k = static_cast<int>(rng.uniform_int(1, 4));
    params.s = static_cast<int>(rng.uniform_int(1, 8));
    params.p_init = rng.uniform01();
    params.p_r = rng.uniform01();
    params.p_n = rng.uniform01();
    params.alpha = rng.uniform01();
    params.gamma = rng.uniform01();
    params.seed_boost = rng.bernoulli(0.5) ? rng.uniform01() : 0.0;
    const model::TransitionKernel kernel(params);
    const markov::SparseChain chain = kernel.build_chain();
    for (std::size_t s = 0; s < chain.num_states(); ++s) {
      ASSERT_NEAR(chain.row_sum(s), 1.0, 1e-7)
          << "trial " << trial << " state " << s;
    }
  }
}

// --- Swarm invariants across random configurations ---------------------------

TEST(Property, SwarmInvariantsAcrossRandomConfigs) {
  numeric::Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    bt::SwarmConfig config;
    config.num_pieces = static_cast<std::uint32_t>(rng.uniform_int(1, 60));
    config.max_connections = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    config.peer_set_size = static_cast<std::uint32_t>(rng.uniform_int(1, 25));
    config.arrival_rate = rng.uniform(0.0, 3.0);
    config.initial_seeds = static_cast<std::uint32_t>(rng.uniform_int(0, 3));
    config.seed_capacity = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
    config.seeds_serve_all = rng.bernoulli(0.5);
    config.optimistic_unchoke_prob = rng.uniform01();
    config.connect_success_prob = rng.uniform01();
    config.handshake_delay = rng.bernoulli(0.5);
    config.shake.enabled = rng.bernoulli(0.3);
    config.seed_linger_rounds = rng.bernoulli(0.5) ? 0u : 5u;
    config.blocks_per_piece = rng.bernoulli(0.3) ? 4u : 1u;
    config.seed = static_cast<std::uint64_t>(trial) * 1000 + 5;
    if (rng.bernoulli(0.5)) {
      bt::InitialGroup group;
      group.count = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
      group.piece_probs.assign(config.num_pieces, rng.uniform(0.0, 0.8));
      config.initial_groups.push_back(std::move(group));
    }
    if (rng.bernoulli(0.3)) {
      config.arrival_piece_probs.assign(config.num_pieces, rng.uniform(0.0, 0.3));
    }
    if (rng.bernoulli(0.3)) {
      config.bandwidth_classes = {{0.5, 1}, {0.5, 4}};
    }
    bt::Swarm swarm(std::move(config));
    for (int r = 0; r < 40; ++r) {
      swarm.step();
      ASSERT_NO_THROW(swarm.check_invariants())
          << "trial " << trial << " round " << r;
    }
    // Entropy and efficiency stay in their ranges throughout.
    for (const auto& sample : swarm.metrics().entropy().samples()) {
      ASSERT_GE(sample.value, 0.0);
      ASSERT_LE(sample.value, 1.0);
    }
    for (const auto& sample : swarm.metrics().efficiency_trading().samples()) {
      ASSERT_GE(sample.value, 0.0);
      ASSERT_LE(sample.value, 1.0 + 1e-9);
    }
  }
}

TEST(Property, SwarmDownloadTimesArePositiveAndBounded) {
  numeric::Rng rng(79);
  for (int trial = 0; trial < 5; ++trial) {
    bt::SwarmConfig config;
    config.num_pieces = static_cast<std::uint32_t>(rng.uniform_int(5, 40));
    config.max_connections = 4;
    config.peer_set_size = 15;
    config.arrival_rate = 1.5;
    config.initial_seeds = 1;
    config.seed_capacity = 3;
    config.seed = static_cast<std::uint64_t>(trial) * 71 + 3;
    bt::InitialGroup warm;
    warm.count = 30;
    warm.piece_probs.assign(config.num_pieces, 0.3);
    config.initial_groups.push_back(std::move(warm));
    bt::Swarm swarm(std::move(config));
    const int rounds = 120;
    swarm.run_rounds(rounds);
    for (double t : swarm.metrics().download_times()) {
      ASSERT_GE(t, 1.0);
      ASSERT_LE(t, static_cast<double>(rounds) + 1.0);
    }
  }
}

}  // namespace
}  // namespace mpbt
