// Golden regression pins for the swarm simulator.
//
// Each case runs a fixed (config, seed) pair and folds the per-round
// metric tuple (population, completed, entropy, cumulative bytes) into a
// 64-bit FNV-1a fingerprint. The pinned values were generated from the
// monolithic pre-decomposition bt::Swarm, so any refactor of the round
// loop must reproduce the RNG draw order bit-for-bit to stay green.
//
// The three scenario-shaped configs mirror the committed baselines/
// scenarios (efficiency_vs_k, stability_vs_B, ensemble_transient); the
// two extra configs exercise the paths those scenarios skip (rate-based
// choking, peer-set shaking, linger, reannounce, aborts, block-granular
// transfer, super-seeding, bandwidth classes, the non-uniform tracker
// policies, and neighbor-set availability).
//
// To regenerate after an INTENTIONAL behavior change, run with
// MPBT_GOLDEN_REGEN=1: the test prints the updated table rows (and
// fails, so a stale pin cannot slip through by accident).
#include "bt/swarm.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstdio>

#include "stability/entropy.hpp"

namespace mpbt::bt {
namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Runs `rounds` rounds and fingerprints the per-round metric tuple.
std::uint64_t fingerprint(SwarmConfig config, std::uint64_t seed, Round rounds) {
  config.seed = seed;
  Swarm swarm(std::move(config));
  std::uint64_t hash = 14695981039346656037ULL;
  for (Round r = 0; r < rounds; ++r) {
    swarm.step();
    std::uint64_t bytes = 0;
    for (PeerId id : swarm.live_peers()) {
      bytes += swarm.peer(id).bytes_downloaded;
    }
    hash = fnv1a(hash, swarm.population());
    hash = fnv1a(hash, swarm.metrics().completed_count());
    hash = fnv1a(hash, std::bit_cast<std::uint64_t>(swarm.entropy()));
    hash = fnv1a(hash, bytes);
  }
  swarm.check_invariants();
  return hash;
}

// --- the three scenario-shaped configs (see src/exp/scenario.cpp) ---------

SwarmConfig efficiency_config() {
  SwarmConfig config;
  config.num_pieces = 100;
  config.max_connections = 4;
  config.peer_set_size = 40;
  config.arrival_rate = 3.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  const std::vector<double> ramp = stability::ramp_piece_probs(config.num_pieces, 0.75, 0.05);
  InitialGroup warm;
  warm.count = 100;
  warm.piece_probs = ramp;
  config.initial_groups.push_back(std::move(warm));
  config.arrival_piece_probs = ramp;
  return config;
}

SwarmConfig stability_config() {
  SwarmConfig config;
  config.num_pieces = 10;
  config.max_connections = 4;
  config.peer_set_size = 40;
  config.arrival_rate = 4.0;
  config.initial_seeds = 1;
  config.seed_capacity = 2;
  InitialGroup skewed;
  skewed.count = 150;
  skewed.piece_probs = stability::ramp_piece_probs(config.num_pieces, 0.9, 0.05);
  config.initial_groups.push_back(std::move(skewed));
  return config;
}

SwarmConfig ensemble_config() {
  SwarmConfig config;
  config.num_pieces = 40;
  config.max_connections = 4;
  config.peer_set_size = 20;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 6;
  config.seeds_serve_all = true;
  return config;
}

// --- the paths the scenarios skip -----------------------------------------

SwarmConfig rate_based_config() {
  SwarmConfig config;
  config.num_pieces = 30;
  config.max_connections = 4;
  config.peer_set_size = 15;
  config.arrival_rate = 1.5;
  config.initial_seeds = 1;
  config.seed_capacity = 3;
  config.choke_algorithm = ChokeAlgorithm::RateBased;
  config.tracker_policy = TrackerPolicy::BootstrapBias;
  config.availability_scope = AvailabilityScope::NeighborSet;
  config.seed_linger_rounds = 25;
  config.reannounce_interval = 10;
  config.abort_rate = 0.01;
  config.shake.enabled = true;
  config.shake.completion_fraction = 0.5;
  InitialGroup warm;
  warm.count = 60;
  warm.piece_probs.assign(config.num_pieces, 0.3);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

SwarmConfig blocks_super_config() {
  SwarmConfig config;
  config.num_pieces = 24;
  config.max_connections = 3;
  config.peer_set_size = 12;
  config.arrival_rate = 1.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  config.seed_mode = SwarmConfig::SeedMode::SuperSeed;
  config.blocks_per_piece = 4;
  config.piece_selection = PieceSelection::Random;
  config.tracker_policy = TrackerPolicy::StatusClustered;
  config.bandwidth_classes = {{0.5, 2}, {0.5, 4}};
  InitialGroup warm;
  warm.count = 40;
  warm.piece_probs.assign(config.num_pieces, 0.4);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

struct GoldenCase {
  const char* name;
  SwarmConfig (*make_config)();
  Round rounds;
  std::uint64_t seed;
  std::uint64_t expected;
};

// clang-format off
const GoldenCase kGolden[] = {
    {"efficiency", efficiency_config, 60, 42, 0xeada942f8613622dULL},
    {"efficiency", efficiency_config, 60, 7, 0x78765863d48aea8eULL},
    {"efficiency", efficiency_config, 60, 1234, 0x90e329894a4c8e17ULL},
    {"stability", stability_config, 80, 42, 0xafc3e645407157e8ULL},
    {"stability", stability_config, 80, 7, 0x48220e131a2e5e81ULL},
    {"stability", stability_config, 80, 1234, 0xae730cae0a07949bULL},
    {"ensemble", ensemble_config, 80, 42, 0xbf7bb74ddcbde714ULL},
    {"ensemble", ensemble_config, 80, 7, 0xed8dc81427c71936ULL},
    {"ensemble", ensemble_config, 80, 1234, 0xfb26a7228b1af1a9ULL},
    {"rate_based", rate_based_config, 70, 42, 0x2c0b906632af6c10ULL},
    {"rate_based", rate_based_config, 70, 7, 0x62d0360408f910afULL},
    {"rate_based", rate_based_config, 70, 1234, 0x13cea1521ff86f47ULL},
    {"blocks_super", blocks_super_config, 60, 42, 0xa10fa9372b8b4ae8ULL},
    {"blocks_super", blocks_super_config, 60, 7, 0xac777ac3692e231aULL},
    {"blocks_super", blocks_super_config, 60, 1234, 0x6216e4de1afb602aULL},
};
// clang-format on

TEST(SwarmGolden, FingerprintsMatchPinnedValues) {
  const bool regen = std::getenv("MPBT_GOLDEN_REGEN") != nullptr;
  for (const GoldenCase& c : kGolden) {
    const std::uint64_t actual = fingerprint(c.make_config(), c.seed, c.rounds);
    if (regen) {
      std::printf("    {\"%s\", %s_config, %u, %llu, 0x%llxULL},\n", c.name, c.name,
                  c.rounds, static_cast<unsigned long long>(c.seed),
                  static_cast<unsigned long long>(actual));
      EXPECT_EQ(actual, c.expected) << c.name << " seed=" << c.seed << " (regen mode)";
      continue;
    }
    EXPECT_EQ(actual, c.expected) << c.name << " seed=" << c.seed;
  }
}

}  // namespace
}  // namespace mpbt::bt
