#include "numeric/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpbt::numeric {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i * 0.37) * 10 + i * 0.01;
    all.add(v);
    (i < 40 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_NEAR(target.mean(), 1.5, 1e-12);
}

TEST(QuantileSorted, Interpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(quantile_sorted(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile_sorted(v, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(quantile_sorted(v, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(quantile_sorted(v, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(QuantileSorted, Validation) {
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, 1.5), std::invalid_argument);
  EXPECT_EQ(quantile_sorted({7.0}, 0.9), 7.0);
}

TEST(Summarize, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicSample) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) {
    sample.push_back(static_cast<double>(i));
  }
  const Summary s = summarize(sample);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-12);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_GT(s.p95, 90.0);
}

TEST(PearsonCorrelation, PerfectCorrelations) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ZeroVarianceGivesZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> flat{5, 5, 5};
  EXPECT_EQ(pearson_correlation(x, flat), 0.0);
}

TEST(PearsonCorrelation, Validation) {
  EXPECT_THROW(pearson_correlation({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(pearson_correlation({1.0, 2.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mpbt::numeric
