// PeerStore: dense id assignment, O(1) liveness, arrival-order live
// iteration, hole-then-sweep departure, and post-departure record
// persistence (ids are never reused).
#include "bt/peer_store.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mpbt::bt {
namespace {

TEST(PeerStore, IdsAreDenseAndSequential) {
  PeerStore store;
  for (PeerId expected = 0; expected < 5; ++expected) {
    EXPECT_EQ(store.create(/*num_pieces=*/8, /*joined=*/expected), expected);
  }
  EXPECT_EQ(store.size(), 5u);
  for (PeerId id = 0; id < 5; ++id) {
    EXPECT_TRUE(store.exists(id));
    EXPECT_TRUE(store.is_live(id));
    EXPECT_EQ(store.get(id).id, id);
    EXPECT_EQ(store.get(id).joined, id);
  }
  EXPECT_FALSE(store.exists(5));
  EXPECT_FALSE(store.is_live(5));
}

TEST(PeerStore, LiveListIsArrivalOrder) {
  PeerStore store;
  for (int i = 0; i < 4; ++i) {
    store.create(8, 0);
  }
  EXPECT_EQ(store.live(), (std::vector<PeerId>{0, 1, 2, 3}));
}

TEST(PeerStore, DepartureFlipsLivenessImmediatelyButHolesUntilSweep) {
  PeerStore store;
  for (int i = 0; i < 4; ++i) {
    store.create(8, 0);
  }
  store.mark_departed(1);
  // Liveness is O(1)-visible right away...
  EXPECT_FALSE(store.is_live(1));
  EXPECT_TRUE(store.exists(1));
  // ...but the live list keeps the hole until the end-of-round sweep.
  EXPECT_EQ(store.live(), (std::vector<PeerId>{0, 1, 2, 3}));
  store.sweep_departed();
  EXPECT_EQ(store.live(), (std::vector<PeerId>{0, 2, 3}));
  EXPECT_FALSE(store.is_live(1));
  EXPECT_TRUE(store.is_live(0));
  EXPECT_TRUE(store.is_live(2));
  EXPECT_TRUE(store.is_live(3));
}

TEST(PeerStore, SweepPreservesArrivalOrderAcrossManyDepartures) {
  PeerStore store;
  for (int i = 0; i < 8; ++i) {
    store.create(8, 0);
  }
  store.mark_departed(0);
  store.mark_departed(3);
  store.mark_departed(7);
  store.sweep_departed();
  EXPECT_EQ(store.live(), (std::vector<PeerId>{1, 2, 4, 5, 6}));
  // A second sweep with no departures is a no-op.
  store.sweep_departed();
  EXPECT_EQ(store.live(), (std::vector<PeerId>{1, 2, 4, 5, 6}));
}

TEST(PeerStore, IdsAreNeverReused) {
  PeerStore store;
  store.create(8, 0);
  store.create(8, 0);
  store.mark_departed(0);
  store.mark_departed(1);
  store.sweep_departed();
  // New arrivals continue the dense sequence; departed slots persist.
  EXPECT_EQ(store.create(8, 5), 2u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.live(), (std::vector<PeerId>{2}));
  EXPECT_TRUE(store.exists(0));
  EXPECT_FALSE(store.is_live(0));
}

TEST(PeerStore, DepartedRecordStaysInspectable) {
  PeerStore store;
  const PeerId id = store.create(/*num_pieces=*/8, /*joined=*/3);
  store.get(id).pieces.set(2);
  store.get(id).bytes_downloaded = 42;
  store.mark_departed(id);
  store.sweep_departed();
  const PeerStore& cstore = store;
  EXPECT_TRUE(cstore.get(id).pieces.test(2));
  EXPECT_EQ(cstore.get(id).bytes_downloaded, 42u);
  EXPECT_EQ(cstore.get(id).joined, 3u);
}

TEST(PeerStore, CheckedThrowsOnUnknownIdOnly) {
  PeerStore store;
  store.create(8, 0);
  EXPECT_NO_THROW(store.checked(0));
  EXPECT_THROW(store.checked(1), std::out_of_range);
  const PeerStore& cstore = store;
  EXPECT_NO_THROW(cstore.checked(0));
  EXPECT_THROW(cstore.checked(1), std::out_of_range);
  // Departed ids still resolve through checked(): the record exists.
  store.mark_departed(0);
  EXPECT_NO_THROW(store.checked(0));
}

TEST(PeerStore, SurvivesSlotReallocation) {
  PeerStore store;
  // Force several reallocations of the slot vector; ids and records must
  // remain stable (phases re-fetch references after create()).
  for (int i = 0; i < 1000; ++i) {
    const PeerId id = store.create(64, static_cast<Round>(i));
    store.get(id).pieces.set(static_cast<PieceIndex>(i % 64));
  }
  for (PeerId id = 0; id < 1000; ++id) {
    EXPECT_EQ(store.get(id).id, id);
    EXPECT_TRUE(store.get(id).pieces.test(static_cast<PieceIndex>(id % 64)));
  }
  EXPECT_EQ(store.live().size(), 1000u);
}


TEST(PeerStore, ReservePreservesRecordsAndReferences) {
  PeerStore store;
  const PeerId first = store.create(16, 0);
  store.get(first).pieces.set(3);
  store.reserve(2000);
  // Existing records survive the capacity bump.
  EXPECT_EQ(store.get(first).id, first);
  EXPECT_TRUE(store.get(first).pieces.test(3));
  // With capacity pre-sized, a burst of creates must not invalidate a
  // reference taken before the burst (no reallocation occurs).
  const Peer& pinned = store.get(first);
  for (int i = 1; i < 2000; ++i) {
    store.create(16, 0);
  }
  EXPECT_EQ(&pinned, &store.get(first));
  EXPECT_EQ(store.live().size(), 2000u);
}

}  // namespace
}  // namespace mpbt::bt
