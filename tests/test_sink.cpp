#include "exp/sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "exp/thread_pool.hpp"

namespace mpbt::exp {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(Record, SetAppendsAndOverwritesInPlace) {
  Record record;
  record.set("a", 1LL);
  record.set("b", 2.5);
  record.set("a", 3LL);  // overwrite keeps position
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0].first, "a");
  EXPECT_EQ(std::get<long long>(record.fields[0].second), 3);
  ASSERT_NE(record.find("b"), nullptr);
  EXPECT_EQ(record.find("missing"), nullptr);
}

TEST(FormatValue, CoversAllAlternatives) {
  EXPECT_EQ(format_value(Value{std::string("hi")}), "hi");
  EXPECT_EQ(format_value(Value{42LL}), "42");
  EXPECT_EQ(format_value(Value{true}), "true");
  EXPECT_EQ(format_value(Value{false}), "false");
  EXPECT_EQ(format_value(Value{0.5}), "0.5");
}

TEST(FormatValue, DoublesRoundTripExactly) {
  for (const double d : {0.1, 1.0 / 3.0, 12345.678901234567, 1e-300, -2.5e17}) {
    const std::string text = format_value(Value{d});
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), d) << text;
  }
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonlSink, WritesOneWellFormedObjectPerRecord) {
  std::ostringstream out;
  JsonlSink sink(out);
  Record record;
  record.set("name", std::string("k=3"));
  record.set("k", 3LL);
  record.set("eta", 0.5);
  record.set("ok", true);
  sink.write(record);
  EXPECT_EQ(out.str(), "{\"name\":\"k=3\",\"k\":3,\"eta\":0.5,\"ok\":true}\n");
}

TEST(JsonlSink, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonlSink sink(out);
  Record record;
  record.set("nan", std::nan(""));
  record.set("inf", std::numeric_limits<double>::infinity());
  sink.write(record);
  EXPECT_EQ(out.str(), "{\"nan\":null,\"inf\":null}\n");
}

TEST(JsonlSink, ConcurrentWritesNeverInterleaveMidLine) {
  std::ostringstream out;
  JsonlSink sink(out);
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 200;
  {
    ThreadPool pool(kWriters);
    parallel_for_each(pool, kWriters, [&sink](std::size_t writer) {
      for (int i = 0; i < kPerWriter; ++i) {
        Record record;
        record.set("writer", static_cast<long long>(writer));
        record.set("i", static_cast<long long>(i));
        record.set("payload", std::string(64, 'x'));
        sink.write(record);
      }
    });
  }
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  for (const std::string& line : lines) {
    // Every line must be one complete record: starts '{', ends '}', and
    // contains the full payload exactly once.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"payload\":\"" + std::string(64, 'x') + "\""), std::string::npos);
  }
}

TEST(CsvSink, HeaderOnceThenRows) {
  std::ostringstream out;
  CsvSink sink(out);
  Record record;
  record.set("k", 1LL);
  record.set("eta", 0.25);
  sink.write(record);
  record.set("k", 2LL);
  record.set("eta", 0.5);
  sink.write(record);
  EXPECT_EQ(out.str(), "k,eta\n1,0.25\n2,0.5\n");
}

TEST(CsvSink, QuotesFieldsWithCommasAndQuotes) {
  std::ostringstream out;
  CsvSink sink(out);
  Record record;
  record.set("label", std::string("a,b \"c\""));
  sink.write(record);
  EXPECT_EQ(out.str(), "label\n\"a,b \"\"c\"\"\"\n");
}

TEST(CsvSink, ConcurrentWritesKeepEveryRowComplete) {
  std::ostringstream out;
  CsvSink sink(out);
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 200;
  {
    ThreadPool pool(kWriters);
    parallel_for_each(pool, kWriters, [&sink](std::size_t writer) {
      for (int i = 0; i < kPerWriter; ++i) {
        Record record;
        record.set("writer", static_cast<long long>(writer));
        record.set("i", static_cast<long long>(i));
        sink.write(record);
      }
    });
  }
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u + kWriters * kPerWriter);
  EXPECT_EQ(lines.front(), "writer,i");
  int per_writer_counts[kWriters] = {};
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto comma = lines[i].find(',');
    ASSERT_NE(comma, std::string::npos) << lines[i];
    const int writer = std::stoi(lines[i].substr(0, comma));
    ASSERT_GE(writer, 0);
    ASSERT_LT(writer, kWriters);
    ++per_writer_counts[writer];
  }
  for (const int count : per_writer_counts) {
    EXPECT_EQ(count, kPerWriter);
  }
}

TEST(ProgressReporter, CountsAndReportsCompletion) {
  std::ostringstream err;
  ProgressReporter progress(4, &err, "test");
  for (int i = 0; i < 4; ++i) {
    progress.task_done();
  }
  progress.finish();
  EXPECT_EQ(progress.completed(), 4u);
  EXPECT_NE(err.str().find("[test] 4/4 (100%)"), std::string::npos);
  EXPECT_NE(err.str().find("done: 4 tasks"), std::string::npos);
}

TEST(ProgressReporter, NullStreamIsSilentAndSafe) {
  ProgressReporter progress(2, nullptr);
  progress.task_done();
  progress.task_done();
  progress.finish();
  EXPECT_EQ(progress.completed(), 2u);
}

TEST(ProgressReporter, ThreadSafeUnderConcurrentCompletion) {
  std::ostringstream err;
  ProgressReporter progress(1000, &err);
  {
    ThreadPool pool(8);
    parallel_for_each(pool, 1000, [&progress](std::size_t) { progress.task_done(); });
  }
  EXPECT_EQ(progress.completed(), 1000u);
  for (const std::string& line : lines_of(err.str())) {
    EXPECT_EQ(line.rfind("[sweep] ", 0), 0u) << "interleaved line: " << line;
  }
}

}  // namespace
}  // namespace mpbt::exp
