#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mpbt::exp {
namespace {

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitVoidTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit([&ran]() { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, DefaultJobsIsPositive) { EXPECT_GE(ThreadPool::default_jobs(), 1u); }

TEST(ThreadPool, ExceptionPropagatesWithTypeAndMessage) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  try {
    future.get();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom");
  }
}

TEST(ThreadPool, WorkerSurvivesTaskException) {
  ThreadPool pool(1);
  auto bad = pool.submit([]() { throw std::runtime_error("first"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The single worker must still be alive to run this.
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&completed]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++completed;
      });
    }
    // Destructor must run every already-submitted task before joining.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, ManyTasksAllExecuteExactlyOnce) {
  ThreadPool pool(8);
  constexpr int kTasks = 2000;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&hits, i]() { ++hits[static_cast<std::size_t>(i)]; }));
  }
  for (auto& future : futures) {
    future.get();
  }
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ParallelForEach, CoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 512;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_each(pool, kCount, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ParallelForEach, ZeroCountIsANoop) {
  ThreadPool pool(2);
  parallel_for_each(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForEach, RethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  auto run = [&pool]() {
    parallel_for_each(pool, 16, [](std::size_t i) {
      if (i == 3 || i == 11) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
  };
  try {
    run();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 3");
  }
}

TEST(ParallelForEach, RemainingTasksRunDespiteFailure) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_for_each(pool, 64,
                                 [&completed](std::size_t i) {
                                   if (i == 0) {
                                     throw std::runtime_error("early");
                                   }
                                   ++completed;
                                 }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 63);
}

TEST(ParallelForEach, DeterministicSumRegardlessOfWorkers) {
  auto compute = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> values(256);
    parallel_for_each(pool, values.size(), [&values](std::size_t i) {
      values[i] = static_cast<double>(i) * 1.0000001;
    });
    return std::accumulate(values.begin(), values.end(), 0.0);
  };
  EXPECT_EQ(compute(1), compute(8));
}

}  // namespace
}  // namespace mpbt::exp
