#include "efficiency/balance.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mpbt::efficiency {
namespace {

TEST(EfficiencyParams, Validation) {
  EfficiencyParams p;
  EXPECT_NO_THROW(p.validate());
  p.k = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = EfficiencyParams{};
  p.p_r = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = EfficiencyParams{};
  p.N = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(EfficiencySolver, FailureWeightsAreBinomial) {
  EfficiencyParams p;
  p.k = 4;
  p.p_r = 0.7;
  const EfficiencySolver solver(p);
  // w^i_l = C(i, l) (1 - p_r)^l p_r^(i - l).
  EXPECT_NEAR(solver.failure_weight(2, 0), 0.49, 1e-12);
  EXPECT_NEAR(solver.failure_weight(2, 1), 2 * 0.3 * 0.7, 1e-12);
  EXPECT_NEAR(solver.failure_weight(2, 2), 0.09, 1e-12);
  double total = 0.0;
  for (int l = 0; l <= 4; ++l) {
    total += solver.failure_weight(4, l);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_THROW(solver.failure_weight(5, 0), std::out_of_range);
  EXPECT_THROW(solver.failure_weight(2, 3), std::out_of_range);
}

TEST(EfficiencySolver, DownwardSweepConservesMass) {
  EfficiencyParams p;
  p.k = 5;
  p.p_r = 0.6;
  const EfficiencySolver solver(p);
  std::vector<double> x{0.1, 0.1, 0.2, 0.2, 0.2, 0.2};
  solver.apply_downward(x);
  EXPECT_NEAR(std::accumulate(x.begin(), x.end(), 0.0), 1.0, 1e-12);
  for (double v : x) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(EfficiencySolver, DownwardSweepOnlyMovesMassDown) {
  EfficiencyParams p;
  p.k = 3;
  p.p_r = 0.5;
  const EfficiencySolver solver(p);
  // All mass in the top class: after one sweep the mean must drop.
  std::vector<double> x{0.0, 0.0, 0.0, 1.0};
  const double eta_before = solver.efficiency(x);
  solver.apply_downward(x);
  EXPECT_LT(solver.efficiency(x), eta_before);
  // With p_r = 1 nothing fails.
  EfficiencyParams stable = p;
  stable.p_r = 1.0;
  const EfficiencySolver stable_solver(stable);
  std::vector<double> y{0.0, 0.0, 0.0, 1.0};
  stable_solver.apply_downward(y);
  EXPECT_NEAR(y[3], 1.0, 1e-12);
}

TEST(EfficiencySolver, UpwardSweepConservesMassAndPromotes) {
  EfficiencyParams p;
  p.k = 3;
  p.p_r = 0.7;
  const EfficiencySolver solver(p);
  std::vector<double> x{1.0, 0.0, 0.0, 0.0};
  const double eta_before = solver.efficiency(x);
  solver.apply_upward(x);
  EXPECT_NEAR(std::accumulate(x.begin(), x.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(solver.efficiency(x), eta_before);
  for (double v : x) {
    EXPECT_GE(v, -1e-12);
  }
}

TEST(EfficiencySolver, SolveConvergesToDistribution) {
  EfficiencyParams p;
  p.k = 7;
  p.p_r = 0.7;
  const EfficiencySolver solver(p);
  const EfficiencyResult r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(std::accumulate(r.x.begin(), r.x.end(), 0.0), 1.0, 1e-9);
  EXPECT_GE(r.eta, 0.0);
  EXPECT_LE(r.eta, 1.0);
  for (double v : r.x) {
    EXPECT_GE(v, -1e-12);
  }
}

TEST(EfficiencySolver, EtaIncreasesWithPr) {
  double prev = -1.0;
  for (double p_r : {0.2, 0.5, 0.8, 0.95}) {
    EfficiencyParams p;
    p.k = 4;
    p.p_r = p_r;
    const EfficiencyResult r = EfficiencySolver(p).solve();
    EXPECT_GT(r.eta, prev) << "p_r=" << p_r;
    prev = r.eta;
  }
}

TEST(EfficiencySolver, PaperHeadline_EtaJumpsFromK1ToK2ThenSaturates) {
  // Section 5 / Fig. (a): efficiency rises sharply from k = 1 to k = 2 and
  // gains little beyond. The paper's own explanation of the jump is that
  // the connection-survival probability p_r is *endogenously* lower at
  // k = 1 (a sole connection exhausts its exchangeable pieces and dies;
  // extra connections replenish novelty). Feed the solver the survival
  // probabilities the swarm simulator measures per k (~0.91 at k = 1,
  // ~0.94 at k = 2, ~0.96 beyond — see the fig3a bench).
  auto p_r_for_k = [](int k) { return k == 1 ? 0.91 : (k == 2 ? 0.94 : 0.96); };
  std::vector<double> eta;
  for (int k = 1; k <= 8; ++k) {
    EfficiencyParams p;
    p.k = k;
    p.p_r = p_r_for_k(k);
    eta.push_back(EfficiencySolver(p).solve().eta);
  }
  EXPECT_GT(eta[1], eta[0]);  // k=2 clearly above k=1
  EXPECT_GT(eta[1] - eta[0], 0.02);
  for (std::size_t i = 2; i < eta.size(); ++i) {
    // Beyond k=2 the incremental change is small relative to the jump.
    EXPECT_LT(std::abs(eta[i] - eta[i - 1]), (eta[1] - eta[0]) + 0.02) << "k=" << i + 1;
  }
  // All values are high under healthy re-encounter probabilities.
  for (double e : eta) {
    EXPECT_GT(e, 0.8);
  }
}

TEST(EfficiencySolver, EquilibriumIsFixedPointOfSweeps) {
  EfficiencyParams p;
  p.k = 5;
  p.p_r = 0.75;
  const EfficiencySolver solver(p);
  EfficiencyResult r = solver.solve();
  std::vector<double> x = r.x;
  solver.apply_downward(x);
  solver.apply_upward(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], r.x[i], 1e-6) << "class " << i;
  }
}

class EfficiencyKSweep : public ::testing::TestWithParam<int> {};

TEST_P(EfficiencyKSweep, DistributionValidAcrossK) {
  EfficiencyParams p;
  p.k = GetParam();
  p.p_r = 0.65;
  const EfficiencyResult r = EfficiencySolver(p).solve();
  EXPECT_TRUE(r.converged);
  double total = 0.0;
  for (double v : r.x) {
    EXPECT_GE(v, -1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(r.eta, 0.0);
  EXPECT_LE(r.eta, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EfficiencyKSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace mpbt::efficiency
