// Tests for the src/check invariant suite, fuzzer and shrinker.
//
// The suite-level contract under test: clean swarms run invariant-clean
// with the observer attached AND the observer never perturbs results
// (golden fingerprints match detached runs); every injectable fault is
// caught as its designed invariant with a self-reproducing message;
// case specs survive a JSON round-trip; fuzz campaigns are bit-identical
// across worker counts; and the shrinker reduces a failing case to a
// minimal reproducer that replays to the same violation.
#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "bt/fault.hpp"
#include "bt/swarm.hpp"
#include "check/case_spec.hpp"
#include "check/fuzzer.hpp"
#include "check/invariants.hpp"
#include "check/shrinker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"

namespace mpbt::check {
namespace {

bt::SwarmConfig small_config() {
  bt::SwarmConfig config;
  config.num_pieces = 12;
  config.max_connections = 3;
  config.peer_set_size = 8;
  config.arrival_rate = 1.5;
  config.initial_seeds = 1;
  config.seed_capacity = 3;
  config.seeds_serve_all = true;
  config.seed = 7;
  bt::InitialGroup group;
  group.count = 12;
  config.initial_groups.push_back(group);
  return config;
}

/// Runs `rounds` rounds and returns the fuzzer's per-round fingerprint,
/// optionally with an invariant suite attached.
std::uint64_t run_fingerprint(bt::SwarmConfig config, bt::Round rounds,
                              bool with_suite) {
  bt::Swarm swarm(std::move(config));
  InvariantSuite suite;
  if (with_suite) {
    swarm.set_phase_observer(&suite);
  }
  std::uint64_t hash = 14695981039346656037ULL;
  for (bt::Round r = 0; r < rounds; ++r) {
    swarm.step();
    hash = fnv1a64(hash, swarm.population());
    hash = fnv1a64(hash, swarm.metrics().completed_count());
  }
  return hash;
}

TEST(InvariantSuite, CleanSwarmPassesAllRounds) {
  bt::Swarm swarm(small_config());
  InvariantSuite suite;
  swarm.set_phase_observer(&suite);
  EXPECT_NO_THROW(swarm.run_rounds(40));
  EXPECT_GT(suite.checks_run(), 0u);
}

TEST(InvariantSuite, DeepModePassesOnCleanSwarm) {
  InvariantOptions options;
  options.deep = true;
  bt::Swarm swarm(small_config());
  InvariantSuite suite(options);
  swarm.set_phase_observer(&suite);
  EXPECT_NO_THROW(swarm.run_rounds(20));
}

TEST(InvariantSuite, ObserverDoesNotPerturbTheRun) {
  const std::uint64_t detached = run_fingerprint(small_config(), 30, false);
  const std::uint64_t attached = run_fingerprint(small_config(), 30, true);
  EXPECT_EQ(detached, attached);
}

TEST(InvariantSuite, StrideSkipsRoundsButStillChecks) {
  InvariantOptions options;
  options.stride = 4;
  bt::Swarm swarm(small_config());
  InvariantSuite strided(options);
  swarm.set_phase_observer(&strided);
  swarm.run_rounds(16);

  bt::Swarm full_swarm(small_config());
  InvariantSuite full;
  full_swarm.set_phase_observer(&full);
  full_swarm.run_rounds(16);

  EXPECT_GT(strided.checks_run(), 0u);
  EXPECT_LT(strided.checks_run(), full.checks_run());
}

TEST(InvariantSuite, CheckAllValidatesAFinishedRun) {
  bt::Swarm swarm(small_config());
  swarm.run_rounds(25);
  InvariantSuite suite;
  EXPECT_NO_THROW(suite.check_all(swarm));
}

TEST(InvariantSuite, CatalogueNamesAreUniqueAndNonEmpty) {
  const auto& names = InvariantSuite::invariant_names();
  EXPECT_GE(names.size(), 12u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

// --- fault injection ------------------------------------------------------

/// Fuzzes with `fault` armed until a violation appears, asserting it is
/// one of the invariants the fault was designed to break.
CaseResult first_violation(const std::string& fault) {
  FuzzOptions options;
  options.num_cases = 60;
  options.quick = true;
  options.jobs = 2;
  options.fault = fault;
  const FuzzSummary summary = run_fuzz(options);
  for (const CaseResult& result : summary.results) {
    if (!result.ok) {
      return result;
    }
  }
  ADD_FAILURE() << "fault " << fault << " produced no violation in "
                << options.num_cases << " cases";
  return {};
}

struct FaultCase {
  const char* fault;
  const char* invariant;      // expected, or
  const char* alt_invariant;  // an acceptable alternative ("" = none)
  // Swarm-global invariants (cache recounts, metric series) implicate
  // no specific peer, so their messages carry no peer id.
  bool per_peer = true;
};

class FaultInjection : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultInjection, IsCaughtAsItsDesignedInvariant) {
  const FaultCase& param = GetParam();
  const CaseResult result = first_violation(param.fault);
  if (result.invariant.empty()) {
    return;  // ADD_FAILURE already recorded
  }
  EXPECT_TRUE(result.invariant == param.invariant ||
              result.invariant == param.alt_invariant)
      << "fault " << param.fault << " tripped '" << result.invariant << "'";
  // Satellite requirement: the message alone reproduces the failure.
  EXPECT_NE(result.message.find("round="), std::string::npos) << result.message;
  EXPECT_NE(result.message.find("seed="), std::string::npos) << result.message;
  if (param.per_peer) {
    EXPECT_NE(result.message.find("peer="), std::string::npos) << result.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultInjection,
    ::testing::Values(
        FaultCase{"skip-departure-repair", "neighbor-symmetry", ""},
        FaultCase{"skip-piece-count-decrement", "piece-counts", "", false},
        FaultCase{"asymmetric-neighbor-insert", "neighbor-symmetry", ""},
        FaultCase{"overfill-connections", "connection-cap", ""},
        FaultCase{"duplicate-inflight-piece", "inflight-conservation", ""},
        FaultCase{"skip-shake-cleanup", "neighbor-symmetry", "connection-symmetry"},
        FaultCase{"skip-round-record", "metrics-coherence", "", false}),
    [](const ::testing::TestParamInfo<FaultCase>& tpi) {
      std::string name = tpi.param.fault;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(FaultInjection, ViolationEmitsTraceEventAndCounter) {
  obs::Registry registry;
  obs::TraceRecorder recorder;
  recorder.set_registry(&registry);

  CaseSpec spec = random_case(42, 0, /*quick=*/true);
  spec.fault = "skip-departure-repair";
  spec.rounds = 60;

  bt::Swarm swarm(to_config(spec));
  swarm.set_trace_recorder(&recorder);
  InvariantSuite suite;
  swarm.set_phase_observer(&suite);
  const bt::fault::ScopedFault guard(bt::fault::Fault::kSkipDepartureRepair);
  bool violated = false;
  try {
    swarm.run_rounds(spec.rounds);
  } catch (const InvariantViolation& violation) {
    violated = true;
    EXPECT_EQ(violation.invariant(), "neighbor-symmetry");
  }
  ASSERT_TRUE(violated);

  bool saw_event = false;
  for (const obs::TraceEvent& event : recorder.events()) {
    if (event.type == obs::EventType::kInvariantViolation) {
      saw_event = true;
    }
  }
  EXPECT_TRUE(saw_event);
  EXPECT_EQ(registry.counter("check.invariant_violations").value(), 1);
}

// --- case specs -----------------------------------------------------------

TEST(CaseSpec, JsonRoundTripIsLossless) {
  for (std::uint64_t i = 0; i < 25; ++i) {
    CaseSpec spec = random_case(/*base_seed=*/1234, i, i % 2 == 0);
    spec.fault = "overfill-connections";
    spec.expect_violation = "connection-cap";
    const CaseSpec back = case_from_json(to_json(spec));
    EXPECT_EQ(spec, back) << "case " << i;
  }
}

TEST(CaseSpec, SeedsSurviveJsonAboveDoublePrecision) {
  CaseSpec spec;
  spec.base_seed = 0xfedcba9876543211ULL;  // > 2^53: dies if stored as double
  spec.seed = 0x8000000000000001ULL;
  spec.index = (1ULL << 60) + 3;
  const CaseSpec back = case_from_json(report::Json::parse(to_json(spec).dump()));
  EXPECT_EQ(back.base_seed, spec.base_seed);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.index, spec.index);
}

TEST(CaseSpec, GenerationIsDeterministic) {
  const CaseSpec a = random_case(99, 7, false);
  const CaseSpec b = random_case(99, 7, false);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, random_case(99, 8, false));
  EXPECT_NE(a, random_case(100, 7, false));
}

TEST(CaseSpec, ToConfigValidates) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(to_config(random_case(7, i, true))) << "case " << i;
  }
}

TEST(CaseSpec, UnknownFaultNameIsRejected) {
  report::Json json = to_json(CaseSpec{});
  json.set("fault", report::Json("melt-the-tracker"));
  EXPECT_THROW(case_from_json(json), std::invalid_argument);
}

// --- fuzzer ---------------------------------------------------------------

TEST(Fuzzer, CampaignIsIdenticalAcrossWorkerCounts) {
  FuzzOptions options;
  options.num_cases = 24;
  options.quick = true;
  options.jobs = 1;
  const FuzzSummary serial = run_fuzz(options);
  options.jobs = 4;
  const FuzzSummary parallel = run_fuzz(options);

  EXPECT_EQ(serial.campaign_fingerprint, parallel.campaign_fingerprint);
  EXPECT_EQ(serial.failures, parallel.failures);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].fingerprint, parallel.results[i].fingerprint);
    EXPECT_EQ(serial.results[i].spec, parallel.results[i].spec);
  }
}

TEST(Fuzzer, CleanCampaignHasNoFailures) {
  FuzzOptions options;
  options.num_cases = 30;
  options.quick = true;
  options.jobs = 2;
  const FuzzSummary summary = run_fuzz(options);
  EXPECT_EQ(summary.failures, 0u);
  for (const CaseResult& result : summary.results) {
    EXPECT_TRUE(result.ok) << result.message;
    EXPECT_EQ(result.rounds_run, result.spec.rounds);
    EXPECT_GT(result.checks_run, 0u);
  }
}

// --- shrinker -------------------------------------------------------------

TEST(Shrinker, ConvergesToAMinimalReproducer) {
  const CaseResult failing = first_violation("skip-departure-repair");
  ASSERT_FALSE(failing.invariant.empty());

  const ShrinkResult shrunk = shrink_case(failing.spec);
  // Satellite acceptance: a departure-repair bug needs only a handful of
  // peers and rounds to manifest.
  EXPECT_LE(shrunk.shrunk.initial_leechers, 20u);
  EXPECT_LE(shrunk.shrunk.rounds, 10u);
  EXPECT_EQ(shrunk.shrunk.expect_violation, failing.invariant);
  EXPECT_FALSE(shrunk.result.ok);
  EXPECT_EQ(shrunk.result.invariant, failing.invariant);
  EXPECT_GT(shrunk.attempts, 0u);
}

TEST(Shrinker, RejectsCleanSpecs) {
  const CaseSpec clean = random_case(42, 0, true);
  EXPECT_THROW(shrink_case(clean), std::invalid_argument);
}

TEST(Shrinker, ShrunkRecordReplaysToTheSameViolation) {
  const CaseResult failing = first_violation("asymmetric-neighbor-insert");
  ASSERT_FALSE(failing.invariant.empty());
  const ShrinkResult shrunk = shrink_case(failing.spec);

  // Round-trip the shrunk spec through a failure-record file, the way
  // mpbt_fuzz records and --replay reloads it.
  report::Json record = report::Json::object();
  record.set("schema", report::Json("mpbt-fuzz-failure-v1"));
  record.set("case", to_json(failing.spec));
  record.set("shrunk", to_json(shrunk.shrunk));
  const std::string path =
      (std::filesystem::temp_directory_path() / "mpbt_test_shrunk_case.json")
          .string();
  record.save_file(path);

  const CaseSpec reloaded = load_case_spec(path);
  std::filesystem::remove(path);
  EXPECT_EQ(reloaded, shrunk.shrunk);  // "shrunk" wins over "case"

  const CaseResult replayed = run_case(reloaded);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.invariant, failing.invariant);
  EXPECT_EQ(replayed.violation_round, shrunk.result.violation_round);
  EXPECT_EQ(replayed.message, shrunk.result.message);
}

}  // namespace
}  // namespace mpbt::check
