#include <gtest/gtest.h>

#include <cmath>

#include "markov/absorbing.hpp"
#include "markov/sparse_chain.hpp"
#include "markov/trajectory.hpp"
#include "numeric/rng.hpp"

namespace mpbt::markov {
namespace {

/// Simple symmetric random walk on {0..n} with absorbing endpoints.
SparseChain gambler_chain(std::size_t n, double p_up = 0.5) {
  SparseChain chain(n + 1);
  for (std::size_t s = 1; s < n; ++s) {
    chain.add_transition(s, s + 1, p_up);
    chain.add_transition(s, s - 1, 1.0 - p_up);
  }
  chain.add_transition(0, 0, 1.0);
  chain.add_transition(n, n, 1.0);
  chain.finalize();
  return chain;
}

TEST(SparseChain, RowSumValidation) {
  SparseChain chain(2);
  chain.add_transition(0, 1, 0.4);
  EXPECT_THROW(chain.finalize(), std::invalid_argument);
}

TEST(SparseChain, EmptyRowBecomesAbsorbing) {
  SparseChain chain(2);
  chain.add_transition(0, 1, 1.0);
  chain.finalize();
  EXPECT_TRUE(chain.is_absorbing(1));
  EXPECT_FALSE(chain.is_absorbing(0));
}

TEST(SparseChain, AccumulatesRepeatedTransitions) {
  SparseChain chain(2);
  chain.add_transition(0, 1, 0.5);
  chain.add_transition(0, 1, 0.5);
  chain.finalize();
  ASSERT_EQ(chain.row(0).size(), 1u);
  EXPECT_NEAR(chain.row(0)[0].probability, 1.0, 1e-12);
}

TEST(SparseChain, RejectsBadInput) {
  EXPECT_THROW(SparseChain(0), std::invalid_argument);
  SparseChain chain(2);
  EXPECT_THROW(chain.add_transition(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(chain.add_transition(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(chain.add_transition(0, 1, -0.5), std::invalid_argument);
  chain.add_transition(0, 1, 1.0);
  chain.finalize();
  EXPECT_THROW(chain.finalize(), std::invalid_argument);
  EXPECT_THROW(chain.add_transition(0, 1, 0.1), std::invalid_argument);
}

TEST(SparseChain, StepRequiresFinalize) {
  SparseChain chain(2);
  chain.add_transition(0, 1, 1.0);
  numeric::Rng rng(1);
  EXPECT_THROW(chain.step(0, rng), std::invalid_argument);
  EXPECT_THROW(chain.step_distribution({1.0, 0.0}), std::invalid_argument);
}

TEST(SparseChain, StepDistributionConservesMass) {
  const SparseChain chain = gambler_chain(10, 0.3);
  std::vector<double> dist(11, 0.0);
  dist[5] = 1.0;
  for (int t = 0; t < 50; ++t) {
    dist = chain.step_distribution(dist);
    double total = 0.0;
    for (double v : dist) {
      total += v;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
  // Most mass absorbed at the boundaries after 50 steps of a 10-walk.
  EXPECT_GT(dist[0] + dist[10], 0.9);
}

TEST(SparseChain, StepSamplesFollowProbabilities) {
  SparseChain chain(3);
  chain.add_transition(0, 1, 0.25);
  chain.add_transition(0, 2, 0.75);
  chain.finalize();
  numeric::Rng rng(3);
  int to1 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (chain.step(0, rng) == 1) {
      ++to1;
    }
  }
  EXPECT_NEAR(to1 / static_cast<double>(n), 0.25, 0.01);
}

TEST(Absorbing, GamblersRuinExpectedSteps) {
  // Symmetric walk from i on {0..n}: E[steps] = i (n - i).
  const std::size_t n = 10;
  const SparseChain chain = gambler_chain(n);
  const AbsorptionResult result = expected_steps_to_absorption(chain);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i <= n; ++i) {
    const double expected = static_cast<double>(i) * static_cast<double>(n - i);
    EXPECT_NEAR(result.expected_steps[i], expected, 1e-6) << "i=" << i;
  }
}

TEST(Absorbing, GeometricSelfLoop) {
  // State 0 stays with prob 0.8, absorbs with prob 0.2: E[steps] = 5.
  SparseChain chain(2);
  chain.add_transition(0, 0, 0.8);
  chain.add_transition(0, 1, 0.2);
  chain.add_transition(1, 1, 1.0);
  chain.finalize();
  const AbsorptionResult result = expected_steps_to_absorption(chain);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.expected_steps[0], 5.0, 1e-8);
  EXPECT_EQ(result.expected_steps[1], 0.0);
}

TEST(Absorbing, UnreachableAbsorptionIsInfinite) {
  // Two states looping between each other; state 2 absorbing, unreachable.
  SparseChain chain(3);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 2, 1.0);
  chain.finalize();
  const AbsorptionResult result =
      expected_steps_to_absorption(chain, /*max_iterations=*/2000, 1e-10);
  EXPECT_GT(result.expected_steps[0], 100.0);  // diverging upward
}

TEST(Absorbing, HittingProbabilityGamblersRuin) {
  // Symmetric walk: P(hit n before 0 | start i) = i / n.
  const std::size_t n = 8;
  const SparseChain chain = gambler_chain(n);
  const std::vector<double> h = hitting_probability(chain, n);
  for (std::size_t i = 0; i <= n; ++i) {
    EXPECT_NEAR(h[i], static_cast<double>(i) / static_cast<double>(n), 1e-8) << "i=" << i;
  }
}

TEST(Trajectory, ReachesAbsorption) {
  const SparseChain chain = gambler_chain(6);
  numeric::Rng rng(9);
  const Trajectory traj = sample_trajectory(chain, 3, rng);
  EXPECT_TRUE(traj.absorbed);
  EXPECT_GE(traj.states.size(), 2u);
  EXPECT_EQ(traj.states.front(), 3u);
  const std::size_t final_state = traj.states.back();
  EXPECT_TRUE(final_state == 0 || final_state == 6);
}

TEST(Trajectory, StartingAbsorbedIsTrivial) {
  const SparseChain chain = gambler_chain(4);
  numeric::Rng rng(1);
  const Trajectory traj = sample_trajectory(chain, 0, rng);
  EXPECT_TRUE(traj.absorbed);
  EXPECT_EQ(traj.states.size(), 1u);
}

TEST(Trajectory, MaxStepsCap) {
  // Non-absorbing 2-cycle: trajectory must stop at the cap.
  SparseChain chain(2);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.finalize();
  numeric::Rng rng(2);
  const Trajectory traj = sample_trajectory(chain, 0, rng, 10);
  EXPECT_FALSE(traj.absorbed);
  EXPECT_EQ(traj.states.size(), 11u);
}

TEST(Trajectory, MonteCarloMatchesExactExpectedSteps) {
  const SparseChain chain = gambler_chain(8);
  numeric::Rng rng(5);
  const HittingTimeStats stats = estimate_absorption_time(chain, 4, rng, 4000);
  EXPECT_EQ(stats.sample_count, 4000u);
  EXPECT_EQ(stats.absorbed_count, 4000u);
  // Exact value is 4 * 4 = 16.
  EXPECT_NEAR(stats.mean, 16.0, 1.0);
}

TEST(Trajectory, WalkVisitsEveryStep) {
  const SparseChain chain = gambler_chain(4);
  numeric::Rng rng(6);
  std::size_t calls = 0;
  std::size_t last_step = 0;
  const std::size_t steps = walk(chain, 2, rng, [&](std::size_t step, std::size_t state) {
    EXPECT_EQ(step, calls);
    EXPECT_LT(state, 5u);
    last_step = step;
    ++calls;
  });
  EXPECT_EQ(steps, last_step);
  EXPECT_EQ(calls, steps + 1);
}

}  // namespace
}  // namespace mpbt::markov
