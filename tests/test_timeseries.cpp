#include "numeric/timeseries.hpp"

#include <gtest/gtest.h>

#include "numeric/discrete_distribution.hpp"
#include "numeric/histogram.hpp"
#include "numeric/rng.hpp"

namespace mpbt::numeric {
namespace {

TEST(TimeSeries, AddRequiresOrderedTimes) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(1.0, 11.0);  // equal times allowed
  ts.add(2.0, 12.0);
  EXPECT_THROW(ts.add(1.5, 0.0), std::invalid_argument);
  EXPECT_EQ(ts.size(), 3u);
}

TEST(TimeSeries, ConstructorValidatesOrder) {
  EXPECT_THROW(TimeSeries({{2.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_NO_THROW(TimeSeries({{1.0, 1.0}, {2.0, 2.0}}));
}

TEST(TimeSeries, StepInterpolation) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(3.0, 30.0);
  ts.add(5.0, 50.0);
  EXPECT_EQ(ts.value_at(0.0), 10.0);  // before first: first value
  EXPECT_EQ(ts.value_at(1.0), 10.0);
  EXPECT_EQ(ts.value_at(2.9), 10.0);
  EXPECT_EQ(ts.value_at(3.0), 30.0);
  EXPECT_EQ(ts.value_at(4.5), 30.0);
  EXPECT_EQ(ts.value_at(5.0), 50.0);
  EXPECT_EQ(ts.value_at(100.0), 50.0);
}

TEST(TimeSeries, EmptyThrows) {
  TimeSeries ts;
  EXPECT_THROW(ts.value_at(1.0), std::invalid_argument);
  EXPECT_THROW(ts.first_time(), std::invalid_argument);
  EXPECT_THROW(ts.last_time(), std::invalid_argument);
}

TEST(TimeSeries, Resample) {
  TimeSeries ts;
  ts.add(0.0, 0.0);
  ts.add(10.0, 100.0);
  const TimeSeries r = ts.resample(0.0, 10.0, 11);
  ASSERT_EQ(r.size(), 11u);
  EXPECT_EQ(r[0].value, 0.0);
  EXPECT_EQ(r[10].value, 100.0);
  EXPECT_EQ(r[5].value, 0.0);  // step interpolation: holds old value
  EXPECT_THROW(ts.resample(0.0, 10.0, 1), std::invalid_argument);
  EXPECT_THROW(ts.resample(5.0, 5.0, 3), std::invalid_argument);
}

TEST(TimeSeries, FirstTimeAtLeast) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(2.0, 5.0);
  ts.add(4.0, 3.0);
  EXPECT_EQ(ts.first_time_at_least(1.0), 0.0);
  EXPECT_EQ(ts.first_time_at_least(4.0), 2.0);
  EXPECT_EQ(ts.first_time_at_least(6.0), -1.0);
}

TEST(TimeSeries, AverageSeries) {
  TimeSeries a;
  a.add(0.0, 0.0);
  a.add(10.0, 10.0);
  TimeSeries b;
  b.add(0.0, 10.0);
  b.add(10.0, 20.0);
  const TimeSeries avg = average_series({a, b}, 3);
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_NEAR(avg[0].value, 5.0, 1e-12);
  EXPECT_NEAR(avg[2].value, 15.0, 1e-12);
}

TEST(TimeSeries, AverageSeriesValidation) {
  EXPECT_THROW(average_series({}, 5), std::invalid_argument);
  TimeSeries a;
  a.add(0.0, 1.0);
  a.add(1.0, 1.0);
  TimeSeries empty;
  EXPECT_THROW(average_series({a, empty}, 5), std::invalid_argument);
  TimeSeries disjoint;
  disjoint.add(5.0, 1.0);
  disjoint.add(6.0, 1.0);
  EXPECT_THROW(average_series({a, disjoint}, 5), std::invalid_argument);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.99);   // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow (hi exclusive)
  h.add(100.0);  // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_NEAR(h.fraction(0), 0.5, 1e-12);
  EXPECT_EQ(h.bin_lo(1), 2.0);
  EXPECT_EQ(h.bin_hi(1), 4.0);
  EXPECT_THROW(h.count(5), std::out_of_range);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(DiscreteDistribution, NormalizesWeights) {
  DiscreteDistribution d({1.0, 3.0});
  EXPECT_NEAR(d.pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(d.pmf(1), 0.75, 1e-12);
  EXPECT_NEAR(d.mean(), 0.75, 1e-12);
}

TEST(DiscreteDistribution, Validation) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({-1.0, 2.0}), std::invalid_argument);
  DiscreteDistribution d({1.0});
  EXPECT_THROW(d.pmf(1), std::out_of_range);
}

TEST(DiscreteDistribution, Factories) {
  const auto uniform = DiscreteDistribution::uniform_range(5, 1, 3);
  EXPECT_EQ(uniform.pmf(0), 0.0);
  EXPECT_NEAR(uniform.pmf(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(uniform.pmf(3), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(uniform.pmf(4), 0.0);

  const auto point = DiscreteDistribution::point_mass(4, 2);
  EXPECT_EQ(point.pmf(2), 1.0);
  EXPECT_EQ(point.pmf(1), 0.0);
  EXPECT_THROW(DiscreteDistribution::point_mass(4, 4), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution::uniform_range(4, 2, 4), std::invalid_argument);
}

TEST(DiscreteDistribution, SamplingMatchesPmf) {
  DiscreteDistribution d({0.2, 0.5, 0.3});
  Rng rng(77);
  std::vector<int> hits(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++hits[d.sample(rng)];
  }
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(DiscreteDistribution, LinfDistance) {
  DiscreteDistribution a({0.5, 0.5});
  DiscreteDistribution b({0.2, 0.8});
  EXPECT_NEAR(a.linf_distance(b), 0.3, 1e-12);
  DiscreteDistribution c({1.0, 1.0, 1.0});
  EXPECT_THROW(a.linf_distance(c), std::invalid_argument);
}

}  // namespace
}  // namespace mpbt::numeric
