// Transient ensemble model (the Section 6/8 future-work machinery).
#include <gtest/gtest.h>

#include "model/download_model.hpp"
#include "model/ensemble.hpp"

namespace mpbt::model {
namespace {

EnsembleParams small_ensemble() {
  EnsembleParams params;
  params.peer.B = 12;
  params.peer.k = 3;
  params.peer.s = 8;
  params.peer.p_init = 0.7;
  params.peer.p_r = 0.85;
  params.peer.p_n = 0.9;
  params.peer.alpha = 0.3;
  params.peer.gamma = 0.2;
  params.arrival_rate = 2.0;
  params.rounds = 200;
  return params;
}

TEST(Ensemble, Validation) {
  EnsembleParams params = small_ensemble();
  params.arrival_rate = -1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = small_ensemble();
  params.rounds = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = small_ensemble();
  params.initial_phi = {1.0};  // wrong size
  EXPECT_THROW(params.validate(), std::invalid_argument);
  EXPECT_NO_THROW(small_ensemble().validate());
}

TEST(Ensemble, MassConservationPerRound) {
  const EnsembleResult result = run_ensemble(small_ensemble());
  const auto& pop = result.population.samples();
  const auto& done = result.completion_rate.samples();
  ASSERT_EQ(pop.size(), done.size());
  for (std::size_t t = 1; t < pop.size(); ++t) {
    // N_{t+1} = N_t + lambda - completions_t.
    const double expected = pop[t - 1].value + 2.0 - done[t - 1].value;
    ASSERT_NEAR(pop[t].value, expected, 1e-6) << "round " << t;
  }
}

TEST(Ensemble, ReachesSteadyStateByLittlesLaw) {
  // Stationary population ~ lambda * E[download time]; the per-peer chain
  // gives E[T] (with the same fixed phi, so disable coupling).
  EnsembleParams params = small_ensemble();
  params.couple_phi = false;
  params.rounds = 600;
  const EnsembleResult result = run_ensemble(params);
  EXPECT_FALSE(result.population_growing);
  const double expected_T = compute_evolution(params.peer).expected_completion;
  const double steady_N = result.population.samples().back().value;
  EXPECT_NEAR(steady_N, params.arrival_rate * expected_T,
              0.1 * params.arrival_rate * expected_T);
}

TEST(Ensemble, ThroughputMatchesArrivalsInSteadyState) {
  EnsembleParams params = small_ensemble();
  params.rounds = 600;
  const EnsembleResult result = run_ensemble(params);
  const double tail_completions = result.completion_rate.samples().back().value;
  EXPECT_NEAR(tail_completions, params.arrival_rate, 0.1 * params.arrival_rate);
}

TEST(Ensemble, InitialPopulationDrainsWithoutArrivals) {
  EnsembleParams params = small_ensemble();
  params.arrival_rate = 0.0;
  params.initial_population = 100.0;
  params.initial_phi.assign(13, 1.0);  // all piece counts equally likely
  params.rounds = 400;
  const EnsembleResult result = run_ensemble(params);
  EXPECT_LT(result.population.samples().back().value, 1.0);
  EXPECT_NEAR(result.total_completed, 100.0, 1.0);
  EXPECT_FALSE(result.population_growing);
}

TEST(Ensemble, CouplingChangesTheTrajectory) {
  EnsembleParams coupled = small_ensemble();
  coupled.initial_population = 100.0;
  coupled.initial_phi.assign(13, 0.0);
  coupled.initial_phi[1] = 1.0;  // a young swarm: everyone has one piece
  EnsembleParams frozen = coupled;
  frozen.couple_phi = false;
  const EnsembleResult a = run_ensemble(coupled);
  const EnsembleResult b = run_ensemble(frozen);
  // The transient phi (mass at low piece counts) lowers trading power
  // early on; the trajectories must differ measurably.
  double max_gap = 0.0;
  for (std::size_t t = 0; t < a.population.size(); ++t) {
    max_gap = std::max(max_gap,
                       std::abs(a.population[t].value - b.population[t].value));
  }
  EXPECT_GT(max_gap, 1.0);
}

TEST(Ensemble, HigherArrivalRateScalesPopulation) {
  EnsembleParams slow = small_ensemble();
  slow.rounds = 500;
  EnsembleParams fast = slow;
  fast.arrival_rate = 6.0;
  const double n_slow = run_ensemble(slow).population.samples().back().value;
  const double n_fast = run_ensemble(fast).population.samples().back().value;
  EXPECT_NEAR(n_fast / n_slow, 3.0, 0.5);
}

TEST(Ensemble, FinalPhiIsDistribution) {
  const EnsembleResult result = run_ensemble(small_ensemble());
  double total = 0.0;
  for (double w : result.final_phi) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace mpbt::model
