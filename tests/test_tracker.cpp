#include "bt/tracker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mpbt::bt {
namespace {

TEST(Tracker, AddRemoveContains) {
  Tracker t;
  EXPECT_EQ(t.population(), 0u);
  t.add_peer(3);
  t.add_peer(7);
  t.add_peer(3);  // double add ignored
  EXPECT_EQ(t.population(), 2u);
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(7));
  EXPECT_FALSE(t.contains(5));
  t.remove_peer(3);
  EXPECT_FALSE(t.contains(3));
  EXPECT_EQ(t.population(), 1u);
  t.remove_peer(3);  // double remove ignored
  EXPECT_EQ(t.population(), 1u);
  t.remove_peer(99);  // unknown ignored
  EXPECT_EQ(t.population(), 1u);
}

TEST(Tracker, ReAddAfterRemove) {
  Tracker t;
  t.add_peer(1);
  t.remove_peer(1);
  t.add_peer(1);
  EXPECT_TRUE(t.contains(1));
  EXPECT_EQ(t.population(), 1u);
}

TEST(Tracker, SampleExcludesSelfAndIsDistinct) {
  Tracker t;
  for (PeerId id = 0; id < 20; ++id) {
    t.add_peer(id);
  }
  numeric::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = t.sample_peers(5, 7, rng);
    EXPECT_EQ(sample.size(), 5u);
    std::set<PeerId> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    EXPECT_EQ(unique.count(7), 0u);
  }
}

TEST(Tracker, SampleClampsToAvailable) {
  Tracker t;
  t.add_peer(1);
  t.add_peer(2);
  t.add_peer(3);
  numeric::Rng rng(5);
  const auto sample = t.sample_peers(10, 2, rng);
  EXPECT_EQ(sample.size(), 2u);
  for (PeerId id : sample) {
    EXPECT_NE(id, 2u);
  }
}

TEST(Tracker, SampleFromEmptyOrSingleton) {
  Tracker t;
  numeric::Rng rng(6);
  EXPECT_TRUE(t.sample_peers(3, kNoPeer, rng).empty());
  t.add_peer(5);
  EXPECT_TRUE(t.sample_peers(3, 5, rng).empty());
  const auto sample = t.sample_peers(3, kNoPeer, rng);
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0], 5u);
}

TEST(Tracker, SampleIsRoughlyUniform) {
  Tracker t;
  for (PeerId id = 0; id < 10; ++id) {
    t.add_peer(id);
  }
  numeric::Rng rng(7);
  std::vector<int> hits(10, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    for (PeerId id : t.sample_peers(3, kNoPeer, rng)) {
      ++hits[id];
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(h / static_cast<double>(trials), 0.3, 0.02);
  }
}

TEST(Tracker, StatsSeriesRecordsPopulation) {
  Tracker t;
  t.record_stats();
  t.add_peer(1);
  t.add_peer(2);
  t.record_stats();
  t.remove_peer(1);
  t.record_stats();
  const auto& series = t.population_series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0], 0u);
  EXPECT_EQ(series[1], 2u);
  EXPECT_EQ(series[2], 1u);
}


TEST(Tracker, ReservePreservesBehaviorAndPresizes) {
  Tracker t;
  t.add_peer(0);
  t.add_peer(1);
  t.reserve(1000);
  // Reserving must not disturb existing registrations.
  EXPECT_EQ(t.population(), 2u);
  EXPECT_TRUE(t.contains(0));
  EXPECT_TRUE(t.contains(1));
  // A burst after reserve registers without issue (and reserve again
  // with a smaller capacity is a no-op).
  for (PeerId id = 2; id < 500; ++id) {
    t.add_peer(id);
  }
  t.reserve(10);
  EXPECT_EQ(t.population(), 500u);
  t.remove_peer(250);
  EXPECT_EQ(t.population(), 499u);
  EXPECT_FALSE(t.contains(250));
}

}  // namespace
}  // namespace mpbt::bt
