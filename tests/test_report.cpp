// Tests for the src/report validation-observatory layer: JSON round
// trips, record summarization, drift pairing, the baseline gate, the
// deterministic renderers and the chrome-trace inverse loader.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sink.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "report/baseline.hpp"
#include "report/bench.hpp"
#include "report/drift.hpp"
#include "report/inputs.hpp"
#include "report/json.hpp"
#include "report/phase.hpp"
#include "report/render.hpp"
#include "report/summary.hpp"

namespace mpbt::report {
namespace {

// --- Json -------------------------------------------------------------------

TEST(Json, ParsesAndDumpsRoundTrip) {
  const std::string text =
      R"({"a":1,"b":[true,false,null],"c":{"nested":"x"},"d":-2.5e3})";
  const Json json = Json::parse(text);
  EXPECT_DOUBLE_EQ(json.number_or("a", 0), 1.0);
  EXPECT_EQ(json.at("b").as_array().size(), 3u);
  EXPECT_TRUE(json.at("b").as_array()[2].is_null());
  EXPECT_EQ(json.at("c").string_or("nested", ""), "x");
  EXPECT_DOUBLE_EQ(json.number_or("d", 0), -2500.0);
  // Objects keep insertion order, so dump(parse(x)) is stable.
  EXPECT_EQ(Json::parse(json.dump()).dump(), json.dump());
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string hairy = "quote\" backslash\\ newline\n tab\t control\x01 Ümlaut €";
  Json json = Json::object();
  json.set("s", Json(hairy));
  const std::string dumped = json.dump();
  EXPECT_EQ(Json::parse(dumped).at("s").as_string(), hairy);
}

TEST(Json, UnicodeEscapesDecodeIncludingSurrogatePairs) {
  // é = é, 😀 = U+1F600 (😀) as a surrogate pair.
  const Json json = Json::parse(R"({"s":"café 😀"})");
  const std::string& s = json.at("s").as_string();
  EXPECT_NE(s.find("caf\xc3\xa9"), std::string::npos);
  EXPECT_NE(s.find("\xf0\x9f\x98\x80"), std::string::npos);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);   // trailing comma
  EXPECT_THROW(Json::parse("{\"a\":1} x"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(Json::parse("{\"a\":NaN}"), std::runtime_error);  // bare NaN
  EXPECT_THROW(Json::parse(R"({"s":"\ud83d"})"), std::runtime_error);  // unpaired
  EXPECT_THROW(Json::parse(""), std::runtime_error);
}

TEST(Json, IntegralNumbersPrintWithoutFraction) {
  EXPECT_EQ(json_format_number(42.0), "42");
  EXPECT_EQ(json_format_number(-3.0), "-3");
  EXPECT_EQ(json_format_number(0.5), "0.5");
  EXPECT_EQ(json_format_number(std::nan("")), "null");
}

// --- summarize_records ------------------------------------------------------

exp::Record make_record(const std::string& scenario, long long point, long long rep,
                        double sim, double model) {
  exp::Record record;
  record.set("scenario", scenario);
  record.set("point", point);
  record.set("rep", rep);
  record.set("seed", std::string("123"));
  record.set("k", point + 1);  // parameter-style field
  record.set("sim_eta", sim);
  record.set("model_eta", model);
  return record;
}

std::vector<exp::Record> sample_records() {
  std::vector<exp::Record> records;
  for (long long point = 0; point < 3; ++point) {
    for (long long rep = 0; rep < 2; ++rep) {
      const double sim = 0.8 + 0.05 * static_cast<double>(point) +
                         0.01 * static_cast<double>(rep);
      records.push_back(make_record("efficiency_vs_k", point, rep, sim, sim + 0.02));
    }
  }
  return records;
}

TEST(Summarize, GroupsAndAveragesByPoint) {
  const std::vector<RunSummary> summaries = summarize_records(sample_records());
  ASSERT_EQ(summaries.size(), 1u);
  const RunSummary& summary = summaries.front();
  EXPECT_EQ(summary.scenario, "efficiency_vs_k");
  EXPECT_EQ(summary.points, 3u);
  EXPECT_EQ(summary.runs, 2u);
  EXPECT_EQ(summary.records, 6u);
  // Registered scenario: "k" is a parameter — profiled but not a metric.
  EXPECT_TRUE(summary.is_param("k"));
  EXPECT_TRUE(std::isnan(summary.metric_or("k", std::nan(""))));
  ASSERT_NE(summary.find_profile("k"), nullptr);
  // Grand mean over the 6 records.
  EXPECT_NEAR(summary.metric_or("sim_eta", 0), 0.855, 1e-12);
  const RunSummary::Profile* profile = summary.find_profile("sim_eta");
  ASSERT_NE(profile, nullptr);
  ASSERT_EQ(profile->per_point.size(), 3u);
  EXPECT_NEAR(profile->per_point[0], 0.805, 1e-12);
  EXPECT_NEAR(profile->per_point[2], 0.905, 1e-12);
}

TEST(Summarize, OrderIndependentAcrossShuffledInput) {
  std::vector<exp::Record> records = sample_records();
  std::vector<exp::Record> shuffled = records;
  std::mt19937 rng(7);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  const std::vector<RunSummary> a = summarize_records(records);
  const std::vector<RunSummary> b = summarize_records(shuffled);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  // Byte-level agreement, not just approximate: the gate depends on it.
  EXPECT_EQ(summary_to_json(a.front()).dump(), summary_to_json(b.front()).dump());
}

TEST(Summarize, SummaryJsonRoundTrips) {
  std::vector<RunSummary> summaries = summarize_records(sample_records());
  RunSummary& summary = summaries.front();
  attach_drift(summary);
  const Json json = summary_to_json(summary);
  const RunSummary loaded = summary_from_json(json);
  EXPECT_EQ(summary_to_json(loaded).dump(), json.dump());
  EXPECT_THROW(summary_from_json(Json::object()), std::runtime_error);
}

// --- drift ------------------------------------------------------------------

TEST(Drift, PairsSimWithModelProfiles) {
  std::vector<RunSummary> summaries = summarize_records(sample_records());
  RunSummary& summary = summaries.front();
  const std::vector<DriftRow> rows = compute_drift(summary);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].metric, "eta");
  EXPECT_EQ(rows[0].points, 3u);
  // model = sim + 0.02 everywhere.
  EXPECT_NEAR(rows[0].rmse, 0.02, 1e-9);
  EXPECT_NEAR(rows[0].max_gap, 0.02, 1e-9);
  EXPECT_NEAR(rows[0].model_mean - rows[0].sim_mean, 0.02, 1e-9);

  attach_drift(summary);
  EXPECT_NEAR(summary.metric_or("drift.eta.rmse", -1), 0.02, 1e-9);
  EXPECT_NEAR(summary.metric_or("drift.eta.max_gap", -1), 0.02, 1e-9);
}

TEST(Drift, UnpairedSimProfileProducesNoRow) {
  exp::Record record;
  record.set("scenario", std::string("s"));
  record.set("point", 0LL);
  record.set("rep", 0LL);
  record.set("sim_orphan", 1.0);
  const std::vector<RunSummary> summaries = summarize_records({record});
  EXPECT_TRUE(compute_drift(summaries.front()).empty());
}

// --- baseline gate ----------------------------------------------------------

TEST(BaselineGate, ClassifiesOkWarnFailMissingNew) {
  RunSummary base;
  base.scenario = "s";
  base.set_metric("a", 1.0);   // stays -> ok
  base.set_metric("b", 1.0);   // nudged past half tolerance -> warn
  base.set_metric("c", 1.0);   // shifted 2x tolerance -> fail
  base.set_metric("d", 1.0);   // dropped from the run -> missing
  base.set_metric("sweep.task_seconds", 9.0);  // never enters the baseline
  Tolerance tolerance;
  tolerance.abs_tol = 0.1;
  tolerance.rel_tol = 0.0;
  const Baseline baseline = baseline_from_summary(base, tolerance);
  EXPECT_EQ(baseline.entries.size(), 4u);
  EXPECT_EQ(baseline.find("sweep.task_seconds"), nullptr);

  RunSummary run;
  run.scenario = "s";
  run.set_metric("a", 1.0);
  run.set_metric("b", 1.08);  // |delta| = 0.08 > 0.05, <= 0.1
  run.set_metric("c", 1.2);   // |delta| = 0.2 = 2x allowed
  run.set_metric("e", 5.0);   // new
  const GateReport report = check_against_baseline(baseline, run);
  EXPECT_EQ(report.count(GateStatus::kOk), 1u);
  EXPECT_EQ(report.count(GateStatus::kWarn), 1u);
  EXPECT_EQ(report.count(GateStatus::kFail), 1u);
  EXPECT_EQ(report.count(GateStatus::kMissing), 1u);
  EXPECT_EQ(report.count(GateStatus::kNew), 1u);
  EXPECT_FALSE(report.passed());
}

TEST(BaselineGate, PassesOnIdenticalRunAndFailsOn2xPerturbation) {
  std::vector<RunSummary> summaries = summarize_records(sample_records());
  RunSummary& summary = summaries.front();
  attach_drift(summary);
  const Baseline baseline = baseline_from_summary(summary);
  EXPECT_TRUE(check_against_baseline(baseline, summary).passed());

  // The acceptance experiment: shift eta by twice its allowed tolerance.
  RunSummary perturbed = summary;
  const double eta = perturbed.metric_or("sim_eta", 0.0);
  const double allowed = baseline.find("sim_eta")->tolerance.allowed(eta);
  perturbed.set_metric("sim_eta", eta + 2.0 * allowed);
  const GateReport report = check_against_baseline(baseline, perturbed);
  EXPECT_FALSE(report.passed());
  EXPECT_GE(report.count(GateStatus::kFail), 1u);
}

TEST(BaselineGate, JsonRoundTripPreservesTolerances) {
  RunSummary summary;
  summary.scenario = "s";
  summary.set_metric("m", 2.0);
  Tolerance tolerance;
  tolerance.abs_tol = 0.01;
  tolerance.rel_tol = 0.1;
  const Baseline baseline = baseline_from_summary(summary, tolerance);
  const Baseline loaded = baseline_from_json(baseline_to_json(baseline));
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.scenario, "s");
  EXPECT_DOUBLE_EQ(loaded.entries[0].value, 2.0);
  EXPECT_DOUBLE_EQ(loaded.entries[0].tolerance.abs_tol, 0.01);
  EXPECT_DOUBLE_EQ(loaded.entries[0].tolerance.rel_tol, 0.1);
  EXPECT_EQ(baseline_path("baselines", "s"), "baselines/s.json");
  EXPECT_EQ(baseline_path("baselines/", "s"), "baselines/s.json");
}

// --- renderers --------------------------------------------------------------

Report sample_report() {
  Report report;
  std::vector<RunSummary> summaries = summarize_records(sample_records());
  report.drift = attach_drift(summaries.front());
  report.gates.push_back(
      check_against_baseline(baseline_from_summary(summaries.front()), summaries.front()));
  report.summaries = std::move(summaries);
  return report;
}

TEST(Render, MarkdownIsDeterministicAndCoversSections) {
  const Report report = sample_report();
  const std::string markdown = render_markdown(report);
  EXPECT_EQ(render_markdown(report), markdown);
  EXPECT_NE(markdown.find("# MPBT validation report"), std::string::npos);
  EXPECT_NE(markdown.find("efficiency_vs_k"), std::string::npos);
  EXPECT_NE(markdown.find("drift"), std::string::npos);
  EXPECT_NE(markdown.find("PASS"), std::string::npos);
}

TEST(Render, HtmlEscapesAndMirrorsMarkdownContent) {
  Report report = sample_report();
  report.title = "a <b> & \"c\"";
  const std::string html = render_html(report);
  EXPECT_NE(html.find("a &lt;b&gt; &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(html.find("<b> &"), std::string::npos);
  EXPECT_NE(html.find("efficiency_vs_k"), std::string::npos);
}

TEST(Render, FormatNumberIsLocaleFreeSixDigits) {
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(1234567.0), "1.23457e+06");
  EXPECT_EQ(format_number(std::nan("")), "-");
}

// --- inputs: JSONL + chrome-trace inverse -----------------------------------

TEST(Inputs, RecordsFromJsonlRestoreIntegerTypes) {
  std::istringstream in(
      "{\"scenario\":\"s\",\"point\":2,\"rep\":1,\"x\":0.5,\"flag\":true}\n"
      "\n"
      "{\"scenario\":\"s\",\"point\":3,\"rep\":0,\"x\":1.5,\"flag\":false}\n");
  const std::vector<exp::Record> records = records_from_jsonl(in);
  ASSERT_EQ(records.size(), 2u);
  const exp::Value* point = records[0].find("point");
  ASSERT_NE(point, nullptr);
  ASSERT_NE(std::get_if<long long>(point), nullptr);  // not a double
  EXPECT_EQ(std::get<long long>(*point), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(*records[0].find("x")), 0.5);
  EXPECT_TRUE(std::get<bool>(*records[0].find("flag")));
  std::istringstream bad("{\"unterminated\n");
  EXPECT_THROW(records_from_jsonl(bad), std::runtime_error);
}

TEST(Inputs, JsonlSinkOutputRoundTripsThroughLoader) {
  std::ostringstream out;
  {
    exp::JsonlSink sink(out);
    for (const exp::Record& record : sample_records()) {
      sink.write(record);
    }
    sink.flush();
  }
  std::istringstream in(out.str());
  const std::vector<exp::Record> loaded = records_from_jsonl(in);
  const std::string direct = summary_to_json(summarize_records(sample_records()).front()).dump();
  const std::string roundtrip = summary_to_json(summarize_records(loaded).front()).dump();
  EXPECT_EQ(roundtrip, direct);
}

obs::TaskTrace instrumented_task(std::uint64_t task, std::string label) {
  // One instrumented client downloading 4 pieces of 100 bytes each, plus
  // per-round swarm entropy samples.
  obs::TraceRecorder recorder;
  for (std::uint64_t round = 0; round < 4; ++round) {
    const auto pieces = static_cast<std::uint32_t>(round + 1);
    recorder.client_sample(round, /*peer=*/7, /*potential=*/3,
                           /*pieces_held=*/pieces, /*cumulative_bytes=*/pieces * 100);
    recorder.round_sample(round, /*leechers=*/5, /*seeds=*/1, /*entropy=*/0.5,
                          /*transfer_efficiency=*/0.75);
  }
  recorder.peer_complete(4, 7, 4.0);
  obs::TaskTrace trace;
  trace.task = task;
  trace.label = std::move(label);
  trace.events = recorder.events();
  return trace;
}

TEST(ChromeTraceHardening, HostileLabelsStillProduceValidJson) {
  // Labels with quotes, backslashes and non-ASCII must survive the
  // export as RFC 8259 JSON — the strict parser is the round-trip check.
  const std::string hostile = "lab\"el\\ with \x01 Ümlaut \xf0\x9f\x98\x80";
  obs::TraceCollector collector;
  collector.add(instrumented_task(0, hostile));
  std::ostringstream out;
  obs::write_chrome_trace(out, collector, nullptr);
  Json parsed;
  ASSERT_NO_THROW(parsed = Json::parse(out.str())) << out.str().substr(0, 400);
  const std::vector<obs::TaskTrace> tasks = traces_from_chrome_json(parsed);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].label, hostile);
}

TEST(ChromeTraceInverse, RecoversClientSamplesCompletionsAndEntropy) {
  obs::TraceCollector collector;
  collector.add(instrumented_task(0, "task zero"));
  std::ostringstream out;
  obs::write_chrome_trace(out, collector, nullptr);
  const std::vector<obs::TaskTrace> tasks =
      traces_from_chrome_json(Json::parse(out.str()));
  ASSERT_EQ(tasks.size(), 1u);

  const std::vector<trace::ClientTrace> clients =
      client_traces_from_events(tasks[0].events);
  ASSERT_EQ(clients.size(), 1u);
  EXPECT_TRUE(clients[0].completed);
  EXPECT_EQ(clients[0].num_pieces, 4u);
  ASSERT_EQ(clients[0].points.size(), 4u);
  EXPECT_EQ(clients[0].points.back().cumulative_bytes, 400u);
  EXPECT_EQ(clients[0].points.back().potential_set_size, 3u);

  const SwarmSeriesStats series = swarm_series_stats(tasks[0].events);
  EXPECT_EQ(series.samples, 4u);
  EXPECT_DOUBLE_EQ(series.mean_entropy, 0.5);
  EXPECT_DOUBLE_EQ(series.final_efficiency, 0.75);
}

TEST(ChromeTraceInverse, AttachTracesFoldsPhaseMetricsIntoSummary) {
  std::vector<RunSummary> summaries = summarize_records(sample_records());
  RunSummary& summary = summaries.front();
  attach_traces(summary, {instrumented_task(0, "a"), instrumented_task(1, "b")});
  EXPECT_TRUE(summary.has_phases);
  EXPECT_DOUBLE_EQ(summary.metric_or("phase.clients", 0), 2.0);
  EXPECT_DOUBLE_EQ(summary.metric_or("phase.completed", 0), 2.0);
  EXPECT_DOUBLE_EQ(summary.metric_or("trace.mean_entropy", 0), 0.5);
}

// --- bench ------------------------------------------------------------------

TEST(Bench, ParsesGoogleBenchmarkAndWallTimes) {
  const Json gb = Json::parse(R"({
    "context": {"build_type": "release"},
    "benchmarks": [
      {"name": "BM_Swarm/100", "real_time": 1250.5, "cpu_time": 1249.0,
       "time_unit": "ns", "iterations": 1000},
      {"name": "BM_Bad", "error_occurred": true, "error_message": "boom"}
    ]})");
  const std::vector<BenchMark> marks = parse_google_benchmark(gb);
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0].name, "BM_Swarm/100");
  EXPECT_DOUBLE_EQ(marks[0].real_time, 1250.5);

  const std::vector<WallTime> walls = parse_wall_times(
      "binary seconds\nfig3a_efficiency_vs_k 12.5\n\nfig4b_phases 3.25\n");
  ASSERT_EQ(walls.size(), 2u);
  EXPECT_EQ(walls[0].binary, "fig3a_efficiency_vs_k");
  EXPECT_DOUBLE_EQ(walls[1].seconds, 3.25);
}

TEST(Bench, TrajectoryJsonRoundTripsAndRenders) {
  BenchTrajectory trajectory;
  BenchEntry entry;
  entry.label = "PR3";
  entry.build_type = "Release";
  entry.benchmarks.push_back({"BM_Swarm/100", 1250.5, 1249.0, "ns", 1000});
  entry.wall_times.push_back({"fig3a", 12.5});
  trajectory.entries.push_back(entry);
  const BenchTrajectory loaded = bench_from_json(bench_to_json(trajectory));
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].label, "PR3");
  ASSERT_EQ(loaded.entries[0].benchmarks.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.entries[0].benchmarks[0].real_time, 1250.5);

  Report report;
  report.bench = loaded;
  report.has_bench = true;
  const std::string markdown = render_markdown(report);
  EXPECT_NE(markdown.find("BM_Swarm/100"), std::string::npos);
  EXPECT_NE(markdown.find("PR3"), std::string::npos);
}

}  // namespace
}  // namespace mpbt::report
