#include "bt/bitfield.hpp"

#include <gtest/gtest.h>

#include "bt/id_set.hpp"

namespace mpbt::bt {
namespace {

TEST(Bitfield, StartsEmpty) {
  Bitfield b(10);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.all());
  for (PieceIndex p = 0; p < 10; ++p) {
    EXPECT_FALSE(b.test(p));
  }
}

TEST(Bitfield, SetResetCount) {
  Bitfield b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.set(63);  // idempotent
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_FALSE(b.test(63));
  b.reset(63);  // idempotent
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitfield, AllDetection) {
  Bitfield b(3);
  b.set(0);
  b.set(1);
  EXPECT_FALSE(b.all());
  b.set(2);
  EXPECT_TRUE(b.all());
  EXPECT_FALSE(b.none());
}

TEST(Bitfield, BoundsChecked) {
  Bitfield b(8);
  EXPECT_THROW(b.test(8), std::out_of_range);
  EXPECT_THROW(b.set(8), std::out_of_range);
  EXPECT_THROW(b.reset(100), std::out_of_range);
  EXPECT_THROW(Bitfield(0), std::invalid_argument);
}

TEST(Bitfield, HasPieceMissingFrom) {
  Bitfield a(70);
  Bitfield b(70);
  a.set(5);
  EXPECT_TRUE(a.has_piece_missing_from(b));
  EXPECT_FALSE(b.has_piece_missing_from(a));
  b.set(5);
  EXPECT_FALSE(a.has_piece_missing_from(b));
  b.set(69);
  EXPECT_TRUE(b.has_piece_missing_from(a));
}

TEST(Bitfield, SizeMismatchRejected) {
  Bitfield a(10);
  Bitfield b(11);
  EXPECT_THROW(a.has_piece_missing_from(b), std::invalid_argument);
  EXPECT_THROW(a.pieces_missing_from(b), std::invalid_argument);
  EXPECT_THROW(a.intersection_count(b), std::invalid_argument);
}

TEST(Bitfield, PiecesMissingFrom) {
  Bitfield a(130);
  Bitfield b(130);
  a.set(1);
  a.set(64);
  a.set(129);
  b.set(64);
  const auto missing = a.pieces_missing_from(b);
  EXPECT_EQ(missing, (std::vector<PieceIndex>{1, 129}));
}

TEST(Bitfield, HeldAndMissingPartition) {
  Bitfield b(20);
  b.set(3);
  b.set(17);
  const auto held = b.held_pieces();
  const auto missing = b.missing_pieces();
  EXPECT_EQ(held.size(), 2u);
  EXPECT_EQ(missing.size(), 18u);
  EXPECT_EQ(held, (std::vector<PieceIndex>{3, 17}));
  for (PieceIndex p : missing) {
    EXPECT_FALSE(b.test(p));
  }
}

TEST(Bitfield, IntersectionCount) {
  Bitfield a(128);
  Bitfield b(128);
  for (PieceIndex p = 0; p < 128; p += 2) {
    a.set(p);
  }
  for (PieceIndex p = 0; p < 128; p += 3) {
    b.set(p);
  }
  // Multiples of 6 in [0, 128): 0, 6, ..., 126 -> 22 values.
  EXPECT_EQ(a.intersection_count(b), 22u);
}

TEST(Bitfield, Equality) {
  Bitfield a(10);
  Bitfield b(10);
  EXPECT_TRUE(a == b);
  a.set(5);
  EXPECT_FALSE(a == b);
  b.set(5);
  EXPECT_TRUE(a == b);
  Bitfield c(11);
  EXPECT_FALSE(a == c);
}

TEST(IdSet, BasicSetSemantics) {
  IdSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(5));  // duplicate
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_EQ(s.size(), 2u);
}

TEST(IdSet, IteratesSorted) {
  IdSet s;
  s.insert(9);
  s.insert(1);
  s.insert(5);
  const std::vector<PeerId> expected{1, 5, 9};
  EXPECT_EQ(s.as_vector(), expected);
  std::vector<PeerId> iterated(s.begin(), s.end());
  EXPECT_EQ(iterated, expected);
}

TEST(IdSet, Clear) {
  IdSet s;
  s.insert(1);
  s.insert(2);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(1));
}

}  // namespace
}  // namespace mpbt::bt
