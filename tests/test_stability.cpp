#include <gtest/gtest.h>

#include "stability/entropy.hpp"
#include "stability/experiment.hpp"

namespace mpbt::stability {
namespace {

TEST(Entropy, EdgeCases) {
  EXPECT_EQ(entropy_from_counts({}), 1.0);
  EXPECT_EQ(entropy_from_counts({0, 0, 0}), 1.0);
  EXPECT_EQ(entropy_from_counts({5, 5, 5}), 1.0);
  EXPECT_EQ(entropy_from_counts({0, 5}), 0.0);
}

TEST(Entropy, RatioOfExtremes) {
  EXPECT_NEAR(entropy_from_counts({2, 4, 8}), 0.25, 1e-12);
  EXPECT_NEAR(entropy_from_counts({10, 9, 10}), 0.9, 1e-12);
}

TEST(SkewedPieceProbs, GeometricDecay) {
  const auto probs = skewed_piece_probs(4, 0.8, 0.5);
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_NEAR(probs[0], 0.8, 1e-12);
  EXPECT_NEAR(probs[1], 0.4, 1e-12);
  EXPECT_NEAR(probs[2], 0.2, 1e-12);
  EXPECT_NEAR(probs[3], 0.1, 1e-12);
}

TEST(SkewedPieceProbs, Validation) {
  EXPECT_THROW(skewed_piece_probs(0, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(skewed_piece_probs(3, 1.5, 0.5), std::invalid_argument);
  EXPECT_THROW(skewed_piece_probs(3, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(skewed_piece_probs(3, 0.5, 1.5), std::invalid_argument);
  // rho = 1 means no skew.
  const auto flat = skewed_piece_probs(3, 0.5, 1.0);
  EXPECT_EQ(flat[0], flat[2]);
}

TEST(RampPieceProbs, LinearInterpolation) {
  const auto probs = ramp_piece_probs(3, 0.9, 0.1);
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_NEAR(probs[0], 0.9, 1e-12);
  EXPECT_NEAR(probs[1], 0.5, 1e-12);
  EXPECT_NEAR(probs[2], 0.1, 1e-12);
  const auto single = ramp_piece_probs(1, 0.7, 0.1);
  EXPECT_NEAR(single[0], 0.7, 1e-12);
  EXPECT_THROW(ramp_piece_probs(0, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(ramp_piece_probs(3, -0.1, 0.5), std::invalid_argument);
}

TEST(StabilityExperiment, ConfigTranslation) {
  StabilityConfig config;
  config.num_pieces = 5;
  config.initial_peers = 50;
  const bt::SwarmConfig swarm = make_swarm_config(config);
  EXPECT_EQ(swarm.num_pieces, 5u);
  ASSERT_EQ(swarm.initial_groups.size(), 1u);
  EXPECT_EQ(swarm.initial_groups[0].count, 50u);
  EXPECT_EQ(swarm.initial_groups[0].piece_probs.size(), 5u);
  // Skew: earlier pieces more probable.
  EXPECT_GT(swarm.initial_groups[0].piece_probs[0],
            swarm.initial_groups[0].piece_probs[4]);
  EXPECT_GT(swarm.initial_groups[0].piece_probs[4], 0.0);  // floor, not zero
  StabilityConfig bad;
  bad.rounds = 0;
  EXPECT_THROW(make_swarm_config(bad), std::invalid_argument);
}

TEST(StabilityExperiment, ProducesFullSeries) {
  StabilityConfig config;
  config.num_pieces = 8;
  config.rounds = 60;
  config.initial_peers = 80;
  config.arrival_rate = 2.0;
  config.peer_set_size = 15;
  const StabilityResult result = run_stability_experiment(config);
  EXPECT_EQ(result.population.size(), 60u);
  EXPECT_EQ(result.entropy.size(), 60u);
  EXPECT_GT(result.peak_population, 0u);
  EXPECT_GE(result.mean_entropy_tail, 0.0);
  EXPECT_LE(result.mean_entropy_tail, 1.0);
}

TEST(StabilityExperiment, PaperHeadline_SmallBDivergesLargeBRecovers) {
  // Section 6 / Fig. panels (b)-(c): from a skewed start, B = 3 cannot
  // re-balance (population grows, entropy stays low) while B = 10 recovers.
  StabilityConfig small_b;
  small_b.num_pieces = 3;
  small_b.rounds = 250;
  small_b.arrival_rate = 4.0;
  small_b.initial_peers = 300;
  small_b.seed = 5;

  StabilityConfig large_b = small_b;
  large_b.num_pieces = 10;

  const StabilityResult r_small = run_stability_experiment(small_b);
  const StabilityResult r_large = run_stability_experiment(large_b);

  // The large-B swarm ends with far better entropy and a much smaller
  // population; the small-B swarm diverges.
  EXPECT_GT(r_large.mean_entropy_tail, 0.3);
  EXPECT_LT(r_small.mean_entropy_tail, 0.1);
  EXPECT_LT(r_large.final_population, r_small.final_population / 2);
  EXPECT_TRUE(r_small.diverged);
  EXPECT_FALSE(r_large.diverged);
  EXPECT_GT(r_large.completed, r_small.completed);
}

TEST(StabilityExperiment, DeterministicForSeed) {
  StabilityConfig config;
  config.num_pieces = 6;
  config.rounds = 50;
  config.initial_peers = 60;
  const StabilityResult a = run_stability_experiment(config);
  const StabilityResult b = run_stability_experiment(config);
  EXPECT_EQ(a.final_population, b.final_population);
  EXPECT_DOUBLE_EQ(a.final_entropy, b.final_entropy);
  EXPECT_EQ(a.completed, b.completed);
}

}  // namespace
}  // namespace mpbt::stability
