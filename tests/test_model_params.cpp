#include "model/params.hpp"

#include <gtest/gtest.h>

#include "model/phase.hpp"
#include "model/trading_power.hpp"

namespace mpbt::model {
namespace {

TEST(ModelParams, DefaultsValidate) {
  ModelParams p;
  EXPECT_NO_THROW(p.validate_and_normalize());
  ASSERT_EQ(p.phi.size(), static_cast<std::size_t>(p.B) + 1);
  // Default phi: uniform over 1..B-1.
  EXPECT_EQ(p.phi[0], 0.0);
  EXPECT_EQ(p.phi[static_cast<std::size_t>(p.B)], 0.0);
  EXPECT_NEAR(p.phi[1], 1.0 / (p.B - 1), 1e-12);
  double total = 0.0;
  for (double w : p.phi) {
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ModelParams, RangeValidation) {
  ModelParams p;
  p.B = 0;
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p = ModelParams{};
  p.k = 0;
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p = ModelParams{};
  p.s = 0;
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p = ModelParams{};
  p.p_r = 1.5;
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p = ModelParams{};
  p.alpha = -0.1;
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
}

TEST(ModelParams, CustomPhiNormalized) {
  ModelParams p;
  p.B = 3;
  p.phi = {0.0, 2.0, 2.0, 0.0};
  p.validate_and_normalize();
  EXPECT_NEAR(p.phi[1], 0.5, 1e-12);
  EXPECT_NEAR(p.phi[2], 0.5, 1e-12);
}

TEST(ModelParams, CustomPhiValidation) {
  ModelParams p;
  p.B = 3;
  p.phi = {1.0, 1.0};  // wrong size
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p.phi = {0.0, -1.0, 1.0, 0.0};
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p.phi = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
}

TEST(ModelParams, SinglePieceFile) {
  ModelParams p;
  p.B = 1;
  EXPECT_NO_THROW(p.validate_and_normalize());
  EXPECT_NEAR(p.phi[1], 1.0, 1e-12);
}

TEST(ModelParams, AlphaFromFormula) {
  // alpha = lambda w s / N (Section 3.2).
  EXPECT_NEAR(ModelParams::alpha_from(2.0, 0.5, 40, 1000.0), 0.04, 1e-12);
  // Clamped at 1.
  EXPECT_EQ(ModelParams::alpha_from(100.0, 1.0, 50, 10.0), 1.0);
  EXPECT_THROW(ModelParams::alpha_from(-1.0, 0.5, 40, 100.0), std::invalid_argument);
  EXPECT_THROW(ModelParams::alpha_from(1.0, 1.5, 40, 100.0), std::invalid_argument);
  EXPECT_THROW(ModelParams::alpha_from(1.0, 0.5, 0, 100.0), std::invalid_argument);
  EXPECT_THROW(ModelParams::alpha_from(1.0, 0.5, 40, 0.0), std::invalid_argument);
}

TEST(Phase, Names) {
  EXPECT_EQ(phase_name(Phase::Bootstrap), "bootstrap");
  EXPECT_EQ(phase_name(Phase::EfficientDownload), "efficient-download");
  EXPECT_EQ(phase_name(Phase::LastDownload), "last-download");
  EXPECT_EQ(phase_name(Phase::Done), "done");
}

TEST(Phase, Classification) {
  const int B = 100;
  EXPECT_EQ(classify_phase(0, 0, 0, B), Phase::Bootstrap);
  EXPECT_EQ(classify_phase(0, 1, 0, B), Phase::Bootstrap);  // (0,1,0) waiting state
  EXPECT_EQ(classify_phase(0, 1, 3, B), Phase::EfficientDownload);
  EXPECT_EQ(classify_phase(2, 50, 5, B), Phase::EfficientDownload);
  EXPECT_EQ(classify_phase(2, 50, 0, B), Phase::EfficientDownload);  // still connected
  EXPECT_EQ(classify_phase(0, 95, 0, B), Phase::LastDownload);
  EXPECT_EQ(classify_phase(0, B, 0, B), Phase::Done);
  EXPECT_THROW(classify_phase(0, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(classify_phase(-1, 0, 0, B), std::invalid_argument);
}

TEST(TradingPower, RequiresValidatedParams) {
  ModelParams p;  // phi not yet normalized
  EXPECT_THROW(trading_power(p, 1), std::invalid_argument);
}

TEST(TradingPower, BoundaryValues) {
  ModelParams p;
  p.B = 50;
  p.validate_and_normalize();
  EXPECT_EQ(trading_power(p, 0), 0.0);
  EXPECT_EQ(trading_power(p, p.B), 0.0);
  EXPECT_THROW(trading_power(p, -1), std::out_of_range);
  EXPECT_THROW(trading_power(p, p.B + 1), std::out_of_range);
}

TEST(TradingPower, PaperShapeUnderUniformPhi) {
  // Section 3.2: p rises from ~0.5 at m=1 to a maximum near B/2 and falls
  // back to ~0.5 at m = B-1.
  ModelParams p;
  p.B = 100;
  p.validate_and_normalize();
  const std::vector<double> curve = trading_power_curve(p);
  EXPECT_NEAR(curve[1], 0.5, 0.02);
  EXPECT_NEAR(curve[static_cast<std::size_t>(p.B) - 1], 0.5, 0.02);
  // Peak near the middle and clearly above the endpoints.
  double peak = 0.0;
  int peak_m = 0;
  for (int m = 1; m < p.B; ++m) {
    if (curve[static_cast<std::size_t>(m)] > peak) {
      peak = curve[static_cast<std::size_t>(m)];
      peak_m = m;
    }
  }
  EXPECT_GT(peak, 0.9);
  EXPECT_GT(peak_m, p.B / 4);
  EXPECT_LT(peak_m, 3 * p.B / 4);
}

TEST(TradingPower, AllValuesAreProbabilities) {
  for (int B : {2, 5, 20, 200}) {
    ModelParams p;
    p.B = B;
    p.validate_and_normalize();
    for (double v : trading_power_curve(p)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(TradingPower, PointMassPhiAgainstHandComputation) {
  // All peers hold exactly j=2 of B=4 pieces. For m = 1:
  //   j > m term: phi(2) [1 - C(2,1)/C(4,1)] = 1 * (1 - 0.5) = 0.5.
  ModelParams p;
  p.B = 4;
  p.phi = {0.0, 0.0, 1.0, 0.0, 0.0};
  p.validate_and_normalize();
  EXPECT_NEAR(trading_power(p, 1), 0.5, 1e-12);
  // m = 2: j <= m term: phi(2) [1 - C(2,2)/C(4,2)] = 1 - 1/6.
  EXPECT_NEAR(trading_power(p, 2), 1.0 - 1.0 / 6.0, 1e-12);
  // m = 3: phi(2)[1 - C(3,2)/C(4,2)] = 1 - 3/6 = 0.5.
  EXPECT_NEAR(trading_power(p, 3), 0.5, 1e-12);
}

TEST(TradingPower, LargeBStable) {
  ModelParams p;
  p.B = 2000;
  p.validate_and_normalize();
  const double mid = trading_power(p, 1000);
  EXPECT_GT(mid, 0.9);
  EXPECT_LE(mid, 1.0);
}

}  // namespace
}  // namespace mpbt::model
