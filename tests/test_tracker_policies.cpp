// Tracker peer-selection policies (Section 4.3 extension).
#include <gtest/gtest.h>

#include "bt/swarm.hpp"

namespace mpbt::bt {
namespace {

SwarmConfig policy_config(TrackerPolicy policy, std::uint64_t seed = 11) {
  SwarmConfig config;
  config.num_pieces = 60;
  config.max_connections = 5;
  config.peer_set_size = 8;
  config.arrival_rate = 1.5;
  config.initial_seeds = 1;
  config.seed_capacity = 2;
  config.tracker_policy = policy;
  config.seed = seed;
  InitialGroup clones;
  clones.count = 50;
  clones.piece_probs.assign(config.num_pieces, 0.0);
  for (std::uint32_t j = 0; j < config.num_pieces / 2; ++j) {
    clones.piece_probs[j] = 0.95;
  }
  config.initial_groups.push_back(std::move(clones));
  config.arrival_piece_probs.assign(config.num_pieces, 0.03);
  return config;
}

class TrackerPolicySweep : public ::testing::TestWithParam<TrackerPolicy> {};

TEST_P(TrackerPolicySweep, InvariantsHoldUnderPolicy) {
  Swarm swarm(policy_config(GetParam()));
  for (int r = 0; r < 60; ++r) {
    swarm.step();
    ASSERT_NO_THROW(swarm.check_invariants()) << "round " << r;
  }
}

TEST_P(TrackerPolicySweep, PeerSetSizeRespected) {
  Swarm swarm(policy_config(GetParam()));
  swarm.run_rounds(30);
  // Own requests never exceed s (symmetric inserts may push others above,
  // like real BitTorrent, but fresh joiners ask for exactly s).
  const PeerId id = swarm.add_peer();
  EXPECT_LE(swarm.peer(id).neighbors.size(), swarm.config().peer_set_size);
}

TEST_P(TrackerPolicySweep, DownloadsStillComplete) {
  Swarm swarm(policy_config(GetParam()));
  swarm.run_rounds(150);
  EXPECT_GT(swarm.metrics().completed_count(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrackerPolicySweep,
                         ::testing::Values(TrackerPolicy::UniformRandom,
                                           TrackerPolicy::BootstrapBias,
                                           TrackerPolicy::StatusClustered));

TEST(TrackerPolicy, ClusteredBeatsUniformInCloneSwarm) {
  // The clone-heavy workload of the T1 ablation bench (B = 100, s = 6,
  // 70 clones): status clustering groups content-similar newcomers, which
  // spreads arrival-borne variety faster. The effect is workload-dependent
  // (Section 4.3 calls feasibility an open question); this pins the regime
  // where it helps.
  auto starving_rounds = [](TrackerPolicy policy) {
    double total = 0.0;
    for (std::uint64_t seed : {42ULL, 125ULL, 208ULL}) {
      SwarmConfig config;
      config.num_pieces = 100;
      config.max_connections = 7;
      config.peer_set_size = 6;
      config.arrival_rate = 1.5;
      config.initial_seeds = 1;
      config.seed_capacity = 2;
      config.optimistic_unchoke_prob = 1.0;
      config.tracker_policy = policy;
      config.seed = seed;
      InitialGroup clones;
      clones.count = 70;
      clones.piece_probs.assign(config.num_pieces, 0.0);
      for (std::uint32_t j = 0; j < config.num_pieces / 2; ++j) {
        clones.piece_probs[j] = 0.95;
      }
      config.initial_groups.push_back(std::move(clones));
      config.arrival_piece_probs.assign(config.num_pieces, 0.02);
      Swarm swarm(std::move(config));
      swarm.run_rounds(200);
      total += static_cast<double>(swarm.metrics().failed_encounters());
    }
    return total;
  };
  EXPECT_LT(starving_rounds(TrackerPolicy::StatusClustered),
            starving_rounds(TrackerPolicy::UniformRandom));
}

TEST(TrackerPolicy, DeterministicUnderEveryPolicy) {
  for (TrackerPolicy policy : {TrackerPolicy::UniformRandom, TrackerPolicy::BootstrapBias,
                               TrackerPolicy::StatusClustered}) {
    Swarm a(policy_config(policy));
    Swarm b(policy_config(policy));
    a.run_rounds(40);
    b.run_rounds(40);
    EXPECT_EQ(a.piece_counts(), b.piece_counts());
    EXPECT_EQ(a.metrics().completed_count(), b.metrics().completed_count());
  }
}

}  // namespace
}  // namespace mpbt::bt
