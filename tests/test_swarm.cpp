#include "bt/swarm.hpp"

#include <gtest/gtest.h>

#include "bt/peer.hpp"

namespace mpbt::bt {
namespace {

SwarmConfig small_config() {
  SwarmConfig config;
  config.num_pieces = 20;
  config.max_connections = 3;
  config.peer_set_size = 10;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 3;
  config.seed = 21;
  InitialGroup warm;
  warm.count = 25;
  warm.piece_probs.assign(config.num_pieces, 0.3);
  config.initial_groups.push_back(warm);
  return config;
}

TEST(SwarmConfig, Validation) {
  SwarmConfig config;
  config.num_pieces = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SwarmConfig{};
  config.max_connections = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SwarmConfig{};
  config.arrival_rate = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SwarmConfig{};
  config.optimistic_unchoke_prob = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SwarmConfig{};
  config.shake.completion_fraction = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SwarmConfig{};
  InitialGroup group;
  group.count = 1;
  group.piece_probs = {0.5};  // wrong size
  config.initial_groups.push_back(group);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.initial_groups[0].piece_probs.assign(config.num_pieces, 1.5);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SwarmConfig{}.validate());
}

TEST(Swarm, InitialPopulationMatchesConfig) {
  const Swarm swarm(small_config());
  EXPECT_EQ(swarm.population(), 26u);  // 25 leechers + 1 seed
  EXPECT_EQ(swarm.num_seeds(), 1u);
  EXPECT_EQ(swarm.num_leechers(), 25u);
  EXPECT_EQ(swarm.round(), 0u);
}

TEST(Swarm, SeedsHoldEverything) {
  const Swarm swarm(small_config());
  bool found_seed = false;
  for (PeerId id : swarm.live_peers()) {
    const Peer& p = swarm.peer(id);
    if (p.is_seed) {
      found_seed = true;
      EXPECT_TRUE(p.pieces.all());
    }
  }
  EXPECT_TRUE(found_seed);
}

TEST(Swarm, PieceCountsConsistentAtStart) {
  Swarm swarm(small_config());
  EXPECT_NO_THROW(swarm.check_invariants());
}

TEST(Swarm, InvariantsHoldOverManyRounds) {
  Swarm swarm(small_config());
  for (int r = 0; r < 60; ++r) {
    swarm.step();
    ASSERT_NO_THROW(swarm.check_invariants()) << "round " << r;
  }
}

TEST(Swarm, DownloadsComplete) {
  Swarm swarm(small_config());
  swarm.run_rounds(80);
  EXPECT_GT(swarm.metrics().completed_count(), 10u);
  for (double t : swarm.metrics().download_times()) {
    EXPECT_GE(t, 1.0);
  }
}

TEST(Swarm, DeterministicForSeed) {
  Swarm a(small_config());
  Swarm b(small_config());
  a.run_rounds(40);
  b.run_rounds(40);
  EXPECT_EQ(a.population(), b.population());
  EXPECT_EQ(a.metrics().completed_count(), b.metrics().completed_count());
  EXPECT_EQ(a.piece_counts(), b.piece_counts());
  EXPECT_DOUBLE_EQ(a.entropy(), b.entropy());
}

TEST(Swarm, DifferentSeedsDiffer) {
  SwarmConfig c1 = small_config();
  SwarmConfig c2 = small_config();
  c2.seed = 9999;
  Swarm a(c1);
  Swarm b(c2);
  a.run_rounds(40);
  b.run_rounds(40);
  // Very unlikely to coincide exactly.
  EXPECT_TRUE(a.piece_counts() != b.piece_counts() ||
              a.metrics().completed_count() != b.metrics().completed_count());
}

TEST(Swarm, CompletedLeechersDepartImmediately) {
  Swarm swarm(small_config());
  swarm.run_rounds(80);
  for (PeerId id : swarm.live_peers()) {
    const Peer& p = swarm.peer(id);
    if (p.is_leecher()) {
      EXPECT_FALSE(p.pieces.all());
    }
  }
}

TEST(Swarm, LingeringSeedsStayThenLeave) {
  SwarmConfig config = small_config();
  config.seed_linger_rounds = 5;
  Swarm swarm(config);
  swarm.run_rounds(40);
  // There should be extra seeds beyond the initial one at some point.
  bool saw_extra_seed = false;
  for (const auto& sample : swarm.metrics().seeds().samples()) {
    if (sample.value > 1.0) {
      saw_extra_seed = true;
      break;
    }
  }
  EXPECT_TRUE(saw_extra_seed);
  swarm.check_invariants();
}

TEST(Swarm, ConnectionCapRespected) {
  SwarmConfig config = small_config();
  config.max_connections = 2;
  Swarm swarm(config);
  for (int r = 0; r < 30; ++r) {
    swarm.step();
    for (PeerId id : swarm.live_peers()) {
      const Peer& p = swarm.peer(id);
      if (p.is_leecher()) {
        ASSERT_LE(p.connections.size(), 2u);
      }
    }
  }
}

TEST(Swarm, EntropyInRange) {
  Swarm swarm(small_config());
  for (int r = 0; r < 40; ++r) {
    swarm.step();
    const double e = swarm.entropy();
    ASSERT_GE(e, 0.0);
    ASSERT_LE(e, 1.0);
  }
}

TEST(Swarm, EntropyOneWithOnlySeeds) {
  SwarmConfig config;
  config.num_pieces = 10;
  config.initial_seeds = 3;
  config.arrival_rate = 0.0;
  const Swarm swarm(config);
  EXPECT_DOUBLE_EQ(swarm.entropy(), 1.0);
}

TEST(Swarm, PopulationCapDropsArrivals) {
  SwarmConfig config = small_config();
  config.max_population = 10;  // below the initial population
  config.arrival_rate = 5.0;
  Swarm swarm(config);
  swarm.run_rounds(10);
  EXPECT_GT(swarm.metrics().dropped_arrivals(), 0u);
}

TEST(Swarm, ArrivalCutoffStopsGrowth) {
  SwarmConfig config = small_config();
  config.arrival_cutoff_round = 5;
  config.arrival_rate = 3.0;
  Swarm swarm(config);
  swarm.run_rounds(60);
  // After the cutoff everyone eventually drains; at least no one new joins:
  // total peers ever = initial + arrivals in the first 5 rounds.
  Swarm fresh(config);
  fresh.run_rounds(5);
  const std::size_t after5 =
      fresh.metrics().completed_count() + fresh.population();  // total ever (none depart early)
  EXPECT_LE(swarm.metrics().completed_count() + swarm.population(),
            after5 + 1 /* rounding slack */);
}

TEST(Swarm, AbortRateDrainsLeechers) {
  SwarmConfig config = small_config();
  config.abort_rate = 0.05;
  Swarm swarm(config);
  swarm.run_rounds(60);
  EXPECT_GT(swarm.metrics().aborts(), 10u);
  swarm.check_invariants();
  // Aborted peers never appear as completions.
  EXPECT_LE(swarm.metrics().completed_count() + swarm.metrics().aborts(),
            60u * 3 + 26u /* generous bound on total peers ever */);
}

TEST(Swarm, AbortRateValidation) {
  SwarmConfig config = small_config();
  config.abort_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.abort_rate = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Swarm, AddPeerInjectsLeecher) {
  Swarm swarm(small_config());
  const std::size_t before = swarm.population();
  const PeerId id = swarm.add_peer();
  EXPECT_EQ(swarm.population(), before + 1);
  EXPECT_TRUE(swarm.is_live(id));
  const Peer& p = swarm.peer(id);
  EXPECT_TRUE(p.pieces.none());
  EXPECT_FALSE(p.neighbors.empty());
  swarm.check_invariants();
}

TEST(Swarm, AddPeerWithPieceProbs) {
  Swarm swarm(small_config());
  std::vector<double> probs(20, 1.0);
  const PeerId id = swarm.add_peer(probs);
  const Peer& p = swarm.peer(id);
  // All-1 probabilities would complete the peer; one piece is dropped.
  EXPECT_EQ(p.pieces.count(), 19u);
  EXPECT_THROW(swarm.add_peer(std::vector<double>{0.5}), std::invalid_argument);
}

TEST(Swarm, InstrumentedClientRecordsTrace) {
  Swarm swarm(small_config());
  swarm.run_rounds(5);
  swarm.instrument_next_arrival();
  swarm.run_rounds(60);
  const auto& records = swarm.metrics().client_records();
  ASSERT_FALSE(records.empty());
  const ClientRecord& record = records.begin()->second;
  EXPECT_FALSE(record.samples.empty());
  // Samples are round-ordered with non-decreasing bytes.
  for (std::size_t i = 1; i < record.samples.size(); ++i) {
    EXPECT_GT(record.samples[i].round, record.samples[i - 1].round);
    EXPECT_GE(record.samples[i].cumulative_bytes, record.samples[i - 1].cumulative_bytes);
  }
}

TEST(Swarm, InstrumentExistingPeer) {
  Swarm swarm(small_config());
  const PeerId id = swarm.add_peer();
  swarm.instrument_peer(id);
  swarm.run_rounds(10);
  EXPECT_EQ(swarm.metrics().client_records().count(id), 1u);
  EXPECT_THROW(swarm.instrument_peer(9999), std::out_of_range);
}

TEST(Swarm, ShakingReplacesNeighborSet) {
  SwarmConfig config = small_config();
  config.shake.enabled = true;
  config.shake.completion_fraction = 0.5;
  Swarm swarm(config);
  swarm.run_rounds(60);
  swarm.check_invariants();
  // Some leechers must have been shaken during the run; shaken peers keep
  // downloading and complete.
  EXPECT_GT(swarm.metrics().completed_count(), 5u);
}

TEST(Swarm, UnknownPeerAccessThrows) {
  Swarm swarm(small_config());
  EXPECT_THROW(swarm.peer(12345), std::out_of_range);
  EXPECT_FALSE(swarm.is_live(12345));
}

TEST(Swarm, MetricsSeriesCoverEveryRound) {
  Swarm swarm(small_config());
  swarm.run_rounds(25);
  EXPECT_EQ(swarm.metrics().population().size(), 25u);
  EXPECT_EQ(swarm.metrics().entropy().size(), 25u);
  EXPECT_EQ(swarm.metrics().efficiency_trading().size(), 25u);
  EXPECT_EQ(swarm.tracker().population_series().size(), 25u);
}

TEST(Swarm, EstimatedParametersAreProbabilities) {
  Swarm swarm(small_config());
  swarm.run_rounds(60);
  for (double p : {swarm.metrics().estimated_p_r(), swarm.metrics().estimated_p_n(),
                   swarm.metrics().estimated_p_init()}) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

struct ScopeCase {
  AvailabilityScope scope;
  PieceSelection selection;
};

class SwarmStrategySweep : public ::testing::TestWithParam<ScopeCase> {};

TEST_P(SwarmStrategySweep, RunsCleanAndCompletes) {
  SwarmConfig config = small_config();
  config.availability_scope = GetParam().scope;
  config.piece_selection = GetParam().selection;
  Swarm swarm(config);
  swarm.run_rounds(70);
  swarm.check_invariants();
  EXPECT_GT(swarm.metrics().completed_count(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwarmStrategySweep,
    ::testing::Values(ScopeCase{AvailabilityScope::Global, PieceSelection::RarestFirst},
                      ScopeCase{AvailabilityScope::Global, PieceSelection::Random},
                      ScopeCase{AvailabilityScope::Global,
                                PieceSelection::RandomFirstThenRarest},
                      ScopeCase{AvailabilityScope::NeighborSet, PieceSelection::RarestFirst},
                      ScopeCase{AvailabilityScope::NeighborSet,
                                PieceSelection::RandomFirstThenRarest}));

class SwarmSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SwarmSizeSweep, InvariantsAcrossPeerSetSizes) {
  SwarmConfig config = small_config();
  config.peer_set_size = GetParam();
  Swarm swarm(config);
  swarm.run_rounds(40);
  swarm.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Sweep, SwarmSizeSweep, ::testing::Values(1u, 2u, 5u, 15u, 40u));

}  // namespace
}  // namespace mpbt::bt
