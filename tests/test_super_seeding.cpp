// Super-seeding (Section 7.2 extension).
#include <gtest/gtest.h>

#include "bt/swarm.hpp"

namespace mpbt::bt {
namespace {

SwarmConfig flash_config(SwarmConfig::SeedMode mode, std::uint64_t seed = 42) {
  SwarmConfig config;
  config.num_pieces = 100;
  config.max_connections = 5;
  config.peer_set_size = 30;
  config.arrival_rate = 0.0;
  config.initial_seeds = 1;
  config.seed_capacity = 5;
  config.seeds_serve_all = true;
  config.seed_mode = mode;
  config.seed = seed;
  InitialGroup flash;
  flash.count = 60;
  config.initial_groups.push_back(std::move(flash));
  return config;
}

TEST(SuperSeeding, InvariantsHold) {
  Swarm swarm(flash_config(SwarmConfig::SeedMode::SuperSeed));
  for (int r = 0; r < 60; ++r) {
    swarm.step();
    ASSERT_NO_THROW(swarm.check_invariants());
  }
}

TEST(SuperSeeding, ServesDistinctPiecesFirst) {
  // With budget 5/round, after B/5 rounds a super-seed must have injected
  // (nearly) every distinct piece at least once; classic seeding re-serves
  // popular pieces and leaves gaps for longer.
  Swarm swarm(flash_config(SwarmConfig::SeedMode::SuperSeed));
  const std::uint32_t B = swarm.config().num_pieces;
  swarm.run_rounds(B / 5 + 5);
  std::uint32_t injected = 0;
  for (std::uint32_t count : swarm.piece_counts()) {
    if (count >= 2) {  // seed copy + a leecher copy
      ++injected;
    }
  }
  EXPECT_GE(injected, B - 4);
}

TEST(SuperSeeding, ImprovesFlashCrowdEntropy) {
  auto mean_entropy = [](SwarmConfig::SeedMode mode) {
    double total = 0.0;
    for (std::uint64_t seed : {42ULL, 79ULL, 116ULL}) {
      Swarm swarm(flash_config(mode, seed));
      // Run until the flash crowd drains (as the S1 bench does); entropy
      // after the drain is trivially 1 and would wash out the contrast.
      for (int r = 0; r < 400 && swarm.num_leechers() > 0; ++r) {
        swarm.step();
      }
      total += swarm.metrics().mean_entropy(5);
    }
    return total / 3.0;
  };
  const double classic = mean_entropy(SwarmConfig::SeedMode::Classic);
  const double super = mean_entropy(SwarmConfig::SeedMode::SuperSeed);
  EXPECT_GT(super, classic);
}

TEST(SuperSeeding, EveryoneStillCompletes) {
  Swarm swarm(flash_config(SwarmConfig::SeedMode::SuperSeed));
  swarm.run_rounds(250);
  EXPECT_GE(swarm.metrics().completed_count(), 35u);
}

TEST(SuperSeeding, DeterministicForSeed) {
  Swarm a(flash_config(SwarmConfig::SeedMode::SuperSeed));
  Swarm b(flash_config(SwarmConfig::SeedMode::SuperSeed));
  a.run_rounds(50);
  b.run_rounds(50);
  EXPECT_EQ(a.piece_counts(), b.piece_counts());
}

}  // namespace
}  // namespace mpbt::bt
