// Cross-module integration tests: the model validated against the
// simulator (the paper's Section 4 methodology, in miniature).
#include <gtest/gtest.h>

#include "analysis/compare.hpp"
#include "bt/swarm.hpp"
#include "efficiency/balance.hpp"
#include "model/download_model.hpp"
#include "stability/entropy.hpp"

namespace mpbt {
namespace {

bt::SwarmConfig warm_swarm_config(std::uint32_t k, std::uint32_t s, std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 60;
  config.max_connections = k;
  config.peer_set_size = s;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seed = seed;
  bt::InitialGroup warm;
  warm.count = 80;
  warm.piece_probs.assign(config.num_pieces, 0.35);
  config.initial_groups.push_back(warm);
  return config;
}

model::ModelParams calibrated_params(const bt::Swarm& swarm) {
  model::ModelParams params;
  params.B = static_cast<int>(swarm.config().num_pieces);
  params.k = static_cast<int>(swarm.config().max_connections);
  params.s = static_cast<int>(swarm.config().peer_set_size);
  params.p_r = swarm.metrics().estimated_p_r();
  params.p_n = swarm.metrics().estimated_p_n();
  params.p_init = swarm.metrics().estimated_p_init();
  params.alpha = 0.3;
  params.gamma = 0.15;
  return params;
}

TEST(Integration, ModelTimelineTracksSimulation) {
  bt::Swarm swarm(warm_swarm_config(5, 30, 42));
  swarm.run_rounds(200);
  ASSERT_GT(swarm.metrics().completed_count(), 50u);

  const model::EvolutionResult evo = model::compute_evolution(calibrated_params(swarm));
  ASSERT_NEAR(evo.absorbed_mass, 1.0, 1e-6);

  // Compare sim and model timelines at every decile of the file. The model
  // is a first approximation (paper, Section 4.1): demand agreement within
  // 50% relative error at each checkpoint and a sane overall shape.
  for (std::uint32_t b = 6; b <= 60; b += 6) {
    const double sim_t = swarm.metrics().timeline(b);
    const double model_t = evo.expected_timeline[b];
    ASSERT_GT(sim_t, 0.0) << "b=" << b;
    EXPECT_LT(std::abs(model_t - sim_t) / sim_t, 0.5) << "b=" << b;
  }
}

TEST(Integration, ModelPotentialProfileMatchesSimShape) {
  bt::Swarm swarm(warm_swarm_config(5, 30, 43));
  swarm.run_rounds(200);
  const model::EvolutionResult evo = model::compute_evolution(calibrated_params(swarm));

  // Mid-download the potential set should be large (close to s) in both.
  const auto s = static_cast<double>(swarm.config().peer_set_size);
  double sim_mid = 0.0;
  double model_mid = 0.0;
  int count = 0;
  for (std::uint32_t b = 20; b <= 40; ++b) {
    const double sim_v = swarm.metrics().potential_size(b);
    if (sim_v >= 0.0 && evo.expected_potential[b] >= 0.0) {
      sim_mid += sim_v;
      model_mid += evo.expected_potential[b];
      ++count;
    }
  }
  ASSERT_GT(count, 10);
  sim_mid /= count;
  model_mid /= count;
  EXPECT_GT(sim_mid / s, 0.5);
  EXPECT_GT(model_mid / s, 0.5);
  EXPECT_LT(std::abs(sim_mid - model_mid) / s, 0.35);
}

TEST(Integration, EfficiencyModelUsesMeasuredPr) {
  bt::Swarm swarm(warm_swarm_config(4, 40, 44));
  swarm.run_rounds(200);
  const double sim_eta = swarm.metrics().mean_transfer_efficiency(60);
  efficiency::EfficiencyParams p;
  p.k = 4;
  p.p_r = swarm.metrics().estimated_p_r();
  p.N = static_cast<double>(swarm.population() + 1);
  const double model_eta = efficiency::EfficiencySolver(p).solve().eta;
  // Both should land in the healthy regime and within 15% of each other.
  EXPECT_GT(sim_eta, 0.6);
  EXPECT_GT(model_eta, 0.6);
  EXPECT_LT(std::abs(sim_eta - model_eta), 0.15);
}

TEST(Integration, SmallerPeerSetShowsPhasesInSimAndModel) {
  // Figure 1's observation: with a small peer set, bootstrap and last
  // phases appear (potential-set ratio dips at both ends).
  bt::SwarmConfig small_config = warm_swarm_config(5, 4, 45);
  bt::Swarm small_swarm(small_config);
  small_swarm.run_rounds(260);

  bt::SwarmConfig large_config = warm_swarm_config(5, 30, 45);
  bt::Swarm large_swarm(large_config);
  large_swarm.run_rounds(260);

  // Mid-download ratio is much healthier with a large peer set.
  auto mid_ratio = [](const bt::Swarm& swarm) {
    double sum = 0.0;
    int n = 0;
    for (std::uint32_t b = 25; b <= 35; ++b) {
      const double r = swarm.metrics().potential_ratio(b);
      if (r >= 0.0) {
        sum += r;
        ++n;
      }
    }
    return n == 0 ? -1.0 : sum / n;
  };
  const double small_ratio = mid_ratio(small_swarm);
  const double large_ratio = mid_ratio(large_swarm);
  ASSERT_GE(small_ratio, 0.0);
  ASSERT_GE(large_ratio, 0.0);
  EXPECT_GT(large_ratio, 0.75);

  // Model mirrors this: expected completion is longer with the small s
  // because empty-potential stalls occur.
  model::ModelParams small_params = calibrated_params(small_swarm);
  model::ModelParams large_params = calibrated_params(large_swarm);
  small_params.alpha = large_params.alpha = 0.3;
  small_params.gamma = large_params.gamma = 0.15;
  const double t_small = model::compute_evolution(small_params).expected_completion;
  const double t_large = model::compute_evolution(large_params).expected_completion;
  EXPECT_GT(t_small, t_large);
}

TEST(Integration, ShakingReducesLastPieceTimes) {
  // Section 7.1: shaking the peer set cuts the TTD of the final pieces.
  // The workload makes tail pieces genuinely rare (age-correlated content)
  // so the last-piece problem is visible with a 6-neighbor peer set.
  auto run_with_shake = [](bool enabled, std::uint64_t seed) {
    bt::SwarmConfig config;
    config.num_pieces = 200;
    config.max_connections = 7;
    config.peer_set_size = 6;
    config.arrival_rate = 0.8;
    config.initial_seeds = 1;
    config.seed_capacity = 2;
    config.seed = seed;
    config.shake.enabled = enabled;
    config.shake.completion_fraction = 0.9;
    const std::vector<double> ramp =
        stability::ramp_piece_probs(config.num_pieces, 0.75, 0.02);
    bt::InitialGroup warm;
    warm.count = 80;
    warm.piece_probs = ramp;
    config.initial_groups.push_back(std::move(warm));
    config.arrival_piece_probs = ramp;
    bt::Swarm swarm(std::move(config));
    swarm.run_rounds(400);
    double ttd_sum = 0.0;
    for (std::uint32_t ordinal = 190; ordinal <= 200; ++ordinal) {
      const double ttd = swarm.metrics().ttd(ordinal);
      if (ttd >= 0.0) {
        ttd_sum += ttd;
      }
    }
    return ttd_sum;
  };
  double normal = 0.0;
  double shaken = 0.0;
  for (std::uint64_t seed : {7ULL, 17ULL, 27ULL}) {
    normal += run_with_shake(false, seed);
    shaken += run_with_shake(true, seed);
  }
  ASSERT_GT(normal, 0.0);
  ASSERT_GT(shaken, 0.0);
  EXPECT_LT(shaken, normal * 0.95);  // a real reduction, seed-averaged
}

}  // namespace
}  // namespace mpbt
