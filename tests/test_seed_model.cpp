// The seeding extension of the download model (Section 7.2): extra
// connections that do not require tit-for-tat.
#include <gtest/gtest.h>

#include "markov/absorbing.hpp"
#include "model/download_model.hpp"

namespace mpbt::model {
namespace {

ModelParams boosted_params(double seed_boost) {
  ModelParams p;
  p.B = 10;
  p.k = 3;
  p.s = 5;
  p.p_init = 0.6;
  p.p_r = 0.7;
  p.p_n = 0.8;
  p.alpha = 0.3;
  p.gamma = 0.2;
  p.seed_boost = seed_boost;
  return p;
}

TEST(SeedModel, ValidatesRange) {
  ModelParams p = boosted_params(1.5);
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p = boosted_params(-0.1);
  EXPECT_THROW(p.validate_and_normalize(), std::invalid_argument);
  p = boosted_params(0.5);
  EXPECT_NO_THROW(p.validate_and_normalize());
}

TEST(SeedModel, ZeroBoostRecoversStrictModel) {
  const TransitionKernel kernel(boosted_params(0.0));
  for (int n = 0; n <= 3; ++n) {
    for (int b = 0; b <= 10; ++b) {
      const auto pmf = kernel.next_b_pmf(n, b);
      ASSERT_EQ(pmf.size(), 1u);
      EXPECT_EQ(pmf[0].first, kernel.next_b(n, b));
      EXPECT_EQ(pmf[0].second, 1.0);
    }
  }
}

TEST(SeedModel, PmfSplitsOnBoost) {
  const TransitionKernel kernel(boosted_params(0.25));
  const auto pmf = kernel.next_b_pmf(2, 4);  // base b' = 6
  ASSERT_EQ(pmf.size(), 2u);
  EXPECT_EQ(pmf[0].first, 6);
  EXPECT_NEAR(pmf[0].second, 0.75, 1e-12);
  EXPECT_EQ(pmf[1].first, 7);
  EXPECT_NEAR(pmf[1].second, 0.25, 1e-12);
  // Bootstrap (b = 0) is unaffected: the first piece is its own mechanism.
  const auto bootstrap = kernel.next_b_pmf(0, 0);
  ASSERT_EQ(bootstrap.size(), 1u);
  EXPECT_EQ(bootstrap[0].first, 1);
  // At the boundary the boost cannot push past B.
  const auto boundary = kernel.next_b_pmf(3, 9);  // base already B
  ASSERT_EQ(boundary.size(), 1u);
  EXPECT_EQ(boundary[0].first, 10);
}

TEST(SeedModel, CertainBoostCollapsesToOneBranch) {
  const TransitionKernel kernel(boosted_params(1.0));
  const auto pmf = kernel.next_b_pmf(1, 3);
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_EQ(pmf[0].first, 5);
}

TEST(SeedModel, ChainStaysStochasticWithBoost) {
  const TransitionKernel kernel(boosted_params(0.3));
  const markov::SparseChain chain = kernel.build_chain();
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    ASSERT_NEAR(chain.row_sum(s), 1.0, 1e-9) << "state " << s;
  }
  const auto h = markov::hitting_probability(chain, kernel.absorbing_state());
  EXPECT_NEAR(h[kernel.start_state()], 1.0, 1e-6);
}

TEST(SeedModel, BoostShortensDownloads) {
  const double t_strict = compute_evolution(boosted_params(0.0)).expected_completion;
  const double t_half = compute_evolution(boosted_params(0.5)).expected_completion;
  const double t_full = compute_evolution(boosted_params(1.0)).expected_completion;
  EXPECT_GT(t_strict, t_half);
  EXPECT_GT(t_half, t_full);
}

TEST(SeedModel, EvolutionMatchesExactChainWithBoost) {
  const ModelParams params = boosted_params(0.4);
  const TransitionKernel kernel(params);
  const markov::SparseChain chain = kernel.build_chain();
  const auto exact = markov::expected_steps_to_absorption(chain);
  const double exact_time = exact.expected_steps[kernel.start_state()];
  const EvolutionResult evo = compute_evolution(params);
  EXPECT_NEAR(evo.expected_completion, exact_time, exact_time * 0.01 + 0.01);
}

TEST(SeedModel, MonteCarloAgreesWithExact) {
  const ModelParams params = boosted_params(0.4);
  const TransitionKernel kernel(params);
  numeric::Rng rng(55);
  double total = 0.0;
  const int samples = 4000;
  for (int i = 0; i < samples; ++i) {
    const SampledDownload d = sample_download(kernel, rng);
    ASSERT_TRUE(d.completed);
    total += static_cast<double>(d.points.size() - 1);
  }
  const double mc_mean = total / samples;
  const double exact = compute_evolution(params).expected_completion;
  EXPECT_NEAR(mc_mean, exact, exact * 0.05);
}

}  // namespace
}  // namespace mpbt::model
