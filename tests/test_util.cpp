#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace mpbt::util {
namespace {

TEST(Assert, MacroThrowsAssertionError) {
  EXPECT_THROW(MPBT_ASSERT(1 == 2), AssertionError);
  EXPECT_NO_THROW(MPBT_ASSERT(1 == 1));
  try {
    MPBT_ASSERT_MSG(false, "context detail");
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("context detail"), std::string::npos);
  }
}

TEST(Assert, ThrowHelpers) {
  EXPECT_THROW(throw_if_invalid(true, "bad"), std::invalid_argument);
  EXPECT_NO_THROW(throw_if_invalid(false, "ok"));
  EXPECT_THROW(throw_if_out_of_range(true, "oob"), std::out_of_range);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(original);
}

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({Cell{std::string("x")}}), std::invalid_argument);
  t.add_row({Cell{1LL}, Cell{2.0}});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_THROW(t.row(1), std::out_of_range);
}

TEST(Table, TextOutputAligned) {
  Table t({"name", "value"});
  t.set_precision(2);
  t.add_row({Cell{std::string("alpha")}, Cell{1.5}});
  t.add_row({Cell{std::string("b")}, Cell{20LL}});
  std::ostringstream os;
  t.print_text(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({Cell{std::string("plain")}});
  t.add_row({Cell{std::string("has,comma")}});
  t.add_row({Cell{std::string("has\"quote")}});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("plain\n"), std::string::npos);
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, PrecisionValidation) {
  Table t({"x"});
  EXPECT_THROW(t.set_precision(-1), std::invalid_argument);
  EXPECT_THROW(t.set_precision(18), std::invalid_argument);
  t.set_precision(0);
  t.add_row({Cell{3.7}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("4"), std::string::npos);  // rounded
}

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("prog", "test program");
  cli.add_flag("verbose", "be chatty");
  cli.add_option("count", "how many", "10");
  cli.add_option("rate", "a rate", "0.5");
  const char* argv[] = {"prog", "--verbose", "--count=42", "--rate", "1.25", "extra"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_TRUE(cli.has_flag("verbose"));
  EXPECT_EQ(cli.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.25);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "extra");
}

TEST(Cli, DefaultsApply) {
  CliParser cli("prog", "test");
  cli.add_option("count", "how many", "7");
  cli.add_flag("fast", "go fast");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_FALSE(cli.has_flag("fast"));
}

TEST(Cli, UnknownFlagRejected) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MalformedValuesRejected) {
  CliParser cli("prog", "test");
  cli.add_option("count", "n", "1");
  cli.add_flag("go", "g");
  {
    const char* argv[] = {"prog", "--count=abc"};
    CliParser c2 = cli;
    ASSERT_TRUE(c2.parse(2, argv));
    EXPECT_THROW(c2.get_int("count"), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--go=true"};
    CliParser c2 = cli;
    EXPECT_THROW(c2.parse(2, argv), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--count"};
    CliParser c2 = cli;
    EXPECT_THROW(c2.parse(2, argv), std::invalid_argument);
  }
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("test"), std::string::npos);
}

TEST(Cli, DuplicateRegistrationRejected) {
  CliParser cli("prog", "test");
  cli.add_option("x", "x", "1");
  EXPECT_THROW(cli.add_option("x", "again", "2"), std::invalid_argument);
  EXPECT_THROW(cli.add_flag("x", "again"), std::invalid_argument);
}

}  // namespace
}  // namespace mpbt::util
