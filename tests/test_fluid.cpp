#include "fluid/qiu_srikant.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpbt::fluid {
namespace {

TEST(FluidParams, Validation) {
  FluidParams p;
  EXPECT_NO_THROW(p.validate());
  p.lambda = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FluidParams{};
  p.mu = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FluidParams{};
  p.gamma = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FluidParams{};
  p.eta = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Fluid, CompletionRateIsMinOfConstraints) {
  FluidParams p;
  p.c = 2.0;
  p.mu = 1.0;
  p.eta = 0.5;
  // Few seeds: upload constrained. x=10, y=0: min(20, 5) = 5.
  EXPECT_NEAR(completion_rate(p, {10.0, 0.0}), 5.0, 1e-12);
  // Many seeds: download constrained. x=1, y=100: min(2, 100.5) = 2.
  EXPECT_NEAR(completion_rate(p, {1.0, 100.0}), 2.0, 1e-12);
}

TEST(Fluid, Rk4PreservesNonNegativity) {
  FluidParams p;
  p.lambda = 0.0;
  p.gamma = 5.0;
  FluidState s{0.01, 0.01};
  for (int i = 0; i < 1000; ++i) {
    s = rk4_step(p, s, 0.05);
    ASSERT_GE(s.x, 0.0);
    ASSERT_GE(s.y, 0.0);
  }
}

TEST(Fluid, IntegrationConvergesToSteadyState) {
  FluidParams p;
  p.lambda = 4.0;
  p.mu = 1.0;
  p.c = 3.0;
  p.gamma = 2.0;
  p.eta = 0.9;
  const FluidTrajectory traj = integrate(p, {0.0, 1.0}, 200.0, 0.01);
  const FluidState eq = steady_state(p);
  EXPECT_NEAR(traj.final_state.x, eq.x, 0.05 * std::max(1.0, eq.x));
  EXPECT_NEAR(traj.final_state.y, eq.y, 0.05 * std::max(1.0, eq.y));
}

TEST(Fluid, SteadyStateDownloadConstrainedRegime) {
  // Slow seed departure (gamma < mu): capacity plentiful, download bound.
  FluidParams p;
  p.lambda = 6.0;
  p.mu = 2.0;
  p.c = 3.0;
  p.gamma = 0.5;
  p.theta = 0.0;
  const FluidState eq = steady_state(p);
  EXPECT_NEAR(eq.x, p.lambda / p.c, 1e-9);
  // In equilibrium completions = lambda, seeds = lambda / gamma.
  EXPECT_NEAR(eq.y, p.lambda / p.gamma, 1e-9);
}

TEST(Fluid, SteadyStateUploadConstrainedRegime) {
  // Fast seed departure: the upload constraint binds.
  FluidParams p;
  p.lambda = 6.0;
  p.mu = 1.0;
  p.c = 10.0;
  p.gamma = 4.0;
  p.theta = 0.0;
  p.eta = 0.8;
  const FluidState eq = steady_state(p);
  // x* = lambda (1 - mu/gamma) / (mu eta).
  const double expected_x = p.lambda * (1.0 - p.mu / p.gamma) / (p.mu * p.eta);
  EXPECT_NEAR(eq.x, expected_x, 1e-9);
  // Flow balance holds: completions mu(eta x + y) = lambda.
  EXPECT_NEAR(p.mu * (p.eta * eq.x + eq.y), p.lambda, 1e-9);
}

TEST(Fluid, SteadyStateIsFixedPointOfDynamics) {
  for (double gamma : {0.5, 1.5, 4.0}) {
    FluidParams p;
    p.lambda = 5.0;
    p.mu = 1.0;
    p.c = 2.5;
    p.gamma = gamma;
    p.eta = 0.85;
    FluidState eq = steady_state(p);
    const FluidState next = rk4_step(p, eq, 0.01);
    EXPECT_NEAR(next.x, eq.x, 1e-6) << "gamma=" << gamma;
    EXPECT_NEAR(next.y, eq.y, 1e-6) << "gamma=" << gamma;
  }
}

TEST(Fluid, DownloadTimeViaLittlesLaw) {
  FluidParams p;
  p.lambda = 6.0;
  p.mu = 2.0;
  p.c = 3.0;
  p.gamma = 0.5;
  const double T = steady_state_download_time(p);
  EXPECT_NEAR(T, steady_state(p).x / p.lambda, 1e-12);
  // Download-constrained: T = 1/c.
  EXPECT_NEAR(T, 1.0 / p.c, 1e-9);
}

TEST(Fluid, BetterEffectivenessShortensDownloads) {
  FluidParams slow;
  slow.lambda = 6.0;
  slow.mu = 1.0;
  slow.c = 10.0;
  slow.gamma = 4.0;
  slow.eta = 0.4;
  FluidParams fast = slow;
  fast.eta = 0.95;
  EXPECT_GT(steady_state_download_time(slow), steady_state_download_time(fast));
}

TEST(Fluid, IntegrationValidation) {
  FluidParams p;
  EXPECT_THROW(integrate(p, {0, 0}, -1.0), std::invalid_argument);
  EXPECT_THROW(integrate(p, {0, 0}, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(integrate(p, {0, 0}, 1.0, 0.1, 0), std::invalid_argument);
  EXPECT_THROW(rk4_step(p, {0, 0}, 0.0), std::invalid_argument);
}

TEST(Fluid, FlashCrowdDecaysWithoutArrivals) {
  // A burst of leechers and no arrivals: everyone eventually leaves.
  FluidParams p;
  p.lambda = 0.0;
  p.mu = 1.0;
  p.c = 2.0;
  p.gamma = 1.0;
  const FluidTrajectory traj = integrate(p, {100.0, 1.0}, 100.0, 0.01);
  EXPECT_LT(traj.final_state.x, 0.5);
  EXPECT_LT(traj.final_state.y, 0.5);
  // Leechers decay monotonically after the initial instant.
  double prev = traj.leechers[0].value;
  for (std::size_t i = 1; i < traj.leechers.size(); ++i) {
    ASSERT_LE(traj.leechers[i].value, prev + 1e-9);
    prev = traj.leechers[i].value;
  }
}

}  // namespace
}  // namespace mpbt::fluid
